"""Ablation A: sequential-cyclic vs random block-set selection.

Paper Section 3.3 justifies the cheap sequential scan of Algorithm 1 by
arguing it "is close to that in a random selection policy in reality
because cold data could virtually exist in any block in the physical
address space".  This bench tests that claim: the two policies must yield
near-identical endurance (first failure time, erase-count deviation) and
overhead on the same workload.
"""

from __future__ import annotations

from benchmarks.conftest import SEED, THRESHOLDS, BenchSetup, report
from repro.core.config import SWLConfig
from repro.sim.experiment import ExperimentSpec, run_until_first_failure
from repro.util.tables import format_table


def _run(setup: BenchSetup, driver: str, selection: str):
    spec = ExperimentSpec(
        driver,
        setup.geometry,
        SWLConfig(threshold=THRESHOLDS[0], k=0, selection=selection),
        seed=SEED,
    )
    return run_until_first_failure(spec, setup.base_trace, warmup=setup.warmup)


def test_ablation_selection_policy(bench_setup, benchmark):
    def ablation():
        results = {}
        for selection in ("sequential", "random"):
            results[selection] = _run(bench_setup, "ftl", selection)
        return results

    results = benchmark.pedantic(ablation, rounds=1, iterations=1)
    rows = [
        [name,
         round(result.first_failure_years, 4),
         round(result.erase_distribution.deviation, 1),
         result.total_erases]
        for name, result in results.items()
    ]
    report("ablation_selection", format_table(
        ["Selection policy", "First failure (years)", "Erase dev.", "Erases"],
        rows,
        title=f"Ablation A: SWL block-set selection (FTL, k=0, T={THRESHOLDS[0]})",
    ))
    sequential = results["sequential"]
    randomized = results["random"]
    # The paper's claim: the cheap sequential scan behaves like random
    # selection.  Allow 15% wiggle on the failure time and require both to
    # level well.
    ratio = sequential.first_failure_years / randomized.first_failure_years
    assert 0.85 < ratio < 1.18, ratio
    assert sequential.erase_distribution.deviation < 300
    assert randomized.erase_distribution.deviation < 300
