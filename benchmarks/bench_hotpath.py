"""Hot-path microbenchmarks and fixed-seed golden replay check.

Two jobs, both about the wear-accounting hot path (word-level
``BitArray``, incremental ``WearAccumulator``, batched page spans):

* **Microbenchmarks** — time the rewritten operations against the
  pre-rewrite reference implementations (embedded below, so before and
  after are measured in one process on one machine) and an end-to-end
  replay.  Results merge into ``BENCH_PR.json`` under ``"hotpath"``.
* **Golden replay check** — replay a tiny fixed-seed trace and hash the
  full ``SimResult.as_dict()`` (plus the sampled timeline and heatmaps).
  ``--check-golden`` fails when the hash drifts from the committed
  ``benchmarks/golden_hotpath.json``; the CI bench-smoke job runs it so
  any change to the accounting hot path that alters replayed results is
  caught at review time, not in a downstream experiment.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py                # bench + BENCH_PR.json
    PYTHONPATH=src python benchmarks/bench_hotpath.py --check-golden
    PYTHONPATH=src python benchmarks/bench_hotpath.py --update-golden
"""

from __future__ import annotations

import argparse
import hashlib
import json
import random
import sys
import time
from pathlib import Path

from repro.core.config import SWLConfig
from repro.sim.engine import Simulator, StopCondition
from repro.sim.experiment import (
    ExperimentSpec,
    make_workload,
    scaled_mlc2_geometry,
    workload_params_for,
)
from repro.sim.metrics import EraseDistribution
from repro.traces.extend import SegmentResampler
from repro.util.bitarray import BitArray
from repro.util.rng import make_rng, spawn_rng

GOLDEN_PATH = Path(__file__).resolve().parent / "golden_hotpath.json"
BENCH_PR_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR.json"

#: Golden replay knobs: tiny geometry, ~seconds of wall clock.
GOLDEN_BLOCKS = 24
GOLDEN_SCALE = 200
GOLDEN_HORIZON = 0.05 * 86_400.0
GOLDEN_SEED = 7

#: Microbench sizing: a 64Ki-bit array is the BET of a ~4 GB device at
#: k = 0 — the size the ISSUE's 0.33 ms/popcount figure was measured on.
BET_BITS = 64 * 1024
SAMPLE_BLOCKS = 64 * 1024


# ----------------------------------------------------------------------
# Pre-rewrite reference implementations (the "before" side)
# ----------------------------------------------------------------------
_POPCOUNT = bytes(bin(value).count("1") for value in range(256))


class LegacyBitArray:
    """The historical ``bytearray`` bit array: per-byte popcount table,
    per-bit Python loop in ``next_zero``.  Byte layout identical to the
    word-level implementation (bit ``i`` -> byte ``i >> 3``, position
    ``i & 7``), so both sides operate on the same data."""

    def __init__(self, size: int) -> None:
        self.size = size
        self._bytes = bytearray((size + 7) // 8)

    @classmethod
    def from_bits(cls, bits: BitArray) -> "LegacyBitArray":
        legacy = cls(len(bits))
        legacy._bytes = bytearray(bits.to_bytes())
        return legacy

    def popcount(self) -> int:
        table = _POPCOUNT
        return sum(table[byte] for byte in self._bytes)

    def next_zero(self, start: int) -> int | None:
        data = self._bytes
        for offset in range(self.size):
            index = (start + offset) % self.size
            if not data[index >> 3] & (1 << (index & 7)):
                return index
        return None


def legacy_distribution(counts: list[int]) -> EraseDistribution:
    """The pre-rewrite ``_take_sample`` cost: a full O(num_blocks) scan
    per wear sample (float-loop deviation as the original had)."""
    import math

    total = sum(counts)
    average = total / len(counts)
    variance = sum((count - average) ** 2 for count in counts) / len(counts)
    return EraseDistribution(
        average=average,
        deviation=math.sqrt(variance),
        maximum=max(counts),
        minimum=min(counts),
        total=total,
        blocks=len(counts),
    )


def _best_per_call(fn, *, number: int, repeats: int = 5) -> float:
    """Seconds per call: best of ``repeats`` timed batches of ``number``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(number):
            fn()
        best = min(best, (time.perf_counter() - start) / number)
    return best


# ----------------------------------------------------------------------
# Microbenchmarks
# ----------------------------------------------------------------------
def bench_popcount() -> dict[str, object]:
    rng = random.Random(11)
    bits = BitArray(BET_BITS)
    for index in range(BET_BITS):
        if rng.random() < 0.5:
            bits.set(index)
    legacy = LegacyBitArray.from_bits(bits)
    assert bits.popcount() == legacy.popcount()
    before = _best_per_call(legacy.popcount, number=20)
    after = _best_per_call(bits.popcount, number=2000)
    return {
        "bits": BET_BITS,
        "before_us": round(before * 1e6, 3),
        "after_us": round(after * 1e6, 3),
        "speedup": round(before / after, 1),
    }


def bench_next_zero() -> dict[str, object]:
    # Worst realistic shape: a long run of set flags before the next
    # zero (late in a resetting interval, most sets already handled).
    bits = BitArray(BET_BITS)
    bits.fill()
    bits.clear(BET_BITS - 1)
    legacy = LegacyBitArray.from_bits(bits)
    assert bits.next_zero(0) == legacy.next_zero(0) == BET_BITS - 1
    before = _best_per_call(lambda: legacy.next_zero(0), number=5)
    after = _best_per_call(lambda: bits.next_zero(0), number=2000)
    return {
        "bits": BET_BITS,
        "scan_length": BET_BITS - 1,
        "before_us": round(before * 1e6, 3),
        "after_us": round(after * 1e6, 3),
        "speedup": round(before / after, 1),
    }


def bench_take_sample() -> dict[str, object]:
    from repro.sim.metrics import WearAccumulator

    rng = random.Random(13)
    counts = [0] * SAMPLE_BLOCKS
    wear = WearAccumulator(SAMPLE_BLOCKS)
    for _ in range(4 * SAMPLE_BLOCKS):
        block = rng.randrange(SAMPLE_BLOCKS)
        wear.record_erase(block, counts[block])
        counts[block] += 1
    reference = EraseDistribution.from_counts(counts)
    assert wear.distribution() == reference
    before = _best_per_call(lambda: legacy_distribution(counts), number=10)
    after = _best_per_call(wear.distribution, number=2000)
    return {
        "blocks": SAMPLE_BLOCKS,
        "before_us": round(before * 1e6, 3),
        "after_us": round(after * 1e6, 3),
        "speedup": round(before / after, 1),
    }


def bench_replay() -> dict[str, object]:
    """End-to-end req/s on the golden configuration (sampling enabled, so
    the run exercises the batched page spans and the O(1) sampling)."""
    result, elapsed = _golden_replay("ftl")
    return {
        "requests": result.requests,
        "wall_s": round(elapsed, 3),
        "requests_per_s": round(result.requests / elapsed, 1),
    }


# ----------------------------------------------------------------------
# Golden replay
# ----------------------------------------------------------------------
def _golden_replay(driver: str, swl=None):
    geometry = scaled_mlc2_geometry(GOLDEN_BLOCKS, scale=GOLDEN_SCALE)
    if swl is None:
        swl = SWLConfig(threshold=100, k=0)
    spec = ExperimentSpec(driver, geometry, swl, seed=GOLDEN_SEED)
    params = workload_params_for(
        spec, duration=GOLDEN_HORIZON, seed=GOLDEN_SEED + 1
    )
    workload = make_workload(params)
    simulator = Simulator(
        spec.build(),
        skip_reads=True,
        sample_interval=GOLDEN_HORIZON / 8,
        heatmap_interval=GOLDEN_HORIZON / 4,
        heatmap_bins=8,
    )
    start = time.perf_counter()
    for request in workload.prefill_requests():
        simulator.apply(request)
    rng = spawn_rng(make_rng(spec.seed), "resampler")
    endless = SegmentResampler(workload.requests(), rng=rng)
    result = simulator.run(
        endless.iter_requests(),
        StopCondition(max_time=GOLDEN_HORIZON, max_requests=10_000_000),
        label=spec.label(),
    )
    return result, time.perf_counter() - start


def golden_digest(swl=None) -> dict[str, object]:
    """Replay both drivers and hash everything the engine reports.

    ``swl`` substitutes the leveler configuration (default: the classic
    ``SWLConfig``); the scale gate passes ``LevelerSpec(kind="swl")`` to
    prove the registry path replays the very same digest.
    """
    payload: dict[str, object] = {}
    for driver in ("ftl", "nftl"):
        result, _ = _golden_replay(driver, swl=swl)
        payload[driver] = {
            "as_dict": result.as_dict(),
            "timeline": [
                [s.time, s.average, s.deviation, s.maximum, s.total_erases]
                for s in result.timeline
            ],
            "heatmaps": [h.as_dict() for h in result.heatmaps],
        }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return {
        "schema": 1,
        "config": {
            "blocks": GOLDEN_BLOCKS,
            "scale": GOLDEN_SCALE,
            "horizon_s": GOLDEN_HORIZON,
            "seed": GOLDEN_SEED,
        },
        "result_sha256": hashlib.sha256(canonical.encode()).hexdigest(),
    }


def check_golden() -> int:
    if not GOLDEN_PATH.exists():
        print(f"no golden at {GOLDEN_PATH}; run --update-golden first")
        return 2
    committed = json.loads(GOLDEN_PATH.read_text())
    current = golden_digest()
    if current["config"] != committed.get("config"):
        print("golden config mismatch; regenerate with --update-golden")
        print(f"  committed: {committed.get('config')}")
        print(f"  current:   {current['config']}")
        return 2
    if current["result_sha256"] != committed.get("result_sha256"):
        print("FAIL: replayed results drifted from the committed golden")
        print(f"  committed: {committed.get('result_sha256')}")
        print(f"  current:   {current['result_sha256']}")
        print(
            "If the drift is intentional (a documented behaviour change), "
            "refresh with --update-golden and explain it in the PR."
        )
        return 1
    print(f"golden OK ({current['result_sha256'][:16]}…)")
    return 0


def update_golden() -> int:
    digest = golden_digest()
    GOLDEN_PATH.write_text(json.dumps(digest, indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH} ({digest['result_sha256'][:16]}…)")
    return 0


# ----------------------------------------------------------------------
def run_benches() -> int:
    point = {
        "generated_unix": int(time.time()),
        "popcount": bench_popcount(),
        "next_zero": bench_next_zero(),
        "take_sample": bench_take_sample(),
        "replay": bench_replay(),
    }
    if BENCH_PR_PATH.exists():
        trajectory = json.loads(BENCH_PR_PATH.read_text())
    else:
        trajectory = {"schema": 1}
    trajectory["hotpath"] = point
    BENCH_PR_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")
    for name in ("popcount", "next_zero", "take_sample"):
        bench = point[name]
        print(
            f"  {name}: {bench['before_us']} us -> {bench['after_us']} us "
            f"({bench['speedup']}x)"
        )
    print(f"  replay: {point['replay']['requests_per_s']} req/s")
    print(f"merged hotpath section into {BENCH_PR_PATH}")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--check-golden", action="store_true",
        help="verify the fixed-seed replay hash against the committed golden",
    )
    group.add_argument(
        "--update-golden", action="store_true",
        help="regenerate benchmarks/golden_hotpath.json",
    )
    args = parser.parse_args(argv[1:])
    if args.check_golden:
        return check_golden()
    if args.update_golden:
        return update_golden()
    return run_benches()


if __name__ == "__main__":
    sys.exit(main(sys.argv))
