"""Publish the policy-arena leaderboard into ``BENCH_PR.json``.

Runs the full tournament (:func:`repro.arena.run_arena`) — every roster
mechanism × the shared workload shapes, plus the service soak and the
fault campaign — at the same quick-mode knobs as ``perf_trajectory.py``
(48 blocks, endurance 100, one simulated day, seed 7), then merges the
result under the ``"arena"`` key and writes the markdown leaderboard to
``benchmarks/results/arena.md``.

Usage::

    PYTHONPATH=src python benchmarks/bench_arena.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.arena import arena_report, run_arena
from repro.arena.report import arena_console_table
from repro.sim.experiment import scaled_mlc2_geometry

BENCH_PR_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR.json"
REPORT_PATH = Path(__file__).resolve().parent / "results" / "arena.md"

#: Same quick-mode family as ``perf_trajectory.py``: every BENCH_PR
#: section compares like with like.
BLOCKS = 48
SCALE = 100
HORIZON = 1.0 * 86_400.0
SEED = 7
RATE = 4.0


def main(argv: list[str]) -> int:
    start = time.perf_counter()
    geometry = scaled_mlc2_geometry(BLOCKS, scale=SCALE)
    result = run_arena(
        geometry,
        "ftl",
        horizon=HORIZON,
        rate=RATE,
        seed=SEED,
    )
    elapsed = time.perf_counter() - start

    point = {
        "generated_unix": int(time.time()),
        "config": {
            "blocks": BLOCKS,
            "scale": SCALE,
            "horizon_s": HORIZON,
            "seed": SEED,
            "rate": RATE,
        },
        "wall_clock_s": round(elapsed, 2),
        **result.as_dict(),
    }
    if BENCH_PR_PATH.exists():
        trajectory = json.loads(BENCH_PR_PATH.read_text())
    else:
        trajectory = {"schema": 1}
    trajectory["arena"] = point
    BENCH_PR_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")

    REPORT_PATH.parent.mkdir(parents=True, exist_ok=True)
    REPORT_PATH.write_text(arena_report(result))

    print(arena_console_table(result))
    print(f"\nmerged arena section into {BENCH_PR_PATH}")
    print(f"markdown leaderboard written to {REPORT_PATH}")
    print(f"tournament wall clock: {elapsed:.1f}s")
    return 0 if all(entry.faults_ok for entry in result.leaderboard) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
