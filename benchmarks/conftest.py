"""Shared setup for the benchmark harness.

Every trace-driven bench replays the same synthetic mobile-PC base trace
(Section 5.1 protocol) against storage stacks that differ only in driver
and SW Leveler configuration, exactly like the paper's sweeps.  Results
are cached per (protocol, driver, k, T) for the whole pytest session so
that Table 4 and Figures 6-7 — which the paper derives from the same
fixed-horizon runs — share one matrix instead of recomputing it.

Environment knobs
-----------------
``REPRO_BENCH_QUICK=1``
    Shrink the sweep to k in {0, 3} and T in {100, 1000} for fast
    iteration.  The full paper sweep (k in 0..3, T in {100, 400, 700,
    1000}) is the default and takes ~20-30 minutes.
``REPRO_BENCH_BLOCKS`` / ``REPRO_BENCH_SCALE``
    Override the scaled chip size (default 64 blocks) and the endurance
    scale factor (default 5: endurance 2,000).  Thresholds stay at the
    paper's values — scaling T would distort the race between natural
    flag setting and forced recycles that governs the k > 0 modes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.core.config import SWLConfig
from repro.sim.engine import SimResult
from repro.sim.experiment import (
    ExperimentSpec,
    make_workload,
    run_fixed_horizon,
    run_until_first_failure,
    scaled_mlc2_geometry,
    workload_params_for,
)
from repro.traces.generator import DAY
from repro.traces.model import Request

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
BLOCKS = int(os.environ.get("REPRO_BENCH_BLOCKS", "64"))
SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "5"))

#: Paper sweep (Figures 5-7): k values and unevenness thresholds.
K_VALUES = (0, 3) if QUICK else (0, 1, 2, 3)
THRESHOLDS = (100, 1000) if QUICK else (100, 400, 700, 1000)

#: Fixed horizon of the Table 4 / Figures 6-7 runs, in simulated seconds.
#: The paper runs 10 simulated years on a 10,000-cycle chip; with the
#: endurance scaled by SCALE the equivalent horizon shrinks likewise
#: (some blocks wear out within it, exactly as in the paper's runs).
HORIZON = 4 * DAY

SEED = 1
BASE_TRACE_DAYS = 2.0
WORKLOAD_SEED = 42

#: Where regenerated tables/figures are persisted (pytest captures stdout,
#: so each bench also writes its exhibit here).
RESULTS_DIR = Path(__file__).parent / "results"


def report(name: str, text: str) -> None:
    """Print an exhibit and persist it to ``benchmarks/results/<name>.txt``."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def pytest_sessionfinish(session, exitstatus):
    """Write an index of every regenerated exhibit after a bench run."""
    if not RESULTS_DIR.is_dir():
        return
    exhibits = sorted(p for p in RESULTS_DIR.glob("*.txt"))
    if not exhibits:
        return
    lines = [
        "# Regenerated exhibits",
        "",
        f"Configuration: {BLOCKS} blocks, endurance {10_000 // SCALE}, "
        f"{'quick' if QUICK else 'full'} sweep "
        f"(k in {list(K_VALUES)}, T in {list(THRESHOLDS)}).",
        "",
    ]
    for path in exhibits:
        title = path.read_text().splitlines()[0]
        lines.append(f"- `{path.name}` — {title}")
    lines.append("")
    (RESULTS_DIR / "INDEX.md").write_text("\n".join(lines))


@dataclass
class BenchSetup:
    """Everything a trace-driven bench needs, built once per session."""

    geometry: object
    base_trace: list[Request]
    warmup: list[Request]

    def spec(self, driver: str, combo: tuple[int, int] | None) -> ExperimentSpec:
        """Spec for a (driver, (k, T)) point; ``None`` = baseline."""
        swl = None
        if combo is not None:
            k, paper_t = combo
            swl = SWLConfig(threshold=paper_t, k=k)
        return ExperimentSpec(driver, self.geometry, swl, seed=SEED)

    @staticmethod
    def swl_label(combo: tuple[int, int]) -> str:
        """Paper-style label, e.g. ``k=0,T=100``."""
        k, paper_t = combo
        return f"k={k},T={paper_t}"


class ResultMatrix:
    """Session-wide memo of simulation results.

    Keys are ``(protocol, driver, combo)`` where protocol is
    ``"first-failure"`` or ``"horizon"`` and combo is ``None`` (baseline)
    or ``(k, paper_T)``.
    """

    def __init__(self, setup: BenchSetup) -> None:
        self.setup = setup
        self._cache: dict[tuple, SimResult] = {}

    def first_failure(self, driver: str, combo: tuple[int, int] | None) -> SimResult:
        return self._get("first-failure", driver, combo)

    def horizon(self, driver: str, combo: tuple[int, int] | None) -> SimResult:
        return self._get("horizon", driver, combo)

    def _get(self, protocol: str, driver: str, combo) -> SimResult:
        key = (protocol, driver, combo)
        if key not in self._cache:
            spec = self.setup.spec(driver, combo)
            if protocol == "first-failure":
                result = run_until_first_failure(
                    spec, self.setup.base_trace, warmup=self.setup.warmup
                )
            else:
                result = run_fixed_horizon(
                    spec, self.setup.base_trace, HORIZON, warmup=self.setup.warmup
                )
            self._cache[key] = result
        return self._cache[key]


@pytest.fixture(scope="session")
def bench_setup() -> BenchSetup:
    geometry = scaled_mlc2_geometry(BLOCKS, scale=SCALE)
    probe = ExperimentSpec("ftl", geometry, seed=SEED)
    params = workload_params_for(
        probe, duration=BASE_TRACE_DAYS * DAY, seed=WORKLOAD_SEED
    )
    workload = make_workload(params)
    return BenchSetup(
        geometry=geometry,
        base_trace=workload.requests(),
        warmup=workload.prefill_requests(),
    )


@pytest.fixture(scope="session")
def matrix(bench_setup: BenchSetup) -> ResultMatrix:
    return ResultMatrix(bench_setup)
