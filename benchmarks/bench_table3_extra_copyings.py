"""Regenerates paper Table 3: worst-case increased ratio of live-page
copyings.

Section 4.3 derives the extra copy cost of static wear leveling in the
Figure 4 worst case as C*N / ((T*(H+C) - C) * L), with N = 128 pages per
block on the 1 GB MLC x2 chip and L the average live pages copied per
regular erase.  The paper's printed cells wobble in the last digit
relative to its own formula; the bench asserts the formula values and
checks the paper cells within that wobble.
"""

from __future__ import annotations

import pytest

from repro.analysis.overhead import TABLE3_PAGES_PER_BLOCK, table3
from benchmarks.conftest import report
from repro.util.tables import format_table

#: Paper-printed percentages, in TABLE3_CONFIGS order.
PAPER_RATIOS = (7.572, 4.002, 3.786, 2.001, 0.757, 0.400, 0.379, 0.200)


def test_table3_extra_copyings(benchmark):
    rows = benchmark(table3)
    report("table3", format_table(
        ["H", "C", "H:C", "T", "L", "N/(T*L)", "Increased Ratio (%)"],
        rows,
        title="Table 3: increased ratio of live-page copyings (1GB MLC x2)",
    ))
    assert TABLE3_PAGES_PER_BLOCK == 128
    for row, expected in zip(rows, PAPER_RATIOS):
        measured = float(str(row[6]).rstrip("%"))
        assert measured == pytest.approx(expected, abs=0.02)


def test_table3_scaling_in_n_over_tl(benchmark):
    """Section 4.3: 'The increased ratio of live-page copyings is
    sensitive to N/(T*L)' — the ratio tracks that factor linearly."""

    def proportionality():
        slopes: dict[tuple, list[float]] = {}
        for row in table3():
            key = (row[0], row[1])  # same (H, C) group
            factor, ratio = float(row[5]), float(str(row[6]).rstrip("%"))
            slopes.setdefault(key, []).append(ratio / factor)
        return slopes

    slopes = benchmark(proportionality)
    for key, values in slopes.items():
        print(f"\nH,C={key}: ratio / (N/(T*L)) = "
              f"{', '.join(f'{value:.1f}' for value in values)}")
        # Within one (H, C) scenario the ratio tracks N/(T*L) linearly.
        assert max(values) / min(values) < 1.02
