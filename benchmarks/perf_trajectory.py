"""Per-PR performance trajectory point: ``make bench-quick`` artifact.

Measures five things (a few minutes; the service soak dominates) and
writes them to
``BENCH_PR.json`` at the repository root, so successive PRs leave a
comparable breadcrumb trail:

* **Replay throughput** — requests/second through the simulation engine
  for the classic single-channel stack and a 4-channel page-interleaved
  array, same workload.  Wall-clock points are best-of-``REPEATS``: the
  shortest of a few alternating runs, which rejects scheduler noise on
  shared runners without averaging in outliers;
* **Table-2 extra-erase deltas** — the measured extra block erases of
  SWL (T = 100 and T = 1000) over the no-SWL baseline, next to the
  paper's analytic worst-case ratios for the matching Table 2 rows (the
  measured average-case must sit far below the worst case);
* **run_matrix parallelism** — wall-clock of a 4-spec sweep serial vs
  ``workers=4`` plus a result-equality check.  Speedup depends on the
  host's core count, so the point records ``cpu_count`` and a
  ``speedup_meaningful`` flag: on a runner with fewer cores than
  workers the process pool cannot win, and the speedup target is
  annotated as not applicable rather than reported as a regression;
* **telemetry overhead** — replay req/s with telemetry off vs on
  (metrics collector attached, no file exporters), guarding the
  :mod:`repro.obs` off-path contract: the *off* point must track the
  plain throughput numbers PR over PR;
* **service latency** — a million-request open-loop soak through the
  service engine (DESIGN.md §5g) for SWL-off and SWL-on at the paper's
  T thresholds, recording overall and per-channel p50/p95/p99 so the
  tail interference of static wear leveling is tracked PR over PR;
* **endurance projections** — TBW and days-at-1-DWPD under the
  hotspot workload (Zipf θ = 0.99) for SWL-on (T = 100) vs SWL-off
  (DESIGN.md §5h), plus replay req/s for every workload shape, so the
  lifetime gain of static wear leveling and the generator overhead are
  both tracked PR over PR.

Usage::

    PYTHONPATH=src python benchmarks/perf_trajectory.py [output.json]
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

from repro.analysis.overhead import TABLE2_CONFIGS
from repro.core.config import SWLConfig
from repro.endurance import endurance_cells, run_endurance_matrix
from repro.obs.telemetry import Telemetry
from repro.service.arrival import open_loop_rate
from repro.sim.experiment import (
    ExperimentSpec,
    logical_sectors_of,
    make_workload,
    run_fixed_horizon,
    run_matrix,
    run_service_soak,
    scaled_mlc2_geometry,
    workload_params_for,
)
from repro.workloads import SHAPE_NAMES, ShapeParams, make_shape

#: Quick-mode knobs: small chip, compressed endurance, short horizon.
BLOCKS = 48
SCALE = 100
HORIZON = 1.0 * 86_400.0
SEED = 7

#: Timed points take the best (shortest) of this many runs.  The replay
#: is deterministic, so run-to-run wall-clock differences are host noise;
#: the minimum is the least-contended observation of the same work.
#: Five alternating pairs, because the single- vs four-channel gap this
#: point tracks is smaller than the round-to-round noise on a shared
#: runner and the minimum only stabilises with a few extra samples.
REPEATS = 5

#: The telemetry on/off comparison is the headline overhead figure and
#: the two sides differ by well under the host's noise floor, so it gets
#: extra alternating pairs.
TELEMETRY_REPEATS = 5

#: Service-latency soak: a million requests per configuration, arriving
#: from a 2,000-client open-loop Poisson population (Palm–Khintchine:
#: rate = clients / think_time).  Deterministic, so one run per cell.
SERVICE_SOAK_REQUESTS = 1_000_000
SERVICE_CLIENTS = 2_000
SERVICE_THINK_TIME = 5.0
SERVICE_QUEUE_DEPTH = 32
SERVICE_CHANNELS = 4

#: Endurance point: hotspot skew for the SWL-on/off TBW comparison, and
#: the generated-workload arrival rate (matching the mobile-PC trace's
#: ~4 req/s so req/s points are comparable across sections).
ENDURE_THETA = 0.99
ENDURE_RATE = 4.0


def _git_revision() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except OSError:
        return None
    return out.stdout.strip() or None


def _shared_trace(spec: ExperimentSpec):
    params = workload_params_for(spec, duration=HORIZON, seed=SEED + 1)
    workload = make_workload(params)
    return workload.requests(), workload.prefill_requests()


def _timed_run(spec: ExperimentSpec, trace, warmup, telemetry=None):
    """One replay; returns ``(result, wall_seconds)``."""
    start = time.perf_counter()
    result = run_fixed_horizon(spec, trace, HORIZON, warmup=warmup,
                               telemetry=telemetry)
    return result, time.perf_counter() - start


def measure_throughput() -> dict[str, object]:
    """Requests/second: single stack vs a 4-channel array, same trace."""
    geometry = scaled_mlc2_geometry(BLOCKS, scale=SCALE)
    single = ExperimentSpec("ftl", geometry, SWLConfig(threshold=100, k=0),
                            seed=SEED)
    trace, warmup = _shared_trace(single)
    configs = (
        ("single_channel", single),
        ("four_channel_global", ExperimentSpec(
            "ftl", geometry, SWLConfig(threshold=100, k=0), seed=SEED,
            channels=4, striping="page", swl_scope="global",
        )),
    )
    # Alternate the configurations so slow drift in host load lands on
    # both sides of the single-vs-multi-channel comparison — and flip
    # which one leads on every pair: host slowdown is typically
    # monotone within the measurement window, so a fixed leader would
    # systematically get the less-contended slot.
    walls: dict[str, list[float]] = {label: [] for label, _ in configs}
    results = {}
    for repeat in range(REPEATS):
        ordered = configs if repeat % 2 == 0 else tuple(reversed(configs))
        for label, spec in ordered:
            result, elapsed = _timed_run(spec, trace, warmup)
            results[label] = result
            walls[label].append(elapsed)
    points = {}
    for label, _ in configs:
        best = min(walls[label])
        result = results[label]
        points[label] = {
            "label": result.label,
            "requests": result.requests,
            "wall_s": round(best, 3),
            "requests_per_s": round(result.requests / best, 1),
            "repeats": REPEATS,
        }
    return points


def measure_table2_deltas() -> list[dict[str, object]]:
    """Measured SWL extra-erase ratios vs the paper's Table 2 worst case."""
    geometry = scaled_mlc2_geometry(BLOCKS, scale=SCALE)
    baseline_spec = ExperimentSpec("ftl", geometry, None, seed=SEED)
    trace, warmup = _shared_trace(baseline_spec)
    baseline = run_fixed_horizon(baseline_spec, trace, HORIZON, warmup=warmup)
    rows: list[dict[str, object]] = []
    for threshold in (100.0, 1000.0):
        spec = ExperimentSpec(
            "ftl", geometry, SWLConfig(threshold=threshold, k=0), seed=SEED
        )
        result = run_fixed_horizon(spec, trace, HORIZON, warmup=warmup)
        measured = (
            (result.total_erases - baseline.total_erases)
            / baseline.total_erases
        )
        worst_cases = {
            f"H{config.hot_blocks}_C{config.cold_blocks}":
                round(config.extra_erase_ratio(), 6)
            for config in TABLE2_CONFIGS
            if config.threshold == threshold
        }
        rows.append({
            "threshold": threshold,
            "baseline_erases": baseline.total_erases,
            "swl_erases": result.total_erases,
            "measured_extra_erase_ratio": round(measured, 6),
            "table2_worst_case_ratios": worst_cases,
            "within_worst_case": all(
                measured <= worst for worst in worst_cases.values()
            ),
        })
    return rows


def measure_run_matrix_parallel() -> dict[str, object]:
    """Serial vs workers=4 wall-clock over a 4-spec sweep; results equal."""
    geometry = scaled_mlc2_geometry(BLOCKS, scale=SCALE)
    specs = [
        ExperimentSpec("ftl", geometry, SWLConfig(threshold=t, k=k),
                       seed=SEED)
        for t in (100.0, 1000.0) for k in (0, 3)
    ]
    trace, warmup = _shared_trace(specs[0])
    start = time.perf_counter()
    serial = run_matrix(specs, trace, horizon=HORIZON, warmup=warmup)
    serial_s = time.perf_counter() - start
    workers = 4
    start = time.perf_counter()
    parallel = run_matrix(specs, trace, horizon=HORIZON, warmup=warmup,
                          workers=workers)
    parallel_s = time.perf_counter() - start
    identical = all(
        a.as_dict() == b.as_dict() for a, b in zip(serial, parallel)
    )
    cpus = os.cpu_count() or 1
    point: dict[str, object] = {
        "specs": len(specs),
        "workers": workers,
        "cpu_count": cpus,
        "serial_wall_s": round(serial_s, 3),
        "workers4_wall_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3),
        # A process pool can only beat serial replay when the host has
        # spare cores; below that the point documents pool overhead, not
        # a scheduling regression, and speedup targets do not apply.
        "speedup_meaningful": cpus >= 2,
        "results_identical": identical,
    }
    if cpus < workers:
        point["note"] = (
            f"host has {cpus} CPU(s) < workers={workers}; "
            "speedup target not applicable on this runner"
        )
    return point


def measure_telemetry_overhead() -> dict[str, object]:
    """Replay req/s telemetry-off vs telemetry-on, same trace and spec.

    The "on" configuration attaches the full event bus with the metrics
    collector and heatmap sampling — the in-memory telemetry a user gets
    from ``--telemetry`` — but no file exporters, so the number isolates
    instrumentation cost from disk throughput.
    """
    geometry = scaled_mlc2_geometry(BLOCKS, scale=SCALE)
    spec = ExperimentSpec("ftl", geometry, SWLConfig(threshold=100, k=0),
                          seed=SEED)
    trace, warmup = _shared_trace(spec)

    # Alternate off/on runs so slow drift in host load hits both sides,
    # then take the best of each: the overhead of deterministic work is
    # the gap between the least-contended observations.
    off_walls: list[float] = []
    on_walls: list[float] = []
    off = on = None
    telemetry = None
    for _ in range(TELEMETRY_REPEATS):
        off, off_s = _timed_run(spec, trace, warmup)
        off_walls.append(off_s)
        telemetry = Telemetry(heatmap_interval=HORIZON / 16)
        on, on_s = _timed_run(spec, trace, warmup, telemetry=telemetry)
        on_walls.append(on_s)
    assert off is not None and on is not None and telemetry is not None
    off_s = min(off_walls)
    on_s = min(on_walls)

    off_dict, on_dict = off.as_dict(), on.as_dict()
    on_dict.pop("heatmap_snapshots", None)
    return {
        "requests": off.requests,
        "off_wall_s": round(off_s, 3),
        "on_wall_s": round(on_s, 3),
        "off_requests_per_s": round(off.requests / off_s, 1),
        "on_requests_per_s": round(on.requests / on_s, 1),
        "overhead_pct": round(100.0 * (on_s - off_s) / off_s, 2),
        "repeats": TELEMETRY_REPEATS,
        "results_identical_minus_telemetry": off_dict == on_dict,
        "events_collected": int(
            telemetry.snapshot()
            .counters["repro_flash_erases_total"].value
        ),
        "heatmaps": len(on.heatmaps),
    }


def measure_service_latency() -> dict[str, object]:
    """Million-request service soaks: SWL-off vs SWL-on tail latency.

    Every cell sees the same request stream and the same Poisson arrival
    times (shared seed, dedicated "arrivals" RNG stream), so any latency
    difference between cells is cleaning/wear-leveling interference.
    """
    geometry = scaled_mlc2_geometry(BLOCKS, scale=SCALE)
    rate = open_loop_rate(SERVICE_CLIENTS, SERVICE_THINK_TIME)
    base = ExperimentSpec("nftl", geometry, None, seed=SEED,
                          channels=SERVICE_CHANNELS)
    trace, warmup = _shared_trace(base)
    cells = [
        ("swl_off", None),
        ("swl_T100", SWLConfig(threshold=100.0, k=0)),
        ("swl_T1000", SWLConfig(threshold=1000.0, k=0)),
    ]
    point: dict[str, object] = {
        "requests_per_cell": SERVICE_SOAK_REQUESTS,
        "clients": SERVICE_CLIENTS,
        "think_time_s": SERVICE_THINK_TIME,
        "arrival_rate_rps": rate,
        "queue_depth": SERVICE_QUEUE_DEPTH,
        "channels": SERVICE_CHANNELS,
    }
    p99s: dict[str, float] = {}
    for name, swl in cells:
        spec = ExperimentSpec("nftl", geometry, swl, seed=SEED,
                              channels=SERVICE_CHANNELS)
        start = time.perf_counter()
        result = run_service_soak(
            spec, trace,
            rate=rate,
            max_requests=SERVICE_SOAK_REQUESTS,
            queue_depth=SERVICE_QUEUE_DEPTH,
            warmup=warmup,
        )
        wall = time.perf_counter() - start
        p99s[name] = result.latency.p99
        point[name] = {
            "label": result.label,
            "requests": result.requests,
            "wall_s": round(wall, 3),
            "requests_per_wall_s": round(result.requests / wall, 1),
            "completion_time_s": round(result.completion_time, 3),
            "stalls": result.stalls,
            "total_erases": result.replay.total_erases,
            "latency": {
                key: round(value, 9) if isinstance(value, float) else value
                for key, value in result.latency.as_dict().items()
            },
            "channels": [
                {
                    key: round(value, 9) if isinstance(value, float) else value
                    for key, value in stats.as_dict().items()
                }
                for stats in result.channel_stats
            ],
        }
    off_p99 = p99s["swl_off"]
    point["tail_interference"] = {
        f"{name}_p99_over_swl_off": (
            round(p99s[name] / off_p99, 4) if off_p99 > 0 else None
        )
        for name, _ in cells[1:]
    }
    return point


def measure_endurance() -> dict[str, object]:
    """Endurance projections (DESIGN.md §5h): SWL lifetime gain + shapes.

    The headline pair is hotspot θ = 0.99 with and without SWL (T = 100)
    on the same generated trace — the TBW and days-at-1-DWPD gap is the
    lifetime static wear leveling buys under a pathological hot set.
    The pair runs on NFTL (like the service soak): block-level mapping
    leaves cold blocks genuinely static, which is the wear pattern the
    paper's mechanism targets — the page-mapping FTL's dynamic wear
    leveling already spreads a pure hotspot on its own, so an FTL pair
    would track noise around zero instead of the SWL effect.  The
    per-workload block replays every shape through the FTL+SWL hot path
    once (the stack whose req/s the throughput section tracks),
    recording generator+replay req/s per shape.
    """
    geometry = scaled_mlc2_geometry(BLOCKS, scale=SCALE)
    off_spec = ExperimentSpec("nftl", geometry, None, seed=SEED)
    on_spec = ExperimentSpec("nftl", geometry, SWLConfig(threshold=100, k=0),
                             seed=SEED)
    cells = endurance_cells(["hotspot"], [off_spec, on_spec])
    results = run_endurance_matrix(
        cells, horizon=HORIZON, rate=ENDURE_RATE, theta=ENDURE_THETA,
        seed=SEED,
    )
    assert all(result is not None for result in results)
    point: dict[str, object] = {
        "workload": "hotspot",
        "driver": "nftl",
        "theta": ENDURE_THETA,
        "rate_rps": ENDURE_RATE,
    }
    for name, result in zip(("swl_off", "swl_T100"), results):
        projection = result.projection
        point[name] = {
            "label": projection.label,
            "requests": result.replay.requests,
            "waf": round(projection.waf, 4),
            "erase_max": projection.erase_maximum,
            "wear_skew": round(projection.wear_skew, 4),
            "tbw_gb": round(projection.tbw_bytes / 1e9, 4),
            "days_at_one_dwpd": round(projection.days_at_one_dwpd, 2),
            "first_failure_days": round(
                projection.projected_first_failure_days, 2
            ),
        }
    off_tbw = results[0].projection.tbw_bytes
    on_tbw = results[1].projection.tbw_bytes
    point["swl_tbw_gain"] = round(on_tbw / off_tbw - 1.0, 4)

    ftl_spec = ExperimentSpec("ftl", geometry, SWLConfig(threshold=100, k=0),
                              seed=SEED)
    sectors = logical_sectors_of(ftl_spec)
    per_workload: dict[str, object] = {}
    for shape_name in SHAPE_NAMES:
        shape = make_shape(
            shape_name,
            ShapeParams(total_sectors=sectors, rate=ENDURE_RATE, seed=SEED),
            theta=ENDURE_THETA,
        )
        start = time.perf_counter()
        trace = shape.requests(HORIZON)
        result = run_fixed_horizon(ftl_spec, trace, HORIZON)
        wall = time.perf_counter() - start
        per_workload[shape_name] = {
            "requests": result.requests,
            "wall_s": round(wall, 3),
            "requests_per_s": round(result.requests / wall, 1),
        }
    point["per_workload_driver"] = "ftl"
    point["per_workload_throughput"] = per_workload
    return point


def main(argv: list[str]) -> int:
    output = Path(argv[1]) if len(argv) > 1 else (
        Path(__file__).resolve().parent.parent / "BENCH_PR.json"
    )
    point = {
        "schema": 1,
        "generated_unix": int(time.time()),
        "git_revision": _git_revision(),
        "python": platform.python_version(),
        "config": {"blocks": BLOCKS, "scale": SCALE,
                   "horizon_s": HORIZON, "seed": SEED},
        "throughput": measure_throughput(),
        "table2_extra_erases": measure_table2_deltas(),
        "run_matrix_parallel": measure_run_matrix_parallel(),
        "telemetry": measure_telemetry_overhead(),
        "service_latency": measure_service_latency(),
        "endurance": measure_endurance(),
    }
    output.write_text(json.dumps(point, indent=2) + "\n")
    print(f"wrote {output}")
    matrix = point["run_matrix_parallel"]
    print(f"  replay: "
          f"{point['throughput']['single_channel']['requests_per_s']} req/s "
          f"(1ch), "
          f"{point['throughput']['four_channel_global']['requests_per_s']} "
          f"req/s (4ch)")
    print(f"  run_matrix x{matrix['specs']}: {matrix['serial_wall_s']}s "
          f"serial, {matrix['workers4_wall_s']}s with workers=4 "
          f"(speedup {matrix['speedup']}x on {matrix['cpu_count']} CPUs, "
          f"identical={matrix['results_identical']})")
    if not matrix["speedup_meaningful"]:
        banner = "!" * 72
        print(
            f"{banner}\n"
            f"!! WARNING: parallel-sweep speedup point is NOT meaningful\n"
            f"!!   {matrix['note']}\n"
            f"!!   The recorded {matrix['speedup']}x documents process-pool\n"
            f"!!   overhead on this host, not scheduling performance.  Do\n"
            f"!!   not compare it against multi-core trajectory points or\n"
            f"!!   cite it as a parallelism result.\n"
            f"{banner}",
            file=sys.stderr,
        )
    telemetry = point["telemetry"]
    print(f"  telemetry: {telemetry['off_requests_per_s']} req/s off, "
          f"{telemetry['on_requests_per_s']} req/s on "
          f"({telemetry['overhead_pct']:+.2f}%, "
          f"identical={telemetry['results_identical_minus_telemetry']})")
    service = point["service_latency"]
    for cell in ("swl_off", "swl_T100", "swl_T1000"):
        latency = service[cell]["latency"]
        print(f"  service {cell}: p50 {latency['p50_s'] * 1e3:.3f}ms, "
              f"p95 {latency['p95_s'] * 1e3:.3f}ms, "
              f"p99 {latency['p99_s'] * 1e3:.3f}ms "
              f"({service[cell]['requests']} requests, "
              f"{service[cell]['wall_s']}s wall)")
    print(f"  service tail interference vs SWL-off: "
          f"{service['tail_interference']}")
    endurance = point["endurance"]
    for cell in ("swl_off", "swl_T100"):
        row = endurance[cell]
        print(f"  endurance {cell}: {row['tbw_gb']} GB TBW, "
              f"{row['days_at_one_dwpd']} days @ 1 DWPD, "
              f"WAF {row['waf']}, skew {row['wear_skew']}")
    print(f"  endurance SWL TBW gain (hotspot θ={endurance['theta']}): "
          f"{endurance['swl_tbw_gain'] * 100:+.1f}%")
    shapes = endurance["per_workload_throughput"]
    print("  workload replay req/s: " + ", ".join(
        f"{name} {stats['requests_per_s']}" for name, stats in shapes.items()
    ))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
