"""Ablation D: the paper's BET-based SW Leveler vs counter-based leveling.

The paper's pitch is "limited memory-space requirements and an efficient
implementation": one bit per 2^k blocks instead of the per-block erase
counters of prior designs (Ban's patent [10], TrueFFS [16]).  This bench
runs both mechanisms on the same workload and prints the trade:
controller RAM vs first failure time vs leveling quality vs overhead.

Expected outcome: comparable endurance from both, with the BET at a
fraction of the RAM — the paper's central engineering claim.
"""

from __future__ import annotations

from benchmarks.conftest import SEED, THRESHOLDS, BenchSetup, report
from repro.analysis.memory import bet_size_bytes
from repro.core.alternatives import DualPoolLeveler
from repro.core.config import SWLConfig
from repro.sim.engine import Simulator, StopCondition
from repro.sim.experiment import ExperimentSpec, run_until_first_failure
from repro.traces.extend import SegmentResampler
from repro.util.rng import make_rng, spawn_rng
from repro.util.tables import format_table


def _run_dual_pool(setup: BenchSetup):
    spec = ExperimentSpec("nftl", setup.geometry, None, seed=SEED)
    stack = spec.build()
    leveler = DualPoolLeveler(
        stack.flash.erase_counts, stack.layer,
        delta=setup.geometry.endurance // 20, check_period=64,
    )
    stack.layer.attach_leveler(leveler)
    simulator = Simulator(stack, skip_reads=True)
    for request in setup.warmup:
        simulator.apply(request)
    rng = spawn_rng(make_rng(SEED), "resampler")
    endless = SegmentResampler(setup.base_trace, rng=rng)
    stop = StopCondition(until_first_failure=True, max_requests=100_000_000)
    result = simulator.run(endless.iter_requests(), stop, label="NFTL+counters")
    return result, leveler


def test_ablation_mechanism_comparison(bench_setup, matrix, benchmark):
    def comparison():
        baseline = matrix.first_failure("nftl", None)
        bet_result = matrix.first_failure("nftl", (0, THRESHOLDS[0]))
        counter_result, counter_leveler = _run_dual_pool(bench_setup)
        return baseline, bet_result, counter_result, counter_leveler

    baseline, bet_result, counter_result, counter_leveler = benchmark.pedantic(
        comparison, rounds=1, iterations=1
    )
    num_blocks = bench_setup.geometry.num_blocks

    def row(label, ram, result):
        years = result.first_failure_years
        gain = 100.0 * (years / baseline.first_failure_years - 1.0)
        return [label, ram, round(years, 4), f"{gain:+.1f}%",
                round(result.erase_distribution.deviation, 1)]

    rows = [
        ["NFTL (baseline)", "-", round(baseline.first_failure_years, 4),
         "-", round(baseline.erase_distribution.deviation, 1)],
        row(f"BET SW Leveler (k=0, T={THRESHOLDS[0]})",
            f"{bet_size_bytes(num_blocks, 0)}B", bet_result),
        row("Counter-based (Ban-style)",
            f"{counter_leveler.ram_bytes}B", counter_result),
    ]
    report("ablation_mechanism", format_table(
        ["Mechanism", "Controller RAM", "First failure (y)",
         "vs baseline", "Erase dev."],
        rows,
        title="Ablation D: BET vs per-block counters (NFTL)",
    ))
    # Both mechanisms must deliver a large endurance win...
    assert bet_result.first_failure_years > baseline.first_failure_years * 1.3
    assert counter_result.first_failure_years > baseline.first_failure_years * 1.3
    # ...but the BET does it in a fraction of the RAM (the paper's claim).
    assert bet_size_bytes(num_blocks, 0) * 8 <= counter_leveler.ram_bytes