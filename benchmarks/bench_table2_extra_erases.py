"""Regenerates paper Table 2: worst-case increased ratio of block erases.

Section 4.2 derives the extra block erases caused by static wear leveling
in the worst case (Figure 4: H-1 hot blocks, C cold blocks, one free
block) as C / (T*(H+C) - C) for a 1 GB MLC x2 chip.
"""

from __future__ import annotations

import pytest

from repro.analysis.overhead import TABLE2_CONFIGS, table2
from benchmarks.conftest import report
from repro.util.tables import format_table

#: Paper-printed percentages, in TABLE2_CONFIGS order.
PAPER_RATIOS = (0.946, 0.503, 0.094, 0.050)


def test_table2_extra_erases(benchmark):
    rows = benchmark(table2)
    report("table2", format_table(
        ["H", "C", "H:C", "T", "Increased Ratio (%)"],
        rows,
        title="Table 2: increased ratio of block erases (1GB MLC x2)",
    ))
    for row, expected in zip(rows, PAPER_RATIOS):
        measured = float(str(row[4]).rstrip("%"))
        assert measured == pytest.approx(expected, abs=0.001)


def test_table2_sensitivity_to_threshold(benchmark):
    """Section 4.2: 'the increased overhead ratio ... is sensitive to the
    setting of T' — a 10x larger T cuts the ratio ~10x."""

    def sensitivity():
        small_t = TABLE2_CONFIGS[0].extra_erase_ratio()
        large_t = TABLE2_CONFIGS[2].extra_erase_ratio()
        return small_t / large_t

    ratio = benchmark(sensitivity)
    print(f"\nT=100 vs T=1000 overhead ratio: {ratio:.2f}x")
    assert 9.0 < ratio < 11.0
