"""Regenerates paper Figure 7: the increased ratio of live-page copyings
due to static wear leveling, for FTL and NFTL over the k x T sweep.

Expected shape (Section 5.3): NFTL's copy overhead stays small (folds
already copy whole blocks, so SWL's extra folds barely register), while
FTL's ratio is much larger "because somehow hot data were often written
in burst in the trace such that the average number of live-page copyings
was very small under FTL" — a small denominator.  The paper's Figure 7(a)
reaches ~300%; ours is in the same regime.
"""

from __future__ import annotations

from benchmarks.conftest import K_VALUES, THRESHOLDS, BenchSetup, report
from repro.sim.metrics import increased_ratio
from repro.util.tables import format_table


def _fig7_table(matrix, driver: str):
    baseline = matrix.horizon(driver, None)
    rows: list[list[object]] = [[driver.upper(), 100.0]]
    ratios = {}
    for paper_t in THRESHOLDS:
        for k in K_VALUES:
            result = matrix.horizon(driver, (k, paper_t))
            ratio = increased_ratio(
                result.live_page_copies, baseline.live_page_copies
            )
            ratios[(k, paper_t)] = ratio
            rows.append(
                [f"{driver.upper()}+SWL+{BenchSetup.swl_label((k, paper_t))}",
                 round(ratio, 2)]
            )
    return rows, ratios


def test_fig7a_ftl_extra_copyings(matrix, benchmark):
    rows, ratios = benchmark.pedantic(
        _fig7_table, args=(matrix, "ftl"), rounds=1, iterations=1
    )
    report("fig7a", format_table(
        ["Configuration", "Live-page copyings vs baseline (%)"],
        rows,
        title="Figure 7(a): increased ratio of live-page copyings, FTL",
    ))
    # FTL's baseline copies are tiny (bursty hot data), so the ratio is
    # large — far above the erase overhead.
    assert max(ratios.values()) > 110.0, ratios


def test_fig7b_nftl_extra_copyings(matrix, benchmark):
    rows, ratios = benchmark.pedantic(
        _fig7_table, args=(matrix, "nftl"), rounds=1, iterations=1
    )
    report("fig7b", format_table(
        ["Configuration", "Live-page copyings vs baseline (%)"],
        rows,
        title="Figure 7(b): increased ratio of live-page copyings, NFTL",
    ))
    assert all(ratio >= 97.0 for ratio in ratios.values()), ratios


def test_fig7_ftl_ratio_dwarfs_nftl_ratio(matrix, benchmark):
    """The paper's central Figure 7 contrast: FTL's copy overhead ratio is
    far larger than NFTL's at the same (k, T)."""

    def contrast():
        combo = (K_VALUES[0], THRESHOLDS[0])
        ftl_base = matrix.horizon("ftl", None)
        nftl_base = matrix.horizon("nftl", None)
        ftl = increased_ratio(
            matrix.horizon("ftl", combo).live_page_copies,
            ftl_base.live_page_copies,
        )
        nftl = increased_ratio(
            matrix.horizon("nftl", combo).live_page_copies,
            nftl_base.live_page_copies,
        )
        return ftl, nftl

    ftl, nftl = benchmark.pedantic(contrast, rounds=1, iterations=1)
    print(f"\nFTL copy ratio {ftl:.1f}% vs NFTL copy ratio {nftl:.1f}% "
          f"at k={K_VALUES[0]}, T={THRESHOLDS[0]}")
    assert ftl > nftl
