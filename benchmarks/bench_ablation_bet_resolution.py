"""Ablation B: the BET resolution trade-off (paper Section 3.2).

"The larger the value of k, the higher the chance in the overlooking of
blocks of cold data.  However, a large value for k could help in the
reducing of the required RAM space."  This bench quantifies both sides on
the same workload: controller RAM for the BET versus leveling quality
(erase-count deviation) and SWL activity, as k sweeps 0..3 at fixed T.
"""

from __future__ import annotations

from benchmarks.conftest import K_VALUES, THRESHOLDS, report
from repro.analysis.memory import bet_size_bytes
from repro.util.tables import format_table


def test_ablation_bet_resolution(matrix, bench_setup, benchmark):
    paper_t = THRESHOLDS[0]

    def sweep():
        return {k: matrix.horizon("ftl", (k, paper_t)) for k in K_VALUES}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    num_blocks = bench_setup.geometry.num_blocks
    rows = []
    for k, result in results.items():
        swl_erases = result.swl_stats.get("swl_erases", 0)
        rows.append(
            [f"k = {k}",
             f"{bet_size_bytes(num_blocks, k)}B",
             round(result.erase_distribution.deviation, 1),
             result.erase_distribution.maximum,
             swl_erases]
        )
    report("ablation_bet_resolution", format_table(
        ["BET mode", "BET RAM", "Erase dev.", "Max.", "SWL erases"],
        rows,
        title=f"Ablation B: BET resolution at T={paper_t} (FTL)",
    ))
    # RAM halves with each k step.
    for (k_small, k_large) in zip(K_VALUES, K_VALUES[1:]):
        assert bet_size_bytes(num_blocks, k_large) <= bet_size_bytes(
            num_blocks, k_small
        )
    # The trade-off of Section 3.2: the one-to-one mode levels best; the
    # coarsest mode overlooks the most cold data (deviation closest to
    # the baseline's).
    baseline = matrix.horizon("ftl", None)
    devs = {k: result.erase_distribution.deviation for k, result in results.items()}
    assert devs[K_VALUES[0]] < baseline.erase_distribution.deviation
    assert devs[K_VALUES[0]] <= devs[K_VALUES[-1]]
