"""Benchmark harness regenerating every table and figure of the paper.

One module per exhibit:

* ``bench_table1_bet_size`` — Table 1 (BET RAM, size-exact);
* ``bench_table2_extra_erases`` — Table 2 (worst-case extra erases);
* ``bench_table3_extra_copyings`` — Table 3 (worst-case extra copyings);
* ``bench_fig5_first_failure`` — Figure 5(a)/(b) (first failure time);
* ``bench_table4_erase_counts`` — Table 4 (erase-count distribution);
* ``bench_fig6_extra_erases`` — Figure 6(a)/(b) (erase overhead);
* ``bench_fig7_extra_copyings`` — Figure 7(a)/(b) (copy overhead);
* ``bench_ablation_selection`` — sequential vs random block-set pick;
* ``bench_ablation_bet_resolution`` — BET k trade-off (Section 3.2).

Run with ``pytest benchmarks/ --benchmark-only``; see ``conftest`` for
the REPRO_BENCH_* environment knobs.
"""
