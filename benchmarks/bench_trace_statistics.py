"""Validates the synthetic trace against the paper's published statistics.

Section 5.1 reports everything we know about the proprietary trace:
2,097,152 LBAs, ~36.62% of LBAs written, 1.82 write ops/s, 1.97 read
ops/s, hot data written in bursts.  This bench generates the substitute
trace at the benchmark address-space size and asserts each statistic,
printing the comparison — the evidence that the substitution in DESIGN.md
preserves the relevant workload properties.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import report
from repro.traces.generator import DAY, MobilePCWorkload, WorkloadParams
from repro.traces.stats import sequentiality, summarize
from repro.util.tables import format_table


def test_trace_statistics_match_paper(benchmark):
    params = WorkloadParams(
        total_sectors=262_144, duration=2 * DAY, seed=7
    )

    def build():
        workload = MobilePCWorkload(params)
        trace = workload.prefill_requests() + workload.requests()
        return workload, trace, summarize(trace, params.total_sectors)

    workload, trace, summary = benchmark.pedantic(build, rounds=1, iterations=1)
    burst = sequentiality(trace, window=16)
    rows = [
        ["written LBA fraction", "36.62%",
         f"{100 * summary.written_lba_fraction:.2f}%"],
        ["write ops per second", "1.82", f"{summary.write_rate:.2f}"],
        ["read ops per second", "1.97", f"{summary.read_rate:.2f}"],
        ["hot data written in bursts", "yes (qualitative)",
         f"stream sequentiality {burst:.2f}"],
        ["non-hot share of written data", "'several times' the hot share [7]",
         f"{workload.static_sectors() / max(1, workload.hot_sectors()):.1f}x"],
    ]
    report("trace_statistics", format_table(
        ["Trace property", "Paper (Section 5.1)", "Generated"],
        rows,
        title="Synthetic mobile-PC trace vs the paper's published statistics",
    ))
    assert summary.written_lba_fraction == pytest.approx(0.3662, abs=0.01)
    assert summary.write_rate == pytest.approx(1.82, rel=0.1)
    assert summary.read_rate == pytest.approx(1.97, rel=0.1)
    assert burst > 0.05  # bulk writes form sequential runs
    assert workload.static_sectors() > 2 * workload.hot_sectors()