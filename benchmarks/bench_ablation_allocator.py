"""Ablation C: free-block allocation policy vs the SW Leveler's benefit.

The paper's baselines already include dynamic wear leveling in the
Cleaner ("trying to recycle blocks with small erase counts", Section 1),
but leave the free-block *allocation* order unspecified.  This ablation
runs the same NFTL workload under the era's LIFO reuse (our default; it
leaves unused blocks buried, like the paper's baseline distributions) and
under min-wear allocation (a modern allocation-side dynamic WL).

Expected outcome: min-wear allocation narrows the baseline's wear skew on
its own, so the SW Leveler's first-failure gain shrinks — but stays
positive, because no allocation policy can touch blocks pinned under
static data.  This quantifies how much of the 2007 result survives in a
modern FTL.
"""

from __future__ import annotations

from benchmarks.conftest import SEED, THRESHOLDS, BenchSetup, report
from repro.core.config import SWLConfig
from repro.sim.experiment import ExperimentSpec, run_until_first_failure
from repro.sim.metrics import improvement_ratio
from repro.util.tables import format_table


def _run(setup: BenchSetup, policy: str, with_swl: bool):
    spec = ExperimentSpec(
        "nftl",
        setup.geometry,
        SWLConfig(threshold=THRESHOLDS[0], k=0) if with_swl else None,
        alloc_policy=policy,
        seed=SEED,
    )
    return run_until_first_failure(spec, setup.base_trace, warmup=setup.warmup)


def test_ablation_allocation_policy(bench_setup, benchmark):
    def ablation():
        results = {}
        for policy in ("lifo", "min-wear"):
            baseline = _run(bench_setup, policy, with_swl=False)
            leveled = _run(bench_setup, policy, with_swl=True)
            results[policy] = (baseline, leveled)
        return results

    results = benchmark.pedantic(ablation, rounds=1, iterations=1)
    rows = []
    gains = {}
    for policy, (baseline, leveled) in results.items():
        gain = improvement_ratio(
            leveled.first_failure_years, baseline.first_failure_years
        )
        gains[policy] = gain
        rows.append(
            [policy,
             round(baseline.first_failure_years, 4),
             round(leveled.first_failure_years, 4),
             f"{gain:+.1f}%"]
        )
    report("ablation_allocator", format_table(
        ["Allocation policy", "Baseline first failure (y)",
         "With SWL (y)", "SWL gain"],
        rows,
        title=f"Ablation C: allocation policy (NFTL, k=0, T={THRESHOLDS[0]})",
    ))
    # SWL helps under both policies, and the weaker (LIFO) baseline gains
    # more — allocation-side dynamic WL absorbs part of SWL's job.
    assert gains["lifo"] > 0.0
    assert gains["min-wear"] > -5.0
    assert gains["lifo"] >= gains["min-wear"]
