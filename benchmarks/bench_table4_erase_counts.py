"""Regenerates paper Table 4: average, standard deviation, and maximal
erase counts of blocks after a long fixed-horizon run.

The paper runs 10 simulated years and reports, for FTL and NFTL, the
baseline against SWL at (k, T) in {0, 3} x {100, 1000}.  Expected shape:
SWL slashes the deviation and the maximum while barely moving the
average, "unless T and k both had large values".
"""

from __future__ import annotations

from benchmarks.conftest import K_VALUES, THRESHOLDS, report
from repro.util.tables import format_table

#: The paper's Table 4 rows use this (k, T) subset.
TABLE4_COMBOS = [
    (K_VALUES[0], THRESHOLDS[0]),
    (K_VALUES[0], THRESHOLDS[-1]),
    (K_VALUES[-1], THRESHOLDS[0]),
    (K_VALUES[-1], THRESHOLDS[-1]),
]

#: Paper values for orientation (10-year run on the unscaled 1GB chip):
#: FTL 900/1118/2511 -> +SWL(k=0,T=100) 930/245/2132;
#: NFTL 9192/8112/20903 -> +SWL(k=0,T=100) 9234/609/11507.


def _table4_rows(matrix, driver: str):
    baseline = matrix.horizon(driver, None)
    rows = [[driver.upper(), *baseline.erase_distribution.row()]]
    for k, paper_t in TABLE4_COMBOS:
        result = matrix.horizon(driver, (k, paper_t))
        rows.append(
            [f"{driver.upper()} + SWL + k={k} + T={paper_t}",
             *result.erase_distribution.row()]
        )
    return rows, baseline


def _check_shape(rows) -> None:
    base_avg, base_dev, base_max = rows[0][1], rows[0][2], rows[0][3]
    tight_avg, tight_dev, tight_max = rows[1][1], rows[1][2], rows[1][3]
    # SWL at the tightest (k, T) collapses deviation and trims the max.
    assert tight_dev < base_dev, rows
    assert tight_max <= base_max, rows
    # The average is not destroyed (SWL adds bounded overhead).  The paper
    # shows averages within a few percent; scaled thresholds cost more.
    assert tight_avg <= base_avg * 1.6, rows
    # The loosest combination helps least — its deviation stays near the
    # baseline's, matching "unless T and k both had large values" (within
    # 10% run-to-run noise).
    swl_devs = [row[2] for row in rows[1:]]
    assert swl_devs[-1] >= 0.9 * max(swl_devs), rows
    assert swl_devs[-1] >= swl_devs[0], rows  # looser never beats tighter


def test_table4_ftl_erase_counts(matrix, benchmark):
    rows, _ = benchmark.pedantic(
        _table4_rows, args=(matrix, "ftl"), rounds=1, iterations=1
    )
    report("table4_ftl", format_table(
        ["Configuration", "Avg.", "Dev.", "Max."],
        rows,
        title="Table 4 (FTL rows): erase-count distribution",
    ))
    _check_shape(rows)


def test_table4_nftl_erase_counts(matrix, benchmark):
    rows, _ = benchmark.pedantic(
        _table4_rows, args=(matrix, "nftl"), rounds=1, iterations=1
    )
    report("table4_nftl", format_table(
        ["Configuration", "Avg.", "Dev.", "Max."],
        rows,
        title="Table 4 (NFTL rows): erase-count distribution",
    ))
    _check_shape(rows)


def test_table4_nftl_wears_faster_than_ftl(matrix, benchmark):
    """The paper's NFTL average erase count is ~10x FTL's on the same
    trace; our workload shows the same direction."""

    def averages():
        ftl = matrix.horizon("ftl", None).erase_distribution.average
        nftl = matrix.horizon("nftl", None).erase_distribution.average
        return nftl / ftl

    ratio = benchmark.pedantic(averages, rounds=1, iterations=1)
    print(f"\nNFTL / FTL average erase-count ratio: {ratio:.2f}x")
    assert ratio > 1.1
