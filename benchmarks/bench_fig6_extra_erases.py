"""Regenerates paper Figure 6: the increased ratio of block erases due to
static wear leveling, for FTL and NFTL over the k x T sweep.

The baseline plots at 100%.  Expected shape (Section 5.3): overhead
shrinks as T grows (SWL triggers less) and as k grows (coarser BET, lower
trigger rate).  Absolute percentages exceed the paper's (<3.5% FTL, <1%
NFTL) by roughly the endurance scale factor — see EXPERIMENTS.md.
"""

from __future__ import annotations

from benchmarks.conftest import K_VALUES, THRESHOLDS, BenchSetup, report
from repro.sim.metrics import increased_ratio
from repro.util.tables import format_table


def _fig6_table(matrix, driver: str):
    baseline = matrix.horizon(driver, None)
    rows: list[list[object]] = [[driver.upper(), 100.0]]
    ratios = {}
    for paper_t in THRESHOLDS:
        for k in K_VALUES:
            result = matrix.horizon(driver, (k, paper_t))
            ratio = increased_ratio(result.total_erases, baseline.total_erases)
            ratios[(k, paper_t)] = ratio
            rows.append(
                [f"{driver.upper()}+SWL+{BenchSetup.swl_label((k, paper_t))}",
                 round(ratio, 2)]
            )
    return rows, ratios


def _check_shape(ratios: dict) -> None:
    # SWL adds erases; it can never reduce them below the baseline by more
    # than noise.
    assert all(ratio >= 97.0 for ratio in ratios.values()), ratios
    # Larger T means less frequent leveling, hence less overhead (at k=0).
    assert ratios[(0, THRESHOLDS[-1])] <= ratios[(0, THRESHOLDS[0])] + 1.0, ratios


def test_fig6a_ftl_extra_erases(matrix, benchmark):
    rows, ratios = benchmark.pedantic(
        _fig6_table, args=(matrix, "ftl"), rounds=1, iterations=1
    )
    report("fig6a", format_table(
        ["Configuration", "Block erases vs baseline (%)"],
        rows,
        title="Figure 6(a): increased ratio of block erases, FTL",
    ))
    _check_shape(ratios)


def test_fig6b_nftl_extra_erases(matrix, benchmark):
    rows, ratios = benchmark.pedantic(
        _fig6_table, args=(matrix, "nftl"), rounds=1, iterations=1
    )
    report("fig6b", format_table(
        ["Configuration", "Block erases vs baseline (%)"],
        rows,
        title="Figure 6(b): increased ratio of block erases, NFTL",
    ))
    _check_shape(ratios)
