"""Empirical validation of the Section 4 worst-case model (Tables 2-3).

Constructs the exact scenario of paper Figure 4 — C blocks of cold data,
H-1 blocks of uniformly updated hot data, one free block's worth of
slack — runs it with the SW Leveler at k = 0, and compares the *measured*
extra block erases and live-page copyings directly attributable to
SWL-Procedure against the closed-form worst-case bounds
C/(T*(H+C) - C) and C*N/((T*(H+C) - C)*L).

The measured direct overhead must fall at or below the analytic worst
case (the bound is a worst case), and within a small factor of it (the
scenario is built to be near-worst).
"""

from __future__ import annotations

import random

from benchmarks.conftest import report
from repro.analysis.overhead import WorstCaseConfig
from repro.core.config import SWLConfig
from repro.flash.geometry import CellType, FlashGeometry
from repro.ftl.factory import build_stack
from repro.util.tables import format_table

#: Scenario: 16 blocks total, C=6 cold, hot working set of 3 blocks.
GEOMETRY = FlashGeometry(
    num_blocks=16, pages_per_block=32, page_size=512,
    endurance=10_000_000, cell_type=CellType.SLC, name="figure4",
)
COLD_BLOCKS = 6
HOT_BLOCKS = 3
WRITES = 120_000


def _run(threshold: float | None):
    stack = build_stack(
        GEOMETRY, "ftl",
        SWLConfig(threshold=threshold, k=0) if threshold else None,
        rng=random.Random(0),
    )
    layer = stack.layer
    ppb = GEOMETRY.pages_per_block
    for lpn in range(COLD_BLOCKS * ppb):          # the C cold blocks
        layer.write(lpn)
    hot = list(range(COLD_BLOCKS * ppb, (COLD_BLOCKS + HOT_BLOCKS) * ppb))
    rng = random.Random(1)
    for _ in range(WRITES):                       # uniform hot updates
        layer.write(rng.choice(hot))
    return stack


def test_worstcase_model_validation(benchmark):
    thresholds = (10.0, 50.0)

    def validate():
        baseline = _run(None)
        measurements = {}
        for threshold in thresholds:
            stack = _run(threshold)
            leveler = stack.leveler
            measurements[threshold] = (
                leveler.stats.swl_erases / baseline.flash.total_erases(),
                stack,
            )
        return baseline, measurements

    baseline, measurements = benchmark.pedantic(validate, rounds=1, iterations=1)
    rows = []
    checks = []
    for threshold, (direct_ratio, stack) in measurements.items():
        config = WorstCaseConfig(
            hot_blocks=HOT_BLOCKS + 1, cold_blocks=COLD_BLOCKS,
            threshold=threshold,
        )
        # The analytic interval assumes every block erase counts toward
        # T*(H+C); our scenario's churn set is the whole non-cold space,
        # so the bound applies with H+C = the chip's block count.
        bound_config = WorstCaseConfig(
            hot_blocks=GEOMETRY.num_blocks - COLD_BLOCKS,
            cold_blocks=COLD_BLOCKS,
            threshold=threshold,
        )
        bound = bound_config.extra_erase_ratio()
        rows.append(
            [f"T = {threshold:g}",
             f"{100 * bound:.2f}%",
             f"{100 * direct_ratio:.2f}%"]
        )
        checks.append((threshold, direct_ratio, bound))
    report("worstcase_validation", format_table(
        ["Scenario", "Analytic worst case (Table 2 formula)",
         "Measured direct SWL erases"],
        rows,
        title="Section 4 worst-case model vs simulation (Figure 4 scenario)",
    ))
    for threshold, direct_ratio, bound in checks:
        # Within 3x of the bound and not wildly below it either: the
        # formula describes this scenario's order of magnitude.
        assert direct_ratio < 3.0 * bound, (threshold, direct_ratio, bound)
        assert direct_ratio > bound / 10.0, (threshold, direct_ratio, bound)
    # And the ratio scales ~linearly in 1/T, as the formula says.
    small_t, large_t = thresholds
    ratio_small = measurements[small_t][0]
    ratio_large = measurements[large_t][0]
    scaling = ratio_small / max(ratio_large, 1e-12)
    assert 2.0 < scaling < 12.0, scaling