"""Regenerates paper Table 1: BET size for SLC flash memory.

"The size of the BET varies, depending on the size of a flash-memory
storage system and the value of k.  For example, the BET size is 512B for
a 4GB SLC flash memory with k = 3."  (Section 4.1)

This is a size-exact reproduction: the geometries are the real 128 MB to
4 GB large-block SLC parts, not scaled stand-ins.
"""

from __future__ import annotations

from repro.analysis.memory import mlc2_reduction, table1, table1_headers
from repro.flash.geometry import GIB
from benchmarks.conftest import report
from repro.util.tables import format_table

#: The paper's printed cells, row-major (k = 0..3 by capacity ascending).
PAPER_TABLE1 = [
    [128, 64, 32, 16],
    [256, 128, 64, 32],
    [512, 256, 128, 64],
    [1024, 512, 256, 128],
    [2048, 1024, 512, 256],
    [4096, 2048, 1024, 512],
]


def test_table1_bet_size(benchmark):
    rows = benchmark(table1)
    report("table1", format_table(table1_headers(), rows,
                                  title="Table 1: BET size for SLC flash memory"))
    # Every cell must match the paper exactly.
    for row_index, row in enumerate(rows):  # rows are per-k
        k = row_index
        for col_index, cell in enumerate(row[1:]):
            expected = PAPER_TABLE1[col_index][k]
            assert cell == f"{expected}B", (k, col_index, cell)


def test_table1_mlc_reduction(benchmark):
    ratio = benchmark(mlc2_reduction, 4 * GIB, 3)
    print(f"\nMLC x2 BET size vs SLC at 4GB, k=3: {ratio:.2f}x "
          "(Section 4.1: 'much reduced')")
    assert ratio == 0.5
