"""Regenerates paper Figure 5: the first failure time of FTL and NFTL,
with and without static wear leveling, over k in {0..3} and T in {100,
400, 700, 1000}.

Protocol (Section 5.1): a virtually unlimited trace is derived from the
base trace by resampling random 10-minute segments, and each system runs
until the first block exceeds its endurance.  The geometry is scaled per
DESIGN.md (endurance 10,000/SCALE); thresholds are the paper's own.

Expected shape (paper Section 5.2): SWL extends the first failure time of
both drivers — the paper reports +51.2% for FTL and +87.5% for NFTL at
T=100, k=0 — with small T beating large T, and NFTL gaining most at small
k.  Our FTL gains concentrate at k=0: on a 64-block chip, cold data loses
physical contiguity after one leveling rotation, so one-to-many flags are
almost always pre-set by a neighbouring hot block (the overlooking effect
of Section 3.2, amplified by scale); see EXPERIMENTS.md.
"""

from __future__ import annotations

from benchmarks.conftest import K_VALUES, THRESHOLDS, BenchSetup, report
from repro.sim.metrics import improvement_ratio
from repro.util.tables import format_table


def _fig5_table(matrix, driver: str) -> tuple[list[list[object]], dict]:
    baseline = matrix.first_failure(driver, None)
    base_years = baseline.first_failure_years
    rows: list[list[object]] = [[driver.upper(), round(base_years, 4), "-"]]
    improvements = {}
    for paper_t in THRESHOLDS:
        for k in K_VALUES:
            result = matrix.first_failure(driver, (k, paper_t))
            years = result.first_failure_years
            gain = improvement_ratio(years, base_years)
            improvements[(k, paper_t)] = gain
            rows.append(
                [f"{driver.upper()}+SWL+{BenchSetup.swl_label((k, paper_t))}",
                 round(years, 4), f"{gain:+.1f}%"]
            )
    return rows, improvements


def _check_shape(driver: str, improvements: dict) -> None:
    # The headline claim: SWL at k=0, T=100 extends the first failure
    # time substantially (paper: +51.2% FTL / +87.5% NFTL).
    headline = improvements[(0, THRESHOLDS[0])]
    assert headline > 8.0, f"{driver}: headline gain only {headline:+.1f}%"
    # SWL must not collapse endurance anywhere in the sweep.
    assert all(gain > -10.0 for gain in improvements.values()), improvements
    # Small T (frequent leveling) beats the largest T at k=0, as in the
    # paper's Figure 5 trend.
    assert improvements[(0, THRESHOLDS[0])] >= improvements[(0, THRESHOLDS[-1])] - 2.0
    if driver == "nftl" and 3 in {k for k, _ in improvements}:
        # Figure 5(b): "good improvement on NFTL was achieved with ... a
        # small k value".
        assert improvements[(0, THRESHOLDS[0])] >= improvements[(3, THRESHOLDS[0])]


def test_fig5a_ftl_first_failure(matrix, benchmark):
    rows, improvements = benchmark.pedantic(
        _fig5_table, args=(matrix, "ftl"), rounds=1, iterations=1
    )
    report("fig5a", format_table(
        ["Configuration", "First failure (years, scaled)", "vs FTL"],
        rows,
        title="Figure 5(a): first failure time of FTL",
    ))
    _check_shape("ftl", improvements)


def test_fig5b_nftl_first_failure(matrix, benchmark):
    rows, improvements = benchmark.pedantic(
        _fig5_table, args=(matrix, "nftl"), rounds=1, iterations=1
    )
    report("fig5b", format_table(
        ["Configuration", "First failure (years, scaled)", "vs NFTL"],
        rows,
        title="Figure 5(b): first failure time of NFTL",
    ))
    _check_shape("nftl", improvements)


def test_fig5_nftl_wears_out_before_ftl(matrix, benchmark):
    """Section 5.2: NFTL's first failure time is far shorter than FTL's
    (coarse-grained mapping pays whole-block folds for partial updates)."""

    def gap():
        ftl = matrix.first_failure("ftl", None).first_failure_years
        nftl = matrix.first_failure("nftl", None).first_failure_years
        return ftl / nftl

    ratio = benchmark.pedantic(gap, rounds=1, iterations=1)
    print(f"\nFTL / NFTL baseline first-failure ratio: {ratio:.2f}x "
          "(paper: ~70x on its NTFS trace; direction must match)")
    assert ratio > 1.2
