"""Tests for the Cleaner refinements: wear-aware victim selection,
erase-on-demand reclamation, and cold-destination separation."""

from __future__ import annotations

import random

import pytest

from repro.core.config import SWLConfig
from repro.flash.chip import NandFlash
from repro.flash.geometry import FlashGeometry
from repro.flash.mtd import MtdDevice
from repro.ftl.cleaner import CyclicScanner, GreedyScore
from repro.ftl.factory import build_stack
from repro.ftl.nftl import NFTL
from repro.ftl.page_mapping import PageMappingFTL


def make_ftl(geometry, **kwargs):
    chip = NandFlash(geometry, store_data=True)
    return PageMappingFTL(MtdDevice(chip), **kwargs), chip


class TestFindLeastWorn:
    def test_prefers_smallest_wear_among_qualifying(self):
        scanner = CyclicScanner(6)
        scores = {1: GreedyScore(5, 0), 3: GreedyScore(5, 0), 5: GreedyScore(5, 0)}
        wear = {1: 9, 3: 2, 5: 4}
        victim = scanner.find_least_worn(scores.get, lambda unit: wear[unit])
        assert victim == 3

    def test_ignores_non_qualifying_even_if_unworn(self):
        scanner = CyclicScanner(4)
        scores = {0: GreedyScore(1, 5), 2: GreedyScore(3, 1)}
        wear = {0: 0, 2: 100}
        assert scanner.find_least_worn(scores.get, lambda u: wear[u]) == 2

    def test_none_when_nothing_qualifies(self):
        scanner = CyclicScanner(4)
        assert scanner.find_least_worn(lambda u: None, lambda u: 0) is None

    def test_cursor_advances_past_choice(self):
        scanner = CyclicScanner(4)
        scores = {1: GreedyScore(5, 0)}
        scanner.find_least_worn(scores.get, lambda u: 0)
        assert scanner.cursor == 2


class TestEraseOnDemand:
    def test_dead_blocks_reused_before_virgin_pool(self, small_geometry):
        # Overwrite one block's worth of data repeatedly: steady state must
        # recycle the dead blocks, leaving most of the pool untouched.
        ftl, chip = make_ftl(small_geometry)
        free_before = ftl.allocator.free_count
        ppb = small_geometry.pages_per_block
        for round_number in range(40):
            for lpn in range(ppb):
                ftl.write(lpn)
        assert ftl.stats.dead_recycles > 0
        # With LIFO + erase-on-demand only a handful of blocks ever left
        # the pool.
        untouched = sum(1 for count in chip.erase_counts if count == 0)
        assert untouched >= small_geometry.num_blocks // 2

    def test_wear_concentrates_without_swl(self, small_geometry):
        ftl, chip = make_ftl(small_geometry)
        ppb = small_geometry.pages_per_block
        for _ in range(60):
            for lpn in range(ppb):
                ftl.write(lpn)
        worn = [count for count in chip.erase_counts if count > 0]
        assert max(worn) >= 10  # the hot blocks absorb the cycling


class TestColdFrontierSeparation:
    def test_forced_recycle_does_not_share_copy_destination(self, small_geometry):
        ftl, chip = make_ftl(small_geometry)
        ppb = small_geometry.pages_per_block
        # Cold block full of unique data.
        for lpn in range(ppb):
            ftl.write(lpn, data=lpn.to_bytes(2, "little"))
        cold_block = ftl.mapping_of(0)[0]
        ftl.recycle_block_range(range(cold_block, cold_block + 1))
        destination = ftl.mapping_of(0)[0]
        assert ftl._cold_frontier is not None
        # All relocated pages share one destination block (pure cold).
        destinations = {ftl.mapping_of(lpn)[0] for lpn in range(ppb)}
        assert destinations == {destination}
        # And the Cleaner's copy frontier was not opened for this.
        assert ftl._copy_frontier is None

    def test_cold_frontier_closed_when_recycled(self, small_geometry):
        ftl, _ = make_ftl(small_geometry)
        ppb = small_geometry.pages_per_block
        for lpn in range(ppb // 2):
            ftl.write(lpn, data=b"x")
        block = ftl.mapping_of(0)[0]
        ftl.recycle_block_range(range(block, block + 1))
        cold_block = ftl._cold_frontier[0]
        ftl.recycle_block_range(range(cold_block, cold_block + 1))
        assert ftl.read(0) == b"x"


class TestPromotePath:
    def test_ftl_promotes_free_blocks_on_recycle_request(self, small_geometry):
        ftl, _ = make_ftl(small_geometry)
        # All blocks free initially; request a recycle of a buried block.
        buried = 0
        assert ftl.allocator.contains(buried)
        assert ftl.recycle_block_range(range(buried, buried + 1)) == 0
        ftl.write(0)
        assert ftl.mapping_of(0)[0] == buried  # it surfaced first

    def test_nftl_promotes_free_blocks(self, small_geometry):
        chip = NandFlash(small_geometry, store_data=True)
        nftl = NFTL(MtdDevice(chip))
        buried = 0
        assert nftl.recycle_block_range(range(buried, buried + 1)) == 0
        nftl.write(0)
        assert nftl.chain_of(0).primary == buried


class TestAllocPolicyPlumbing:
    @pytest.mark.parametrize("driver", ["ftl", "nftl"])
    def test_policy_reaches_allocator(self, small_geometry, driver):
        stack = build_stack(small_geometry, driver, alloc_policy="min-wear")
        assert stack.layer.allocator.policy == "min-wear"
        stack = build_stack(small_geometry, driver)
        assert stack.layer.allocator.policy == "lifo"

    def test_rebuild_keeps_policy(self, small_geometry):
        ftl, _ = make_ftl(small_geometry, alloc_policy="min-wear")
        ftl.write(0)
        ftl.rebuild_mapping()
        assert ftl.allocator.policy == "min-wear"


class TestWearAwareVictims:
    def test_gc_spreads_wear_across_churn_set(self):
        geometry = FlashGeometry(16, 8, 512, 100_000)
        ftl, chip = make_ftl(geometry, alloc_policy="min-wear")
        rng = random.Random(3)
        # Scattered overwrites keep blocks mixed so copy-GC must run.
        span = ftl.num_logical_pages
        for _ in range(20_000):
            ftl.write(rng.randrange(span))
        assert ftl.stats.gc_runs > 0
        churn = [count for count in chip.erase_counts if count > 0]
        # Wear-aware victim selection keeps the spread tight: max within
        # 3x of the mean of churning blocks.
        mean = sum(churn) / len(churn)
        assert max(churn) <= 3 * mean
