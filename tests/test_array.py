"""Tests for the multi-channel device array: striping, dispatcher,
wear coordination, and the 1-channel bit-for-bit equivalence guarantee."""

from __future__ import annotations

import random

import pytest

from repro.array import (
    SCOPES,
    ContiguousRange,
    DeviceArray,
    PageInterleaved,
    WearCoordinator,
    build_array,
    make_striping,
    striping_names,
)
from repro.core.config import SWLConfig
from repro.fault.plan import FaultPlan
from repro.ftl.factory import StorageBackend, StorageStack, build_backend, build_stack
from repro.sim.engine import Simulator, StopCondition
from repro.sim.experiment import (
    ExperimentSpec,
    make_workload,
    run_matrix,
    scaled_mlc2_geometry,
    workload_params_for,
)
from repro.sim.metrics import EraseDistribution
from repro.traces.model import Op, Request
from repro.util.rng import make_rng, spawn_rng


def write(time, lba, sectors=1):
    return Request(time, Op.WRITE, lba, sectors)


def skewed_page_stream(num_pages, seed, *, hot_fraction=0.25, hot_prob=0.7):
    """Endless write stream with a hot region — drives wear-out quickly."""
    rng = random.Random(seed)
    hot = max(1, int(num_pages * hot_fraction))
    step = 0
    while True:
        lpn = rng.randrange(hot) if rng.random() < hot_prob else rng.randrange(num_pages)
        yield step, lpn
        step += 1


# ----------------------------------------------------------------------
# Striping policies
# ----------------------------------------------------------------------
class TestStriping:
    @pytest.mark.parametrize("cls", [PageInterleaved, ContiguousRange])
    def test_bijection(self, cls):
        policy = cls(num_shards=3, pages_per_shard=8)
        seen = set()
        for lpn in range(policy.total_pages):
            shard, local = policy.route(lpn)
            assert 0 <= shard < 3
            assert 0 <= local < 8
            assert policy.unroute(shard, local) == lpn
            seen.add((shard, local))
        assert len(seen) == policy.total_pages

    def test_page_interleaved_is_round_robin(self):
        policy = PageInterleaved(num_shards=4, pages_per_shard=4)
        assert [policy.route(lpn)[0] for lpn in range(8)] == [
            0, 1, 2, 3, 0, 1, 2, 3,
        ]

    def test_contiguous_range_is_locality_preserving(self):
        policy = ContiguousRange(num_shards=4, pages_per_shard=4)
        assert [policy.route(lpn)[0] for lpn in range(8)] == [
            0, 0, 0, 0, 1, 1, 1, 1,
        ]

    @pytest.mark.parametrize("cls", [PageInterleaved, ContiguousRange])
    def test_one_shard_is_identity(self, cls):
        policy = cls(num_shards=1, pages_per_shard=16)
        for lpn in range(16):
            assert policy.route(lpn) == (0, lpn)

    def test_out_of_range_raises(self):
        policy = PageInterleaved(num_shards=2, pages_per_shard=4)
        with pytest.raises(ValueError, match="out of range"):
            policy.route(8)
        with pytest.raises(ValueError, match="out of range"):
            policy.route(-1)

    def test_invalid_shapes_raise(self):
        with pytest.raises(ValueError):
            PageInterleaved(num_shards=0, pages_per_shard=4)
        with pytest.raises(ValueError):
            ContiguousRange(num_shards=2, pages_per_shard=0)

    def test_make_striping(self):
        assert isinstance(make_striping("page", 2, 4), PageInterleaved)
        assert isinstance(make_striping("range", 2, 4), ContiguousRange)
        assert striping_names() == ["page", "range"]
        with pytest.raises(ValueError, match="unknown striping"):
            make_striping("diagonal", 2, 4)


# ----------------------------------------------------------------------
# Span routing and the compiled dispatcher (hot-path fusions)
# ----------------------------------------------------------------------
class TestSpanRouting:
    """``route_span`` and ``compile_pages_dispatch`` against the generic
    ``route_batch`` reference: same batches, same visit order, same
    errors, same power-loss accounting."""

    POLICIES = [PageInterleaved, ContiguousRange]

    @pytest.mark.parametrize("cls", POLICIES)
    def test_route_span_matches_route_batch(self, cls):
        rng = random.Random(11)
        for _ in range(500):
            shards = rng.randint(1, 7)
            per_shard = rng.randint(1, 50)
            policy = cls(shards, per_shard)
            start = rng.randrange(policy.total_pages)
            stop = rng.randint(start + 1, policy.total_pages)
            buffers = [[] for _ in range(shards)]
            policy.route_batch(range(start, stop), buffers)
            expect = [(s, b) for s, b in enumerate(buffers) if b]
            got = [
                (s, list(r))
                for s, r in policy.route_span(start, stop)
                if len(r)
            ]
            assert got == expect, (shards, per_shard, start, stop)

    @pytest.mark.parametrize("cls", POLICIES)
    def test_route_span_bounds_and_empty(self, cls):
        policy = cls(4, 10)
        for start, stop in ((-3, 5), (35, 45)):
            with pytest.raises(ValueError, match="out of range"):
                policy.route_span(start, stop)
        assert [
            (s, r) for s, r in policy.route_span(7, 7) if len(r)
        ] == []

    @staticmethod
    def _recording_dispatch(policy):
        """Compile a dispatcher whose ops record ``(shard, local)``."""
        applied: list[tuple[int, int]] = []
        losses: list[int] = []
        ops = [
            (lambda shard: lambda local: applied.append((shard, local)))(s)
            for s in range(policy.num_shards)
        ]
        fallback_batches: list[list[int]] = []

        def fallback(lpns):
            fallback_batches.append(list(lpns))
            return len(lpns)

        dispatch = policy.compile_pages_dispatch(
            ops, lambda exc, done: losses.append(done), fallback
        )
        assert dispatch is not None
        return dispatch, applied, losses, fallback_batches

    @pytest.mark.parametrize("cls", POLICIES)
    def test_compiled_dispatch_matches_route_batch_order(self, cls):
        rng = random.Random(23)
        for _ in range(500):
            shards = rng.randint(1, 7)
            per_shard = rng.randint(1, 50)
            policy = cls(shards, per_shard)
            start = rng.randrange(policy.total_pages)
            stop = rng.randint(start + 1, policy.total_pages)
            dispatch, applied, _, fallback = self._recording_dispatch(policy)
            done = dispatch(range(start, stop))
            buffers = [[] for _ in range(shards)]
            policy.route_batch(range(start, stop), buffers)
            expect = [
                (s, local) for s, batch in enumerate(buffers) for local in batch
            ]
            assert applied == expect, (shards, per_shard, start, stop)
            assert done == stop - start
            assert fallback == []

    @pytest.mark.parametrize("cls", POLICIES)
    def test_compiled_dispatch_single_page_and_fallback(self, cls):
        policy = cls(3, 8)
        dispatch, applied, _, fallback = self._recording_dispatch(policy)
        assert dispatch([13]) == 1
        assert applied == [policy.route(13)]
        with pytest.raises(ValueError, match="out of range"):
            dispatch([24])
        with pytest.raises(ValueError, match="out of range"):
            dispatch(range(20, 30))
        # Non-range multi-page batches (the lba-modulo wrap shape) are
        # delegated untouched to the generic buffered path.
        applied.clear()
        assert dispatch([5, 2, 7]) == 3
        assert fallback == [[5, 2, 7]] and applied == []

    @pytest.mark.parametrize("cls", POLICIES)
    def test_compiled_dispatch_rejects_op_count_mismatch(self, cls):
        policy = cls(3, 8)
        with pytest.raises(ValueError, match="page operations"):
            policy.compile_pages_dispatch(
                [lambda local: None] * 2, lambda exc, done: None, lambda b: 0
            )

    @pytest.mark.parametrize("cls", POLICIES)
    def test_compiled_dispatch_power_loss_accounting(self, cls):
        from repro.flash.errors import PowerLossError

        rng = random.Random(37)
        for _ in range(200):
            shards = rng.randint(1, 5)
            per_shard = rng.randint(1, 30)
            policy = cls(shards, per_shard)
            start = rng.randrange(policy.total_pages)
            stop = rng.randint(start + 1, policy.total_pages)
            fail_at = rng.randrange(stop - start)
            applied: list[tuple[int, int]] = []
            losses: list[int] = []

            def make_op(shard):
                def op(local):
                    if len(applied) == fail_at:
                        raise PowerLossError("lights out", op_ordinal=0)
                    applied.append((shard, local))
                return op

            dispatch = policy.compile_pages_dispatch(
                [make_op(s) for s in range(shards)],
                lambda exc, done: losses.append(done),
                lambda b: 0,
            )
            with pytest.raises(PowerLossError):
                dispatch(range(start, stop))
            # The pages-completed count reported on the exception equals
            # the number of ops that ran before the loss.
            assert losses == [fail_at], (shards, per_shard, start, stop)
            assert len(applied) == fail_at


# ----------------------------------------------------------------------
# The batched dispatcher
# ----------------------------------------------------------------------
class TestDispatcher:
    def _array(self, small_geometry, channels=2, **kwargs):
        return build_array(
            small_geometry, "ftl", channels=channels, rng=make_rng(7), **kwargs
        )

    def test_group_batches_per_shard_in_request_order(self, small_geometry):
        array = self._array(small_geometry)
        # Page-interleaved over 2 shards: even LPNs -> shard 0, odd -> 1.
        batches = array._group([3, 0, 2, 1])
        assert batches == [(0, [0, 1]), (1, [1, 0])]

    def test_writes_fan_out_across_shards(self, small_geometry):
        array = self._array(small_geometry)
        assert array.write_pages([0, 1, 2, 3]) == 4
        per_shard = [shard.layer.stats.host_writes for shard in array.shards]
        assert per_shard == [2, 2]

    def test_range_striping_concentrates_on_one_shard(self, small_geometry):
        array = self._array(small_geometry, striping="range")
        array.write_pages([0, 1, 2, 3])
        per_shard = [shard.layer.stats.host_writes for shard in array.shards]
        assert per_shard == [4, 0]

    def test_aggregates_sum_over_shards(self, small_geometry):
        array = self._array(small_geometry)
        array.write_pages(list(range(8)))
        assert array.layer_stats()["host_writes"] == 8
        assert len(array.erase_counts) == 2 * small_geometry.num_blocks
        assert len(array.shard_erase_counts()) == 2
        assert array.total_erases() == sum(array.erase_counts)

    def test_backend_protocol(self, small_geometry):
        array = self._array(small_geometry)
        assert isinstance(array, StorageBackend)
        assert array.num_shards == 2
        assert array.num_logical_pages == 2 * array.shards[0].num_logical_pages

    def test_validation(self, small_geometry):
        shard = build_stack(small_geometry, "ftl")
        with pytest.raises(ValueError, match="at least one shard"):
            DeviceArray([], PageInterleaved(1, 4))
        with pytest.raises(ValueError, match="routes 2 shards"):
            DeviceArray([shard], PageInterleaved(2, shard.num_logical_pages))
        with pytest.raises(ValueError, match="pages per"):
            DeviceArray([shard], PageInterleaved(1, 4))
        with pytest.raises(ValueError, match="channels must be positive"):
            build_array(small_geometry, "ftl", channels=0)


# ----------------------------------------------------------------------
# Wear coordination
# ----------------------------------------------------------------------
class TestWearCoordinator:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown coordinator scope"):
            WearCoordinator(100.0, scope="galactic")
        with pytest.raises(ValueError, match="must be positive"):
            WearCoordinator(0.0)
        assert SCOPES == ("per-shard", "global")

    def test_per_shard_scope_never_runs_global_checks(self, small_geometry):
        array = build_array(
            small_geometry, "ftl", SWLConfig(threshold=5, k=0),
            channels=2, swl_scope="per-shard", rng=make_rng(3),
        )
        simulator = Simulator(array)
        stream = skewed_page_stream(array.num_logical_pages, seed=3)
        for step, lpn in stream:
            if step >= 30_000:
                break
            simulator.apply(write(float(step), lpn * array.sectors_per_page,
                                  array.sectors_per_page))
        stats = array.swl_stats()
        assert stats["coord_global_checks"] == 0
        assert stats.get("swl_runs", 0) > 0 or stats.get("bet_resets", 0) >= 0

    def test_global_scope_levels_the_hot_shard(self, small_geometry):
        array = build_array(
            small_geometry, "ftl", SWLConfig(threshold=5, k=0),
            channels=2, striping="range", swl_scope="global", rng=make_rng(3),
        )
        simulator = Simulator(array)
        pages_per_shard = array.striping.pages_per_shard
        # Hammer shard 0's range only; shard 1 stays cold.
        stream = skewed_page_stream(pages_per_shard, seed=5)
        for step, lpn in stream:
            if step >= 30_000:
                break
            simulator.apply(write(float(step), lpn * array.sectors_per_page,
                                  array.sectors_per_page))
        coordinator = array.coordinator
        assert coordinator is not None
        assert coordinator.stats.global_checks > 0
        assert coordinator.stats.global_runs > 0
        assert sum(coordinator.stats.shard_runs.values()) == (
            coordinator.stats.global_runs
        )
        # The hot shard is the one the coordinator levels.
        assert coordinator.stats.shard_runs.get(0, 0) > 0
        stats = array.swl_stats()
        assert stats["coord_global_runs"] == coordinator.stats.global_runs

    def test_aggregate_unevenness(self, small_geometry):
        array = build_array(
            small_geometry, "ftl", SWLConfig(threshold=1000, k=0),
            channels=2, rng=make_rng(3),
        )
        coordinator = array.coordinator
        assert coordinator is not None
        assert coordinator.unevenness() == 0.0  # no erases yet
        array.write_pages(list(range(array.num_logical_pages)) * 4)
        assert coordinator.ecnt == sum(
            shard.leveler.bet.ecnt for shard in array.shards
        )
        if coordinator.fcnt:
            assert coordinator.unevenness() == pytest.approx(
                coordinator.ecnt / coordinator.fcnt
            )


# ----------------------------------------------------------------------
# 1-channel equivalence: the array must be invisible at N = 1
# ----------------------------------------------------------------------
class TestSingleChannelEquivalence:
    # T and k drawn from the paper's Table 2 configurations.
    CONFIGS = [(100.0, 0), (100.0, 3), (1000.0, 0)]

    @staticmethod
    def _run(backend, seed):
        simulator = Simulator(backend)
        stream = skewed_page_stream(backend.num_logical_pages, seed=seed)
        spp = backend.sectors_per_page

        def requests():
            for step, lpn in stream:
                yield write(float(step), lpn * spp, spp)

        stop = StopCondition(until_first_failure=True, max_requests=300_000)
        return simulator.run(requests(), stop, label="run")

    @pytest.mark.parametrize("threshold,k", CONFIGS)
    def test_wrapped_array_is_bit_identical(self, small_geometry, threshold, k):
        swl = SWLConfig(threshold=threshold, k=k)
        single = build_stack(
            small_geometry, "ftl", swl,
            rng=spawn_rng(make_rng(11), "leveler"),
        )
        shard = build_stack(
            small_geometry, "ftl", swl,
            rng=spawn_rng(make_rng(11), "leveler"),
        )
        array = DeviceArray(
            [shard], PageInterleaved(1, shard.num_logical_pages)
        )
        result_single = self._run(single, seed=11)
        result_array = self._run(array, seed=11)
        assert list(single.erase_counts) == list(array.erase_counts)
        assert result_single.first_failure_time == result_array.first_failure_time
        assert single.swl_stats() == shard.swl_stats()
        assert result_single.as_dict() == result_array.as_dict()
        assert result_array.channels == 1
        assert result_array.shard_erase_distributions == []

    def test_build_backend_dispatches_on_channels(self, small_geometry):
        single = build_backend(small_geometry, "ftl", channels=1)
        assert isinstance(single, StorageStack)
        array = build_backend(small_geometry, "ftl", channels=2)
        assert isinstance(array, DeviceArray)
        assert isinstance(single, StorageBackend)

    def test_spec_channels_default_matches_explicit_one(self, small_geometry):
        base = ExperimentSpec("ftl", small_geometry, SWLConfig(threshold=50),
                              seed=4)
        explicit = ExperimentSpec("ftl", small_geometry,
                                  SWLConfig(threshold=50), seed=4, channels=1)
        assert base.label() == explicit.label()
        result_a = self._run(base.build(), seed=4)
        result_b = self._run(explicit.build(), seed=4)
        assert result_a.as_dict() == result_b.as_dict()

    def test_multi_channel_label(self, small_geometry):
        spec = ExperimentSpec(
            "ftl", small_geometry, SWLConfig(threshold=100), seed=0,
            channels=4, striping="page", swl_scope="global",
        )
        assert spec.label().endswith("x4[page,global]")


# ----------------------------------------------------------------------
# Multi-channel replay through the engine
# ----------------------------------------------------------------------
class TestMultiChannelReplay:
    def test_four_channel_run_reports_per_shard(self, small_geometry):
        array = build_array(
            small_geometry, "ftl", SWLConfig(threshold=100, k=0),
            channels=4, swl_scope="global", rng=make_rng(2),
        )
        simulator = Simulator(array)
        stream = skewed_page_stream(array.num_logical_pages, seed=2)
        spp = array.sectors_per_page

        def requests():
            for step, lpn in stream:
                yield write(float(step), lpn * spp, spp)

        result = simulator.run(
            requests(), StopCondition(max_requests=20_000), label="x4"
        )
        assert result.channels == 4
        assert len(result.shard_erase_distributions) == 4
        # The merged aggregate must be exact: identical to a flat
        # distribution over all blocks of all shards.
        flat = EraseDistribution.from_counts(array.erase_counts)
        merged = result.erase_distribution
        assert merged.total == flat.total
        assert merged.maximum == flat.maximum
        assert merged.minimum == flat.minimum
        assert merged.blocks == flat.blocks
        assert merged.average == pytest.approx(flat.average)
        assert merged.deviation == pytest.approx(flat.deviation)

    def test_first_failure_comes_from_any_shard(self, small_geometry):
        array = build_array(
            small_geometry, "ftl", channels=2, striping="range",
            rng=make_rng(9),
        )
        simulator = Simulator(array)
        pages_per_shard = array.striping.pages_per_shard
        spp = array.sectors_per_page
        # Hammer shard 1's range until a block there wears out.
        stream = skewed_page_stream(pages_per_shard, seed=9)

        def requests():
            for step, lpn in stream:
                yield write(float(step), (pages_per_shard + lpn) * spp, spp)

        result = simulator.run(
            requests(),
            StopCondition(until_first_failure=True, max_requests=500_000),
        )
        assert result.first_failure_time is not None
        assert array.shards[0].first_failure is None
        assert array.shards[1].first_failure is not None


# ----------------------------------------------------------------------
# Parallel experiment matrix
# ----------------------------------------------------------------------
class TestRunMatrixWorkers:
    def test_parallel_results_identical_to_serial(self):
        geometry = scaled_mlc2_geometry(24, scale=100)
        specs = [
            ExperimentSpec("ftl", geometry, SWLConfig(threshold=t, k=0),
                           seed=6)
            for t in (100.0, 1000.0)
        ]
        params = workload_params_for(specs[0], duration=0.02 * 86_400, seed=8)
        workload = make_workload(params)
        trace = workload.requests()
        serial = run_matrix(specs, trace, horizon=0.02 * 86_400)
        parallel = run_matrix(specs, trace, horizon=0.02 * 86_400, workers=2)
        assert len(serial) == len(parallel) == 2
        for a, b in zip(serial, parallel):
            assert a.as_dict() == b.as_dict()
            assert a.erase_distribution == b.erase_distribution

    def test_workers_one_is_serial(self):
        geometry = scaled_mlc2_geometry(24, scale=100)
        spec = ExperimentSpec("ftl", geometry, seed=1)
        params = workload_params_for(spec, duration=0.01 * 86_400, seed=1)
        trace = make_workload(params).requests()
        results = run_matrix([spec], trace, horizon=0.01 * 86_400, workers=4)
        assert len(results) == 1  # single spec short-circuits to serial


# ----------------------------------------------------------------------
# Per-shard fault plans
# ----------------------------------------------------------------------
class TestFaultPlanSharding:
    def test_shard_seeds_deterministic_and_distinct(self):
        plan = FaultPlan(seed=42, erase_fail_prob=0.01)
        seeds = [plan.for_shard(index).seed for index in range(4)]
        assert len(set(seeds)) == 4
        assert seeds == [plan.for_shard(index).seed for index in range(4)]
        assert plan.for_shard(0).erase_fail_prob == plan.erase_fail_prob

    def test_power_loss_schedule_stays_on_shard_zero(self):
        plan = FaultPlan(seed=1, power_loss_at=(10, 20))
        assert plan.for_shard(0).power_loss_at == (10, 20)
        assert plan.for_shard(1).power_loss_at == ()
        assert plan.for_shard(3).power_loss_at == ()

    def test_negative_index_raises(self):
        with pytest.raises(ValueError):
            FaultPlan(seed=1).for_shard(-1)

    def test_array_gets_one_injector_per_shard(self, small_geometry):
        plan = FaultPlan(seed=3, erase_fail_prob=0.05)
        array = build_array(
            small_geometry, "ftl", channels=2, rng=make_rng(1),
            fault_plan=plan,
        )
        injectors = {id(shard.flash.injector) for shard in array.shards}
        assert len(injectors) == 2
        assert all(shard.flash.injector is not None for shard in array.shards)

    def test_shared_injector_rejected_for_arrays(self, small_geometry):
        from repro.fault.injector import FaultInjector

        injector = FaultInjector(FaultPlan(seed=1))
        with pytest.raises(ValueError, match="injector"):
            build_backend(
                small_geometry, "ftl", channels=2, injector=injector
            )
