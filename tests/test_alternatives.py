"""Tests for the challenger wear-leveling mechanisms.

Covers the counter-based :class:`DualPoolLeveler` (Ban-patent style),
the cache-based wear-avoidance front-end :class:`CacheAvoidLeveler`,
and the software-only cyclic scrubber :class:`SoftWearLeveler`.
"""

from __future__ import annotations

import random

import pytest

from repro.core.alternatives import (
    CacheAvoidLeveler,
    DualPoolLeveler,
    SoftWearLeveler,
)
from repro.ftl.factory import build_stack


def attach_dual_pool(stack, **kwargs):
    leveler = DualPoolLeveler(stack.flash.erase_counts, stack.layer, **kwargs)
    stack.layer.attach_leveler(leveler)
    return leveler


class ProbeHost:
    """Fake WearLevelingHost that records recycles and fakes costs.

    Blocks listed in ``free`` recycle to 0 (nothing to erase); any other
    block counts one erase and one copy.  When given the leveler's
    ``counts`` list, a successful recycle bumps the block's erase count
    by ``bump`` — the wear feedback a real chip would produce.
    """

    def __init__(self, free=(), counts=None, bump=1):
        self.free = set(free)
        self.counts = counts
        self.bump = bump
        self.recycled = []
        self._erases = 0
        self._copies = 0

    def swl_cost_probe(self):
        return (self._erases, self._copies)

    def recycle_block_range(self, blocks):
        done = 0
        for block in blocks:
            self.recycled.append(block)
            if block in self.free:
                continue
            self._erases += 1
            self._copies += 1
            if self.counts is not None:
                self.counts[block] += self.bump
            done += 1
        return done


class FakeLayer:
    """Records the page writes/reads the cache front-end passes through."""

    def __init__(self):
        self.writes = []
        self.reads = []

    def write(self, lpn):
        self.writes.append(lpn)

    def read(self, lpn):
        self.reads.append(lpn)


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs", [{"delta": 0}, {"check_period": 0}, {"batch": 0}]
    )
    def test_validation(self, small_geometry, kwargs):
        stack = build_stack(small_geometry, "ftl")
        with pytest.raises(ValueError):
            DualPoolLeveler(stack.flash.erase_counts, stack.layer, **kwargs)

    def test_ram_cost_dwarfs_bet(self, small_geometry):
        from repro.analysis.memory import bet_size_bytes

        stack = build_stack(small_geometry, "ftl")
        leveler = DualPoolLeveler(stack.flash.erase_counts, stack.layer)
        # The paper's RAM argument: counters cost 32x a k=0 BET.
        assert leveler.ram_bytes == 32 * bet_size_bytes(
            small_geometry.num_blocks, 0
        )


class TestLeveling:
    def _run_hot_cold(self, stack, writes=30_000):
        layer = stack.layer
        rng = random.Random(4)
        # Pin cold data in half the logical space.
        half = layer.num_logical_pages // 2
        for lpn in range(half, layer.num_logical_pages):
            layer.write(lpn)
        for _ in range(writes):
            layer.write(rng.randrange(16))

    def test_evens_wear_like_swl(self, small_geometry):
        baseline = build_stack(small_geometry, "ftl")
        self._run_hot_cold(baseline)

        leveled = build_stack(small_geometry, "ftl")
        leveler = attach_dual_pool(leveled, delta=8, check_period=16)
        self._run_hot_cold(leveled)

        def deviation(counts):
            mean = sum(counts) / len(counts)
            return (sum((c - mean) ** 2 for c in counts) / len(counts)) ** 0.5

        assert leveler.stats.swaps > 0
        assert deviation(leveled.flash.erase_counts) < deviation(
            baseline.flash.erase_counts
        )

    def test_no_action_below_delta(self, small_geometry):
        stack = build_stack(small_geometry, "ftl")
        leveler = attach_dual_pool(stack, delta=10_000, check_period=8)
        self._run_hot_cold(stack, writes=5_000)
        assert leveler.stats.swaps == 0
        assert leveler.stats.checks > 0

    def test_overhead_attributed(self, small_geometry):
        stack = build_stack(small_geometry, "ftl")
        leveler = attach_dual_pool(stack, delta=8, check_period=16)
        self._run_hot_cold(stack)
        assert leveler.stats.swl_erases >= leveler.stats.swaps

    def test_works_on_nftl(self, small_geometry):
        stack = build_stack(small_geometry, "nftl")
        leveler = attach_dual_pool(stack, delta=8, check_period=16)
        self._run_hot_cold(stack, writes=15_000)
        assert leveler.stats.swaps > 0
        assert min(stack.flash.erase_counts) > 0


class TestSuspension:
    def test_deferred_while_suspended(self, small_geometry):
        stack = build_stack(small_geometry, "ftl")
        leveler = attach_dual_pool(stack, delta=1, check_period=1)
        leveler.suspend()
        stack.layer.write(0)
        # Manually pump erases through the hook while suspended.
        for _ in range(5):
            leveler.on_block_erased(0)
        swaps_before = leveler.stats.swaps
        leveler.resume()
        assert leveler.stats.checks >= 1 or swaps_before == leveler.stats.swaps

    def test_unbalanced_resume(self, small_geometry):
        stack = build_stack(small_geometry, "ftl")
        leveler = DualPoolLeveler(stack.flash.erase_counts, stack.layer)
        with pytest.raises(RuntimeError):
            leveler.resume()


class TestBatchLeveling:
    """Regression: a free coldest block must not abort the batch."""

    def test_free_coldest_tries_next_coldest(self):
        counts = [100, 0, 1, 2, 50, 50, 50, 50]
        host = ProbeHost(free={1})
        leveler = DualPoolLeveler(
            counts, host, delta=8, check_period=1, batch=2
        )
        leveler.on_block_erased(0)
        # Block 1 (coldest) was free: excluded, not counted as a swap;
        # the batch continues with the next-coldest block 2 instead of
        # aborting.  (The fake host never mutates the counts, so the
        # second batch iteration legitimately picks block 2 again.)
        assert host.recycled == [1, 2, 2]
        assert leveler.stats.swaps == 2

    def test_all_cold_blocks_free_ends_check_cleanly(self):
        counts = [100, 0, 1, 100, 100, 100, 100, 100]
        host = ProbeHost(free={1, 2})
        leveler = DualPoolLeveler(
            counts, host, delta=8, check_period=1, batch=2
        )
        leveler.on_block_erased(0)
        assert host.recycled == [1, 2]
        assert leveler.stats.swaps == 0
        assert leveler.stats.checks == 1

    def test_batch_stops_when_spread_closes(self):
        # Only block 1 is >= delta colder than the hottest; once its
        # swap feeds wear back (bump=9), the spread drops to 10-9 < 8
        # and the remaining batch budget goes unused.
        counts = [10, 0, 9, 9, 9, 9, 9, 9]
        host = ProbeHost(counts=counts, bump=9)
        leveler = DualPoolLeveler(
            counts, host, delta=8, check_period=1, batch=3
        )
        leveler.on_block_erased(0)
        assert host.recycled == [1]
        assert leveler.stats.swaps == 1

    def test_stats_accounting(self):
        counts = [100, 0, 1, 2, 50, 50, 50, 50]
        host = ProbeHost(free={1})
        leveler = DualPoolLeveler(
            counts, host, delta=8, check_period=1, batch=2
        )
        leveler.on_block_erased(0)
        stats = leveler.stats
        # The free probe costs nothing; the two real swaps cost one
        # erase and one copy each (ProbeHost's cost model).
        assert stats.swl_erases == 2
        assert stats.swl_copies == 2
        assert stats.as_dict() == {
            "checks": 1,
            "swaps": 2,
            "swl_erases": 2,
            "swl_copies": 2,
        }


class TestDualPoolCheckpoint:
    def _worked(self):
        counts = [100, 0, 1, 2, 50, 50, 50, 50]
        host = ProbeHost(free={1})
        leveler = DualPoolLeveler(
            counts, host, delta=8, check_period=4, batch=2
        )
        leveler.on_block_retired(7)
        for _ in range(6):
            leveler.on_block_erased(0)
        return counts, leveler

    def test_snapshot_round_trip(self):
        counts, leveler = self._worked()
        frozen = leveler.snapshot_state()
        twin = DualPoolLeveler(
            list(counts), ProbeHost(), delta=8, check_period=4, batch=2
        )
        twin.restore_state(frozen)
        assert twin.snapshot_state() == frozen
        assert twin.stats.as_dict() == leveler.stats.as_dict()
        assert twin._erases_since_check == leveler._erases_since_check
        assert twin._retired == {7}

    @pytest.mark.parametrize(
        "patch,match",
        [
            ({"kind": "softwear"}, "kind"),
            ({"delta": 99}, "delta"),
            ({"check_period": 99}, "check_period"),
            ({"batch": 99}, "batch"),
            ({"num_blocks": 99}, "blocks"),
        ],
    )
    def test_restore_rejects_mismatch(self, patch, match):
        _, leveler = self._worked()
        frozen = dict(leveler.snapshot_state())
        frozen.update(patch)
        twin = DualPoolLeveler(
            [0] * 8, ProbeHost(), delta=8, check_period=4, batch=2
        )
        with pytest.raises(ValueError, match=match):
            twin.restore_state(frozen)


class TestCacheAvoid:
    def test_validation(self):
        with pytest.raises(ValueError):
            CacheAvoidLeveler(cache_pages=0)
        with pytest.raises(ValueError):
            CacheAvoidLeveler(cache_pages=4, page_size=0)

    def test_rewrites_are_absorbed(self):
        layer = FakeLayer()
        leveler = CacheAvoidLeveler(cache_pages=4, page_size=512)
        for _ in range(10):
            leveler.host_write(layer, 7)
        assert layer.writes == []
        assert leveler.stats.hits == 9
        assert leveler.stats.misses == 1
        assert leveler.stats.resident == 1

    def test_lru_eviction_flushes_the_oldest(self):
        layer = FakeLayer()
        leveler = CacheAvoidLeveler(cache_pages=2, page_size=512)
        leveler.host_write(layer, 1)
        leveler.host_write(layer, 2)
        leveler.host_write(layer, 1)      # touch 1: 2 becomes LRU
        leveler.host_write(layer, 3)      # full: evict 2
        assert layer.writes == [2]
        assert leveler.stats.evictions == 1
        assert leveler.stats.resident == 2

    def test_reads_prefer_the_dirty_cached_copy(self):
        layer = FakeLayer()
        leveler = CacheAvoidLeveler(cache_pages=4, page_size=512)
        leveler.host_write(layer, 5)
        leveler.host_read(layer, 5)       # dirty in cache: flash is stale
        leveler.host_read(layer, 6)       # uncached: goes to flash
        assert layer.reads == [6]
        assert leveler.stats.read_hits == 1

    def test_ram_cost_is_a_page_buffer_per_slot(self):
        leveler = CacheAvoidLeveler(cache_pages=64, page_size=2048)
        assert leveler.ram_bytes == 64 * (2048 + 4)

    def test_snapshot_round_trip_keeps_lru_order(self):
        layer = FakeLayer()
        leveler = CacheAvoidLeveler(cache_pages=3, page_size=512)
        for lpn in (1, 2, 3, 1):          # LRU order now 2, 3, 1
            leveler.host_write(layer, lpn)
        frozen = leveler.snapshot_state()
        twin = CacheAvoidLeveler(cache_pages=3, page_size=512)
        twin.restore_state(frozen)
        assert twin.snapshot_state() == frozen
        # The restored twin evicts the same victim the original would.
        twin.host_write(layer, 4)
        leveler.host_write(layer, 4)
        assert list(twin._cache) == list(leveler._cache)

    def test_restore_rejects_mismatch(self):
        leveler = CacheAvoidLeveler(cache_pages=3, page_size=512)
        frozen = dict(leveler.snapshot_state())
        with pytest.raises(ValueError, match="kind"):
            CacheAvoidLeveler(cache_pages=3).restore_state(
                {**frozen, "kind": "swl"}
            )
        with pytest.raises(ValueError, match="capacity"):
            CacheAvoidLeveler(cache_pages=8).restore_state(frozen)


class TestSoftWear:
    def test_validation(self):
        host = ProbeHost()
        with pytest.raises(ValueError):
            SoftWearLeveler(0, host)
        with pytest.raises(ValueError):
            SoftWearLeveler(8, host, period_requests=0)
        with pytest.raises(ValueError):
            SoftWearLeveler(8, host, span_blocks=0)

    def test_scrubs_once_per_request_bucket(self):
        host = ProbeHost()
        leveler = SoftWearLeveler(8, host, period_requests=4)
        for _ in range(12):
            leveler.on_request()
        # Buckets 1, 2, 3 (requests 4, 8, 12) each scrub once; bucket 0
        # never does — an idle device earns no forced wear.
        assert leveler.stats.scrubs == 3
        assert host.recycled == [0, 1, 2]
        assert leveler.cursor == 3

    def test_retired_blocks_are_skipped(self):
        host = ProbeHost()
        leveler = SoftWearLeveler(4, host, period_requests=2)
        leveler.on_block_retired(0)
        for _ in range(2):
            leveler.on_request()
        assert host.recycled == [1]

    def test_free_blocks_counted_separately(self):
        host = ProbeHost(free={0})
        leveler = SoftWearLeveler(4, host, period_requests=2, span_blocks=2)
        for _ in range(2):
            leveler.on_request()
        assert leveler.stats.skipped_free == 1
        assert leveler.stats.moves == 1

    def test_suspend_defers_resume_replays(self):
        host = ProbeHost()
        leveler = SoftWearLeveler(8, host, period_requests=2)
        leveler.suspend()
        for _ in range(3):
            leveler.on_request()
        assert host.recycled == []
        leveler.resume()
        assert host.recycled == [0]
        assert leveler.stats.scrubs == 1

    def test_o1_ram(self):
        assert SoftWearLeveler(1_000_000, ProbeHost()).ram_bytes == 8

    def test_snapshot_round_trip(self):
        host = ProbeHost()
        leveler = SoftWearLeveler(8, host, period_requests=4)
        leveler.on_block_retired(5)
        for _ in range(9):
            leveler.on_request(now=3.5)
        frozen = leveler.snapshot_state()
        twin = SoftWearLeveler(8, ProbeHost(), period_requests=4)
        twin.restore_state(frozen)
        assert twin.snapshot_state() == frozen
        assert twin.cursor == leveler.cursor
        assert twin.clock.requests == leveler.clock.requests

    def test_restore_rejects_mismatch(self):
        leveler = SoftWearLeveler(8, ProbeHost(), period_requests=4)
        frozen = leveler.snapshot_state()
        with pytest.raises(ValueError, match="period_requests"):
            SoftWearLeveler(8, ProbeHost(), period_requests=2).restore_state(
                frozen
            )
        with pytest.raises(ValueError, match="kind"):
            SoftWearLeveler(8, ProbeHost(), period_requests=4).restore_state(
                {**frozen, "kind": "dual-pool"}
            )
