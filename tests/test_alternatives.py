"""Tests for the counter-based (dual-pool) comparison leveler."""

from __future__ import annotations

import random

import pytest

from repro.core.alternatives import DualPoolLeveler
from repro.ftl.factory import build_stack


def attach_dual_pool(stack, **kwargs):
    leveler = DualPoolLeveler(stack.flash.erase_counts, stack.layer, **kwargs)
    stack.layer.attach_leveler(leveler)
    return leveler


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs", [{"delta": 0}, {"check_period": 0}, {"batch": 0}]
    )
    def test_validation(self, small_geometry, kwargs):
        stack = build_stack(small_geometry, "ftl")
        with pytest.raises(ValueError):
            DualPoolLeveler(stack.flash.erase_counts, stack.layer, **kwargs)

    def test_ram_cost_dwarfs_bet(self, small_geometry):
        from repro.analysis.memory import bet_size_bytes

        stack = build_stack(small_geometry, "ftl")
        leveler = DualPoolLeveler(stack.flash.erase_counts, stack.layer)
        # The paper's RAM argument: counters cost 32x a k=0 BET.
        assert leveler.ram_bytes == 32 * bet_size_bytes(
            small_geometry.num_blocks, 0
        )


class TestLeveling:
    def _run_hot_cold(self, stack, writes=30_000):
        layer = stack.layer
        rng = random.Random(4)
        # Pin cold data in half the logical space.
        half = layer.num_logical_pages // 2
        for lpn in range(half, layer.num_logical_pages):
            layer.write(lpn)
        for _ in range(writes):
            layer.write(rng.randrange(16))

    def test_evens_wear_like_swl(self, small_geometry):
        baseline = build_stack(small_geometry, "ftl")
        self._run_hot_cold(baseline)

        leveled = build_stack(small_geometry, "ftl")
        leveler = attach_dual_pool(leveled, delta=8, check_period=16)
        self._run_hot_cold(leveled)

        def deviation(counts):
            mean = sum(counts) / len(counts)
            return (sum((c - mean) ** 2 for c in counts) / len(counts)) ** 0.5

        assert leveler.stats.swaps > 0
        assert deviation(leveled.flash.erase_counts) < deviation(
            baseline.flash.erase_counts
        )

    def test_no_action_below_delta(self, small_geometry):
        stack = build_stack(small_geometry, "ftl")
        leveler = attach_dual_pool(stack, delta=10_000, check_period=8)
        self._run_hot_cold(stack, writes=5_000)
        assert leveler.stats.swaps == 0
        assert leveler.stats.checks > 0

    def test_overhead_attributed(self, small_geometry):
        stack = build_stack(small_geometry, "ftl")
        leveler = attach_dual_pool(stack, delta=8, check_period=16)
        self._run_hot_cold(stack)
        assert leveler.stats.swl_erases >= leveler.stats.swaps

    def test_works_on_nftl(self, small_geometry):
        stack = build_stack(small_geometry, "nftl")
        leveler = attach_dual_pool(stack, delta=8, check_period=16)
        self._run_hot_cold(stack, writes=15_000)
        assert leveler.stats.swaps > 0
        assert min(stack.flash.erase_counts) > 0


class TestSuspension:
    def test_deferred_while_suspended(self, small_geometry):
        stack = build_stack(small_geometry, "ftl")
        leveler = attach_dual_pool(stack, delta=1, check_period=1)
        leveler.suspend()
        stack.layer.write(0)
        # Manually pump erases through the hook while suspended.
        for _ in range(5):
            leveler.on_block_erased(0)
        swaps_before = leveler.stats.swaps
        leveler.resume()
        assert leveler.stats.checks >= 1 or swaps_before == leveler.stats.swaps

    def test_unbalanced_resume(self, small_geometry):
        stack = build_stack(small_geometry, "ftl")
        leveler = DualPoolLeveler(stack.flash.erase_counts, stack.layer)
        with pytest.raises(RuntimeError):
            leveler.resume()
