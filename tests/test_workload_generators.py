"""Workload-shape tests: seed stability, replay-RNG independence,
well-formedness, and the phase-shifting migration contract."""

from __future__ import annotations

import pytest

from repro.core.config import SWLConfig
from repro.sim.experiment import (
    ExperimentSpec,
    make_workload,
    run_fixed_horizon,
    scaled_mlc2_geometry,
    workload_params_for,
)
from repro.traces.model import Op
from repro.workloads import (
    SHAPE_NAMES,
    PhaseShiftingWorkload,
    SequentialStreamWorkload,
    ShapeParams,
    make_shape,
)

SECTORS = 4096


def take(shape, count):
    stream = shape.iter_requests()
    return [next(stream) for _ in range(count)]


class TestSeedStability:
    @pytest.mark.parametrize("name", SHAPE_NAMES)
    def test_same_seed_same_stream(self, name):
        params = ShapeParams(total_sectors=SECTORS, seed=42)
        first = take(make_shape(name, params), 500)
        second = take(make_shape(name, params), 500)
        assert first == second

    @pytest.mark.parametrize("name", SHAPE_NAMES)
    def test_different_seed_different_stream(self, name):
        a = take(make_shape(name, ShapeParams(total_sectors=SECTORS, seed=1)), 200)
        b = take(make_shape(name, ShapeParams(total_sectors=SECTORS, seed=2)), 200)
        # Arrival times are Poisson draws; different seeds must diverge.
        assert a != b

    @pytest.mark.parametrize("name", SHAPE_NAMES)
    def test_reiteration_replays_identically(self, name):
        # One shape instance restarts its stream on every iteration, so
        # a replay run and a service run can share it.
        shape = make_shape(name, ShapeParams(total_sectors=SECTORS, seed=9))
        assert take(shape, 300) == take(shape, 300)

    def test_shapes_with_same_seed_are_decorrelated(self):
        params = ShapeParams(total_sectors=SECTORS, seed=7)
        hotspot = take(make_shape("hotspot", params), 200)
        uniform = take(make_shape("uniform", params), 200)
        assert [r.lba for r in hotspot] != [r.lba for r in uniform]


class TestReplayIndependence:
    def test_golden_replay_unchanged_with_workloads_active(self):
        """Generator RNG is provably independent of replay RNG.

        The replay digest (``SimResult.as_dict``) must be bit-identical
        whether or not workload generators were built and consumed in
        the same process — workloads draw only from their own
        ``workload:*`` streams.
        """
        spec = ExperimentSpec(
            "ftl", scaled_mlc2_geometry(16, scale=100),
            SWLConfig(threshold=50.0), seed=3,
        )
        params = workload_params_for(spec, duration=900.0, seed=4)
        trace = make_workload(params).requests()
        before = run_fixed_horizon(spec, trace, 700.0).as_dict()
        # Interleave heavy workload-generator activity...
        for name in SHAPE_NAMES:
            take(make_shape(name, ShapeParams(total_sectors=SECTORS, seed=3)),
                 500)
        # ...and replay again: bit-identical.
        after = run_fixed_horizon(spec, trace, 700.0).as_dict()
        assert before == after


class TestWellFormedness:
    @pytest.mark.parametrize("name", SHAPE_NAMES)
    def test_streams_are_valid_requests(self, name):
        params = ShapeParams(total_sectors=SECTORS, seed=5)
        previous = 0.0
        for request in take(make_shape(name, params), 1000):
            assert request.time >= previous     # arrivals are monotone
            previous = request.time
            assert 0 <= request.lba < SECTORS
            assert 1 <= request.sectors <= params.request_sectors
            assert request.end_lba <= SECTORS

    def test_requests_materializer_bounds_duration(self):
        shape = make_shape("uniform", ShapeParams(total_sectors=SECTORS,
                                                  rate=10.0, seed=1))
        trace = shape.requests(60.0)
        assert trace
        assert all(r.time < 60.0 for r in trace)

    def test_read_fraction_changes_ops_not_lbas(self):
        writes = ShapeParams(total_sectors=SECTORS, seed=8)
        mixed = ShapeParams(total_sectors=SECTORS, seed=8, read_fraction=0.5)
        a = take(make_shape("hotspot", writes), 400)
        b = take(make_shape("hotspot", mixed), 400)
        assert [r.lba for r in a] == [r.lba for r in b]
        assert [r.time for r in a] == [r.time for r in b]
        assert all(r.op is Op.WRITE for r in a)
        assert any(r.op is Op.READ for r in b)

    def test_mixed_defaults_to_half_reads(self):
        shape = make_shape("mixed", ShapeParams(total_sectors=SECTORS, seed=2))
        assert shape.params.read_fraction == 0.5
        explicit = make_shape(
            "mixed",
            ShapeParams(total_sectors=SECTORS, seed=2, read_fraction=0.1),
        )
        assert explicit.params.read_fraction == 0.1

    def test_sequential_is_circular_and_in_order(self):
        params = ShapeParams(total_sectors=64, request_sectors=8, seed=1)
        shape = SequentialStreamWorkload(params)
        lbas = [r.lba for r in take(shape, 16)]
        assert lbas == [0, 8, 16, 24, 32, 40, 48, 56] * 2

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError, match="unknown workload shape"):
            make_shape("nope", ShapeParams(total_sectors=SECTORS))

    def test_param_validation(self):
        with pytest.raises(ValueError):
            ShapeParams(total_sectors=0)
        with pytest.raises(ValueError):
            ShapeParams(total_sectors=10, rate=0.0)
        with pytest.raises(ValueError):
            ShapeParams(total_sectors=10, read_fraction=1.0)
        with pytest.raises(ValueError):
            make_shape("phase", ShapeParams(total_sectors=10), period=0.0)
        with pytest.raises(ValueError):
            make_shape("hotspot", ShapeParams(total_sectors=10), theta=0.0)


class TestHotspotSkew:
    def test_theta_concentrates_traffic(self):
        params = ShapeParams(total_sectors=SECTORS, seed=6)
        skewed = take(make_shape("hotspot", params, theta=0.99), 2000)
        flat = take(make_shape("uniform", params), 2000)

        def top_chunk_share(requests):
            counts: dict[int, int] = {}
            for request in requests:
                counts[request.lba // 8] = counts.get(request.lba // 8, 0) + 1
            return max(counts.values()) / len(requests)

        assert top_chunk_share(skewed) > 3 * top_chunk_share(flat)


class TestPhaseShifting:
    def test_hot_set_migrates_between_phases(self):
        params = ShapeParams(total_sectors=SECTORS, rate=50.0, seed=11)
        shape = PhaseShiftingWorkload(params, period=100.0)

        def hot_chunks(lo, hi):
            counts: dict[int, int] = {}
            for request in shape.requests(hi):
                if lo <= request.time < hi:
                    chunk = request.lba // params.request_sectors
                    counts[chunk] = counts.get(chunk, 0) + 1
            top = sorted(counts, key=counts.get, reverse=True)
            return set(top[:5])

        first = hot_chunks(0.0, 100.0)
        second = hot_chunks(100.0, 200.0)
        assert first != second

    def test_phase_is_pure_function_of_time(self):
        # Identical (seed, time) prefix ⇒ identical stream, regardless
        # of how much of the stream was consumed before.
        params = ShapeParams(total_sectors=SECTORS, seed=12)
        shape = PhaseShiftingWorkload(params, period=50.0)
        long = shape.requests(300.0)
        short = shape.requests(150.0)
        assert long[: len(short)] == short
