"""Durability tests for the dual-buffer BET store.

Covers the failure modes the dual-buffer design exists for: both buffers
corrupt, torn writes, and — crucially — a process restart opening a fresh
``BetStore`` over existing slot files, which must keep alternating slots
from the on-media sequence instead of clobbering the newest image first.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.bet import BetStore, BlockErasingTable


def _table(marker: int) -> BlockErasingTable:
    """A distinguishable table: ``marker`` erases of block 0."""
    table = BlockErasingTable(16, k=0)
    for _ in range(marker):
        table.record_erase(0)
    return table


def _paths(tmp_path: Path) -> tuple[str, str]:
    return (str(tmp_path / "bet0.img"), str(tmp_path / "bet1.img"))


class TestCorruption:
    def test_both_buffers_corrupt_returns_none(self, tmp_path):
        paths = _paths(tmp_path)
        store = BetStore(paths)
        store.save(_table(1))
        store.save(_table(2))
        for path in paths:
            image = bytearray(Path(path).read_bytes())
            image[5] ^= 0xFF
            Path(path).write_bytes(bytes(image))
        assert BetStore(paths).load() is None

    def test_one_torn_buffer_falls_back_to_the_other(self, tmp_path):
        paths = _paths(tmp_path)
        store = BetStore(paths)
        store.save(_table(3))
        store.save(_table(7))
        # Tear the newest image (highest sequence); the stale one must load.
        newest = max(
            paths,
            key=lambda p: BlockErasingTable.from_bytes(Path(p).read_bytes())[1],
        )
        Path(newest).write_bytes(Path(newest).read_bytes()[:10])
        loaded = BetStore(paths).load()
        assert loaded is not None
        assert loaded.ecnt == 3

    def test_in_memory_backend_both_slots_empty(self):
        assert BetStore().load() is None


class TestRestartSequence:
    def test_fresh_store_resumes_the_sequence(self, tmp_path):
        paths = _paths(tmp_path)
        first = BetStore(paths)
        first.save(_table(1))   # seq 1 -> slot 1
        first.save(_table(2))   # seq 2 -> slot 0

        # Process restart: a brand-new store over the same files.  Its
        # next save must overwrite the *older* slot (seq 1), so that a
        # crash mid-save still leaves the seq-2 image intact.
        second = BetStore(paths)
        second.save(_table(9))  # must become seq 3 -> slot 1
        raws = [Path(p).read_bytes() for p in paths]
        sequences = sorted(
            BlockErasingTable.from_bytes(raw)[1] for raw in raws
        )
        assert sequences == [2, 3]
        assert BetStore(paths).load().ecnt == 9

    def test_round_trip_across_many_restarts(self, tmp_path):
        paths = _paths(tmp_path)
        for marker in range(1, 8):
            store = BetStore(paths)
            previous = store.load()
            if marker > 1:
                assert previous is not None
                assert previous.ecnt == marker - 1
            store.save(_table(marker))
        assert BetStore(paths).load().ecnt == 7

    def test_save_after_load_targets_the_stale_slot(self, tmp_path):
        paths = _paths(tmp_path)
        store = BetStore(paths)
        store.save(_table(4))
        reopened = BetStore(paths)
        assert reopened.load().ecnt == 4
        reopened.save(_table(5))
        # Both images are now valid and the newer one wins.
        assert BetStore(paths).load().ecnt == 5


class TestAtomicWrites:
    def test_no_temp_files_survive_a_save(self, tmp_path):
        paths = _paths(tmp_path)
        store = BetStore(paths)
        store.save(_table(1))
        store.save(_table(2))
        leftovers = [p.name for p in tmp_path.iterdir() if "tmp" in p.name]
        assert leftovers == []

    def test_overwrite_is_replace_not_truncate(self, tmp_path):
        # os.replace guarantees the slot is either the old image or the
        # new one; verify a second save of the same slot stays loadable.
        paths = _paths(tmp_path)
        store = BetStore(paths)
        for marker in range(1, 5):
            store.save(_table(marker))
            assert BetStore(paths).load().ecnt == marker
