"""Tests for the Block Erasing Table (paper Section 3.2, Algorithm 2)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.bet import BetStore, BlockErasingTable


class TestConstruction:
    def test_one_to_one_mode(self):
        bet = BlockErasingTable(16, k=0)
        assert bet.size == 16
        assert bet.nbytes == 2

    def test_one_to_many_mode(self):
        bet = BlockErasingTable(16, k=2)
        assert bet.size == 4  # one flag per 4 blocks

    def test_uneven_tail_set(self):
        bet = BlockErasingTable(10, k=2)
        assert bet.size == 3
        assert list(bet.blocks_in_set(2)) == [8, 9]

    @pytest.mark.parametrize("num_blocks,k", [(0, 0), (-1, 0), (8, -1)])
    def test_bad_parameters(self, num_blocks, k):
        with pytest.raises(ValueError):
            BlockErasingTable(num_blocks, k)

    def test_degenerate_k_rejected(self):
        with pytest.raises(ValueError, match="degenerate"):
            BlockErasingTable(8, k=4)  # 2^4 = 16 > 8 blocks

    def test_paper_table1_sizes(self):
        # Table 1: 4GB SLC large-block = 32,768 blocks -> 4096B at k=0,
        # 512B at k=3.
        assert BlockErasingTable(32_768, k=0).nbytes == 4096
        assert BlockErasingTable(32_768, k=3).nbytes == 512


class TestFlagMapping:
    def test_flag_index_is_floor_div(self):
        bet = BlockErasingTable(16, k=2)
        assert bet.flag_index(0) == 0
        assert bet.flag_index(3) == 0
        assert bet.flag_index(4) == 1
        assert bet.flag_index(15) == 3

    def test_flag_index_range_check(self):
        bet = BlockErasingTable(8, k=0)
        with pytest.raises(IndexError):
            bet.flag_index(8)

    def test_blocks_in_set_range_check(self):
        bet = BlockErasingTable(8, k=1)
        with pytest.raises(IndexError):
            bet.blocks_in_set(4)

    def test_blocks_in_set_roundtrip(self):
        bet = BlockErasingTable(32, k=3)
        for findex in range(bet.size):
            for block in bet.blocks_in_set(findex):
                assert bet.flag_index(block) == findex


class TestBetUpdate:
    """Algorithm 2: SWL-BETUpdate."""

    def test_first_erase_sets_flag_and_counters(self):
        bet = BlockErasingTable(8, k=0)
        assert bet.record_erase(3) is True
        assert bet.ecnt == 1
        assert bet.fcnt == 1
        assert bet.is_set(3)

    def test_repeat_erase_only_bumps_ecnt(self):
        bet = BlockErasingTable(8, k=0)
        bet.record_erase(3)
        assert bet.record_erase(3) is False
        assert bet.ecnt == 2
        assert bet.fcnt == 1

    def test_one_to_many_shares_flag(self):
        # Figure 3(b): "At least one of Block 2 and Block 3 has been erased."
        bet = BlockErasingTable(8, k=1)
        bet.record_erase(2)
        assert bet.is_set(bet.flag_index(3))
        bet.record_erase(3)
        assert bet.fcnt == 1
        assert bet.ecnt == 2

    def test_mark_handled_counts_no_erase(self):
        bet = BlockErasingTable(8, k=0)
        assert bet.mark_handled(5) is True
        assert bet.mark_handled(5) is False
        assert bet.fcnt == 1
        assert bet.ecnt == 0


class TestUnevenness:
    def test_zero_when_empty(self):
        assert BlockErasingTable(8).unevenness() == 0.0

    def test_ratio(self):
        bet = BlockErasingTable(8)
        for _ in range(10):
            bet.record_erase(0)
        assert bet.unevenness() == 10.0
        bet.record_erase(1)
        assert bet.unevenness() == pytest.approx(11 / 2)

    def test_all_flags_set(self):
        bet = BlockErasingTable(4, k=1)
        assert not bet.all_flags_set()
        bet.record_erase(0)
        bet.record_erase(2)
        assert bet.all_flags_set()


class TestScanAndReset:
    def test_next_zero_flag(self):
        bet = BlockErasingTable(8, k=0)
        bet.record_erase(0)
        bet.record_erase(1)
        assert bet.next_zero_flag(0) == 2
        assert bet.next_zero_flag(7) == 7

    def test_next_zero_flag_wraps_modulo(self):
        bet = BlockErasingTable(8, k=0)
        assert bet.next_zero_flag(13) == 5  # 13 % 8

    def test_zero_flags(self):
        bet = BlockErasingTable(4, k=0)
        bet.record_erase(1)
        assert bet.zero_flags() == [0, 2, 3]

    def test_reset_starts_new_interval(self):
        bet = BlockErasingTable(8, k=0)
        for block in range(8):
            bet.record_erase(block)
        bet.reset()
        assert bet.ecnt == 0
        assert bet.fcnt == 0
        assert bet.resets == 1
        assert bet.zero_flags() == list(range(8))


class TestPersistence:
    def test_roundtrip(self):
        bet = BlockErasingTable(12, k=1)
        for block in (0, 1, 7):
            bet.record_erase(block)
        restored, sequence = BlockErasingTable.from_bytes(bet.to_bytes(sequence=9))
        assert sequence == 9
        assert restored.num_blocks == 12
        assert restored.k == 1
        assert restored.ecnt == bet.ecnt
        assert restored.fcnt == bet.fcnt
        assert restored.zero_flags() == bet.zero_flags()

    def test_crc_detects_corruption(self):
        raw = bytearray(BlockErasingTable(8).to_bytes())
        raw[10] ^= 0x01
        with pytest.raises(ValueError, match="CRC"):
            BlockErasingTable.from_bytes(bytes(raw))

    def test_truncated_rejected(self):
        with pytest.raises(ValueError, match="truncated"):
            BlockErasingTable.from_bytes(b"\x00" * 4)

    def test_bad_magic_rejected(self):
        raw = bytearray(BlockErasingTable(8).to_bytes())
        raw[0:4] = b"XXXX"
        # Recompute a valid CRC over the corrupted body so only the magic
        # check can fire.
        import struct
        import zlib

        body = bytes(raw[:-4])
        raw[-4:] = struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)
        with pytest.raises(ValueError, match="magic"):
            BlockErasingTable.from_bytes(bytes(raw))

    def test_counter_mismatch_rejected(self):
        bet = BlockErasingTable(8)
        bet.record_erase(0)
        bet.fcnt = 5  # corrupt the counter
        raw = bet.to_bytes()
        with pytest.raises(ValueError, match="disagrees"):
            BlockErasingTable.from_bytes(raw)


class TestBetStore:
    """Section 3.2: dual-buffer crash resistance."""

    def test_empty_store_loads_none(self):
        assert BetStore().load() is None

    def test_save_load(self):
        store = BetStore()
        bet = BlockErasingTable(8)
        bet.record_erase(2)
        store.save(bet)
        loaded = store.load()
        assert loaded is not None
        assert loaded.is_set(2)

    def test_newest_wins(self):
        store = BetStore()
        first = BlockErasingTable(8)
        first.record_erase(0)
        store.save(first)
        second = BlockErasingTable(8)
        second.record_erase(7)
        store.save(second)
        loaded = store.load()
        assert loaded.is_set(7)
        assert not loaded.is_set(0)

    def test_corrupt_slot_falls_back(self):
        store = BetStore()
        first = BlockErasingTable(8)
        first.record_erase(1)
        store.save(first)
        second = BlockErasingTable(8)
        second.record_erase(2)
        store.save(second)
        # Crash mid-save: corrupt the slot holding the newest (seq 2) image.
        for index in range(2):
            data = store._slots[index].data
            if data is not None:
                _, seq = BlockErasingTable.from_bytes(data)
                if seq == 2:
                    store._slots[index].data = data[:-1] + b"\x00"
        loaded = store.load()
        assert loaded is not None
        assert loaded.is_set(1)  # fell back to the older image

    def test_file_backend_roundtrip(self, tmp_path):
        paths = (str(tmp_path / "bet0.bin"), str(tmp_path / "bet1.bin"))
        store = BetStore(paths)
        bet = BlockErasingTable(16, k=1)
        bet.record_erase(9)
        store.save(bet)
        fresh_store = BetStore(paths)
        loaded = fresh_store.load()
        assert loaded is not None
        assert loaded.is_set(loaded.flag_index(9))

    def test_file_backend_missing_files(self, tmp_path):
        store = BetStore((str(tmp_path / "a"), str(tmp_path / "b")))
        assert store.load() is None

    def test_alternating_slots(self):
        store = BetStore()
        for index in range(4):
            bet = BlockErasingTable(8)
            bet.record_erase(index)
            store.save(bet)
        assert store._slots[0].data is not None
        assert store._slots[1].data is not None


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
@given(
    num_blocks=st.integers(1, 300),
    k=st.integers(0, 4),
    erases=st.lists(st.integers(0, 10_000), max_size=300),
)
def test_counters_always_consistent(num_blocks, k, erases):
    if (1 << k) > num_blocks:
        k = 0
    bet = BlockErasingTable(num_blocks, k)
    for raw in erases:
        bet.record_erase(raw % num_blocks)
    assert bet.ecnt == len(erases)
    assert bet.fcnt == bet.size - len(bet.zero_flags())
    assert 0 <= bet.fcnt <= bet.size
    if bet.fcnt:
        assert bet.unevenness() >= 1.0  # each flag needs >= 1 erase


@given(
    num_blocks=st.integers(1, 128),
    k=st.integers(0, 3),
    erases=st.lists(st.integers(0, 10_000), max_size=100),
    sequence=st.integers(0, 2**32),
)
def test_persistence_roundtrip_property(num_blocks, k, erases, sequence):
    if (1 << k) > num_blocks:
        k = 0
    bet = BlockErasingTable(num_blocks, k)
    for raw in erases:
        bet.record_erase(raw % num_blocks)
    restored, seq = BlockErasingTable.from_bytes(bet.to_bytes(sequence=sequence))
    assert seq == sequence
    assert restored.ecnt == bet.ecnt
    assert restored.fcnt == bet.fcnt
    assert restored.zero_flags() == bet.zero_flags()
