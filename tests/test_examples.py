"""Smoke tests: the fast example scripts run end-to-end."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestExampleScripts:
    def test_examples_exist(self):
        expected = {
            "quickstart.py",
            "mobile_pc_endurance.py",
            "disk_cache_wear.py",
            "bet_tuning.py",
            "crash_recovery.py",
            "mlc_vs_slc.py",
            "workload_comparison.py",
            "filesystem_stack.py",
            "multi_tenant_endurance.py",
        }
        present = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert expected <= present

    def test_quickstart_runs(self, capsys):
        module = load_example("quickstart")
        module.main()
        out = capsys.readouterr().out
        assert "Erase-count distribution" in out
        assert "deviation" in out

    def test_crash_recovery_runs(self, capsys):
        module = load_example("crash_recovery")
        module.main()
        out = capsys.readouterr().out
        assert "verified intact" in out
        assert "ok" in out

    @pytest.mark.parametrize(
        "name",
        ["mobile_pc_endurance", "disk_cache_wear", "bet_tuning", "mlc_vs_slc",
         "workload_comparison", "filesystem_stack", "multi_tenant_endurance"],
    )
    def test_long_examples_importable(self, name):
        # The long-running examples are exercised manually; importing them
        # must at least succeed and expose a main().
        module = load_example(name)
        assert callable(module.main)
