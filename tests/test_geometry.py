"""Tests for NAND geometries and the catalog parts of the paper."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.flash.geometry import (
    GIB,
    MIB,
    MLC2_1GB,
    MLC2_BENCH,
    MLC2_TINY,
    CellType,
    FlashGeometry,
    mlc2,
    slc_large_block,
    slc_small_block,
)


class TestPaperParts:
    """Section 1 / 5.1 fix these organizations exactly."""

    def test_small_block_slc(self):
        geometry = slc_small_block(128 * MIB)
        assert geometry.page_size == 512
        assert geometry.pages_per_block == 32
        assert geometry.endurance == 100_000
        assert geometry.capacity_bytes == 128 * MIB

    def test_large_block_slc(self):
        geometry = slc_large_block(1 * GIB)
        assert geometry.page_size == 2048
        assert geometry.pages_per_block == 64
        assert geometry.endurance == 100_000

    def test_mlc2_matches_paper_evaluation_chip(self):
        # Section 5.1: 1GB MLC x2, 128 pages/block, 2KB pages, 2,097,152 LBAs.
        assert MLC2_1GB.pages_per_block == 128
        assert MLC2_1GB.page_size == 2048
        assert MLC2_1GB.endurance == 10_000
        assert MLC2_1GB.total_sectors == 2_097_152
        assert MLC2_1GB.num_blocks == 4096
        assert MLC2_1GB.cell_type is CellType.MLC2

    def test_bench_part_keeps_block_organization(self):
        assert MLC2_BENCH.pages_per_block == MLC2_1GB.pages_per_block
        assert MLC2_BENCH.page_size == MLC2_1GB.page_size
        assert MLC2_BENCH.num_blocks < MLC2_1GB.num_blocks

    def test_tiny_part_is_valid(self):
        assert MLC2_TINY.total_pages == 32 * 8


class TestDerivedSizes:
    def test_totals(self):
        geometry = FlashGeometry(4, 8, 2048, 10)
        assert geometry.total_pages == 32
        assert geometry.block_size == 16384
        assert geometry.capacity_bytes == 4 * 16384
        assert geometry.sectors_per_page == 4
        assert geometry.total_sectors == 128

    def test_scaled(self):
        scaled = MLC2_1GB.scaled(num_blocks=64, endurance=100)
        assert scaled.num_blocks == 64
        assert scaled.endurance == 100
        assert scaled.pages_per_block == MLC2_1GB.pages_per_block

    def test_scaled_keeps_endurance_when_omitted(self):
        assert MLC2_1GB.scaled(num_blocks=64).endurance == 10_000


class TestAddressing:
    def test_page_index_roundtrip(self):
        geometry = FlashGeometry(10, 16, 512, 5)
        for index in (0, 1, 159):
            assert geometry.page_index(*geometry.page_address(index)) == index

    def test_contains(self):
        geometry = FlashGeometry(2, 4, 512, 5)
        assert geometry.contains_page(1, 3)
        assert not geometry.contains_page(2, 0)
        assert not geometry.contains_page(0, 4)
        assert not geometry.contains_block(-1)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_blocks": 0},
            {"pages_per_block": 0},
            {"page_size": 0},
            {"page_size": 100},  # not a sector multiple
            {"endurance": 0},
        ],
    )
    def test_bad_fields_rejected(self, kwargs):
        fields = {"num_blocks": 4, "pages_per_block": 4, "page_size": 512,
                  "endurance": 10}
        fields.update(kwargs)
        with pytest.raises(ValueError):
            FlashGeometry(**fields)

    def test_non_whole_block_capacity_rejected(self):
        with pytest.raises(ValueError, match="whole number"):
            mlc2(100)  # 100 bytes is not a whole 256 KB block


@given(
    num_blocks=st.integers(1, 512),
    pages_per_block=st.integers(1, 256),
    index=st.integers(0, 10**6),
)
def test_page_address_roundtrip_property(num_blocks, pages_per_block, index):
    geometry = FlashGeometry(num_blocks, pages_per_block, 512, 10)
    index %= geometry.total_pages
    block, page = geometry.page_address(index)
    assert 0 <= block < num_blocks
    assert 0 <= page < pages_per_block
    assert geometry.page_index(block, page) == index
