"""Statistical tests on the 10-minute segment resampler (Section 5.1).

The derived endless trace must preserve the base trace's long-run request
rates and its cold-write density — the properties the paper's protocol
relies on.
"""

from __future__ import annotations

import pytest

from repro.traces.extend import SegmentResampler
from repro.traces.generator import MobilePCWorkload, Temperature, WorkloadParams
from repro.util.rng import make_rng


@pytest.fixture(scope="module")
def base():
    params = WorkloadParams(
        total_sectors=131_072, duration=12 * 3600.0, seed=21
    )
    workload = MobilePCWorkload(params)
    return workload, workload.requests()


def take_seconds(resampler, seconds):
    out = []
    for request in resampler.iter_requests():
        if request.time > seconds:
            break
        out.append(request)
    return out


class TestRateConservation:
    def test_long_run_write_rate_matches_base(self, base):
        workload, trace = base
        writes = sum(1 for request in trace if request.is_write())
        base_rate = writes / trace[-1].time
        resampler = SegmentResampler(trace, rng=make_rng(3))
        horizon = 8 * 3600.0
        resampled = take_seconds(resampler, horizon)
        rate = sum(1 for request in resampled if request.is_write()) / horizon
        assert rate == pytest.approx(base_rate, rel=0.2)

    def test_sector_volume_conserved(self, base):
        workload, trace = base
        base_volume = sum(
            request.sectors for request in trace if request.is_write()
        ) / trace[-1].time
        resampler = SegmentResampler(trace, rng=make_rng(4))
        horizon = 8 * 3600.0
        resampled = take_seconds(resampler, horizon)
        volume = sum(
            request.sectors for request in resampled if request.is_write()
        ) / horizon
        assert volume == pytest.approx(base_volume, rel=0.25)


class TestColdWriteDensity:
    def test_static_rewrites_recur_in_endless_trace(self, base):
        workload, trace = base
        static_starts = {
            extent.start
            for extent in workload.extents
            if extent.temperature is Temperature.STATIC
        }
        # With cold_write_period = 1 month and a 12h base, static rewrites
        # are rare but present; the resampler replays them at the same
        # density, so a long enough horizon contains some.
        base_hits = sum(
            1 for request in trace
            if request.is_write() and request.lba in static_starts
        )
        resampler = SegmentResampler(trace, rng=make_rng(5))
        resampled = take_seconds(resampler, 24 * 3600.0)
        hits = sum(
            1 for request in resampled
            if request.is_write() and request.lba in static_starts
        )
        if base_hits == 0:
            assert hits == 0
        else:
            assert hits >= 1

    def test_hot_share_preserved(self, base):
        workload, trace = base
        hot_spans = [
            (extent.start, extent.start + extent.length)
            for extent in workload.extents
            if extent.temperature is Temperature.HOT
        ]

        def hot_share(requests):
            writes = [request for request in requests if request.is_write()]
            hot = sum(
                1 for request in writes
                if any(start <= request.lba < end for start, end in hot_spans)
            )
            return hot / max(1, len(writes))

        resampler = SegmentResampler(trace, rng=make_rng(6))
        resampled = take_seconds(resampler, 6 * 3600.0)
        assert hot_share(resampled) == pytest.approx(hot_share(trace), abs=0.1)
