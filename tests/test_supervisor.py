"""Campaign supervisor: retry, resume, quarantine, and the partial report.

These tests inject real process-level failures — SIGKILL mid-cell, hung
workers — through the supervisor's fork-inherited test hooks, and assert
the campaign completes with results bit-identical to an undisturbed run
(crash path) or with deterministically rotated retry seeds (hang path).
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

import repro.ckpt.supervisor as supervisor_module
from repro.ckpt import (
    CampaignReport,
    SupervisorPolicy,
    retry_seed,
    run_supervised_matrix,
)
from repro.core.config import SWLConfig
from repro.sim.experiment import (
    ExperimentSpec,
    make_base_trace,
    run_matrix,
    scaled_mlc2_geometry,
    workload_params_for,
)
from repro.sim.reporting import campaign_markdown_report


def specs_pair() -> list[ExperimentSpec]:
    geometry = scaled_mlc2_geometry(24, scale=100)
    return [
        ExperimentSpec("ftl", geometry, None, seed=7),
        ExperimentSpec(
            "ftl", geometry, SWLConfig(enabled=True, threshold=10, k=0), seed=7
        ),
    ]


@pytest.fixture(scope="module")
def shared_trace():
    params = workload_params_for(specs_pair()[0], duration=1200.0, seed=3)
    return make_base_trace(params)


@pytest.fixture(scope="module")
def clean_results(shared_trace):
    return run_matrix(specs_pair(), shared_trace)


def fast_policy(workdir, **overrides) -> SupervisorPolicy:
    defaults = dict(
        workdir=workdir,
        max_attempts=3,
        backoff=0.01,
        checkpoint_every_requests=2_000,
        poll_interval=0.02,
    )
    defaults.update(overrides)
    return SupervisorPolicy(**defaults)


def as_blob(result) -> str:
    return json.dumps(result.as_dict(), sort_keys=True)


class TestSupervisedMatrix:
    def test_undisturbed_matches_run_matrix(
        self, shared_trace, clean_results, tmp_path
    ):
        report = run_supervised_matrix(
            specs_pair(), shared_trace, workers=2,
            policy=fast_policy(tmp_path / "camp"),
        )
        assert report.ok
        assert [cell.attempts for cell in report.cells] == [1, 1]
        assert [as_blob(r) for r in report.results()] == [
            as_blob(r) for r in clean_results
        ]

    def test_sigkilled_worker_resumes_bit_identically(
        self, shared_trace, clean_results, tmp_path, monkeypatch
    ):
        def kill_first_attempt(index, attempt, count):
            if index == 1 and attempt == 1 and count >= 2:
                os.kill(os.getpid(), signal.SIGKILL)

        monkeypatch.setattr(
            supervisor_module, "_checkpoint_observer", kill_first_attempt
        )
        report = run_supervised_matrix(
            specs_pair(), shared_trace, workers=2,
            policy=fast_policy(tmp_path / "camp"),
        )
        assert report.ok
        killed = report.cells[1]
        assert killed.attempts == 2
        # The retry resumed the checkpoint — same seed, not a rotated one.
        assert killed.seeds == [7, 7]
        assert [as_blob(r) for r in report.results()] == [
            as_blob(r) for r in clean_results
        ]

    def test_hung_worker_is_killed_and_reseeded(
        self, shared_trace, tmp_path, monkeypatch
    ):
        def hang_first_attempt(index, attempt):
            if index == 0 and attempt == 1:
                time.sleep(3600)

        monkeypatch.setattr(
            supervisor_module, "_disturbance", hang_first_attempt
        )
        report = run_supervised_matrix(
            specs_pair(), shared_trace, workers=2,
            policy=fast_policy(tmp_path / "camp", timeout=15.0),
        )
        assert report.ok
        hung = report.cells[0]
        assert hung.attempts == 2
        # A hang retries from scratch with the derived attempt-2 seed.
        assert hung.seeds == [7, retry_seed(7, 2)]
        assert hung.result is not None

    def test_exhausted_retries_quarantine_not_raise(
        self, shared_trace, tmp_path, monkeypatch
    ):
        def always_die(index, attempt):
            if index == 0:
                raise RuntimeError("synthetic failure")

        monkeypatch.setattr(supervisor_module, "_disturbance", always_die)
        report = run_supervised_matrix(
            specs_pair(), shared_trace, workers=2,
            policy=fast_policy(tmp_path / "camp", max_attempts=2),
        )
        assert not report.ok
        bad, good = report.cells
        assert bad.status == "quarantined"
        assert bad.attempts == 2
        assert "synthetic failure" in (bad.error or "")
        assert bad.result is None
        assert good.ok and good.result is not None
        assert report.results()[0] is None

    def test_restarted_supervisor_adopts_finished_cells(
        self, shared_trace, clean_results, tmp_path, monkeypatch
    ):
        # First campaign: one cell quarantined, the other finished.
        def always_die(index, attempt):
            if index == 0:
                raise RuntimeError("boom")

        monkeypatch.setattr(supervisor_module, "_disturbance", always_die)
        workdir = tmp_path / "camp"
        first = run_supervised_matrix(
            specs_pair(), shared_trace, workers=2,
            policy=fast_policy(workdir, max_attempts=1),
        )
        assert not first.ok

        # Second campaign over the same workdir: the finished cell is
        # adopted from disk (attempt counter does not advance), and the
        # quarantined one gets fresh attempts now that the fault cleared —
        # continuing the attempt numbering recorded in its sidecar, so the
        # retry runs with the deterministically rotated attempt-2 seed.
        monkeypatch.setattr(supervisor_module, "_disturbance", None)
        second = run_supervised_matrix(
            specs_pair(), shared_trace, workers=2,
            policy=fast_policy(workdir),
        )
        assert second.ok
        assert second.cells[1].attempts == 1
        assert as_blob(second.results()[1]) == as_blob(clean_results[1])
        revived = second.cells[0]
        assert revived.attempts == 2
        assert revived.seeds == [7, retry_seed(7, 2)]
        assert revived.result is not None

    def test_run_matrix_policy_delegates_to_supervisor(
        self, shared_trace, clean_results, tmp_path, monkeypatch
    ):
        def always_die(index, attempt):
            if index == 0:
                raise RuntimeError("boom")

        monkeypatch.setattr(supervisor_module, "_disturbance", always_die)
        results = run_matrix(
            specs_pair(), shared_trace, workers=2,
            policy=fast_policy(tmp_path / "camp", max_attempts=2),
        )
        assert results[0] is None
        assert as_blob(results[1]) == as_blob(clean_results[1])


class TestRetrySeeds:
    def test_deterministic_and_distinct(self):
        assert retry_seed(7, 2) == retry_seed(7, 2)
        seeds = {retry_seed(7, attempt) for attempt in range(2, 10)}
        assert len(seeds) == 8
        assert 7 not in seeds
        assert retry_seed(7, 2) != retry_seed(8, 2)


class TestCampaignMarkdown:
    def test_report_logs_attempts_and_quarantine(
        self, shared_trace, tmp_path, monkeypatch
    ):
        def always_die(index, attempt):
            if index == 0:
                raise RuntimeError("synthetic failure")

        monkeypatch.setattr(supervisor_module, "_disturbance", always_die)
        report = run_supervised_matrix(
            specs_pair(), shared_trace, workers=2,
            policy=fast_policy(tmp_path / "camp", max_attempts=2),
        )
        document = campaign_markdown_report(report, title="Sweep under test")
        assert "# Sweep under test" in document
        assert "## Supervision" in document
        assert "1/2 cells finished; 1 quarantined" in document
        assert "| Attempts |" in document
        assert "**quarantined** | 2 |" in document
        assert "## Quarantined cells" in document
        assert "synthetic failure" in document
        # The surviving cell still gets the full per-run body.
        assert "## Summary" in document
        assert report.cells[1].label in document

    def test_all_ok_report_has_no_quarantine_section(self, tmp_path):
        # Render-only check with a synthetic finished campaign.
        from repro.ckpt.supervisor import CellOutcome
        from repro.sim.experiment import run_until_first_failure

        spec = specs_pair()[0]
        params = workload_params_for(spec, duration=1200.0, seed=3)
        trace = make_base_trace(params)
        result = run_until_first_failure(spec, trace)
        report = CampaignReport(cells=[
            CellOutcome(
                index=0, label=spec.label(), status="ok",
                attempts=1, seeds=[7], result=result,
            )
        ])
        document = campaign_markdown_report(report)
        assert "## Quarantined cells" not in document
        assert "1/1 cells finished" in document
