"""Tests for the plain-text figure renderer."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.analysis.figures import bar_chart, series_chart, sparkline, wear_map


class TestBarChart:
    def test_basic_render(self):
        chart = bar_chart({"FTL": 100.0, "FTL+SWL": 105.7}, title="Fig")
        lines = chart.splitlines()
        assert lines[0] == "Fig"
        assert "FTL    " in lines[1]
        assert "105.7" in lines[2]

    def test_baseline_shifts_origin(self):
        chart = bar_chart({"a": 100.0, "b": 110.0}, baseline=100.0, width=10)
        a_line, b_line = chart.splitlines()
        assert a_line.count("█") == 0   # at the baseline: empty bar
        assert b_line.count("█") == 10  # the max fills the width

    def test_unit_suffix(self):
        assert "7%" in bar_chart({"x": 7.0}, unit="%")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})


class TestSparkline:
    def test_constant_series_is_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_series_ascends(self):
        line = sparkline([0, 1, 2, 3])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert list(line) == sorted(line)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])

    @given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=50))
    def test_length_preserved(self, values):
        assert len(sparkline(values)) == len(values)


class TestSeriesChart:
    def test_figure5_layout(self):
        chart = series_chart(
            [0, 1, 2, 3],
            {"T=100": [10, 9, 8, 8], "T=1000": [4, 4, 3, 3]},
            title="Figure 5(a)",
        )
        assert "Figure 5(a)" in chart
        assert "x = 0, 1, 2, 3" in chart
        assert "T=100" in chart and "T=1000" in chart

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="points"):
            series_chart([0, 1], {"s": [1.0]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            series_chart([0], {})


class TestWearMap:
    def test_shape(self):
        chart = wear_map([0] * 64 + [100] * 64, columns=32)
        lines = chart.splitlines()
        assert len(lines) == 5  # 4 rows + scale line
        assert lines[0] == "▁" * 32
        assert lines[3] == "█" * 32
        assert "scale" in lines[-1]

    def test_all_zero(self):
        chart = wear_map([0, 0, 0])
        assert "▁▁▁" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            wear_map([])
