"""Tests for the additional synthetic workload families."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.traces.model import Op
from repro.traces.synthetic import (
    SequentialLogWorkload,
    SyntheticParams,
    UniformWorkload,
    ZipfianWorkload,
    theoretical_skew,
)


def params(**overrides):
    defaults = dict(total_sectors=4096, duration=600.0, write_rate=20.0,
                    request_sectors=8, pinned_fraction=0.5, seed=1)
    defaults.update(overrides)
    return SyntheticParams(**defaults)


class TestParams:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"total_sectors": 0},
            {"duration": 0},
            {"write_rate": 0},
            {"request_sectors": 0},
            {"pinned_fraction": 1.0},
            {"pinned_fraction": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            params(**kwargs)

    def test_region_split(self):
        p = params(total_sectors=1000, pinned_fraction=0.3)
        assert p.pinned_sectors == 300
        assert p.active_sectors == 700


class TestCommonBehaviour:
    @pytest.mark.parametrize(
        "factory",
        [UniformWorkload, SequentialLogWorkload,
         lambda p: ZipfianWorkload(p, alpha=1.0)],
        ids=["uniform", "log", "zipf"],
    )
    def test_stream_well_formed(self, factory):
        p = params()
        workload = factory(p)
        trace = workload.requests()
        assert trace
        last = 0.0
        for request in trace:
            assert request.op is Op.WRITE
            assert request.time >= last
            last = request.time
            assert p.pinned_sectors <= request.lba < p.total_sectors
            assert request.end_lba <= p.total_sectors

    @pytest.mark.parametrize(
        "factory",
        [UniformWorkload, SequentialLogWorkload,
         lambda p: ZipfianWorkload(p, alpha=1.0)],
        ids=["uniform", "log", "zipf"],
    )
    def test_deterministic(self, factory):
        assert factory(params()).requests() == factory(params()).requests()

    def test_prefill_covers_pinned_region(self):
        p = params()
        workload = UniformWorkload(p)
        covered = set()
        for request in workload.prefill_requests():
            covered.update(range(request.lba, request.end_lba))
        assert covered == set(range(p.pinned_sectors))

    def test_rate_approximately_honoured(self):
        p = params(duration=3600.0, write_rate=5.0)
        trace = UniformWorkload(p).requests()
        assert len(trace) == pytest.approx(5.0 * 3600.0, rel=0.1)


class TestSkewOrdering:
    def test_zipf_skews_more_than_uniform(self):
        p = params()
        uniform = theoretical_skew(UniformWorkload(p))
        zipf = theoretical_skew(ZipfianWorkload(p, alpha=1.2))
        assert zipf > uniform

    def test_log_workload_cycles_evenly(self):
        p = params()
        skew = theoretical_skew(SequentialLogWorkload(p))
        assert skew < 0.2  # round-robin: near-uniform chunk popularity

    def test_higher_alpha_more_skew(self):
        p = params()
        mild = theoretical_skew(ZipfianWorkload(p, alpha=0.6))
        steep = theoretical_skew(ZipfianWorkload(p, alpha=2.0))
        assert steep > mild

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            ZipfianWorkload(params(), alpha=0)


class TestLogCursor:
    def test_wraps_cleanly(self):
        p = params(total_sectors=256, pinned_fraction=0.5, request_sectors=16,
                   duration=10_000.0, write_rate=1.0)
        workload = SequentialLogWorkload(p)
        lbas = [workload._next_lba() for _ in range(20)]
        # 128 active sectors / 16 per request = 8 distinct positions.
        assert sorted(set(lbas)) == [128 + 16 * i for i in range(8)]


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 1000),
    pinned=st.floats(0.0, 0.9),
)
def test_streams_never_touch_pinned_region(seed, pinned):
    p = params(seed=seed, pinned_fraction=pinned)
    for workload in (UniformWorkload(p), SequentialLogWorkload(p),
                     ZipfianWorkload(p, alpha=1.0)):
        for request in list(workload.iter_requests())[:200]:
            assert request.lba >= p.pinned_sectors
