"""Resume bit-identity across trigger policies and challenger mechanisms.

The checkpoint contract (see ``tests/test_ckpt.py``) is proved here for
the configurations the golden hash does not cover: every trigger policy
of the paper's SW Leveler, the random selection policy, and each
registry challenger (:class:`~repro.core.policies.LevelerSpec` kinds).
An interrupted-and-resumed replay must hash identically to the
uninterrupted one, and the registry's ``"swl"`` kind must reproduce the
classic ``SWLConfig`` stack bit for bit — the committed golden hash.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.ckpt import CheckpointPolicy, ReplayInterrupted, run_resumable
from repro.core.config import SWLConfig
from repro.core.policies import LevelerSpec
from repro.sim.experiment import (
    ExperimentSpec,
    make_base_trace,
    scaled_mlc2_geometry,
    workload_params_for,
)

#: Same constant as ``tests/test_ckpt.py``: the uninterrupted fixed-seed
#: golden replay.  The registry's paper-SWL kind must land on it too.
GOLDEN_SHA256 = (
    "0b4613179265a40590cfe4f5123c2ee5db75b49fb3e5a886aa94c3f09b36e282"
)


def result_sha256(result) -> str:
    blob = json.dumps(
        result.as_dict(), sort_keys=True, separators=(",", ":")
    ).encode()
    return hashlib.sha256(blob).hexdigest()


def _spec(swl) -> ExperimentSpec:
    return ExperimentSpec(
        "ftl", scaled_mlc2_geometry(24, scale=100), swl, seed=11
    )


@pytest.fixture(scope="module")
def resume_trace():
    spec = _spec(SWLConfig(enabled=True, threshold=8, k=0))
    params = workload_params_for(spec, duration=900.0, seed=5)
    return make_base_trace(params)


#: One configuration per trigger policy, plus the random selection
#: ablation and one LevelerSpec per challenger mechanism.
RESUME_VARIANTS = [
    pytest.param(
        SWLConfig(enabled=True, threshold=8, k=0), id="swl-on-erase"
    ),
    pytest.param(
        SWLConfig(
            enabled=True,
            threshold=8,
            k=0,
            trigger="every-n-requests",
            trigger_param=64,
        ),
        id="swl-every-n-requests",
    ),
    pytest.param(
        SWLConfig(
            enabled=True, threshold=8, k=0, trigger="periodic",
            trigger_param=120.0,
        ),
        id="swl-periodic",
    ),
    pytest.param(
        SWLConfig(enabled=True, threshold=8, k=0, selection="random"),
        id="swl-random-selection",
    ),
    pytest.param(
        LevelerSpec(kind="dual-pool", delta=4, check_period=16),
        id="dual-pool",
    ),
    pytest.param(
        LevelerSpec(kind="cache-avoid", cache_pages=16), id="cache-avoid"
    ),
    pytest.param(
        LevelerSpec(kind="softwear", period_requests=128), id="softwear"
    ),
]


@pytest.mark.parametrize("swl", RESUME_VARIANTS)
def test_interrupted_resume_is_bit_identical(swl, resume_trace, tmp_path):
    """Crash mid-replay, resume, and land on the uninterrupted hash."""
    spec = _spec(swl)
    uninterrupted = run_resumable(spec, resume_trace)
    path = tmp_path / "resume.ckpt"
    with pytest.raises(ReplayInterrupted):
        run_resumable(
            spec,
            resume_trace,
            checkpoint=CheckpointPolicy(path, every_requests=2_000, crash_after=3),
        )
    resumed = run_resumable(spec, resume_trace, resume_from=path)
    assert result_sha256(resumed) == result_sha256(uninterrupted)


def test_leveler_spec_swl_matches_swlconfig_golden():
    """The registry's paper-SWL kind is the classic stack, bit for bit."""
    spec = ExperimentSpec(
        "ftl",
        scaled_mlc2_geometry(32, scale=100),
        LevelerSpec(kind="swl", threshold=10, k=0),
        seed=7,
    )
    trace = make_base_trace(workload_params_for(spec, duration=1200.0, seed=3))
    assert result_sha256(run_resumable(spec, trace)) == GOLDEN_SHA256


# ----------------------------------------------------------------------
# Leveler-level snapshot policy identity (satellite: snapshot_state /
# restore_state carry the trigger and selection policy and reject
# mismatched configurations instead of silently resuming wrong)
# ----------------------------------------------------------------------
class _Host:
    def recycle_block_range(self, blocks):
        return 0

    def swl_cost_probe(self):
        return (0, 0)


def _swl(**kwargs):
    return SWLConfig(enabled=True, threshold=50, **kwargs).build(16, _Host())


class TestSnapshotPolicyIdentity:
    def test_trigger_kind_mismatch_rejected(self):
        source = _swl(trigger="every-n-requests", trigger_param=8)
        target = _swl(trigger="periodic", trigger_param=60.0)
        with pytest.raises(ValueError, match="trigger policy"):
            target.restore_state(source.snapshot_state())

    def test_trigger_param_mismatch_rejected(self):
        source = _swl(trigger="every-n-requests", trigger_param=8)
        target = _swl(trigger="every-n-requests", trigger_param=16)
        with pytest.raises(ValueError, match="does not match"):
            target.restore_state(source.snapshot_state())

    def test_selection_mismatch_rejected(self):
        source = _swl(selection="random")
        target = _swl(selection="sequential")
        with pytest.raises(ValueError, match="selection policy"):
            target.restore_state(source.snapshot_state())

    def test_trigger_cursor_round_trips(self):
        """A periodic trigger's grid cursor survives snapshot/restore."""
        source = _swl(trigger="periodic", trigger_param=30.0)
        for now in (0.0, 31.0, 70.0):
            source._trigger.should_check(erases=0, requests=0, now=now)
        target = _swl(trigger="periodic", trigger_param=30.0)
        target.restore_state(source.snapshot_state())
        assert target._trigger._next_check == source._trigger._next_check
        assert target.snapshot_state() == source.snapshot_state()

    def test_every_n_cursor_round_trips(self):
        source = _swl(trigger="every-n-requests", trigger_param=10)
        source._trigger.should_check(erases=0, requests=37, now=0.0)
        target = _swl(trigger="every-n-requests", trigger_param=10)
        target.restore_state(source.snapshot_state())
        assert target._trigger._last_bucket == 3
