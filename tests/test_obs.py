"""Tests for the telemetry subsystem (:mod:`repro.obs`).

Covers the event bus, the metrics registry and its exact cross-shard
merging, wear heatmaps, the exporters, the chip/driver/leveler
instrumentation, and — most importantly — the *off* path: a stack built
without a bus must emit nothing and allocate no event objects, and a
telemetry-enabled run must produce a result identical to a disabled one
(minus the telemetry-only keys).
"""

from __future__ import annotations

import json
import logging

import pytest
from hypothesis import given, settings, strategies as st

import repro.ftl.base as ftl_base_module
import repro.obs.bus as bus_module
from repro.core.config import SWLConfig
from repro.obs.bus import (
    ALL_EVENTS,
    HOT_KINDS,
    K_ERASE,
    K_OBJ,
    K_PROGRAM,
    K_READ,
    TraceRecord,
)
from repro.flash import MLC2_TINY, NandFlash
from repro.ftl.factory import build_stack
from repro.obs import (
    NULL_BUS,
    ChromeTraceExporter,
    EventBus,
    JsonlTraceExporter,
    LogExporter,
    MetricsCollector,
    MetricsRegistry,
    NullEventBus,
    Telemetry,
    WearHeatmap,
    render_prometheus,
)
from repro.obs.events import (
    BetReset,
    Erase,
    GcEnd,
    GcStart,
    Program,
    Read,
    SwlInvoke,
)
from repro.sim.engine import Simulator
from repro.sim.experiment import (
    ExperimentSpec,
    make_base_trace,
    run_fixed_horizon,
    scaled_mlc2_geometry,
    workload_params_for,
)


# ----------------------------------------------------------------------
# Event bus
# ----------------------------------------------------------------------
class TestEventBus:
    def test_emit_delivers_timestamped_records(self):
        bus = EventBus(clock=lambda: 42.5)
        records = []
        bus.subscribe(records.append)
        bus.emit(Erase(block=3, count=7))
        assert len(records) == 1
        record = records[0]
        assert record.ts == 42.5
        assert record.shard == 0
        assert record.event.kind == "erase"
        assert record.event.payload() == {"block": 3, "count": 7}

    def test_no_clock_means_time_zero(self):
        bus = EventBus()
        records = []
        bus.subscribe(records.append)
        bus.emit(Read(block=0, page=0))
        assert records[0].ts == 0.0

    def test_unsubscribe_is_idempotent(self):
        bus = EventBus()
        records = []
        bus.subscribe(records.append)
        bus.unsubscribe(records.append)
        bus.unsubscribe(records.append)  # absent: no-op
        bus.emit(Read(block=0, page=0))
        assert records == []

    def test_subscriber_may_unsubscribe_mid_dispatch(self):
        bus = EventBus()
        seen = []

        def second(record):
            seen.append("second")

        def first(record):
            seen.append("first")
            bus.unsubscribe(second)

        bus.subscribe(first)
        bus.subscribe(second)
        bus.emit(Read(block=0, page=0))
        # The in-flight dispatch keeps its snapshot...
        assert seen == ["first", "second"]
        bus.emit(Read(block=0, page=0))
        # ...and the next one observes the removal.
        assert seen == ["first", "second", "first"]

    def test_shard_views_share_subscribers(self):
        bus = EventBus(clock=lambda: 1.0)
        records = []
        bus.subscribe(records.append)
        shard1 = bus.for_shard(1, clock=lambda: 9.0)
        shard1.emit(Erase(block=0, count=1))
        bus.emit(Erase(block=0, count=2))
        assert [(r.shard, r.ts) for r in records] == [(1, 9.0), (0, 1.0)]

    def test_null_bus_is_falsy_and_inert(self):
        assert not NullEventBus()
        assert not NULL_BUS
        assert bool(EventBus())
        assert bool(EventBus().for_shard(3))
        NULL_BUS.emit(Read(block=0, page=0))  # safe no-op
        assert NULL_BUS.for_shard(2) is NULL_BUS


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_merge_adds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(3)
        b.counter("c").inc(4)
        merged = a.snapshot().merge(b.snapshot())
        assert merged.counters["c"].value == 7

    @pytest.mark.parametrize(
        "agg,expected", [("sum", 7.0), ("max", 4.0), ("min", 3.0)]
    )
    def test_gauge_merge_applies_declared_aggregation(self, agg, expected):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g", agg=agg).set(3.0)
        b.gauge("g", agg=agg).set(4.0)
        merged = a.snapshot().merge(b.snapshot())
        assert merged.gauges["g"].value == expected

    def test_gauge_merge_rejects_conflicting_aggregations(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g", agg="max").set(1.0)
        b.gauge("g", agg="sum").set(1.0)
        with pytest.raises(ValueError, match="conflicting"):
            a.snapshot().merge(b.snapshot())

    def test_histogram_observe_and_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for value in (0.5, 3.0, 100.0):
            a.histogram("h", buckets=(1.0, 5.0)).observe(value)
        b.histogram("h", buckets=(1.0, 5.0)).observe(4.0)
        merged = a.snapshot().merge(b.snapshot())
        sample = merged.histograms["h"]
        assert sample.counts == (1, 2, 1)  # <=1, <=5, +Inf
        assert sample.count == 4
        assert sample.sum == pytest.approx(107.5)

    def test_histogram_merge_rejects_differing_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(1)
        b.histogram("h", buckets=(1.0, 3.0)).observe(1)
        with pytest.raises(ValueError, match="differing buckets"):
            a.snapshot().merge(b.snapshot())

    def test_one_sided_metrics_pass_through(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("only_a").inc(1)
        b.gauge("only_b").set(2.0)
        merged = a.snapshot().merge(b.snapshot())
        assert merged.counters["only_a"].value == 1
        assert merged.gauges["only_b"].value == 2.0

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("repro_c_total", help="a counter").inc(5)
        registry.gauge("repro_g").set(1.5)
        hist = registry.histogram("repro_h", buckets=(1.0, 5.0))
        hist.observe(0.5)
        hist.observe(2.0)
        text = render_prometheus(registry.snapshot())
        assert "# HELP repro_c_total a counter" in text
        assert "# TYPE repro_c_total counter" in text
        assert "repro_c_total 5" in text
        assert "repro_g 1.5" in text
        # Bucket counts are cumulative in the exposition format.
        assert 'repro_h_bucket{le="1"} 1' in text
        assert 'repro_h_bucket{le="5"} 2' in text
        assert 'repro_h_bucket{le="+Inf"} 2' in text
        assert "repro_h_sum 2.5" in text
        assert "repro_h_count 2" in text
        assert text.endswith("\n")


# ----------------------------------------------------------------------
# Heatmaps
# ----------------------------------------------------------------------
class TestWearHeatmap:
    def test_binning(self):
        counts = [0, 2, 4, 6, 8, 10, 12, 14, 16, 18]
        heatmap = WearHeatmap.from_counts(3.0, counts, bins=4)
        assert heatmap.ts == 3.0
        assert heatmap.num_blocks == 10
        assert heatmap.bin_width == 3
        assert heatmap.cells == (2.0, 8.0, 14.0, 18.0)
        assert heatmap.min_count == 0
        assert heatmap.max_count == 18
        assert heatmap.total_erases == sum(counts)

    def test_more_bins_than_blocks(self):
        heatmap = WearHeatmap.from_counts(0.0, [5, 7], bins=64)
        assert heatmap.bin_width == 1
        assert heatmap.cells == (5.0, 7.0)

    def test_empty_counts(self):
        heatmap = WearHeatmap.from_counts(0.0, [], bins=8)
        assert heatmap.cells == ()
        assert heatmap.total_erases == 0

    def test_as_dict_is_json_friendly(self):
        heatmap = WearHeatmap.from_counts(1.0, [1, 2, 3], bins=2)
        assert json.loads(json.dumps(heatmap.as_dict()))


# ----------------------------------------------------------------------
# Collector
# ----------------------------------------------------------------------
class TestMetricsCollector:
    def test_event_to_metric_mapping(self):
        bus = EventBus()
        collector = MetricsCollector()
        bus.subscribe(collector)
        bus.emit(Erase(block=0, count=3))
        bus.emit(Erase(block=1, count=1))
        bus.emit(Program(block=0, page=0, lba=5))
        bus.emit(Read(block=0, page=0))
        bus.emit(GcStart(reason="free-space", victim=0))
        bus.emit(GcEnd(reason="free-space", victim=0, copies=4, erases=1))
        snapshot = collector.snapshot()
        assert snapshot.counters["repro_flash_erases_total"].value == 2
        assert snapshot.counters["repro_flash_programs_total"].value == 1
        assert snapshot.counters["repro_flash_reads_total"].value == 1
        assert snapshot.counters["repro_gc_passes_total"].value == 1
        assert snapshot.counters["repro_gc_copied_pages_total"].value == 4
        assert snapshot.gauges["repro_flash_max_block_erases"].value == 3

    def test_per_shard_registries_merge_to_global(self):
        bus = EventBus()
        collector = MetricsCollector()
        bus.subscribe(collector)
        bus.for_shard(0).emit(Erase(block=0, count=2))
        bus.for_shard(1).emit(Erase(block=0, count=5))
        assert collector.shards == (0, 1)
        shard0 = collector.shard_snapshot(0)
        shard1 = collector.shard_snapshot(1)
        assert shard0.counters["repro_flash_erases_total"].value == 1
        assert shard1.counters["repro_flash_erases_total"].value == 1
        merged = collector.snapshot()
        assert merged.counters["repro_flash_erases_total"].value == 2
        # Gauge uses max aggregation: the worst shard wins.
        assert merged.gauges["repro_flash_max_block_erases"].value == 5

    def test_swl_latency_histogram(self):
        bus = EventBus()
        collector = MetricsCollector()
        bus.subscribe(collector)
        bus.emit(SwlInvoke(findex=0, unevenness=3.0, ecnt=9, fcnt=3,
                           latency_erases=2))
        bus.emit(BetReset(resets=1, findex=4))
        snapshot = collector.snapshot()
        assert snapshot.counters["repro_swl_invocations_total"].value == 1
        assert snapshot.counters["repro_bet_resets_total"].value == 1
        assert snapshot.gauges["repro_swl_unevenness"].value == 3.0
        hist = snapshot.histograms["repro_swl_trigger_latency_erases"]
        assert hist.count == 1
        assert hist.sum == 2


# ----------------------------------------------------------------------
# Delivery-mode equivalence: per-event vs batched vs tallied
# ----------------------------------------------------------------------
@st.composite
def _telemetry_streams(draw):
    """A random interleaving of hot events and cold events across shards.

    Each element is ``(kind, shard, event)`` with *kind* one of
    ``"read"``, ``"program"``, ``"erase"``, ``"cold"`` — enough to
    reconstruct every delivery form the bus uses.
    """
    cold_events = (
        GcStart(reason="free-space", victim=1),
        GcEnd(reason="free-space", victim=1, copies=2, erases=1),
        SwlInvoke(findex=0, unevenness=2.5, ecnt=5, fcnt=2,
                  latency_erases=1),
        BetReset(resets=1, findex=3),
    )
    stream = []
    for _ in range(draw(st.integers(min_value=0, max_value=40))):
        shard = draw(st.integers(min_value=0, max_value=3))
        kind = draw(st.sampled_from(("read", "program", "erase", "cold")))
        if kind == "read":
            event = Read(block=draw(st.integers(0, 7)),
                         page=draw(st.integers(0, 3)))
        elif kind == "program":
            event = Program(block=draw(st.integers(0, 7)),
                            page=draw(st.integers(0, 3)),
                            lba=draw(st.integers(0, 63)))
        elif kind == "erase":
            event = Erase(block=draw(st.integers(0, 7)),
                          count=draw(st.integers(1, 50)))
        else:
            event = draw(st.sampled_from(cold_events))
        stream.append((kind, shard, event))
    return stream


class TestCollectorDeliveryEquivalence:
    """The three bus delivery modes fold to identical metric state.

    ``EventBus`` delivers the same emissions as synchronous per-record
    calls, as a buffered op batch (``consume_batch``) or as per-kind
    tallies (``consume_tallies``); the throughput work relies on the
    three being interchangeable, so the equivalence is property-tested
    here (and referenced by the ``consume_tallies`` docstring).
    """

    @staticmethod
    def _per_event(stream, pull):
        collector = MetricsCollector()
        collector.set_pull_mode(pull)
        for _, shard, event in stream:
            collector(TraceRecord(ts=0.0, shard=shard, event=event))
        return collector

    @staticmethod
    def _batched(stream, pull):
        collector = MetricsCollector()
        collector.set_pull_mode(pull)
        batch = []
        for kind, shard, event in stream:
            if kind == "read":
                batch.append((K_READ, 0.0, shard, event.block, event.page))
            elif kind == "program":
                batch.append((K_PROGRAM, 0.0, shard, event.block,
                              event.page, event.lba))
            elif kind == "erase":
                batch.append((K_ERASE, 0.0, shard, event.block, event.count))
            else:
                batch.append((K_OBJ, 0.0, shard, event))
        collector.consume_batch(batch)
        return collector

    @staticmethod
    def _tallied(stream, pull):
        collector = MetricsCollector()
        collector.set_pull_mode(pull)
        reads: list[int] = []
        programs: list[int] = []
        erases: list[tuple[int, int]] = []
        ops = []
        for kind, shard, event in stream:
            if kind == "read":
                reads.append(shard)
            elif kind == "program":
                programs.append(shard)
            elif kind == "erase":
                erases.append((shard, event.count))
            else:
                ops.append((K_OBJ, 0.0, shard, event))
        collector.consume_tallies(reads, programs, erases, ops)
        return collector

    @staticmethod
    def _assert_identical(reference, *others):
        for other in others:
            assert other.shards == reference.shards
            assert other.snapshot() == reference.snapshot()
            for shard in reference.shards:
                assert (other.shard_snapshot(shard)
                        == reference.shard_snapshot(shard))

    @settings(max_examples=60, deadline=None)
    @given(stream=_telemetry_streams())
    def test_batched_and_tallied_match_per_event(self, stream):
        self._assert_identical(
            self._per_event(stream, pull=False),
            self._batched(stream, pull=False),
            self._tallied(stream, pull=False),
        )

    @settings(max_examples=30, deadline=None)
    @given(stream=_telemetry_streams())
    def test_pull_mode_ignores_hot_kinds_in_every_delivery(self, stream):
        # In pull mode all three forms must drop reads/programs/erases
        # and agree on the surviving cold-event state.
        pulled = self._per_event(stream, pull=True)
        self._assert_identical(
            pulled,
            self._batched(stream, pull=True),
            self._tallied(stream, pull=True),
        )
        snapshot = pulled.snapshot()
        assert "repro_flash_reads_total" not in snapshot.counters
        assert "repro_flash_programs_total" not in snapshot.counters
        assert "repro_flash_erases_total" not in snapshot.counters


# ----------------------------------------------------------------------
# Pulled hot counters
# ----------------------------------------------------------------------
class _FakeOpCounters:
    def __init__(self, reads=0, programs=0, erases=0):
        self.reads = reads
        self.programs = programs
        self.erases = erases


class _FakeHotSource:
    """Minimal :class:`HotCounterSource`: counters plus a wear maximum."""

    def __init__(self, reads=0, programs=0, erases=0, max_erases=0):
        self.counters = _FakeOpCounters(reads, programs, erases)
        self._max_erases = max_erases

    def max_erase_count(self):
        return self._max_erases


class TestPulledHotCounters:
    def test_pull_mode_narrows_and_restores_interest_mask(self):
        collector = MetricsCollector()
        assert collector.interest_mask == ALL_EVENTS
        assert not collector.pulls_hot_counters
        collector.set_pull_mode(True)
        assert collector.pulls_hot_counters
        assert collector.interest_mask == ALL_EVENTS & ~HOT_KINDS
        collector.set_pull_mode(False)
        assert collector.interest_mask == ALL_EVENTS

    def test_repeated_pulls_apply_exact_deltas(self):
        collector = MetricsCollector()
        collector.set_pull_mode(True)
        source = _FakeHotSource(reads=10, programs=5, erases=3, max_erases=7)
        collector.pull_hot_counters({0: source})
        snapshot = collector.snapshot()
        assert snapshot.counters["repro_flash_reads_total"].value == 10
        assert snapshot.counters["repro_flash_programs_total"].value == 5
        assert snapshot.counters["repro_flash_erases_total"].value == 3
        assert snapshot.gauges["repro_flash_max_block_erases"].value == 7

        # The device advances; the next pull adds only the delta.
        source.counters.reads = 25
        source.counters.erases = 4
        source._max_erases = 9
        collector.pull_hot_counters({0: source})
        snapshot = collector.snapshot()
        assert snapshot.counters["repro_flash_reads_total"].value == 25
        assert snapshot.counters["repro_flash_programs_total"].value == 5
        assert snapshot.counters["repro_flash_erases_total"].value == 4
        assert snapshot.gauges["repro_flash_max_block_erases"].value == 9

        # An idle pull (periodic snapshot, final flush) changes nothing.
        collector.pull_hot_counters({0: source})
        assert collector.snapshot() == snapshot

    def test_stray_hot_events_never_double_count(self):
        # Another subscriber (say a trace exporter) may keep hot events
        # flowing; the collector must take hot totals from pulls only.
        collector = MetricsCollector()
        collector.set_pull_mode(True)
        collector(TraceRecord(ts=0.0, shard=0, event=Read(block=0, page=0)))
        collector.consume_batch([
            (K_READ, 0.0, 0, 0, 0),
            (K_ERASE, 0.0, 0, 0, 5),
            (K_OBJ, 0.0, 0, Program(block=0, page=1, lba=2)),
        ])
        collector.consume_tallies([0], [0], [(0, 5)], [])
        source = _FakeHotSource(reads=4, programs=2, erases=1, max_erases=5)
        collector.pull_hot_counters({0: source})
        snapshot = collector.snapshot()
        assert snapshot.counters["repro_flash_reads_total"].value == 4
        assert snapshot.counters["repro_flash_programs_total"].value == 2
        assert snapshot.counters["repro_flash_erases_total"].value == 1

    def test_cold_events_still_fold_in_pull_mode(self):
        collector = MetricsCollector()
        collector.set_pull_mode(True)
        collector(TraceRecord(ts=0.0, shard=0,
                              event=BetReset(resets=1, findex=2)))
        snapshot = collector.snapshot()
        assert snapshot.counters["repro_bet_resets_total"].value == 1

    def test_rewound_device_rebaselines_without_negative_delta(self):
        # A checkpoint restore can rewind a device's cumulative totals;
        # the pull must not decrement counters (impossible) nor replay
        # the rewound span later — it re-baselines at the lower value.
        collector = MetricsCollector()
        collector.set_pull_mode(True)
        source = _FakeHotSource(reads=100, programs=50, erases=20,
                                max_erases=9)
        collector.pull_hot_counters({0: source})
        source.counters.reads = 40      # restore rewound the device
        collector.pull_hot_counters({0: source})
        snapshot = collector.snapshot()
        assert snapshot.counters["repro_flash_reads_total"].value == 100
        # Post-restore progress counts from the new baseline.
        source.counters.reads = 70
        collector.pull_hot_counters({0: source})
        snapshot = collector.snapshot()
        assert snapshot.counters["repro_flash_reads_total"].value == 130

    def test_per_shard_pulls_keep_registries_separate(self):
        collector = MetricsCollector()
        collector.set_pull_mode(True)
        collector.pull_hot_counters({
            0: _FakeHotSource(reads=3, max_erases=2),
            1: _FakeHotSource(reads=7, max_erases=6),
        })
        assert collector.shards == (0, 1)
        shard0 = collector.shard_snapshot(0)
        shard1 = collector.shard_snapshot(1)
        assert shard0.counters["repro_flash_reads_total"].value == 3
        assert shard1.counters["repro_flash_reads_total"].value == 7
        merged = collector.snapshot()
        assert merged.counters["repro_flash_reads_total"].value == 10
        assert merged.gauges["repro_flash_max_block_erases"].value == 6


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        exporter = JsonlTraceExporter(path)
        bus = EventBus(clock=lambda: 1.25)
        bus.subscribe(exporter)
        bus.emit(Erase(block=2, count=9))
        bus.for_shard(3).emit(Read(block=0, page=1))
        exporter.close()
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert exporter.records_written == 2
        assert lines[0] == {"ts": 1.25, "shard": 0, "kind": "erase",
                            "block": 2, "count": 9}
        assert lines[1]["shard"] == 3
        assert lines[1]["kind"] == "read"

    def test_chrome_trace_round_trips_and_pairs_gc(self, tmp_path):
        exporter = ChromeTraceExporter("unit")
        bus = EventBus(clock=lambda: 2.0)
        bus.subscribe(exporter)
        bus.emit(GcStart(reason="free-space", victim=7))
        bus.emit(GcEnd(reason="free-space", victim=7, copies=3, erases=1))
        bus.emit(SwlInvoke(findex=1, unevenness=2.0, ecnt=4, fcnt=2,
                           latency_erases=0))
        path = tmp_path / "trace.chrome.json"
        exporter.dump(path)
        document = json.load(open(path))
        events = document["traceEvents"]
        phases = [e["ph"] for e in events]
        assert "B" in phases and "E" in phases and "i" in phases
        begin = next(e for e in events if e["ph"] == "B")
        # Timestamps are microseconds of simulated time.
        assert begin["ts"] == pytest.approx(2.0 * 1e6)
        assert begin["name"] == "GC free-space"

    def test_log_exporter_routes_channels(self, caplog):
        bus = EventBus()
        bus.subscribe(LogExporter())
        with caplog.at_level(logging.INFO, logger="repro"):
            bus.emit(SwlInvoke(findex=0, unevenness=2.0, ecnt=4, fcnt=2,
                               latency_erases=0))
        assert any(r.name == "repro.leveler" for r in caplog.records)


# ----------------------------------------------------------------------
# Chip instrumentation and listener lifecycle
# ----------------------------------------------------------------------
class TestChipInstrumentation:
    def test_chip_emits_program_read_erase(self):
        flash = NandFlash(MLC2_TINY)
        bus = EventBus()
        records = []
        bus.subscribe(records.append)
        flash.attach_bus(bus)
        flash.program(0, 0, lba=5)
        flash.read(0, 0)
        flash.erase(0)
        kinds = [r.event.kind for r in records]
        assert kinds == ["program", "read", "erase"]
        assert records[0].event.payload() == {"block": 0, "page": 0, "lba": 5}
        assert records[2].event.payload() == {"block": 0, "count": 1}

    def test_erase_event_precedes_listener_work(self):
        """SWL work an erase listener triggers must trace causally after."""
        flash = NandFlash(MLC2_TINY)
        bus = EventBus()
        order = []
        bus.subscribe(lambda record: order.append(record.event.kind))
        flash.attach_bus(bus)
        flash.add_erase_listener(lambda block: order.append("listener"))
        flash.erase(0)
        assert order == ["erase", "listener"]

    def test_null_bus_normalises_to_none(self):
        flash = NandFlash(MLC2_TINY)
        flash.attach_bus(NULL_BUS)
        assert flash._obs is None
        flash.attach_bus(EventBus())
        assert flash._obs is not None
        flash.attach_bus(None)
        assert flash._obs is None


class TestEraseListenerLifecycle:
    def test_remove_is_idempotent(self):
        flash = NandFlash(MLC2_TINY)
        calls = []
        listener = calls.append
        flash.add_erase_listener(listener)
        flash.remove_erase_listener(listener)
        flash.remove_erase_listener(listener)  # double detach: no-op
        flash.erase(0)
        assert calls == []

    def test_remove_absent_listener_is_noop(self):
        flash = NandFlash(MLC2_TINY)
        flash.remove_erase_listener(lambda block: None)

    def test_removal_during_dispatch_keeps_snapshot(self):
        flash = NandFlash(MLC2_TINY)
        fired = []

        def second(block):
            fired.append("second")

        def first(block):
            fired.append("first")
            flash.remove_erase_listener(second)

        flash.add_erase_listener(first)
        flash.add_erase_listener(second)
        flash.erase(0)
        # In-flight dispatch iterates its pre-removal snapshot.
        assert fired == ["first", "second"]
        flash.erase(1)
        assert fired == ["first", "second", "first"]

    def test_clear_drops_all_listeners(self):
        flash = NandFlash(MLC2_TINY)
        calls = []
        flash.add_erase_listener(lambda block: calls.append(block))
        flash.clear_erase_listeners()
        flash.erase(0)
        assert calls == []


# ----------------------------------------------------------------------
# The off path: disabled telemetry costs nothing
# ----------------------------------------------------------------------
class _CountingEvent:
    """Stands in for an event class; counts every instantiation."""

    instances = 0

    def __init__(self, *args, **kwargs):
        type(self).instances += 1


class TestDisabledPath:
    def test_disabled_stack_emits_and_allocates_nothing(self, monkeypatch):
        # Hot events are built inside the bus module's emit_* fast paths
        # (the chip calls emit_read/... without constructing anything);
        # cold GC/recovery events are still built at their emit sites.
        _CountingEvent.instances = 0
        for module, names in (
            (bus_module, ("Read", "Program", "Erase")),
            (ftl_base_module, ("GcStart", "GcEnd", "Recovery")),
        ):
            for name in names:
                monkeypatch.setattr(module, name, _CountingEvent)
        stack = build_stack(MLC2_TINY, "ftl", SWLConfig(threshold=20, k=0))
        pages = stack.layer.num_logical_pages
        for index in range(3000):
            stack.layer.write(index % pages)
            stack.layer.read(index % pages)
        assert stack.total_erases() > 0  # GC certainly ran...
        assert _CountingEvent.instances == 0  # ...without one event object

    def test_subscriberless_bus_allocates_and_timestamps_nothing(
        self, monkeypatch
    ):
        # A bus with no subscribers must early-return from every emit
        # path: no TraceRecord, no event object, not even a clock read.
        clock_calls = []

        def counting_clock():
            clock_calls.append(1)
            return 0.0

        _CountingEvent.instances = 0
        for name in ("TraceRecord", "Read", "Program", "Erase"):
            monkeypatch.setattr(bus_module, name, _CountingEvent)
        for module, names in (
            (ftl_base_module, ("GcStart", "GcEnd", "Recovery")),
        ):
            for name in names:
                monkeypatch.setattr(module, name, _CountingEvent)
        bus = EventBus(clock=counting_clock)
        stack = build_stack(
            MLC2_TINY, "ftl", SWLConfig(threshold=20, k=0), bus=bus
        )
        pages = stack.layer.num_logical_pages
        for index in range(3000):
            stack.layer.write(index % pages)
            stack.layer.read(index % pages)
        assert stack.total_erases() > 0
        assert _CountingEvent.instances == 0
        assert clock_calls == []

    def test_enabled_stack_does_emit(self):
        bus = EventBus()
        records = []
        bus.subscribe(records.append)
        stack = build_stack(
            MLC2_TINY, "ftl", SWLConfig(threshold=20, k=0), bus=bus
        )
        pages = stack.layer.num_logical_pages
        for index in range(3000):
            stack.layer.write(index % pages)
        kinds = {record.event.kind for record in records}
        assert {"program", "erase", "gc_start", "gc_end"} <= kinds
        # Timestamps track the device's simulated busy time.
        assert records[-1].ts == pytest.approx(stack.mtd.busy_time)


# ----------------------------------------------------------------------
# Engine heatmaps and end-to-end equivalence
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_run():
    spec = ExperimentSpec(
        "ftl", scaled_mlc2_geometry(24, scale=100),
        SWLConfig(threshold=20, k=2), seed=3,
    )
    params = workload_params_for(spec, duration=1800.0, seed=3)
    return spec, make_base_trace(params)


class TestEngineHeatmaps:
    def test_enabled_run_attaches_at_least_two_heatmaps(self, small_run):
        spec, trace = small_run
        telemetry = Telemetry(heatmap_interval=600.0, heatmap_bins=8)
        result = run_fixed_horizon(spec, trace, 3600.0, telemetry=telemetry)
        assert len(result.heatmaps) >= 2
        assert all(len(h.cells) <= 8 for h in result.heatmaps)
        # Monotonic capture times, final snapshot at end of run.
        times = [h.ts for h in result.heatmaps]
        assert times == sorted(times)
        assert times[-1] == pytest.approx(result.sim_time)
        assert result.heatmaps[-1].total_erases == result.total_erases
        assert "heatmap_snapshots" in result.as_dict()

    def test_disabled_run_attaches_none(self, small_run):
        spec, trace = small_run
        result = run_fixed_horizon(spec, trace, 3600.0)
        assert result.heatmaps == []
        assert "heatmap_snapshots" not in result.as_dict()

    def test_heatmap_decimation_bounds_series(self):
        simulator = Simulator(
            build_stack(MLC2_TINY, "ftl"),
            heatmap_interval=1.0, max_heatmaps=4,
        )
        for _ in range(40):
            simulator.clock += 1.0
            simulator._take_heatmap()
        assert len(simulator.heatmaps) <= 4
        assert simulator.heatmap_interval > 1.0


class TestTelemetryEquivalence:
    def test_single_channel_result_identical_minus_telemetry_keys(
        self, small_run
    ):
        spec, trace = small_run
        plain = run_fixed_horizon(spec, trace, 3600.0)
        telemetry = Telemetry(heatmap_interval=600.0)
        traced = run_fixed_horizon(spec, trace, 3600.0, telemetry=telemetry)
        off, on = plain.as_dict(), traced.as_dict()
        on.pop("heatmap_snapshots")
        assert off == on

    def test_four_channel_result_identical_minus_telemetry_keys(
        self, small_run
    ):
        # The batched dispatcher and pulled hot counters must not change
        # a multi-channel replay: telemetry on vs off, bit-identical
        # results minus the telemetry-only keys.
        spec, trace = small_run
        array_spec = ExperimentSpec(
            spec.driver, spec.geometry, spec.swl, seed=spec.seed,
            channels=4, striping="page", swl_scope="global",
        )
        plain = run_fixed_horizon(array_spec, trace, 3600.0)
        telemetry = Telemetry(heatmap_interval=600.0)
        traced = run_fixed_horizon(
            array_spec, trace, 3600.0, telemetry=telemetry
        )
        off, on = plain.as_dict(), traced.as_dict()
        on.pop("heatmap_snapshots")
        assert off == on

    def test_metrics_agree_with_result_counters(self, small_run):
        spec, trace = small_run
        telemetry = Telemetry()
        result = run_fixed_horizon(spec, trace, 3600.0, telemetry=telemetry)
        snapshot = telemetry.snapshot()
        assert (snapshot.counters["repro_flash_erases_total"].value
                == result.total_erases)
        assert (snapshot.counters["repro_gc_copied_pages_total"].value
                == result.live_page_copies)
        assert snapshot.counters["repro_swl_invocations_total"].value >= 1

    def test_multi_channel_metrics_merge_exactly(self, small_run):
        spec, trace = small_run
        array_spec = ExperimentSpec(
            spec.driver, spec.geometry, spec.swl, seed=spec.seed, channels=2,
        )
        telemetry = Telemetry()
        result = run_fixed_horizon(
            array_spec, trace, 3600.0, telemetry=telemetry
        )
        assert telemetry.collector.shards == (0, 1)
        merged = telemetry.snapshot()
        assert (merged.counters["repro_flash_erases_total"].value
                == result.total_erases)
        per_shard = [
            telemetry.collector.shard_snapshot(shard)
            .counters["repro_flash_erases_total"].value
            for shard in telemetry.collector.shards
        ]
        assert sum(per_shard) == result.total_erases


class TestTelemetryFacade:
    def test_to_directory_writes_artifact_set(self, tmp_path, small_run):
        spec, trace = small_run
        telemetry = Telemetry.to_directory(
            tmp_path / "out", heatmap_interval=600.0
        )
        run_fixed_horizon(spec, trace, 3600.0, telemetry=telemetry)
        files = telemetry.finish()
        assert set(files) == {"jsonl", "chrome", "prometheus"}
        assert telemetry.jsonl.records_written > 0
        first = json.loads(
            files["jsonl"].read_text().splitlines()[0]
        )
        assert {"ts", "shard", "kind"} <= set(first)
        document = json.load(open(files["chrome"]))
        assert document["traceEvents"]
        assert "repro_flash_erases_total" in files["prometheus"].read_text()
