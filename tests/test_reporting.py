"""Tests for the markdown report generator."""

from __future__ import annotations

import pytest

from repro.sim.engine import SimResult, WearSample
from repro.sim.metrics import EraseDistribution
from repro.sim.reporting import markdown_report, save_report


def make_result(label, *, failure_days=2.0, timeline=False, swl=False):
    samples = []
    if timeline:
        samples = [
            WearSample(time=t, average=t / 100, deviation=t / 50,
                       maximum=int(t), total_erases=int(t * 2))
            for t in (100.0, 200.0, 300.0)
        ]
    return SimResult(
        label=label,
        requests=1000,
        pages_written=5000,
        pages_read=100,
        sim_time=failure_days * 86_400 if failure_days else 86_400,
        first_failure_time=failure_days * 86_400 if failure_days else None,
        erase_distribution=EraseDistribution.from_counts([1, 2, 3]),
        total_erases=6,
        live_page_copies=42,
        gc_runs=3,
        layer_stats={},
        swl_stats={"swl_erases": 7, "bet_resets": 2} if swl else {},
        timeline=samples,
    )


class TestMarkdownReport:
    def test_summary_table_present(self):
        report = markdown_report([make_result("FTL"), make_result("FTL+SWL",
                                                                  failure_days=3.0)])
        assert "# Wear-leveling simulation report" in report
        assert "| FTL |" in report
        assert "+50.0%" in report

    def test_custom_baseline(self):
        report = markdown_report(
            [make_result("A", failure_days=4.0), make_result("B", failure_days=2.0)],
            baseline_label="B",
        )
        assert "+100.0%" in report

    def test_unknown_baseline_rejected(self):
        with pytest.raises(ValueError, match="labelled"):
            markdown_report([make_result("A")], baseline_label="Z")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            markdown_report([])

    def test_no_failure_row(self):
        report = markdown_report([make_result("A", failure_days=None)])
        assert "no failure" in report

    def test_swl_stats_section(self):
        report = markdown_report([make_result("X", swl=True)])
        assert "SWL swl erases" in report
        assert "| 7 |" in report

    def test_timeline_sparklines(self):
        report = markdown_report([make_result("X", timeline=True)])
        assert "Wear evolution" in report
        assert "deviation `" in report

    def test_save_report(self, tmp_path):
        path = tmp_path / "out.md"
        save_report(str(path), [make_result("A")], title="T")
        assert path.read_text().startswith("# T")


class TestCliReportFlag:
    def test_sweep_writes_report(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "sweep.md"
        code = main([
            "sweep", "--blocks", "24", "--scale", "100", "--driver", "nftl",
            "--thresholds", "10", "--ks", "0", "--report", str(path),
        ])
        assert code == 0
        text = path.read_text()
        assert "first-failure sweep" in text
        assert "NFTL+SWL+k=0+T=10" in text
        assert "markdown report written" in capsys.readouterr().out
