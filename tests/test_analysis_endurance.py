"""Direct unit tests for :mod:`repro.analysis.endurance`.

Previously only exercised indirectly through examples; these pin the
histogram edge bins, known Gini values, degenerate inputs, and the
WAF-aware lifetime extrapolation.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.endurance import (
    erase_histogram,
    ideal_leveling_gain,
    pinned_fraction,
    project_lifetime,
    wear_gini,
)


class TestEraseHistogram:
    def test_counts_land_in_expected_bins(self):
        # top=15, 4 bins -> width max(1, 19//4)=4: [0,4) [4,8) [8,12) [12,16)
        bins = erase_histogram([0, 3, 4, 7, 8, 15], num_bins=4)
        assert [count for _, count in bins] == [2, 2, 1, 1]
        assert bins[0][0] == "[0, 4)"
        assert bins[-1][0] == "[12, 16)"

    def test_maximum_lands_in_last_bin(self):
        bins = erase_histogram([100], num_bins=8)
        assert bins[-1][1] == 1
        assert sum(count for _, count in bins) == 1

    def test_overflow_clamps_to_last_bin(self):
        # width stays >= 1: every zero-heavy distribution still bins.
        bins = erase_histogram([0, 0, 0, 1], num_bins=16)
        assert bins[0][1] == 3
        assert bins[1][1] == 1

    def test_all_zero_counts(self):
        bins = erase_histogram([0, 0, 0], num_bins=4)
        assert bins[0] == ("[0, 1)", 3)
        assert all(count == 0 for _, count in bins[1:])

    def test_degenerate_inputs_rejected(self):
        with pytest.raises(ValueError, match="no erase counts"):
            erase_histogram([])
        with pytest.raises(ValueError, match="num_bins"):
            erase_histogram([1, 2], num_bins=0)


class TestWearGini:
    def test_perfectly_even_is_zero(self):
        assert wear_gini([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_single_block_absorbs_everything(self):
        # One of n blocks takes all wear: G = (n-1)/n.
        assert wear_gini([0, 0, 0, 12]) == pytest.approx(0.75)

    def test_known_two_value_case(self):
        # Lorenz curve of [1, 3]: G = 1/4.
        assert wear_gini([1, 3]) == pytest.approx(0.25)

    def test_order_invariant(self):
        assert wear_gini([3, 1, 2]) == pytest.approx(wear_gini([1, 2, 3]))

    def test_unworn_chip_is_even(self):
        assert wear_gini([0, 0, 0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            wear_gini([])


class TestPinnedFraction:
    def test_cold_blocks_counted(self):
        # Threshold 5% of max 100 = 5.0: the two blocks at <= 5 pin.
        assert pinned_fraction([0, 5, 50, 100]) == pytest.approx(0.5)

    def test_unworn_chip_pins_nothing(self):
        assert pinned_fraction([0, 0]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            pinned_fraction([])
        with pytest.raises(ValueError):
            pinned_fraction([1], threshold=1.0)


class TestIdealLevelingGain:
    def test_known_values(self):
        assert ideal_leveling_gain(0.0) == 0.0
        assert ideal_leveling_gain(0.25) == pytest.approx(1 / 3)
        assert ideal_leveling_gain(0.5) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ideal_leveling_gain(1.0)


class TestProjectLifetime:
    def test_waf_blind_default_preserved(self):
        projection = project_lifetime(
            [10, 50], observed_time=1000.0, endurance=100
        )
        assert projection.projected_first_failure == pytest.approx(2000.0)
        assert projection.max_erase_count == 50
        assert projection.observed_waf is None

    def test_waf_ratio_halves_horizon(self):
        """Regression for the WAF-blind extrapolation: a projected WAF
        twice the observed one must halve the projected lifetime."""
        blind = project_lifetime([10, 50], 1000.0, 100)
        aware = project_lifetime(
            [10, 50], 1000.0, 100, observed_waf=1.5, projected_waf=3.0
        )
        assert aware.projected_first_failure == pytest.approx(
            blind.projected_first_failure / 2
        )
        assert aware.observed_waf == 1.5
        assert aware.projected_waf == 3.0

    def test_identical_wafs_change_nothing(self):
        same = project_lifetime(
            [10, 50], 1000.0, 100, observed_waf=2.0, projected_waf=2.0
        )
        assert same.projected_first_failure == pytest.approx(2000.0)

    def test_unworn_chip_projects_to_infinity(self):
        assert project_lifetime([0, 0], 10.0, 100).projected_first_failure \
            == math.inf

    def test_projected_years(self):
        projection = project_lifetime([1], 365.0 * 86_400.0, 2)
        assert projection.projected_years == pytest.approx(2.0)

    def test_waf_arguments_come_in_pairs(self):
        with pytest.raises(ValueError, match="together"):
            project_lifetime([1], 10.0, 100, observed_waf=2.0)
        with pytest.raises(ValueError, match=">= 1.0"):
            project_lifetime(
                [1], 10.0, 100, observed_waf=0.5, projected_waf=2.0
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            project_lifetime([1], 0.0, 100)
        with pytest.raises(ValueError):
            project_lifetime([1], 10.0, 0)
