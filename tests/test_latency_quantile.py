"""Property tests: histogram quantiles versus a sorted-sample oracle.

:meth:`LatencyHistogram.quantile` interpolates within geometric buckets
(eight per decade), so its estimate may differ from the exact sorted
sample — but never by more than one bucket's width (a factor of
``10^(1/8)``), and it must be monotone in ``q``.  These are the two laws
the bugfix in this PR restored at the bucket-boundary rank (a rank met
exactly at a boundary used to interpolate from the wrong, empty bucket).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.service.latency import LATENCY_BUCKET_BOUNDS, LatencyHistogram

#: One geometric bucket's width: upper bound over lower bound.
BUCKET_WIDTH = 10.0 ** (1.0 / 8.0)

samples_strategy = st.lists(
    st.floats(min_value=1e-6, max_value=9e3, allow_nan=False),
    min_size=1,
    max_size=200,
)


def oracle_quantile(samples: list[float], q: float) -> float:
    """Exact q-quantile at the histogram's rank convention.

    The histogram walks buckets until the cumulative count reaches
    ``rank = q * n``; the matching order statistic is the ``ceil(rank)``-th
    smallest sample (1-indexed), i.e. the first one whose cumulative
    count meets the rank.
    """
    ordered = sorted(samples)
    rank = q * len(ordered)
    index = max(0, math.ceil(rank) - 1)
    return ordered[min(index, len(ordered) - 1)]


@settings(max_examples=80, deadline=None)
@given(samples=samples_strategy, q=st.floats(0.0, 1.0))
def test_estimate_within_one_bucket_of_oracle(samples, q):
    hist = LatencyHistogram()
    for sample in samples:
        hist.observe(sample)
    estimate = hist.quantile(q)
    oracle = oracle_quantile(samples, q)
    # Same bucket => the two differ by at most one bucket width.
    assert estimate <= oracle * BUCKET_WIDTH * (1 + 1e-9)
    assert estimate * BUCKET_WIDTH * (1 + 1e-9) >= oracle


@settings(max_examples=80, deadline=None)
@given(samples=samples_strategy, qs=st.lists(st.floats(0.0, 1.0), min_size=2, max_size=12))
def test_estimate_is_monotone_in_q(samples, qs):
    hist = LatencyHistogram()
    for sample in samples:
        hist.observe(sample)
    estimates = [hist.quantile(q) for q in sorted(qs)]
    assert all(a <= b for a, b in zip(estimates, estimates[1:]))


@settings(max_examples=80, deadline=None)
@given(samples=samples_strategy)
def test_extremes_are_exact(samples):
    """p0 and p100 clamp to the observed min and max exactly."""
    hist = LatencyHistogram()
    for sample in samples:
        hist.observe(sample)
    assert hist.quantile(0.0) == min(samples)
    assert hist.quantile(1.0) == max(samples)


def test_boundary_rank_takes_the_next_occupied_bucket():
    """Regression: a rank met exactly at a bucket boundary.

    Two samples in bucket A, two in a later bucket B: the median rank
    (q=0.5 -> rank 2) is satisfied exactly by bucket A's cumulative
    count.  The estimate must stay inside A (at or below its upper
    bound), not interpolate backwards from an empty bucket or overshoot
    into B.
    """
    hist = LatencyHistogram()
    low, high = 2e-6, 5e-3
    for sample in (low, low, high, high):
        hist.observe(sample)
    estimate = hist.quantile(0.5)
    assert estimate <= low * BUCKET_WIDTH
    assert estimate >= low / BUCKET_WIDTH
    # And just past the boundary the estimate jumps toward bucket B.
    assert hist.quantile(0.9) > estimate
    assert hist.quantile(0.9) <= high


def test_bounds_are_eight_per_decade():
    assert len(LATENCY_BUCKET_BOUNDS) == 81
    ratio = LATENCY_BUCKET_BOUNDS[1] / LATENCY_BUCKET_BOUNDS[0]
    assert ratio == pytest.approx(BUCKET_WIDTH)
