"""End-to-end tests of the alternative SWL trigger policies.

Paper Section 3.1: "The implementation of the SW Leveler could be a
thread or a procedure triggered by a timer or the Allocator/Cleaner based
on some preset conditions."  The default (Cleaner-triggered, checked on
every erase) is exercised everywhere else; these tests drive the
request-count and timer variants through the simulation engine.
"""

from __future__ import annotations

import pytest

from repro.core.config import SWLConfig
from repro.ftl.factory import build_stack
from repro.sim.engine import Simulator, StopCondition
from repro.traces.model import Op, Request


def hot_trace(count: int, spacing: float = 1.0):
    for index in range(count):
        yield Request(index * spacing, Op.WRITE, (index % 32) * 4, 4)


def cold_plus_hot_stack(geometry, trigger: str, trigger_param: float):
    stack = build_stack(
        geometry,
        "ftl",
        SWLConfig(threshold=5, k=0, trigger=trigger, trigger_param=trigger_param),
    )
    layer = stack.layer
    # Pin cold data so the leveler has something to move.
    for lpn in range(layer.num_logical_pages // 2, layer.num_logical_pages):
        layer.write(lpn)
    return stack


class TestRequestCountTrigger:
    def test_levels_on_request_boundaries(self, small_geometry):
        stack = cold_plus_hot_stack(small_geometry, "every-n-requests", 500)
        simulator = Simulator(stack)
        simulator.run(hot_trace(30_000), StopCondition(max_requests=30_000))
        assert stack.leveler.stats.forced_recycles > 0
        assert stack.leveler.stats.procedure_checks > 0

    def test_check_frequency_respects_n(self, small_geometry):
        sparse = cold_plus_hot_stack(small_geometry, "every-n-requests", 10_000)
        dense = cold_plus_hot_stack(small_geometry, "every-n-requests", 100)
        for stack in (sparse, dense):
            simulator = Simulator(stack)
            simulator.run(hot_trace(20_000), StopCondition(max_requests=20_000))
        assert (
            dense.leveler.stats.procedure_checks
            > sparse.leveler.stats.procedure_checks
        )


class TestPeriodicTrigger:
    def test_levels_on_simulated_time(self, small_geometry):
        stack = cold_plus_hot_stack(small_geometry, "periodic", 300.0)
        simulator = Simulator(stack)
        simulator.run(hot_trace(30_000, spacing=0.5),
                      StopCondition(max_requests=30_000))
        assert stack.leveler.stats.forced_recycles > 0

    def test_long_period_checks_rarely(self, small_geometry):
        stack = cold_plus_hot_stack(small_geometry, "periodic", 10_000.0)
        simulator = Simulator(stack)
        simulator.run(hot_trace(5_000, spacing=0.5),
                      StopCondition(max_requests=5_000))
        # 5000 requests * 0.5s = 2500s simulated -> at most one period.
        assert stack.leveler.stats.procedure_checks <= 2


class TestOnEraseDefaultEquivalence:
    def test_all_triggers_eventually_level(self, small_geometry):
        deviations = {}
        for trigger, param in (
            ("on-erase", 0.0),
            ("every-n-requests", 1_000),
            ("periodic", 600.0),
        ):
            stack = cold_plus_hot_stack(small_geometry, trigger, param)
            simulator = Simulator(stack)
            simulator.run(hot_trace(40_000), StopCondition(max_requests=40_000))
            counts = stack.flash.erase_counts
            mean = sum(counts) / len(counts)
            deviations[trigger] = (
                sum((c - mean) ** 2 for c in counts) / len(counts)
            ) ** 0.5
        baseline_stack = build_stack(small_geometry, "ftl")
        layer = baseline_stack.layer
        for lpn in range(layer.num_logical_pages // 2, layer.num_logical_pages):
            layer.write(lpn)
        simulator = Simulator(baseline_stack)
        simulator.run(hot_trace(40_000), StopCondition(max_requests=40_000))
        counts = baseline_stack.flash.erase_counts
        mean = sum(counts) / len(counts)
        baseline_dev = (sum((c - mean) ** 2 for c in counts) / len(counts)) ** 0.5
        for trigger, deviation in deviations.items():
            assert deviation < baseline_dev, (trigger, deviation, baseline_dev)
