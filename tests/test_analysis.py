"""Tests for the analytic models of paper Section 4 (Tables 1-3)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.analysis.endurance import erase_histogram, project_lifetime, wear_gini
from repro.analysis.memory import (
    bet_size_bytes,
    bet_size_for,
    mlc2_reduction,
    table1,
    table1_headers,
)
from repro.analysis.overhead import (
    TABLE2_CONFIGS,
    TABLE3_CONFIGS,
    WorstCaseConfig,
    table2,
    table3,
)
from repro.flash.geometry import GIB, MIB, slc_large_block


class TestTable1:
    """Paper Table 1: BET size for SLC flash memory."""

    # The exact cells of the paper's table: capacity (MB) -> k -> bytes.
    PAPER_CELLS = {
        128: {0: 128, 1: 64, 2: 32, 3: 16},
        256: {0: 256, 1: 128, 2: 64, 3: 32},
        512: {0: 512, 1: 256, 2: 128, 3: 64},
        1024: {0: 1024, 1: 512, 2: 256, 3: 128},
        2048: {0: 2048, 1: 1024, 2: 512, 3: 256},
        4096: {0: 4096, 1: 2048, 2: 1024, 3: 512},
    }

    @pytest.mark.parametrize("mib,by_k", sorted(PAPER_CELLS.items()))
    def test_matches_paper_cells(self, mib, by_k):
        geometry = slc_large_block(mib * MIB)
        for k, expected in by_k.items():
            assert bet_size_for(geometry, k) == expected

    def test_table1_layout(self):
        rows = table1()
        headers = table1_headers()
        assert headers == ["", "128MB", "256MB", "512MB", "1GB", "2GB", "4GB"]
        assert rows[0][0] == "k = 0"
        assert rows[0][1] == "128B"
        assert rows[3][-1] == "512B"

    def test_mlc_halves_the_table(self):
        # Section 4.1: MLC blocks are twice as large, so the BET shrinks.
        assert mlc2_reduction(1 * GIB, 0) == pytest.approx(0.5)

    def test_bet_size_bytes_validation(self):
        with pytest.raises(ValueError):
            bet_size_bytes(0, 0)
        with pytest.raises(ValueError):
            bet_size_bytes(8, -1)

    @given(num_blocks=st.integers(1, 10**6), k=st.integers(0, 8))
    def test_size_monotone_in_k(self, num_blocks, k):
        assert bet_size_bytes(num_blocks, k + 1) <= bet_size_bytes(num_blocks, k)


class TestTable2:
    """Paper Table 2: worst-case increased ratio of block erases."""

    # (H, C, T) -> paper-reported percentage.
    PAPER_ROWS = [
        (256, 3840, 100, 0.946),
        (2048, 2048, 100, 0.503),
        (256, 3840, 1000, 0.094),
        (2048, 2048, 1000, 0.050),
    ]

    @pytest.mark.parametrize("h,c,t,expected", PAPER_ROWS)
    def test_matches_paper(self, h, c, t, expected):
        config = WorstCaseConfig(h, c, t)
        assert 100 * config.extra_erase_ratio() == pytest.approx(expected, abs=0.001)

    def test_approximation_close_when_t_large(self):
        config = WorstCaseConfig(256, 3840, 1000)
        assert config.extra_erase_ratio() == pytest.approx(
            config.extra_erase_ratio_approx(), rel=0.01
        )

    def test_table2_rows_shape(self):
        rows = table2()
        assert len(rows) == len(TABLE2_CONFIGS)
        assert rows[0][:4] == [256, 3840, "1:15", 100]
        assert rows[0][4] == "0.946%"

    def test_validation(self):
        with pytest.raises(ValueError):
            WorstCaseConfig(0, 1, 1)
        with pytest.raises(ValueError):
            WorstCaseConfig(1, 0, 1)
        with pytest.raises(ValueError):
            WorstCaseConfig(1, 1, 0)


class TestTable3:
    """Paper Table 3: worst-case increased ratio of live-page copyings."""

    # (H, C, T, L) -> paper-reported percentage, N = 128.  The paper's own
    # printed cells wobble in the last digit relative to its formula
    # C*N / ((T*(H+C) - C) * L) (e.g. it prints 4.002 where the formula
    # gives 4.020); we reproduce the formula and allow that wobble.
    PAPER_ROWS = [
        (256, 3840, 100, 16, 7.572),
        (2048, 2048, 100, 16, 4.002),
        (256, 3840, 100, 32, 3.786),
        (2048, 2048, 100, 32, 2.001),
        (256, 3840, 1000, 16, 0.757),
        (2048, 2048, 1000, 16, 0.400),
        (256, 3840, 1000, 32, 0.379),
        (2048, 2048, 1000, 32, 0.200),
    ]

    @pytest.mark.parametrize("h,c,t,live,expected", PAPER_ROWS)
    def test_matches_paper(self, h, c, t, live, expected):
        config = WorstCaseConfig(h, c, t)
        measured = 100 * config.extra_copy_ratio(128, live)
        assert measured == pytest.approx(expected, abs=0.02)

    def test_table3_rows_shape(self):
        rows = table3()
        assert len(rows) == len(TABLE3_CONFIGS)
        assert rows[0][-1] == "7.571%"  # formula value; paper prints 7.572%
        assert rows[0][5] == pytest.approx(0.08)  # N/(T*L) column

    def test_copy_ratio_validation(self):
        config = WorstCaseConfig(1, 1, 1)
        with pytest.raises(ValueError):
            config.extra_copy_ratio(0, 1)
        with pytest.raises(ValueError):
            config.extra_copy_ratio(1, 0)

    @given(
        h=st.integers(1, 4000),
        c=st.integers(1, 4000),
        t=st.floats(1, 10_000),
    )
    def test_ratio_decreasing_in_t(self, h, c, t):
        smaller_t = WorstCaseConfig(h, c, t)
        larger_t = WorstCaseConfig(h, c, t * 2)
        assert larger_t.extra_erase_ratio() < smaller_t.extra_erase_ratio()


class TestEnduranceTools:
    def test_histogram_bins(self):
        histogram = erase_histogram([0, 1, 2, 3, 100], num_bins=4)
        assert sum(count for _, count in histogram) == 5

    def test_histogram_validation(self):
        with pytest.raises(ValueError):
            erase_histogram([])
        with pytest.raises(ValueError):
            erase_histogram([1], num_bins=0)

    def test_gini_even_is_zero(self):
        assert wear_gini([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_gini_concentrated_is_high(self):
        assert wear_gini([0] * 99 + [100]) > 0.9

    def test_gini_all_zero(self):
        assert wear_gini([0, 0]) == 0.0

    def test_gini_validation(self):
        with pytest.raises(ValueError):
            wear_gini([])

    def test_lifetime_projection(self):
        projection = project_lifetime([10, 50], observed_time=1000.0, endurance=100)
        assert projection.projected_first_failure == pytest.approx(2000.0)
        assert projection.max_erase_count == 50

    def test_lifetime_projection_no_wear(self):
        projection = project_lifetime([0, 0], observed_time=10.0, endurance=100)
        assert projection.projected_first_failure == float("inf")

    def test_lifetime_projection_validation(self):
        with pytest.raises(ValueError):
            project_lifetime([1], observed_time=0.0, endurance=10)
        with pytest.raises(ValueError):
            project_lifetime([1], observed_time=1.0, endurance=0)


class TestPinnedFractionModel:
    def test_unworn_chip_is_unpinned(self):
        from repro.analysis.endurance import pinned_fraction

        assert pinned_fraction([0, 0, 0]) == 0.0

    def test_bimodal_distribution(self):
        from repro.analysis.endurance import pinned_fraction

        counts = [0] * 30 + [100] * 70
        assert pinned_fraction(counts) == pytest.approx(0.3)

    def test_threshold_widens_the_net(self):
        from repro.analysis.endurance import pinned_fraction

        counts = [0] * 10 + [8] * 10 + [100] * 80
        assert pinned_fraction(counts, threshold=0.05) == pytest.approx(0.1)
        assert pinned_fraction(counts, threshold=0.1) == pytest.approx(0.2)

    def test_validation(self):
        from repro.analysis.endurance import pinned_fraction

        with pytest.raises(ValueError):
            pinned_fraction([])
        with pytest.raises(ValueError):
            pinned_fraction([1], threshold=1.0)

    def test_ideal_gain(self):
        from repro.analysis.endurance import ideal_leveling_gain

        assert ideal_leveling_gain(0.0) == 0.0
        assert ideal_leveling_gain(0.5) == pytest.approx(1.0)
        assert ideal_leveling_gain(0.25) == pytest.approx(1 / 3)
        with pytest.raises(ValueError):
            ideal_leveling_gain(1.0)

    def test_gain_explains_measured_improvements(self):
        # The EXPERIMENTS.md sanity check: a ~25%-pinned baseline bounds
        # the FTL gain at ~+33%, consistent with the measured +19.7%.
        from repro.analysis.endurance import ideal_leveling_gain

        assert 0.30 < ideal_leveling_gain(0.25) < 0.35
