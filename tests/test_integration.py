"""Integration tests: the full stack reproducing the paper's phenomena.

These tests run the real chip + driver + SW Leveler + workload pipeline at
miniature scale and assert the paper's qualitative claims:

* static data pins blocks under plain dynamic wear leveling;
* the SW Leveler collapses the erase-count deviation and extends the
  first failure time (Section 5.2);
* the extra overhead behaves like the worst-case analysis (Section 4.2);
* BET persistence plus FTL table rebuild survive a simulated power cycle.
"""

from __future__ import annotations

import random

import pytest

from repro.core.bet import BetStore
from repro.core.config import SWLConfig
from repro.ftl.factory import build_stack
from repro.sim.engine import Simulator, StopCondition
from repro.sim.experiment import (
    ExperimentSpec,
    make_workload,
    run_until_first_failure,
    scaled_mlc2_geometry,
    workload_params_for,
)
from repro.sim.metrics import EraseDistribution


def small_bench_geometry():
    return scaled_mlc2_geometry(24, scale=200).scaled(
        num_blocks=24, endurance=60, name="itest-24b"
    )


@pytest.fixture(scope="module")
def shared_trace():
    geometry = small_bench_geometry()
    spec = ExperimentSpec("ftl", geometry, seed=2)
    params = workload_params_for(spec, duration=3 * 3600.0, seed=7)
    workload = make_workload(params)
    return geometry, workload.requests(), workload.prefill_requests()


class TestStaticDataPinsBlocks:
    def test_baseline_has_untouched_blocks(self, shared_trace):
        geometry, trace, warmup = shared_trace
        spec = ExperimentSpec("ftl", geometry, seed=2)
        result = run_until_first_failure(spec, trace, warmup=warmup)
        # Paper Section 1: "blocks of cold data are likely to stay intact".
        assert result.erase_distribution.minimum <= 2
        assert result.erase_distribution.deviation > 10


class TestEnduranceImprovement:
    @pytest.mark.parametrize("driver", ["ftl", "nftl"])
    def test_swl_extends_first_failure(self, shared_trace, driver):
        geometry, trace, warmup = shared_trace
        baseline_spec = ExperimentSpec(driver, geometry, seed=2)
        swl_spec = ExperimentSpec(
            driver, geometry, SWLConfig(threshold=2, k=0), seed=2
        )
        baseline = run_until_first_failure(baseline_spec, trace, warmup=warmup)
        leveled = run_until_first_failure(swl_spec, trace, warmup=warmup)
        assert leveled.first_failure_time > baseline.first_failure_time
        assert (
            leveled.erase_distribution.deviation
            < baseline.erase_distribution.deviation
        )
        # The leveled run uses nearly the whole chip's budget: its minimum
        # block erase count is no longer near zero.
        assert leveled.erase_distribution.minimum > baseline.erase_distribution.minimum

    def test_every_erase_reaches_the_bet(self, shared_trace):
        geometry, trace, warmup = shared_trace
        spec = ExperimentSpec("nftl", geometry, SWLConfig(threshold=3, k=0), seed=2)
        simulator = Simulator(spec.build(), skip_reads=True)
        for request in warmup:
            simulator.apply(request)
        for request in trace[:20_000]:
            simulator.apply(request)
        stack = simulator.stack
        # ecnt counts erases since the last BET reset; reconstruct totals.
        leveler = stack.leveler
        # Total erases on the chip must equal erases accumulated across all
        # resetting intervals; verify via monotone per-interval counting:
        assert leveler.bet.ecnt <= stack.flash.total_erases()
        # Every set flag corresponds to >= 1 erased (or handled) block set.
        assert leveler.bet.fcnt >= len(
            {block >> leveler.bet.k for block, count in
             enumerate(stack.flash.erase_counts) if count > 0}
        ) - leveler.bet.resets * leveler.bet.size


class TestWorstCaseOverheadModel:
    def test_hot_cold_partition_matches_analysis_order(self):
        """Build the exact Figure 4 scenario and compare measured extra
        erases with the Section 4.2 worst-case bound."""
        from repro.flash.geometry import FlashGeometry, CellType

        geometry = FlashGeometry(
            num_blocks=16, pages_per_block=8, page_size=512,
            endurance=10_000, cell_type=CellType.SLC, name="worst-case",
        )
        threshold = 10.0

        def run(with_swl: bool):
            stack = build_stack(
                geometry,
                "ftl",
                SWLConfig(threshold=threshold, k=0) if with_swl else None,
                rng=random.Random(0),
            )
            layer = stack.layer
            ppb = geometry.pages_per_block
            cold_pages = 6 * ppb                     # C blocks of cold data
            for lpn in range(cold_pages):
                layer.write(lpn)
            hot = list(range(cold_pages, cold_pages + 3 * ppb))
            rng = random.Random(1)
            for _ in range(30_000):
                layer.write(rng.choice(hot))
            return stack

        baseline = run(with_swl=False)
        leveled = run(with_swl=True)
        # Direct SWL erases (EraseBlockSet calls) stay near the Section 4.2
        # worst-case bound C / (T * (H + C)) with C = 6, H + C = 16.  The
        # *total* erase overhead is larger because moved cold pages keep
        # getting re-copied by later garbage collection — the same effect
        # that makes FTL's Figure 7(a) copy ratio large in the paper.
        bound = 6 / (threshold * 16)
        direct_ratio = leveled.leveler.stats.swl_erases / baseline.flash.total_erases()
        assert 0 < direct_ratio < 3 * bound
        assert leveled.flash.total_erases() > baseline.flash.total_erases()
        # And the leveling goal is achieved: cold blocks no longer pinned.
        assert min(leveled.flash.erase_counts) > 0
        assert min(baseline.flash.erase_counts) == 0

    def test_overhead_decreases_with_threshold(self, shared_trace):
        geometry, trace, warmup = shared_trace
        horizon_cap = 60_000
        totals = {}
        for threshold in (2, 8):
            spec = ExperimentSpec(
                "ftl", geometry, SWLConfig(threshold=threshold, k=0), seed=2
            )
            simulator = Simulator(spec.build(), skip_reads=True)
            for request in warmup:
                simulator.apply(request)
            result = simulator.run(
                iter(trace), StopCondition(max_requests=horizon_cap)
            )
            totals[threshold] = result.total_erases
        assert totals[8] <= totals[2]


class TestCrashRecovery:
    def test_bet_survives_power_cycle(self, shared_trace, tmp_path):
        geometry, trace, warmup = shared_trace
        store = BetStore((str(tmp_path / "a.bet"), str(tmp_path / "b.bet")))

        spec = ExperimentSpec("ftl", geometry, SWLConfig(threshold=4, k=0), seed=2)
        simulator = Simulator(spec.build(), skip_reads=True)
        for request in warmup:
            simulator.apply(request)
        for request in trace[:5_000]:
            simulator.apply(request)
        first_stack = simulator.stack
        first_stack.leveler.persist(store)
        saved_ecnt = first_stack.leveler.bet.ecnt

        # "Reboot": a fresh stack reloads the BET from flash-side storage.
        second_stack = spec.build()
        assert second_stack.leveler.restore(store) is True
        assert second_stack.leveler.bet.ecnt == saved_ecnt

    def test_ftl_remap_after_crash_preserves_data(self, small_geometry):
        stack = build_stack(small_geometry, "ftl", store_data=True)
        layer = stack.layer
        rng = random.Random(9)
        expected = {}
        for step in range(2_000):
            lpn = rng.randrange(layer.num_logical_pages)
            payload = step.to_bytes(4, "little")
            layer.write(lpn, data=payload)
            expected[lpn] = payload
        # Crash: RAM table lost; rebuild from spare-area tags.
        layer.rebuild_mapping()
        for lpn, payload in expected.items():
            assert layer.read(lpn) == payload


class TestWearOutContinuation:
    def test_simulation_continues_past_wear_out(self, shared_trace):
        # Paper Table 4 keeps simulating "even though some blocks were worn
        # out"; the chip must keep serving and keep counting.
        geometry, trace, warmup = shared_trace
        spec = ExperimentSpec("nftl", geometry, seed=2)
        simulator = Simulator(spec.build(), skip_reads=True)
        for request in warmup:
            simulator.apply(request)

        from repro.traces.extend import SegmentResampler
        from repro.util.rng import make_rng

        endless = SegmentResampler(trace, rng=make_rng(4)).iter_requests()
        result = simulator.run(endless, StopCondition(max_requests=120_000))
        assert simulator.stack.flash.worn_blocks
        assert result.first_failure_time is not None
        assert result.sim_time > result.first_failure_time
        distribution = EraseDistribution.from_counts(
            simulator.stack.flash.erase_counts
        )
        assert distribution.maximum > geometry.endurance
