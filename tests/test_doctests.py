"""Run the doctest examples embedded in public docstrings."""

from __future__ import annotations

import doctest

import pytest

import repro
import repro.core.bet
import repro.traces.generator
import repro.util.bitarray

MODULES = [
    repro,
    repro.core.bet,
    repro.traces.generator,
    repro.util.bitarray,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    failures, tests = doctest.testmod(module, verbose=False)
    assert failures == 0
    assert tests > 0, f"{module.__name__} has no doctest examples"
