"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.flash.geometry import FlashGeometry, CellType
from repro.flash.chip import NandFlash
from repro.flash.mtd import MtdDevice


@pytest.fixture
def tiny_geometry() -> FlashGeometry:
    """A chip small enough for exhaustive checks: 16 blocks x 4 pages."""
    return FlashGeometry(
        num_blocks=16,
        pages_per_block=4,
        page_size=512,
        endurance=20,
        cell_type=CellType.SLC,
        name="tiny",
    )


@pytest.fixture
def small_geometry() -> FlashGeometry:
    """A chip big enough to run translation layers: 32 blocks x 8 pages."""
    return FlashGeometry(
        num_blocks=32,
        pages_per_block=8,
        page_size=2048,
        endurance=50,
        cell_type=CellType.MLC2,
        name="small",
    )


@pytest.fixture
def chip(tiny_geometry: FlashGeometry) -> NandFlash:
    return NandFlash(tiny_geometry, store_data=True)


@pytest.fixture
def mtd(chip: NandFlash) -> MtdDevice:
    return MtdDevice(chip)
