"""Tests for the MTD layer, spare-area records, and timing models."""

from __future__ import annotations

import pytest

from repro.flash.chip import PAGE_INVALID, PAGE_VALID, NandFlash
from repro.flash.geometry import FlashGeometry, CellType
from repro.flash.mtd import MtdDevice
from repro.flash.spare import FREE_RECORD, RECORD_SIZE, PageStatus, SpareRecord
from repro.flash.timing import MLC2_TIMING, SLC_TIMING, TimingModel, timing_for


class TestMtd:
    def test_requires_chip_or_geometry(self):
        with pytest.raises(ValueError, match="geometry"):
            MtdDevice()

    def test_builds_chip_from_geometry(self, tiny_geometry):
        mtd = MtdDevice(geometry=tiny_geometry, store_data=True)
        mtd.write_page(0, 0, lba=5, data=b"x")
        assert mtd.read_page(0, 0) == (5, b"x")

    def test_chip_kwargs_conflict(self, chip):
        with pytest.raises(ValueError, match="kwargs"):
            MtdDevice(chip, store_data=True)

    def test_busy_time_accumulates(self, mtd):
        start = mtd.busy_time
        mtd.write_page(0, 0, lba=1)
        after_write = mtd.busy_time
        mtd.read_page(0, 0)
        after_read = mtd.busy_time
        mtd.erase_block(0)
        after_erase = mtd.busy_time
        assert after_write == pytest.approx(start + mtd.timing.program_page)
        assert after_read == pytest.approx(after_write + mtd.timing.read_page)
        assert after_erase == pytest.approx(after_read + mtd.timing.erase_block)

    def test_copy_page_moves_data_and_counts(self, mtd):
        mtd.write_page(0, 0, lba=9, data=b"d")
        mtd.copy_page((0, 0), (1, 0))
        assert mtd.flash.page_state(0, 0) == PAGE_INVALID
        assert mtd.flash.page_state(1, 0) == PAGE_VALID
        assert mtd.read_page(1, 0) == (9, b"d")

    def test_erase_listener_passthrough(self, mtd):
        seen = []
        mtd.add_erase_listener(seen.append)
        mtd.erase_block(2)
        assert seen == [2]

    def test_counters_and_erase_counts_views(self, mtd):
        mtd.write_page(0, 0, lba=1)
        mtd.erase_block(0)
        assert mtd.counters.programs == 1
        assert mtd.erase_counts[0] == 1


class TestSpareRecord:
    def test_roundtrip(self):
        record = SpareRecord(lba=123456, status=PageStatus.LIVE)
        assert SpareRecord.decode(record.encode()) == record

    def test_encoded_size(self):
        assert len(SpareRecord(lba=1, status=PageStatus.LIVE).encode()) == RECORD_SIZE

    def test_free_record(self):
        assert FREE_RECORD.lba == -1
        assert SpareRecord.decode(FREE_RECORD.encode()) == FREE_RECORD

    def test_crc_detects_corruption(self):
        raw = bytearray(SpareRecord(lba=7, status=PageStatus.LIVE).encode())
        raw[0] ^= 0xFF
        with pytest.raises(ValueError, match="CRC"):
            SpareRecord.decode(bytes(raw))

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="bytes"):
            SpareRecord.decode(b"\x00")

    def test_unknown_status_rejected(self):
        import struct
        import zlib

        body = struct.pack("<iB", 1, 0x55)
        crc = zlib.crc32(body) & 0xFFFFFFFF
        raw = struct.pack("<iBxxxI", 1, 0x55, crc)
        with pytest.raises(ValueError, match="status"):
            SpareRecord.decode(raw)


class TestTiming:
    def test_paper_erase_latency(self):
        # Section 4.2: block erase "about 1.5ms over a 1GB MLC x2".
        assert MLC2_TIMING.erase_block == pytest.approx(1.5e-3)

    def test_mlc_programs_slower_than_slc(self):
        assert MLC2_TIMING.program_page > SLC_TIMING.program_page

    def test_copy_page_time(self):
        model = TimingModel(read_page=1.0, program_page=2.0, erase_block=3.0)
        assert model.copy_page_time() == 3.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            TimingModel(read_page=-1.0, program_page=0.0, erase_block=0.0)

    def test_timing_for_cell_type(self):
        mlc = FlashGeometry(4, 4, 2048, 10, cell_type=CellType.MLC2)
        slc = FlashGeometry(4, 4, 2048, 10, cell_type=CellType.SLC)
        assert timing_for(mlc) is MLC2_TIMING
        assert timing_for(slc) is SLC_TIMING
