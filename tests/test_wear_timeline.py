"""Tests for the engine's wear-evolution sampling."""

from __future__ import annotations

import pytest

from repro.core.config import SWLConfig
from repro.ftl.factory import build_stack
from repro.sim.engine import Simulator, StopCondition
from repro.traces.model import Op, Request


def write_stream(count, spacing=1.0, span=16):
    for index in range(count):
        yield Request(index * spacing, Op.WRITE, (index % span) * 4, 4)


class TestSampling:
    def test_disabled_by_default(self, small_geometry):
        simulator = Simulator(build_stack(small_geometry, "ftl"))
        result = simulator.run(write_stream(5_000),
                               StopCondition(max_requests=5_000))
        assert result.timeline == []

    def test_interval_validation(self, small_geometry):
        with pytest.raises(ValueError):
            Simulator(build_stack(small_geometry, "ftl"), sample_interval=0)

    def test_samples_spaced_by_interval(self, small_geometry):
        simulator = Simulator(
            build_stack(small_geometry, "ftl"), sample_interval=100.0
        )
        result = simulator.run(write_stream(2_000),
                               StopCondition(max_requests=2_000))
        times = [sample.time for sample in result.timeline]
        assert len(times) >= 10
        # The final sample closes the series at end of run and may land
        # closer than one interval to its predecessor; every earlier gap
        # is at least the sampling interval.
        interior = times[:-1]
        assert all(
            b - a >= 100.0 - 1e-9 for a, b in zip(interior, interior[1:])
        )
        assert times[-1] == result.sim_time

    def test_timeline_closes_at_end_of_run(self, small_geometry):
        """Regression: the timeline used to stop one interval short of
        sim_time while the heatmap series was closed — consumers missed
        the final wear state."""
        simulator = Simulator(
            build_stack(small_geometry, "ftl"), sample_interval=10.0
        )
        # 100 requests at 1 s spacing: periodic samples land at t <= 99,
        # and the closing sample must pin the series to t = 99 exactly.
        result = simulator.run(write_stream(100),
                               StopCondition(max_requests=100))
        assert result.timeline, "sampling enabled but timeline empty"
        assert result.timeline[-1].time == result.sim_time
        # The closing sample reflects the true end-of-run wear.
        assert result.timeline[-1].total_erases == result.total_erases

    def test_timeline_close_does_not_duplicate(self, small_geometry):
        """When the last periodic sample already landed at sim_time the
        close must not append a duplicate."""
        simulator = Simulator(
            build_stack(small_geometry, "ftl"), sample_interval=10.0
        )
        result = simulator.run(write_stream(100),
                               StopCondition(max_requests=100))
        times = [sample.time for sample in result.timeline]
        assert len(times) == len(set(times))
        # result() is idempotent for the closing sample.
        again = simulator.result()
        assert [s.time for s in again.timeline] == times

    def test_samples_are_monotone_in_total_erases(self, small_geometry):
        simulator = Simulator(
            build_stack(small_geometry, "ftl"), sample_interval=200.0
        )
        result = simulator.run(write_stream(20_000),
                               StopCondition(max_requests=20_000))
        totals = [sample.total_erases for sample in result.timeline]
        assert totals == sorted(totals)
        assert totals[-1] > 0

    def test_swl_keeps_deviation_bounded_over_time(self, small_geometry):
        """The time-series view of the paper's Table 4 claim: without SWL
        the deviation keeps growing; with it, the tail stays flat."""

        def deviations(with_swl: bool):
            stack = build_stack(
                small_geometry, "ftl",
                SWLConfig(threshold=4, k=0) if with_swl else None,
            )
            layer = stack.layer
            for lpn in range(layer.num_logical_pages // 2,
                             layer.num_logical_pages):
                layer.write(lpn)  # pin cold data
            simulator = Simulator(stack, sample_interval=500.0)
            result = simulator.run(write_stream(60_000),
                                   StopCondition(max_requests=60_000))
            return [sample.deviation for sample in result.timeline]

        baseline = deviations(False)
        leveled = deviations(True)
        assert leveled[-1] < baseline[-1]
        # The baseline's imbalance widens monotonically-ish at the tail.
        assert baseline[-1] >= baseline[len(baseline) // 2]
