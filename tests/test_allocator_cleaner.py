"""Tests for the free-block allocator and the greedy victim scanner."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.flash.errors import OutOfSpaceError
from repro.ftl.allocator import BlockAllocator
from repro.ftl.cleaner import CyclicScanner, GreedyScore


class TestAllocatorCommon:
    def test_initial_pool(self):
        allocator = BlockAllocator([0] * 4, [0, 1, 2, 3])
        assert allocator.free_count == 4
        assert allocator.contains(2)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown allocation policy"):
            BlockAllocator([0], [0], policy="random")

    def test_allocate_empty_raises(self):
        allocator = BlockAllocator([0], [])
        with pytest.raises(OutOfSpaceError):
            allocator.allocate()

    def test_double_release_rejected(self):
        allocator = BlockAllocator([0, 0], [0])
        with pytest.raises(ValueError, match="already free"):
            allocator.release(0)

    def test_reclaim_specific_block(self):
        allocator = BlockAllocator([0, 0], [0, 1])
        allocator.reclaim(1)
        assert not allocator.contains(1)
        assert allocator.free_count == 1

    def test_reclaim_non_free_rejected(self):
        allocator = BlockAllocator([0], [])
        with pytest.raises(ValueError, match="not free"):
            allocator.reclaim(0)

    def test_promote_non_free_rejected(self):
        allocator = BlockAllocator([0], [])
        with pytest.raises(ValueError, match="not free"):
            allocator.promote(0)

    def test_free_blocks_snapshot(self):
        allocator = BlockAllocator([0] * 3, [0, 2])
        snapshot = allocator.free_blocks()
        snapshot.add(1)  # mutating the snapshot must not affect the pool
        assert allocator.free_blocks() == {0, 2}


class TestLifoPolicy:
    def test_most_recently_released_first(self):
        allocator = BlockAllocator([0] * 4, [0, 1, 2, 3], policy="lifo")
        assert allocator.allocate() == 3  # releases happened 0, 1, 2, 3
        allocator.release(3)
        assert allocator.allocate() == 3  # reused immediately

    def test_virgin_blocks_stay_buried(self):
        # The property behind the paper's pinned-baseline behaviour: a
        # block released once keeps being reused; earlier pool entries
        # never surface.
        allocator = BlockAllocator([0] * 8, list(range(8)), policy="lifo")
        block = allocator.allocate()
        for _ in range(20):
            allocator.release(block)
            assert allocator.allocate() == block
        assert allocator.free_count == 7

    def test_promote_surfaces_buried_block(self):
        allocator = BlockAllocator([0] * 4, [0, 1, 2, 3], policy="lifo")
        allocator.promote(0)  # the SW Leveler pulls block 0 forward
        assert allocator.allocate() == 0

    def test_stale_stack_entries_skipped(self):
        allocator = BlockAllocator([0] * 3, [0, 1, 2], policy="lifo")
        allocator.promote(1)
        allocator.promote(2)
        assert allocator.allocate() == 2
        assert allocator.allocate() == 1
        assert allocator.allocate() == 0
        with pytest.raises(OutOfSpaceError):
            allocator.allocate()  # stale entries must not double-allocate


class TestMinWearPolicy:
    def test_allocate_least_worn(self):
        wear = [5, 0, 3, 9]
        allocator = BlockAllocator(wear, [0, 1, 2, 3], policy="min-wear")
        assert allocator.allocate() == 1  # wear 0
        assert allocator.allocate() == 2  # wear 3
        assert allocator.allocate() == 0
        assert allocator.allocate() == 3

    def test_release_and_reallocate(self):
        wear = [0, 0]
        allocator = BlockAllocator(wear, [0, 1], policy="min-wear")
        block = allocator.allocate()
        wear[block] += 1
        allocator.release(block)
        # The other block is now least-worn.
        assert allocator.allocate() != block

    def test_rekey_when_wear_changed_while_pooled(self):
        # A stale heap entry must not leak an outdated priority.
        wear = [0, 1]
        allocator = BlockAllocator(wear, [0, 1], policy="min-wear")
        wear[0] = 10  # block 0 aged while pooled (e.g., re-released path)
        assert allocator.allocate() == 1

    def test_promote_is_noop(self):
        wear = [7, 0]
        allocator = BlockAllocator(wear, [0, 1], policy="min-wear")
        allocator.promote(0)
        assert allocator.allocate() == 1  # min-wear order unchanged


@given(
    wear=st.lists(st.integers(0, 100), min_size=1, max_size=30),
    takes=st.integers(0, 30),
)
def test_min_wear_always_returns_minimum(wear, takes):
    allocator = BlockAllocator(
        list(wear), list(range(len(wear))), policy="min-wear"
    )
    remaining = dict(enumerate(wear))
    for _ in range(min(takes, len(wear))):
        block = allocator.allocate()
        assert wear[block] == min(remaining.values())
        del remaining[block]


@given(ops=st.lists(st.integers(0, 2), max_size=100), seed=st.integers(0, 100))
def test_lifo_pool_membership_invariant(ops, seed):
    import random

    rng = random.Random(seed)
    allocator = BlockAllocator([0] * 6, list(range(6)), policy="lifo")
    allocated: set[int] = set()
    for op in ops:
        if op == 0 and allocator.free_count:
            block = allocator.allocate()
            assert block not in allocated
            allocated.add(block)
        elif op == 1 and allocated:
            block = rng.choice(sorted(allocated))
            allocated.discard(block)
            allocator.release(block)
        elif op == 2 and allocator.free_count:
            allocator.promote(rng.choice(sorted(allocator.free_blocks())))
    assert allocator.free_count == 6 - len(allocated)


class TestGreedyScore:
    def test_weighted_sum(self):
        assert GreedyScore(benefit=5, cost=2).weighted_sum == 3

    def test_qualifies_strictly_positive(self):
        # Paper Section 5.1: recycle when the weighted sum is "above zero".
        assert GreedyScore(benefit=3, cost=2).qualifies
        assert not GreedyScore(benefit=2, cost=2).qualifies
        assert not GreedyScore(benefit=1, cost=2).qualifies


class TestCyclicScanner:
    def test_finds_first_qualifying(self):
        scanner = CyclicScanner(8)
        scores = {3: GreedyScore(5, 0), 6: GreedyScore(9, 0)}
        assert scanner.find(lambda unit: scores.get(unit)) == 3
        # Cursor advanced past 3; next find continues from there.
        assert scanner.find(lambda unit: scores.get(unit)) == 6

    def test_wraps_around(self):
        scanner = CyclicScanner(8)
        scanner.cursor = 7
        scores = {2: GreedyScore(4, 1)}
        assert scanner.find(lambda unit: scores.get(unit)) == 2

    def test_skips_non_qualifying(self):
        scanner = CyclicScanner(4)
        scores = {0: GreedyScore(1, 5), 2: GreedyScore(6, 1)}
        assert scanner.find(lambda unit: scores.get(unit)) == 2

    def test_none_when_no_candidates(self):
        scanner = CyclicScanner(4)
        assert scanner.find(lambda unit: None) is None

    def test_fallback_picks_best(self):
        scanner = CyclicScanner(4)
        scores = {
            0: GreedyScore(benefit=2, cost=10),
            1: GreedyScore(benefit=3, cost=5),
            3: GreedyScore(benefit=0, cost=0),  # nothing reclaimable
        }
        assert scanner.find_best_fallback(lambda unit: scores.get(unit)) == 1

    def test_fallback_requires_positive_benefit(self):
        scanner = CyclicScanner(2)
        scores = {0: GreedyScore(benefit=0, cost=0)}
        assert scanner.find_best_fallback(lambda unit: scores.get(unit)) is None

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            CyclicScanner(0)

    def test_probe_accounting(self):
        scanner = CyclicScanner(4)
        scanner.find(lambda unit: None)
        assert scanner.probes == 4
