"""Tests for the public API surface of the ``repro`` package."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version(self):
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.flash",
            "repro.ftl",
            "repro.traces",
            "repro.sim",
            "repro.analysis",
            "repro.util",
            "repro.cli",
            "repro.obs",
            "repro.workloads",
            "repro.endurance",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        imported = importlib.import_module(module)
        for name in getattr(imported, "__all__", []):
            assert hasattr(imported, name), f"{module}.{name} missing"

    def test_every_public_symbol_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, (int, float, str, tuple)):
                continue
            if hasattr(obj, "__doc__"):
                assert obj.__doc__, f"repro.{name} lacks a docstring"


class TestQuickstartContract:
    """The README quickstart must keep working verbatim."""

    def test_readme_snippet(self):
        import random

        from repro import MLC2_TINY, SWLConfig, build_stack

        stack = build_stack(
            MLC2_TINY, driver="nftl",
            swl=SWLConfig(threshold=20, k=0), store_data=True,
        )
        stack.layer.write(0, data=b"hello")
        assert stack.layer.read(0) == b"hello"
        rng = random.Random(1)
        for _ in range(5_000):
            stack.layer.write(rng.randrange(8))
        assert sum(stack.flash.erase_counts) > 0
        assert isinstance(stack.leveler.stats.as_dict(), dict)
