"""Tests for the open-loop service engine (:mod:`repro.service`).

The contract under test, in order of importance:

1. backend mutations are bit-identical to a closed-loop replay of the
   same arrival-timed request stream (the queueing model is pure
   accounting, layered on top);
2. the per-channel FIFO/backpressure math is deterministic and sane
   (monotone completions, bounded admission, stalls counted);
3. latency histograms are exact in count/mean/max and sensible in the
   interpolated quantiles, and merge exactly;
4. telemetry integration: queue-depth gauges, latency histograms in the
   metrics registries, and Chrome-trace counter tracks.
"""

from __future__ import annotations

import json
import random
from itertools import islice

import pytest

from repro.core.config import SWLConfig
from repro.obs import ChromeTraceExporter
from repro.obs.telemetry import Telemetry
from repro.service import (
    LATENCY_BUCKET_BOUNDS,
    LatencyHistogram,
    ServiceEngine,
    open_loop_rate,
    poisson_arrivals,
    trace_paced,
)
from repro.service.engine import _Channel
from repro.sim.engine import Simulator, StopCondition
from repro.sim.experiment import (
    ExperimentSpec,
    make_base_trace,
    run_service_soak,
    scaled_mlc2_geometry,
    workload_params_for,
)
from repro.traces.extend import SegmentResampler
from repro.traces.model import Op, Request
from repro.util.rng import make_rng, spawn_rng


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def spec() -> ExperimentSpec:
    return ExperimentSpec(
        "nftl",
        scaled_mlc2_geometry(num_blocks=24, scale=100),
        SWLConfig(threshold=20.0, k=2),
        seed=11,
        channels=2,
    )


@pytest.fixture(scope="module")
def base_trace(spec: ExperimentSpec) -> list[Request]:
    params = workload_params_for(spec, duration=1800.0, seed=3)
    return make_base_trace(params)


def arrival_stream(
    spec: ExperimentSpec, base_trace: list[Request], n: int, rate: float = 200.0
) -> list[Request]:
    """A finite arrival-timed request list, derived like the runners do."""
    rng = make_rng(spec.seed)
    endless = SegmentResampler(
        base_trace, rng=spawn_rng(rng, "resampler")
    ).iter_requests()
    return list(
        islice(poisson_arrivals(endless, rate, spawn_rng(rng, "arrivals")), n)
    )


# ----------------------------------------------------------------------
# Latency histogram
# ----------------------------------------------------------------------
class TestLatencyHistogram:
    def test_exact_count_mean_max(self):
        hist = LatencyHistogram()
        for value in (1e-5, 2e-4, 3e-3, 4e-2):
            hist.observe(value)
        assert hist.count == 4
        assert hist.mean == pytest.approx((1e-5 + 2e-4 + 3e-3 + 4e-2) / 4)
        assert hist.maximum == 4e-2
        assert hist.minimum == 1e-5

    def test_quantile_brackets_sample(self):
        hist = LatencyHistogram()
        hist.observe(1e-3)
        # A single observation: every quantile lands in its bucket,
        # whose bounds bracket the value within one bucket's width.
        for q in (0.5, 0.95, 0.99):
            assert hist.quantile(q) <= hist.maximum
            assert hist.quantile(q) >= 1e-3 / 10 ** (1 / 8)

    def test_quantile_never_exceeds_observed_max(self):
        hist = LatencyHistogram()
        for _ in range(1000):
            hist.observe(5e-4)
        hist.observe(2.0)
        assert hist.quantile(0.999) <= 2.0
        assert hist.quantile(1.0) == pytest.approx(2.0)

    def test_quantile_order(self):
        hist = LatencyHistogram()
        rng = random.Random(5)
        for _ in range(5000):
            hist.observe(rng.expovariate(1000.0))
        assert hist.quantile(0.5) <= hist.quantile(0.95) <= hist.quantile(0.99)

    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.quantile(0.99) == 0.0
        assert hist.mean == 0.0
        summary = hist.summary()
        assert summary.count == 0
        assert summary.p99 == 0.0

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)

    def test_overflow_observation(self):
        hist = LatencyHistogram()
        hist.observe(99999.0)  # beyond the last bound: overflow slot
        assert hist.count == 1
        assert hist.counts[-1] == 1
        # Overflow interpolates between the last finite bound and the
        # exact observed maximum, and never exceeds the maximum.
        assert LATENCY_BUCKET_BOUNDS[-1] <= hist.quantile(0.99) <= 99999.0
        assert hist.quantile(1.0) == pytest.approx(99999.0)

    def test_merge_is_exact(self):
        rng = random.Random(7)
        samples = [rng.expovariate(500.0) for _ in range(2000)]
        whole = LatencyHistogram()
        left, right = LatencyHistogram(), LatencyHistogram()
        for index, value in enumerate(samples):
            whole.observe(value)
            (left if index % 2 else right).observe(value)
        left.merge(right)
        assert left.counts == whole.counts
        assert left.count == whole.count
        assert left.total == pytest.approx(whole.total)
        assert left.maximum == whole.maximum
        assert left.minimum == whole.minimum

    def test_bucket_layout(self):
        # Eight per decade over ten decades, plus the 1e-6 lower edge.
        assert len(LATENCY_BUCKET_BOUNDS) == 81
        assert LATENCY_BUCKET_BOUNDS[0] == pytest.approx(1e-6)
        assert LATENCY_BUCKET_BOUNDS[-1] == pytest.approx(1e4)


# ----------------------------------------------------------------------
# Arrival models
# ----------------------------------------------------------------------
class TestArrivals:
    def requests(self, n: int = 10) -> list[Request]:
        return [
            Request(time=float(i), op=Op.WRITE, lba=i * 8, sectors=4)
            for i in range(n)
        ]

    def test_open_loop_rate(self):
        assert open_loop_rate(2000, 0.5) == pytest.approx(4000.0)
        with pytest.raises(ValueError):
            open_loop_rate(0, 1.0)
        with pytest.raises(ValueError):
            open_loop_rate(10, 0.0)

    def test_poisson_monotone_and_deterministic(self):
        first = list(
            poisson_arrivals(self.requests(), 100.0, random.Random(3))
        )
        second = list(
            poisson_arrivals(self.requests(), 100.0, random.Random(3))
        )
        assert [r.time for r in first] == [r.time for r in second]
        times = [r.time for r in first]
        assert all(b > a for a, b in zip(times, times[1:]))
        # Access pattern untouched; only timing replaced.
        assert [r.lba for r in first] == [r.lba for r in self.requests()]

    def test_poisson_rate_validation(self):
        with pytest.raises(ValueError):
            list(poisson_arrivals(self.requests(), 0.0, random.Random(1)))

    def test_trace_paced_identity(self):
        original = self.requests()
        assert list(trace_paced(original)) == original

    def test_trace_paced_speedup(self):
        paced = list(trace_paced(self.requests(), speedup=4.0))
        assert [r.time for r in paced] == [i / 4.0 for i in range(10)]
        with pytest.raises(ValueError):
            list(trace_paced(self.requests(), speedup=0.0))


# ----------------------------------------------------------------------
# Channel queue math
# ----------------------------------------------------------------------
class TestChannelQueue:
    def test_fifo_completion_monotone(self):
        channel = _Channel()
        done = [channel.complete(t, 1.0, depth=8) for t in (0.0, 0.1, 0.2)]
        # Service is FIFO: each starts when the previous completes.
        assert done == pytest.approx([1.0, 2.0, 3.0])
        assert channel.served == 3
        assert channel.stalls == 0

    def test_idle_channel_serves_at_arrival(self):
        channel = _Channel()
        assert channel.complete(5.0, 0.5, depth=8) == pytest.approx(5.5)
        assert channel.complete(100.0, 0.5, depth=8) == pytest.approx(100.5)
        assert channel.stalls == 0

    def test_backpressure_waits_for_slot(self):
        channel = _Channel()
        # Fill a depth-2 queue with two 10 s jobs arriving at t=0.
        channel.complete(0.0, 10.0, depth=2)   # completes 10
        channel.complete(0.0, 10.0, depth=2)   # completes 20
        # Third arrival finds the queue full: admission waits until the
        # first job leaves (t=10), service starts at t=20 (FIFO).
        done = channel.complete(0.0, 10.0, depth=2)
        assert done == pytest.approx(30.0)
        assert channel.stalls == 1
        assert channel.stall_time == pytest.approx(10.0)

    def test_latency_includes_queueing(self):
        channel = _Channel()
        channel.complete(0.0, 1.0, depth=8)
        channel.complete(0.0, 1.0, depth=8)
        # Second request waited a full service time: latency 2 s.
        assert channel.latency.maximum == pytest.approx(2.0)

    def test_occupancy_drains(self):
        channel = _Channel()
        channel.complete(0.0, 1.0, depth=8)
        channel.complete(0.0, 1.0, depth=8)
        assert channel.occupancy_at(0.5) == 2
        assert channel.occupancy_at(1.5) == 1
        assert channel.occupancy_at(10.0) == 0


# ----------------------------------------------------------------------
# Service engine
# ----------------------------------------------------------------------
class TestServiceEngine:
    def test_validation(self, spec):
        stack = spec.build()
        with pytest.raises(ValueError, match="queue_depth"):
            ServiceEngine(stack, queue_depth=0)
        engine = ServiceEngine(spec.build())
        with pytest.raises(ValueError, match="max_requests or max_time"):
            engine.serve(iter([]))

    def test_serves_and_reports(self, spec, base_trace):
        arrivals = arrival_stream(spec, base_trace, 2000)
        engine = ServiceEngine(spec.build(), queue_depth=8)
        result = engine.serve(arrivals, max_requests=2000, label="svc")
        assert result.label == "svc"
        assert result.requests == 2000
        assert result.channels == 2
        assert result.latency.p50 <= result.latency.p95 <= result.latency.p99
        assert result.latency.maximum > 0
        assert result.completion_time >= result.replay.sim_time
        served = sum(stats.served for stats in result.channel_stats)
        assert served > 0
        data = json.dumps(result.as_dict())  # JSON-serializable end to end
        assert "latency_p99_s" in data

    def test_deterministic(self, spec, base_trace):
        def run():
            arrivals = arrival_stream(spec, base_trace, 1500)
            engine = ServiceEngine(spec.build(), queue_depth=8)
            return engine.serve(arrivals, max_requests=1500)

        assert run().as_dict() == run().as_dict()

    def test_wear_identical_to_closed_loop_replay(self, spec, base_trace):
        """The queueing layer must not perturb backend mutations."""
        arrivals = arrival_stream(spec, base_trace, 2500)

        engine = ServiceEngine(spec.build(), queue_depth=4)
        service_view = engine.serve(
            arrivals, max_requests=2500, label="x"
        ).replay.as_dict()

        simulator = Simulator(spec.build(), skip_reads=False)
        replay_view = simulator.run(
            iter(arrivals), StopCondition(max_requests=2500), label="x"
        ).as_dict()

        assert service_view == replay_view

    def test_max_time_bound(self, spec, base_trace):
        arrivals = arrival_stream(spec, base_trace, 5000)
        engine = ServiceEngine(spec.build())
        result = engine.serve(arrivals, max_time=5.0)
        assert 0 < result.requests < 5000
        assert result.replay.sim_time <= 5.0

    def test_backpressure_engages_under_overload(self, spec, base_trace):
        arrivals = arrival_stream(spec, base_trace, 2000, rate=100_000.0)
        engine = ServiceEngine(spec.build(), queue_depth=2)
        result = engine.serve(arrivals, max_requests=2000)
        assert result.stalls > 0
        assert any(s.peak_depth >= 2 for s in result.channel_stats)

    def test_run_service_soak_arrival_model_required(self, spec, base_trace):
        with pytest.raises(ValueError, match="exactly one arrival model"):
            run_service_soak(spec, base_trace, max_requests=10)
        with pytest.raises(ValueError, match="exactly one arrival model"):
            run_service_soak(
                spec, base_trace, rate=10.0, trace_speedup=2.0, max_requests=10
            )


# ----------------------------------------------------------------------
# Telemetry integration
# ----------------------------------------------------------------------
class TestServiceTelemetry:
    def run_with_telemetry(self, spec, base_trace, **kwargs):
        telemetry = Telemetry(run_name="svc-test")
        chrome = ChromeTraceExporter()
        telemetry.bus.subscribe(chrome)
        arrivals = arrival_stream(spec, base_trace, 1200)
        engine = ServiceEngine(
            spec.build(telemetry=telemetry),
            queue_depth=4,
            telemetry=telemetry,
            queue_sample_every=100,
            **kwargs,
        )
        result = engine.serve(arrivals, max_requests=1200)
        return telemetry, chrome, result

    def test_latency_histograms_in_registry(self, spec, base_trace):
        telemetry, _, result = self.run_with_telemetry(spec, base_trace)
        snapshot = telemetry.snapshot()
        overall = snapshot.histograms["repro_service_request_latency_seconds"]
        assert overall.count == result.requests
        assert overall.sum == pytest.approx(
            result.latency.mean * result.requests
        )
        # The registry quantile and the in-process quantile agree: same
        # buckets, same estimator (max-clamping differs only at the top).
        assert overall.quantile(0.5) == pytest.approx(
            result.latency.p50, rel=0.35
        )
        per_channel = snapshot.histograms[
            "repro_service_channel_latency_seconds"
        ]
        assert per_channel.count == sum(
            stats.served for stats in result.channel_stats
        )
        assert per_channel.buckets == LATENCY_BUCKET_BOUNDS

    def test_queue_depth_gauges(self, spec, base_trace):
        telemetry, _, result = self.run_with_telemetry(spec, base_trace)
        snapshot = telemetry.snapshot()
        depth = snapshot.gauges["repro_service_queue_depth"]
        stalls = snapshot.gauges["repro_service_queue_stalls"]
        assert depth.agg == "max"
        assert depth.value >= 0
        assert depth.value <= max(s.peak_depth for s in result.channel_stats)
        # Per-shard stall gauges sum across channels in the merged view.
        assert stalls.agg == "sum"
        assert stalls.value == result.stalls

    def test_chrome_trace_counter_tracks(self, spec, base_trace):
        _, chrome, _ = self.run_with_telemetry(spec, base_trace)
        events = chrome.trace_object()["traceEvents"]
        depth_samples = [e for e in events if e.get("name") == "queue depth"]
        assert depth_samples, "no queue-depth counter events exported"
        assert all(e["ph"] == "C" for e in depth_samples)
        assert all(e["cat"] == "service" for e in depth_samples)
        # Timestamps carry the virtual arrival clock, strictly advancing
        # within a channel's track.
        by_channel: dict[int, list[float]] = {}
        for event in depth_samples:
            by_channel.setdefault(event["tid"], []).append(event["ts"])
        for series in by_channel.values():
            assert series == sorted(series)
        assert any(e.get("name") == "queue stalls" for e in events)

    def test_publish_metrics_once(self, spec, base_trace):
        telemetry, _, result = self.run_with_telemetry(spec, base_trace)
        snapshot_before = telemetry.snapshot()
        # finish() is idempotent: a second call must not double-fold.
        engine_count = snapshot_before.histograms[
            "repro_service_request_latency_seconds"
        ].count
        assert engine_count == result.requests

    def test_telemetry_on_off_replay_identical(self, spec, base_trace):
        telemetry, _, with_telemetry = self.run_with_telemetry(
            spec, base_trace
        )
        arrivals = arrival_stream(spec, base_trace, 1200)
        engine = ServiceEngine(spec.build(), queue_depth=4)
        without = engine.serve(arrivals, max_requests=1200)
        assert with_telemetry.as_dict() == without.as_dict()
