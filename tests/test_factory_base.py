"""Tests for the storage-stack factory and the TranslationLayer base."""

from __future__ import annotations

import pytest

from repro.core.config import DISABLED, SWLConfig
from repro.ftl.factory import build_stack, driver_names, make_layer
from repro.ftl.nftl import NFTL
from repro.ftl.page_mapping import PageMappingFTL
from repro.flash.mtd import MtdDevice


class TestFactory:
    def test_driver_names(self):
        assert driver_names() == ["ftl", "nftl"]

    def test_make_layer_by_name(self, small_geometry):
        mtd = MtdDevice(geometry=small_geometry)
        assert isinstance(make_layer("ftl", mtd), PageMappingFTL)
        mtd = MtdDevice(geometry=small_geometry)
        assert isinstance(make_layer("NFTL", mtd), NFTL)

    def test_unknown_layer(self, small_geometry):
        with pytest.raises(ValueError, match="unknown translation layer"):
            make_layer("ssd", MtdDevice(geometry=small_geometry))

    def test_build_stack_without_swl(self, small_geometry):
        stack = build_stack(small_geometry, "ftl")
        assert stack.leveler is None
        assert stack.name == "FTL"

    def test_build_stack_with_disabled_swl(self, small_geometry):
        stack = build_stack(small_geometry, "ftl", DISABLED)
        assert stack.leveler is None

    def test_build_stack_with_swl(self, small_geometry):
        stack = build_stack(small_geometry, "nftl", SWLConfig(threshold=10, k=1))
        assert stack.leveler is not None
        assert stack.leveler.bet.k == 1
        assert stack.name == "NFTL+SWL+k=1+T=10"

    def test_swl_hook_sees_all_erases(self, small_geometry):
        stack = build_stack(small_geometry, "ftl", SWLConfig(threshold=10_000))
        import random

        rng = random.Random(1)
        for _ in range(1500):
            stack.layer.write(rng.randrange(16))
        assert stack.leveler.bet.ecnt == stack.flash.total_erases()

    def test_store_data_passthrough(self, small_geometry):
        stack = build_stack(small_geometry, "ftl", store_data=True)
        stack.layer.write(0, data=b"z")
        assert stack.layer.read(0) == b"z"


class TestTranslationLayerBase:
    def test_op_ratio_validation(self, small_geometry):
        with pytest.raises(ValueError, match="op_ratio"):
            build_stack(small_geometry, "ftl", op_ratio=0.0)
        with pytest.raises(ValueError, match="op_ratio"):
            build_stack(small_geometry, "ftl", op_ratio=1.0)

    def test_gc_fraction_validation(self, small_geometry):
        with pytest.raises(ValueError, match="gc_free_fraction"):
            build_stack(small_geometry, "ftl", gc_free_fraction=0.0)

    def test_reserve_floor_exceeds_tiny_chip(self):
        from repro.flash.geometry import FlashGeometry

        cramped = FlashGeometry(4, 4, 512, 10)
        with pytest.raises(ValueError, match="no logical space"):
            build_stack(cramped, "ftl")

    def test_paper_gc_trigger_at_scale(self):
        # The paper's 0.2% on the 4,096-block chip means 8 free blocks.
        from repro.flash.geometry import MLC2_1GB

        stack = build_stack(MLC2_1GB, "nftl")
        assert stack.layer.gc_free_blocks == 8

    def test_double_leveler_attach_rejected(self, small_geometry):
        stack = build_stack(small_geometry, "ftl", SWLConfig(threshold=10))
        with pytest.raises(RuntimeError, match="already"):
            stack.layer.attach_leveler(stack.leveler)

    def test_utilization(self, small_geometry):
        stack = build_stack(small_geometry, "ftl")
        assert stack.layer.utilization() == 0.0
        stack.layer.write(0)
        assert stack.layer.utilization() > 0.0

    def test_swl_cost_probe_shape(self, small_geometry):
        stack = build_stack(small_geometry, "ftl")
        erases, copies = stack.layer.swl_cost_probe()
        assert erases == 0 and copies == 0

    def test_repr(self, small_geometry):
        stack = build_stack(small_geometry, "ftl")
        assert "PageMappingFTL" in repr(stack.layer)
