"""Direct tests for :mod:`repro.flash.timing`.

The timing model is the foundation of every latency number the service
engine reports, so it gets dedicated coverage: validation, the derived
copy/lookup helpers, the datasheet constants, and the per-operation
``last_op_time`` the MTD layer records for service-time accounting.
"""

from __future__ import annotations

import pytest

from repro.flash.geometry import CellType, FlashGeometry
from repro.flash.mtd import MtdDevice
from repro.flash.timing import (
    MLC2_TIMING,
    SLC_TIMING,
    TimingModel,
    timing_for,
)


class TestTimingModel:
    @pytest.mark.parametrize("field", ["read_page", "program_page", "erase_block"])
    def test_negative_latency_rejected(self, field):
        values = {"read_page": 1.0, "program_page": 2.0, "erase_block": 3.0}
        values[field] = -1e-9
        with pytest.raises(ValueError, match=field):
            TimingModel(**values)

    def test_zero_latency_allowed(self):
        model = TimingModel(read_page=0.0, program_page=0.0, erase_block=0.0)
        assert model.copy_page_time() == 0.0

    def test_copy_page_time_is_read_plus_program(self):
        model = TimingModel(read_page=1.0, program_page=2.0, erase_block=7.0)
        assert model.copy_page_time() == pytest.approx(3.0)

    def test_time_for_lookup(self):
        model = TimingModel(read_page=1.0, program_page=2.0, erase_block=3.0)
        assert model.time_for("read") == 1.0
        assert model.time_for("program") == 2.0
        assert model.time_for("erase") == 3.0

    def test_time_for_unknown_op(self):
        with pytest.raises(ValueError, match="unknown operation"):
            SLC_TIMING.time_for("copyback")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SLC_TIMING.read_page = 1.0  # type: ignore[misc]


class TestDatasheetConstants:
    def test_paper_erase_latency(self):
        # Section 4.2: "about 1.5ms over a 1GB MLC x2".
        assert MLC2_TIMING.erase_block == pytest.approx(1.5e-3)
        assert SLC_TIMING.erase_block == pytest.approx(1.5e-3)

    def test_mlc_slower_than_slc(self):
        assert MLC2_TIMING.program_page > SLC_TIMING.program_page
        assert MLC2_TIMING.read_page > SLC_TIMING.read_page

    def test_timing_for_selects_by_cell_type(self):
        mlc = FlashGeometry(4, 4, 2048, 10, cell_type=CellType.MLC2)
        slc = FlashGeometry(4, 4, 2048, 10, cell_type=CellType.SLC)
        assert timing_for(mlc) is MLC2_TIMING
        assert timing_for(slc) is SLC_TIMING


class TestMtdServiceTime:
    def test_last_op_time_tracks_each_primitive(self, mtd):
        assert mtd.last_op_time == 0.0
        mtd.write_page(0, 0, lba=1)
        assert mtd.last_op_time == pytest.approx(mtd.timing.program_page)
        mtd.read_page(0, 0)
        assert mtd.last_op_time == pytest.approx(mtd.timing.read_page)
        mtd.erase_block(0)
        assert mtd.last_op_time == pytest.approx(mtd.timing.erase_block)

    def test_busy_time_is_sum_of_op_times(self, mtd):
        mtd.write_page(0, 0, lba=1)
        mtd.read_page(0, 0)
        mtd.erase_block(0)
        expected = (
            mtd.timing.program_page
            + mtd.timing.read_page
            + mtd.timing.erase_block
        )
        assert mtd.busy_time == pytest.approx(expected)
