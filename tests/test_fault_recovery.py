"""Tests for driver-level fault recovery: program-failure re-issue,
bounded erase retry, block retirement, and the leveler's retired flags."""

from __future__ import annotations

import pytest

from repro.core.config import SWLConfig
from repro.fault.injector import FaultInjector
from repro.fault.plan import FaultPlan
from repro.flash.errors import OutOfSpaceError, UncorrectableReadError
from repro.ftl.base import ERASE_RETRY_LIMIT
from repro.ftl.factory import build_stack
from repro.util.rng import make_rng


def _faulty_stack(geometry, driver, plan, *, swl=None, seed=0):
    injector = FaultInjector(plan)
    stack = build_stack(
        geometry, driver, swl, store_data=True,
        rng=make_rng(seed), injector=injector,
    )
    return stack, injector


class TestProgramFaultRecovery:
    @pytest.mark.parametrize("driver", ["ftl", "nftl"])
    def test_write_survives_grown_bad_block(self, small_geometry, driver):
        # Condemn the block the next host program would land on; the
        # driver must re-issue the write elsewhere and still succeed.
        plan = FaultPlan()  # inert except for the block we poison below
        stack, injector = _faulty_stack(small_geometry, driver, plan)
        layer = stack.layer
        layer.write(0, b"first")
        layer.write(0, b"before")
        # The block holding the latest copy of lpn 0 is the open write
        # frontier (FTL) or replacement block (NFTL); the next write of
        # lpn 0 targets it, so poisoning it forces the recovery path.
        victim = next(
            block
            for block in range(small_geometry.num_blocks)
            for page in stack.flash.valid_pages(block)
            if stack.flash.page_lba(block, page) == 0
        )
        injector.bad_program_blocks.add(victim)
        layer.write(0, b"after")
        assert layer.read(0) == b"after"
        assert layer.stats.program_faults >= 1
        assert victim in layer.retired_blocks
        assert victim in stack.flash.bad_blocks

    @pytest.mark.parametrize("driver", ["ftl", "nftl"])
    def test_soak_with_random_faults_loses_no_data(self, small_geometry, driver):
        plan = FaultPlan(
            seed=11, erase_fail_prob=0.02, program_fail_prob=0.002,
            read_ber=1e-9,
        )
        stack, injector = _faulty_stack(small_geometry, driver, plan, seed=1)
        layer = stack.layer
        rng = make_rng(5)
        acked = {}
        for version in range(1500):
            lpn = rng.randrange(layer.num_logical_pages)
            payload = f"{lpn}:{version}".encode()
            try:
                layer.write(lpn, payload)
            except OutOfSpaceError:
                break
            acked[lpn] = payload
        assert acked, "workload never got started"
        for lpn, payload in acked.items():
            try:
                assert layer.read(lpn) == payload
            except UncorrectableReadError:
                pytest.fail(f"acknowledged lpn {lpn} became unreadable")
        # Retirement bookkeeping agrees between driver and chip.
        assert layer.retired_blocks == stack.flash.bad_blocks
        assert not (layer.allocator.free_blocks() & layer.retired_blocks)


class TestEraseRetry:
    def test_bounded_retry_then_retirement(self, small_geometry):
        plan = FaultPlan(erase_fail_prob=1.0)
        stack, _ = _faulty_stack(small_geometry, "ftl", plan)
        layer = stack.layer
        before = layer.stats.erase_retries
        assert layer._erase_with_recovery(3) is False
        assert layer.stats.erase_retries - before == ERASE_RETRY_LIMIT - 1
        layer._release_or_retire(3)
        assert 3 in layer.retired_blocks
        assert 3 in stack.flash.bad_blocks

    def test_transient_failure_recovers_within_budget(self, small_geometry):
        # Seed chosen so the first erase attempt fails and a retry lands.
        plan = FaultPlan(seed=0, erase_fail_prob=0.5)
        stack, injector = _faulty_stack(small_geometry, "ftl", plan)
        layer = stack.layer
        ok = sum(layer._erase_with_recovery(b) for b in range(8))
        assert ok >= 1
        assert injector.stats.erase_faults >= 1


class TestLevelerRetiredFlags:
    def test_retired_set_stays_flagged_across_resets(self, small_geometry):
        swl = SWLConfig(threshold=10, k=1)
        plan = FaultPlan()
        stack, injector = _faulty_stack(
            small_geometry, "ftl", plan, swl=swl, seed=2
        )
        layer, leveler = stack.layer, stack.leveler
        layer.write(0, b"seed")
        victim = next(
            block for block in range(small_geometry.num_blocks)
            if stack.flash.valid_pages(block)
        )
        injector.bad_program_blocks.add(victim)
        layer.write(0, b"move")
        findex = leveler.bet.flag_index(victim)
        assert findex in leveler.retired_flags
        assert leveler.bet.is_set(findex)
        # After a BET reset the retired set must be re-flagged so
        # SWL-Procedure never picks it as a cold candidate.
        leveler.bet.reset()
        leveler._reset_interval()
        assert leveler.bet.is_set(findex)
