"""Tests for the trace model, generator, resampler, I/O, and statistics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.traces.extend import SegmentResampler
from repro.traces.generator import (
    MONTH,
    MobilePCWorkload,
    Temperature,
    WorkloadParams,
)
from repro.traces.io import (
    load_trace,
    save_trace,
    save_trace_binary,
    save_trace_csv,
)
from repro.traces.model import Op, Request
from repro.traces.stats import sequentiality, summarize, write_frequency_by_region
from repro.util.rng import make_rng


def small_params(**overrides):
    defaults = dict(total_sectors=131_072, duration=4 * 3600.0, seed=11)
    defaults.update(overrides)
    return WorkloadParams(**defaults)


class TestRequestModel:
    def test_fields(self):
        request = Request(1.0, Op.WRITE, 100, 8)
        assert request.end_lba == 108
        assert request.is_write()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"time": -1.0},
            {"lba": -5},
            {"sectors": 0},
        ],
    )
    def test_validation(self, kwargs):
        fields = dict(time=0.0, op=Op.READ, lba=0, sectors=1)
        fields.update(kwargs)
        with pytest.raises(ValueError):
            Request(**fields)


class TestWorkloadParams:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"total_sectors": 0},
            {"duration": 0},
            {"written_fraction": 0.0},
            {"written_fraction": 1.5},
            {"hot_fraction": 0.0},
            {"static_fraction": 1.0},
            {"hot_fraction": 0.5, "static_fraction": 0.5},
            {"hot_write_share": 1.5},
            {"write_rate": 0},
            {"mean_write_sectors": 0},
            {"cold_write_period": 0},
            {"small_write_fraction": -0.1},
            {"small_write_max_sectors": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            small_params(**kwargs)


class TestLayout:
    def test_extents_do_not_overlap(self):
        workload = MobilePCWorkload(small_params())
        spans = sorted((e.start, e.start + e.length) for e in workload.extents)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert start >= end

    def test_written_fraction_hit(self):
        params = small_params()
        workload = MobilePCWorkload(params)
        fraction = workload.written_sectors() / params.total_sectors
        assert fraction == pytest.approx(params.written_fraction, rel=0.02)

    def test_temperature_shares(self):
        params = small_params()
        workload = MobilePCWorkload(params)
        by_temp = workload.sectors_by_temperature()
        written = workload.written_sectors()
        assert by_temp[Temperature.HOT] / written == pytest.approx(
            params.hot_fraction, abs=0.05
        )
        assert by_temp[Temperature.STATIC] / written == pytest.approx(
            params.static_fraction, abs=0.05
        )

    def test_deterministic_from_seed(self):
        first = MobilePCWorkload(small_params()).requests()
        second = MobilePCWorkload(small_params()).requests()
        assert first == second

    def test_different_seeds_differ(self):
        first = MobilePCWorkload(small_params(seed=1)).requests()
        second = MobilePCWorkload(small_params(seed=2)).requests()
        assert first != second


class TestRequestStream:
    def test_time_ordered(self):
        trace = MobilePCWorkload(small_params()).requests()
        times = [request.time for request in trace]
        assert times == sorted(times)

    def test_all_requests_inside_address_space(self):
        params = small_params()
        trace = MobilePCWorkload(params).requests()
        assert all(request.end_lba <= params.total_sectors for request in trace)

    def test_rates_match_paper(self):
        params = small_params(duration=12 * 3600.0)
        summary = summarize(MobilePCWorkload(params).requests(), params.total_sectors)
        assert summary.write_rate == pytest.approx(1.82, rel=0.15)
        assert summary.read_rate == pytest.approx(1.97, rel=0.15)

    def test_writes_avoid_static_extents_except_rewrites(self):
        params = small_params(cold_write_period=1e12)  # no static rewrites
        workload = MobilePCWorkload(params)
        static_spans = [
            (e.start, e.start + e.length)
            for e in workload.extents
            if e.temperature is Temperature.STATIC
        ]
        for request in workload.iter_requests():
            if not request.is_write():
                continue
            for start, end in static_spans:
                assert not (start <= request.lba < end)

    def test_static_rewrites_present_with_short_period(self):
        params = small_params(cold_write_period=600.0)  # rewrite every 10 min
        workload = MobilePCWorkload(params)
        static_lbas = {
            e.start for e in workload.extents if e.temperature is Temperature.STATIC
        }
        hits = sum(
            1
            for request in workload.iter_requests()
            if request.is_write() and request.lba in static_lbas
        )
        assert hits > 0

    def test_prefill_covers_every_extent(self):
        workload = MobilePCWorkload(small_params())
        image = workload.prefill_requests()
        covered = set()
        for request in image:
            covered.update(range(request.lba, request.end_lba))
        for extent in workload.extents:
            assert extent.start in covered
            assert extent.start + extent.length - 1 in covered
        assert len(covered) == workload.written_sectors()

    def test_prefill_at_custom_time(self):
        workload = MobilePCWorkload(small_params())
        image = workload.prefill_requests(at=5.0)
        assert all(request.time == 5.0 for request in image)


class TestSegmentResampler:
    def test_monotonic_clock(self):
        base = MobilePCWorkload(small_params()).requests()
        resampler = SegmentResampler(base, rng=make_rng(1))
        stream = resampler.iter_requests()
        out = [next(stream) for _ in range(3000)]
        times = [request.time for request in out]
        assert times == sorted(times)

    def test_segments_advance_clock(self):
        base = MobilePCWorkload(small_params()).requests()
        resampler = SegmentResampler(base, segment=600.0, rng=make_rng(2))
        stream = resampler.iter_requests()
        for _ in range(5000):
            next(stream)
        assert resampler.segments_emitted >= 1

    def test_requests_come_from_base(self):
        base = MobilePCWorkload(small_params()).requests()
        keys = {(request.op, request.lba, request.sectors) for request in base}
        resampler = SegmentResampler(base, rng=make_rng(3))
        stream = resampler.iter_requests()
        for _ in range(1000):
            request = next(stream)
            assert (request.op, request.lba, request.sectors) in keys

    def test_empty_base_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            SegmentResampler([])

    def test_short_base_rejected(self):
        base = [Request(0.0, Op.READ, 0), Request(1.0, Op.READ, 0)]
        with pytest.raises(ValueError, match="shorter"):
            SegmentResampler(base, segment=600.0)

    def test_unsorted_base_rejected(self):
        base = [Request(5.0, Op.READ, 0), Request(1.0, Op.READ, 0)]
        with pytest.raises(ValueError, match="time-ordered"):
            SegmentResampler(base)

    def test_deterministic(self):
        base = MobilePCWorkload(small_params()).requests()
        def first_n(seed):
            stream = SegmentResampler(base, rng=make_rng(seed)).iter_requests()
            return [next(stream) for _ in range(200)]
        assert first_n(9) == first_n(9)
        assert first_n(9) != first_n(10)


class TestTraceIO:
    def _sample(self):
        return [
            Request(0.0, Op.WRITE, 0, 8),
            Request(1.5, Op.READ, 123456, 1),
            Request(2.25, Op.WRITE, 2**40, 256),
        ]

    def test_csv_roundtrip(self, tmp_path):
        path = tmp_path / "trace.csv"
        assert save_trace_csv(path, self._sample()) == 3
        assert load_trace(path) == self._sample()

    def test_binary_roundtrip(self, tmp_path):
        path = tmp_path / "trace.bin"
        assert save_trace_binary(path, self._sample()) == 3
        assert load_trace(path) == self._sample()

    def test_dispatch_by_extension(self, tmp_path):
        csv_path = tmp_path / "t.csv"
        bin_path = tmp_path / "t.trace"
        save_trace(csv_path, self._sample())
        save_trace(bin_path, self._sample())
        assert csv_path.read_text().startswith("time,op,lba,sectors")
        assert bin_path.read_bytes()[:4] == b"FTRC"

    def test_csv_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="not a trace CSV"):
            load_trace(path)

    def test_csv_malformed_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,op,lba,sectors\n1.0,W,nope,1\n")
        with pytest.raises(ValueError, match="malformed"):
            load_trace(path)

    def test_binary_truncated(self, tmp_path):
        path = tmp_path / "t.bin"
        save_trace_binary(path, self._sample())
        data = path.read_bytes()
        path.write_bytes(data[:-4])
        with pytest.raises(ValueError, match="truncated"):
            load_trace(path)

    def test_binary_bad_magic(self, tmp_path):
        path = tmp_path / "t.bin"
        path.write_bytes(b"XXXX" + b"\x00" * 12)
        with pytest.raises(ValueError, match="magic"):
            load_trace(path)

    def test_binary_roundtrips_generated_trace(self, tmp_path):
        trace = MobilePCWorkload(small_params(duration=1800.0)).requests()
        path = tmp_path / "t.bin"
        save_trace(path, trace)
        assert load_trace(path) == trace


class TestStats:
    def test_summarize_counts(self):
        trace = [
            Request(0.0, Op.WRITE, 0, 4),
            Request(5.0, Op.READ, 0, 2),
            Request(10.0, Op.WRITE, 2, 4),  # overlaps the first write
        ]
        summary = summarize(trace, total_sectors=100)
        assert summary.num_writes == 2
        assert summary.num_reads == 1
        assert summary.total_sectors_written == 8
        assert summary.written_lba_fraction == pytest.approx(0.06)  # union [0,6)
        assert summary.duration == pytest.approx(10.0)

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([], 10)

    def test_written_fraction_on_generated_trace(self):
        params = small_params(duration=8 * 3600.0)
        workload = MobilePCWorkload(params)
        trace = workload.prefill_requests() + workload.requests()
        summary = summarize(trace, params.total_sectors)
        assert summary.written_lba_fraction == pytest.approx(0.3662, abs=0.01)

    def test_region_frequency(self):
        trace = [Request(0.0, Op.WRITE, 0, 1), Request(1.0, Op.WRITE, 99, 1)]
        counts = write_frequency_by_region(trace, 100, num_regions=10)
        assert counts[0] == 1
        assert counts[-1] == 1
        assert sum(counts) == 2

    def test_sequentiality(self):
        seq = [Request(0.0, Op.WRITE, 0, 8), Request(1.0, Op.WRITE, 8, 8)]
        rand = [Request(0.0, Op.WRITE, 0, 8), Request(1.0, Op.WRITE, 100, 8)]
        assert sequentiality(seq) == 1.0
        assert sequentiality(rand) == 0.0
        assert sequentiality([]) == 0.0

    def test_sequentiality_window_catches_interleaved_streams(self):
        # Two interleaved sequential streams: invisible at window=1,
        # fully sequential at window=2.
        interleaved = [
            Request(0.0, Op.WRITE, 0, 8),
            Request(1.0, Op.WRITE, 1000, 8),
            Request(2.0, Op.WRITE, 8, 8),
            Request(3.0, Op.WRITE, 1008, 8),
            Request(4.0, Op.WRITE, 16, 8),
        ]
        assert sequentiality(interleaved, window=1) == 0.0
        assert sequentiality(interleaved, window=2) == pytest.approx(3 / 4)

    def test_sequentiality_window_validation(self):
        with pytest.raises(ValueError):
            sequentiality([], window=0)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000))
def test_generated_trace_is_always_well_formed(seed):
    params = small_params(duration=1800.0, seed=seed)
    trace = MobilePCWorkload(params).requests()
    last_time = 0.0
    for request in trace:
        assert request.time >= last_time
        last_time = request.time
        assert 0 <= request.lba < params.total_sectors
        assert request.end_lba <= params.total_sectors
