"""Tests for the simulation engine, stop conditions, and metrics."""

from __future__ import annotations

import pytest

from repro.core.config import SWLConfig
from repro.ftl.factory import build_stack
from repro.sim.engine import Simulator, StopCondition
from repro.sim.metrics import (
    EraseDistribution,
    first_failure_years,
    improvement_ratio,
    increased_ratio,
    unevenness_of,
)
from repro.traces.model import Op, Request


def write(time, lba, sectors=1):
    return Request(time, Op.WRITE, lba, sectors)


def read(time, lba, sectors=1):
    return Request(time, Op.READ, lba, sectors)


class TestStopCondition:
    def test_needs_some_criterion(self):
        with pytest.raises(ValueError, match="stop criterion"):
            StopCondition()

    @pytest.mark.parametrize("kwargs", [{"max_time": 0}, {"max_requests": 0}])
    def test_positive_bounds(self, kwargs):
        with pytest.raises(ValueError):
            StopCondition(**kwargs)


class TestSimulatorBasics:
    def test_sector_to_page_conversion(self, small_geometry):
        stack = build_stack(small_geometry, "ftl")
        simulator = Simulator(stack)
        spp = small_geometry.sectors_per_page
        # One request spanning 2.5 pages touches 3 logical pages.
        simulator.apply(write(0.0, 0, sectors=2 * spp + 1))
        assert simulator.pages_written == 3

    def test_clock_advances_monotonically(self, small_geometry):
        stack = build_stack(small_geometry, "ftl")
        simulator = Simulator(stack)
        simulator.apply(write(5.0, 0))
        simulator.apply(write(3.0, 0))  # out-of-order time is clamped
        assert simulator.clock == 5.0

    def test_reads_and_writes_counted(self, small_geometry):
        stack = build_stack(small_geometry, "ftl")
        simulator = Simulator(stack)
        simulator.apply(write(0.0, 0))
        simulator.apply(read(1.0, 0))
        assert simulator.pages_written == 1
        assert simulator.pages_read == 1
        assert simulator.requests_done == 2

    def test_lba_modulo_wraps(self, small_geometry):
        stack = build_stack(small_geometry, "ftl")
        simulator = Simulator(stack)
        big_lba = stack.layer.num_logical_pages * small_geometry.sectors_per_page * 3
        simulator.apply(write(0.0, big_lba))  # must not raise
        assert simulator.pages_written == 1

    def test_lba_modulo_wraps_multi_page_span(self, small_geometry):
        # A request that starts on the last logical page and spans past the
        # end of the logical space must wrap per-page back to page 0.
        stack = build_stack(small_geometry, "ftl")
        simulator = Simulator(stack)
        spp = small_geometry.sectors_per_page
        last_page = stack.layer.num_logical_pages - 1
        simulator.apply(write(0.0, last_page * spp, sectors=3 * spp))
        assert simulator.pages_written == 3
        assert stack.layer.stats.host_writes == 3
        # The wrapped tail landed on pages 0 and 1 — reading them must
        # hit mapped pages (media reads, not unmapped misses).
        reads_before = stack.flash.counters.reads
        stack.layer.read(0)
        stack.layer.read(1)
        assert stack.flash.counters.reads == reads_before + 2

    def test_lba_strict_rejects_wrapping_span(self, small_geometry):
        from repro.flash.errors import TranslationError

        stack = build_stack(small_geometry, "ftl")
        simulator = Simulator(stack, lba_modulo=False)
        spp = small_geometry.sectors_per_page
        last_page = stack.layer.num_logical_pages - 1
        with pytest.raises(TranslationError):
            simulator.apply(write(0.0, last_page * spp, sectors=3 * spp))
        assert simulator.pages_written == 0

    def test_lba_strict_raises(self, small_geometry):
        from repro.flash.errors import TranslationError

        stack = build_stack(small_geometry, "ftl")
        simulator = Simulator(stack, lba_modulo=False)
        big_lba = stack.layer.num_logical_pages * small_geometry.sectors_per_page * 3
        with pytest.raises(TranslationError):
            simulator.apply(write(0.0, big_lba))

    def test_skip_reads_counts_but_does_not_touch(self, small_geometry):
        stack = build_stack(small_geometry, "ftl")
        simulator = Simulator(stack, skip_reads=True)
        simulator.apply(read(0.0, 0, sectors=8))
        assert simulator.pages_read == 2  # 8 sectors / 4 per page
        assert stack.layer.stats.host_reads == 0


class TestRun:
    def test_max_requests(self, small_geometry):
        stack = build_stack(small_geometry, "ftl")
        simulator = Simulator(stack)
        trace = [write(float(i), i % 8) for i in range(100)]
        result = simulator.run(trace, StopCondition(max_requests=10))
        assert result.requests == 10

    def test_max_time(self, small_geometry):
        stack = build_stack(small_geometry, "ftl")
        simulator = Simulator(stack)
        trace = [write(float(i), i % 8) for i in range(100)]
        result = simulator.run(trace, StopCondition(max_time=50.0))
        assert result.sim_time <= 50.0
        assert result.requests == 51  # times 0..50 inclusive

    def test_until_first_failure(self, small_geometry):
        stack = build_stack(small_geometry, "ftl")
        simulator = Simulator(stack)
        trace = (write(float(i), i % 4) for i in range(10**9))
        result = simulator.run(
            trace, StopCondition(until_first_failure=True, max_requests=10**9)
        )
        assert result.first_failure_time is not None
        assert stack.flash.first_failure is not None

    def test_failure_clock_pinned_when_run_continues(self, small_geometry):
        stack = build_stack(small_geometry, "ftl")
        simulator = Simulator(stack)

        def endless():
            step = 0
            while True:
                yield write(float(step), step % 4)
                step += 1

        # Run far past the first failure under a request budget.
        result = simulator.run(endless(), StopCondition(max_requests=200_000))
        assert result.first_failure_time is not None
        assert result.first_failure_time < result.sim_time

    def test_result_label_defaults_to_stack_name(self, small_geometry):
        stack = build_stack(small_geometry, "nftl", SWLConfig(threshold=10))
        simulator = Simulator(stack)
        result = simulator.run([write(0.0, 0)], StopCondition(max_requests=1))
        assert result.label == stack.name
        assert "swl_erases" in result.as_dict() or result.swl_stats

    def test_result_as_dict_keys(self, small_geometry):
        stack = build_stack(small_geometry, "ftl")
        simulator = Simulator(stack)
        result = simulator.run([write(0.0, 0)], StopCondition(max_requests=1),
                               label="X")
        data = result.as_dict()
        assert data["label"] == "X"
        assert data["requests"] == 1
        assert data["erase_max"] == 0

    def test_result_as_dict_busy_time_and_layer_stats(self, small_geometry):
        stack = build_stack(small_geometry, "ftl")
        simulator = Simulator(stack)
        trace = [write(float(i), i % 16) for i in range(200)]
        result = simulator.run(trace, StopCondition(max_requests=200))
        data = result.as_dict()
        assert data["device_busy_time"] == result.device_busy_time
        assert result.device_busy_time > 0.0
        assert data["channels"] == 1
        # Every layer counter is exported with a layer_ prefix.
        for key, value in result.layer_stats.items():
            assert data[f"layer_{key}"] == value
        assert data["layer_host_writes"] == 200


class TestTimelineBound:
    def test_decimation_keeps_timeline_bounded(self, small_geometry):
        stack = build_stack(small_geometry, "ftl")
        simulator = Simulator(stack, sample_interval=1.0, max_samples=4)
        for i in range(64):
            simulator.apply(write(float(i), i % 8))
            assert len(simulator.timeline) <= 4
        # Decimation fired: the interval doubled at least once and the
        # surviving samples still span the whole run.
        assert simulator.sample_interval > 1.0
        assert simulator.timeline[0].time < simulator.timeline[-1].time

    def test_decimation_doubles_interval_each_time(self, small_geometry):
        stack = build_stack(small_geometry, "ftl")
        simulator = Simulator(stack, sample_interval=1.0, max_samples=4)
        for i in range(64):
            simulator.apply(write(float(i), i % 8))
        # 64 seconds of 1 Hz sampling under a 4-sample cap needs the
        # interval to have doubled repeatedly: 1 -> 2 -> 4 -> ...
        assert simulator.sample_interval in {8.0, 16.0, 32.0}

    def test_no_cap_grows_freely(self, small_geometry):
        stack = build_stack(small_geometry, "ftl")
        simulator = Simulator(stack, sample_interval=1.0, max_samples=None)
        for i in range(32):
            simulator.apply(write(float(i), i % 8))
        assert len(simulator.timeline) == 32
        assert simulator.sample_interval == 1.0

    def test_max_samples_validation(self, small_geometry):
        stack = build_stack(small_geometry, "ftl")
        with pytest.raises(ValueError, match="max_samples"):
            Simulator(stack, sample_interval=1.0, max_samples=1)


class TestMetrics:
    def test_erase_distribution(self):
        distribution = EraseDistribution.from_counts([0, 10, 20])
        assert distribution.average == pytest.approx(10.0)
        assert distribution.maximum == 20
        assert distribution.minimum == 0
        assert distribution.total == 30
        assert distribution.deviation == pytest.approx(8.1649, rel=1e-3)
        assert distribution.row() == [10, 8, 20]

    def test_erase_distribution_empty(self):
        with pytest.raises(ValueError):
            EraseDistribution.from_counts([])

    def test_erase_distribution_merge_is_exact(self):
        parts = [[0, 10, 20], [5, 5], [100, 3, 7, 9]]
        merged = EraseDistribution.merge(
            [EraseDistribution.from_counts(counts) for counts in parts]
        )
        flat = EraseDistribution.from_counts(
            [count for counts in parts for count in counts]
        )
        assert merged.total == flat.total
        assert merged.maximum == flat.maximum
        assert merged.minimum == flat.minimum
        assert merged.blocks == flat.blocks == 9
        assert merged.average == pytest.approx(flat.average)
        assert merged.deviation == pytest.approx(flat.deviation)

    def test_erase_distribution_merge_validation(self):
        with pytest.raises(ValueError):
            EraseDistribution.merge([])
        legacy = EraseDistribution(
            average=1.0, deviation=0.0, maximum=1, minimum=1, total=2
        )
        with pytest.raises(ValueError, match="block count"):
            EraseDistribution.merge([legacy])

    def test_first_failure_years(self):
        assert first_failure_years(None) is None
        assert first_failure_years(365 * 86_400.0) == pytest.approx(1.0)

    def test_increased_ratio(self):
        assert increased_ratio(103.5, 100.0) == pytest.approx(103.5)
        with pytest.raises(ValueError):
            increased_ratio(1.0, 0.0)

    def test_improvement_ratio_paper_headline(self):
        # Paper: FTL first failure improved by 51.2%.
        assert improvement_ratio(151.2, 100.0) == pytest.approx(51.2)

    def test_unevenness_of(self):
        assert unevenness_of([5, 5, 5]) == pytest.approx(1.0)
        assert unevenness_of([0, 0, 30]) == pytest.approx(3.0)
        assert unevenness_of([0, 0]) == 0.0
        with pytest.raises(ValueError):
            unevenness_of([])
