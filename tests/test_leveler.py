"""Tests for the SW Leveler (paper Section 3.3, Algorithm 1).

A scripted :class:`FakeHost` stands in for the Flash Translation Layer so
every step of SWL-Procedure can be asserted in isolation; the integration
tests exercise the leveler against the real FTL/NFTL stacks.
"""

from __future__ import annotations

import random

import pytest

from repro.core.bet import BetStore
from repro.core.leveler import SWLeveler
from repro.core.policies import RandomSelection


class FakeHost:
    """WearLevelingHost that erases the first block of each requested set."""

    def __init__(self, leveler_ref: list):
        self._leveler_ref = leveler_ref
        self.erases = 0
        self.copies = 0
        self.requests: list[range] = []
        self.free_ranges: set[int] = set()  # block-set starts to treat as free

    def recycle_block_range(self, blocks: range) -> int:
        self.requests.append(blocks)
        if blocks.start in self.free_ranges:
            return 0
        self.erases += 1
        self.copies += 3
        # A real Cleaner erase reaches SWL-BETUpdate via the erase hook.
        self._leveler_ref[0].on_block_erased(blocks.start)
        return 1

    def swl_cost_probe(self) -> tuple[int, int]:
        return self.erases, self.copies


def make_leveler(num_blocks=8, threshold=4.0, k=0, seed=1, selection=None):
    ref: list = []
    host = FakeHost(ref)
    leveler = SWLeveler(
        num_blocks,
        host,
        threshold=threshold,
        k=k,
        rng=random.Random(seed),
        selection=selection,
    )
    ref.append(leveler)
    return leveler, host


class TestBetUpdatePath:
    def test_on_block_erased_updates_bet(self):
        leveler, _ = make_leveler(threshold=100)
        leveler.on_block_erased(3)
        assert leveler.bet.ecnt == 1
        assert leveler.bet.is_set(3)

    def test_below_threshold_no_action(self):
        leveler, host = make_leveler(threshold=10)
        for _ in range(5):
            leveler.on_block_erased(0)
        assert host.requests == []


class TestProcedure:
    def test_step1_returns_when_fcnt_zero(self):
        leveler, host = make_leveler()
        assert leveler.run_procedure() is False
        assert host.requests == []

    def test_triggers_at_threshold(self):
        leveler, host = make_leveler(threshold=4)
        # Three erases of block 0: ratio 3 < 4, nothing happens.
        for _ in range(3):
            leveler.on_block_erased(0)
        assert host.requests == []
        assert leveler.stats.procedure_runs == 0
        # Fourth erase: ratio 4 >= T, the procedure levels cold sets.
        leveler.on_block_erased(0)
        assert host.requests  # EraseBlockSet was called
        assert leveler.stats.procedure_runs == 1

    def test_levels_until_ratio_drops(self):
        leveler, host = make_leveler(threshold=4)
        for _ in range(4):
            leveler.on_block_erased(0)
        # Each forced recycle sets a new flag (fcnt up) and erases once
        # (ecnt up); the loop must have stopped with ratio < T.
        assert leveler.bet.unevenness() < 4

    def test_cyclic_selection_skips_set_flags(self):
        leveler, host = make_leveler(threshold=8)
        leveler.findex = 0
        for _ in range(8):
            leveler.on_block_erased(1)  # sets flag 1
        first_targets = [r.start for r in host.requests]
        assert 1 not in first_targets  # flag 1 was already set

    def test_reset_when_all_flags_set(self):
        leveler, host = make_leveler(num_blocks=4, threshold=2)
        for _ in range(8):
            leveler.on_block_erased(2)
        # The ratio stays >= 2 until every flag is set, forcing a reset.
        assert leveler.bet.resets >= 1
        assert leveler.stats.bet_resets == leveler.bet.resets

    def test_findex_randomized_after_reset(self):
        # Algorithm 1 step 6: findex <- RANDOM(0, size-1).  With a known
        # seed the value is deterministic; across seeds it varies.
        seen = set()
        for seed in range(12):
            leveler, _ = make_leveler(num_blocks=8, threshold=1, seed=seed)
            for _ in range(4):
                leveler.on_block_erased(0)
            seen.add(leveler.findex)
        assert len(seen) > 1

    def test_free_set_marked_without_erase(self):
        leveler, host = make_leveler(num_blocks=4, threshold=4)
        host.free_ranges.add(1)  # pretend block set 1 is entirely free
        leveler.findex = 1
        for _ in range(4):
            leveler.on_block_erased(0)
        assert leveler.bet.is_set(1)
        assert leveler.stats.direct_marks >= 1

    def test_terminates_with_all_free_sets(self):
        # Pathological host that never erases anything: the procedure must
        # still terminate via direct marks and a reset.
        leveler, host = make_leveler(num_blocks=4, threshold=1)
        host.free_ranges.update(range(4))
        for _ in range(4):
            leveler.on_block_erased(0)
        assert leveler.bet.resets >= 1

    def test_k_mode_targets_whole_sets(self):
        leveler, host = make_leveler(num_blocks=8, threshold=8, k=2)
        for _ in range(8):
            leveler.on_block_erased(0)
        assert all(len(r) == 4 or r.stop == 8 for r in host.requests)

    def test_no_reentrancy(self):
        # Erases fired from inside recycle_block_range must not recurse
        # into another procedure run (guarded by _in_procedure).
        leveler, host = make_leveler(num_blocks=8, threshold=1)
        for _ in range(3):
            leveler.on_block_erased(0)
        # FakeHost.recycle_block_range calls on_block_erased internally;
        # reaching here without RecursionError is the assertion, plus:
        assert leveler.stats.procedure_runs <= leveler.stats.procedure_checks


class TestOverheadAttribution:
    def test_swl_costs_tracked(self):
        leveler, host = make_leveler(num_blocks=8, threshold=4)
        for _ in range(4):
            leveler.on_block_erased(0)
        assert leveler.stats.swl_erases == host.erases
        assert leveler.stats.swl_copies == host.copies
        assert leveler.stats.forced_recycles == host.erases


class TestSuspension:
    def test_suspended_defers_procedure(self):
        leveler, host = make_leveler(threshold=4)
        leveler.suspend()
        for _ in range(6):
            leveler.on_block_erased(0)
        assert host.requests == []  # deferred
        leveler.resume()
        assert host.requests  # replayed at resume

    def test_nested_suspension(self):
        leveler, host = make_leveler(threshold=4)
        leveler.suspend()
        leveler.suspend()
        for _ in range(6):
            leveler.on_block_erased(0)
        leveler.resume()
        assert host.requests == []
        leveler.resume()
        assert host.requests

    def test_unbalanced_resume_raises(self):
        leveler, _ = make_leveler()
        with pytest.raises(RuntimeError, match="matching"):
            leveler.resume()


class TestRandomSelectionPolicy:
    def test_random_selection_targets_zero_flags(self):
        leveler, host = make_leveler(
            num_blocks=16, threshold=8, selection=RandomSelection()
        )
        for _ in range(8):
            leveler.on_block_erased(5)
        for request in host.requests:
            assert request.start != 5 or len(request) > 1


class TestTriggerCounters:
    def test_on_request_advances_time(self):
        leveler, _ = make_leveler()
        leveler.on_request(12.5)
        assert leveler.clock.now == 12.5
        assert leveler.clock.requests == 1


class TestPersistence:
    def test_persist_restore(self):
        leveler, _ = make_leveler(threshold=100)
        for block in (0, 1, 2):
            leveler.on_block_erased(block)
        store = BetStore()
        leveler.persist(store)

        fresh, _ = make_leveler(threshold=100)
        assert fresh.restore(store) is True
        assert fresh.bet.ecnt == 3
        assert fresh.bet.is_set(1)

    def test_restore_empty_store(self):
        leveler, _ = make_leveler()
        assert leveler.restore(BetStore()) is False

    def test_restore_rejects_geometry_mismatch(self):
        leveler, _ = make_leveler(num_blocks=8, threshold=100)
        leveler.on_block_erased(0)
        store = BetStore()
        leveler.persist(store)
        other, _ = make_leveler(num_blocks=16, threshold=100)
        assert other.restore(store) is False


class TestValidation:
    def test_bad_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            make_leveler(threshold=0)

    def test_repr_mentions_parameters(self):
        leveler, _ = make_leveler(threshold=7, k=0)
        assert "T=7" in repr(leveler)


class TestDeferredTriggerLatency:
    def test_fcnt_zero_procedure_exit_clears_latency_clock(self):
        """Regression: ``run_procedure``'s ``fcnt == 0`` early return left
        ``_deferred_at_ecnt`` armed, so the next ``SwlInvoke`` event
        reported a stale, inflated trigger latency."""
        events: list = []

        class Bus:
            mask = ~0  # every event kind enabled (see repro.obs.bus)

            def emit(self, event):
                events.append(event)

        leveler, _ = make_leveler(num_blocks=8, threshold=4)
        leveler.attach_bus(Bus())
        # Arm the deferred-latency clock: the trigger fires while the
        # host driver has the leveler suspended mid-GC.
        leveler.suspend()
        for _ in range(4):
            leveler.on_block_erased(0)
        # The check defers on the first erase (threshold evaluation
        # happens later, in maybe_run), so the clock armed at ecnt = 1.
        assert leveler._deferred_at_ecnt == 1

        # A crash-recovery restore of an empty BET image (or a global
        # array coordinator) can enter SWL-Procedure with fcnt == 0; the
        # early exit must release the latency clock like every other
        # procedure exit.
        leveler.bet.reset()
        assert leveler.bet.fcnt == 0
        assert leveler.run_procedure() is False
        assert leveler._deferred_at_ecnt is None

        # The next real run reports its own latency, not the stale gap.
        leveler._deferred_check = False   # consumed by the direct entry
        leveler.resume()
        for _ in range(4):
            leveler.on_block_erased(0)
        invokes = [e for e in events if getattr(e, "kind", "") == "swl_invoke"]
        assert invokes, "procedure should have run after resume"
        assert invokes[-1].latency_erases == 0

    def test_maybe_run_below_threshold_clears_latency_clock(self):
        """The sibling exits in ``maybe_run`` already released the clock;
        pin that behaviour so the invariant holds on every exit path."""
        leveler, _ = make_leveler(num_blocks=8, threshold=100)
        leveler.suspend()
        leveler.on_block_erased(0)
        leveler._note_deferred()
        assert leveler._deferred_at_ecnt is not None
        leveler.resume()          # dispatches; unevenness far below T
        assert leveler._deferred_at_ecnt is None


class TestFindexHistoryBound:
    def test_history_is_bounded_by_decimation(self):
        """Regression: ``findex_history`` grew without bound — one entry
        per forced recycle over a 10-year horizon."""
        from repro.core.leveler import MAX_FINDEX_HISTORY, SWLStats

        stats = SWLStats()
        for index in range(10 * MAX_FINDEX_HISTORY):
            stats.record_findex(index % 97)
        assert len(stats.findex_history) <= MAX_FINDEX_HISTORY
        assert stats.findex_seen == 10 * MAX_FINDEX_HISTORY
        assert stats.findex_stride > 1

    def test_short_history_records_everything(self):
        from repro.core.leveler import SWLStats

        stats = SWLStats()
        for index in range(100):
            stats.record_findex(index)
        assert stats.findex_history == list(range(100))
        assert stats.findex_stride == 1

    def test_decimation_keeps_uniform_thinning(self):
        """After decimation the survivors are every other prior entry, so
        the history stays a uniformly thinned view of the whole run."""
        from repro.core.leveler import MAX_FINDEX_HISTORY, SWLStats

        stats = SWLStats()
        for index in range(MAX_FINDEX_HISTORY):
            stats.record_findex(index % 97)
        expected = [i % 97 for i in range(MAX_FINDEX_HISTORY)][::2]
        assert stats.findex_history == expected
        assert stats.findex_stride == 2
