"""Cross-cutting property tests on the assembled storage stack."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import SWLConfig
from repro.flash.chip import PAGE_VALID
from repro.flash.geometry import FlashGeometry
from repro.ftl.factory import build_stack
from repro.sim.engine import Simulator, StopCondition
from repro.traces.model import Op, Request


def tiny_geometry():
    return FlashGeometry(16, 4, 512, 5_000)


@settings(max_examples=25, deadline=None)
@given(
    writes=st.lists(st.integers(0, 10_000), max_size=300),
    driver=st.sampled_from(["ftl", "nftl"]),
    use_swl=st.booleans(),
)
def test_valid_pages_equal_distinct_lpns(writes, driver, use_swl):
    """Exactly one valid flash page exists per written logical page,
    regardless of driver, leveler, or garbage-collection history."""
    stack = build_stack(
        tiny_geometry(),
        driver,
        SWLConfig(threshold=3, k=0) if use_swl else None,
    )
    layer = stack.layer
    distinct = set()
    for raw in writes:
        lpn = raw % layer.num_logical_pages
        layer.write(lpn)
        distinct.add(lpn)
    flash = stack.flash
    valid = sum(
        flash.count_pages(block, PAGE_VALID)
        for block in range(flash.geometry.num_blocks)
    )
    assert valid == len(distinct)


@settings(max_examples=25, deadline=None)
@given(
    writes=st.lists(st.integers(0, 10_000), max_size=300),
    driver=st.sampled_from(["ftl", "nftl"]),
)
def test_erase_accounting_matches_chip(writes, driver):
    """The BET's ecnt over all intervals equals the chip's erase count."""
    stack = build_stack(tiny_geometry(), driver, SWLConfig(threshold=4, k=0))
    layer = stack.layer
    for raw in writes:
        layer.write(raw % layer.num_logical_pages)
    leveler = stack.leveler
    # ecnt resets each interval; intervals * <=size erases reconcile via:
    assert leveler.bet.ecnt <= stack.flash.total_erases()
    assert stack.flash.total_erases() == stack.mtd.counters.erases


@settings(max_examples=20, deadline=None)
@given(
    times=st.lists(st.floats(0, 1e6, allow_nan=False), max_size=100),
)
def test_simulator_clock_never_regresses(times):
    stack = build_stack(tiny_geometry(), "ftl")
    simulator = Simulator(stack)
    last = 0.0
    for time in times:
        simulator.apply(Request(time, Op.WRITE, 0, 1))
        assert simulator.clock >= last
        last = simulator.clock


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 50))
def test_same_seed_same_simulation(seed):
    """Whole-stack determinism: identical seeds give identical wear."""
    from repro.sim.experiment import (
        ExperimentSpec,
        make_workload,
        run_until_first_failure,
        workload_params_for,
    )

    geometry = FlashGeometry(24, 8, 2048, 40, name="prop")
    spec = ExperimentSpec("nftl", geometry, SWLConfig(threshold=3), seed=seed)
    params = workload_params_for(spec, duration=1800.0, seed=seed)
    workload = make_workload(params)
    trace = workload.requests()
    warmup = workload.prefill_requests()
    first = run_until_first_failure(spec, trace, warmup=warmup)
    second = run_until_first_failure(spec, trace, warmup=warmup)
    assert first.total_erases == second.total_erases
    assert first.first_failure_time == second.first_failure_time
    assert first.live_page_copies == second.live_page_copies
