"""Tests for NFTL (paper Section 2.2, Figure 2(b))."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.flash.chip import PAGE_VALID, NandFlash
from repro.flash.errors import TranslationError
from repro.flash.geometry import FlashGeometry
from repro.flash.mtd import MtdDevice
from repro.ftl.nftl import NFTL


def make_nftl(geometry, **kwargs):
    chip = NandFlash(geometry, store_data=True)
    return NFTL(MtdDevice(chip), **kwargs), chip


class TestAddressSplit:
    def test_vba_and_offset(self, small_geometry):
        nftl, _ = make_nftl(small_geometry)
        ppb = small_geometry.pages_per_block
        assert nftl.split_lpn(0) == (0, 0)
        assert nftl.split_lpn(ppb - 1) == (0, ppb - 1)
        assert nftl.split_lpn(ppb) == (1, 0)

    def test_range_check(self, small_geometry):
        nftl, _ = make_nftl(small_geometry)
        with pytest.raises(TranslationError):
            nftl.read(nftl.num_logical_pages)

    def test_chain_of_range_check(self, small_geometry):
        nftl, _ = make_nftl(small_geometry)
        with pytest.raises(IndexError):
            nftl.chain_of(nftl.num_vbas)


class TestPrimaryBlockWrites:
    def test_first_write_lands_at_home_offset(self, small_geometry):
        nftl, chip = make_nftl(small_geometry)
        nftl.write(3, data=b"x")
        chain = nftl.chain_of(0)
        assert chain is not None
        assert chip.page_lba(chain.primary, 3) == 3
        assert nftl.read(3) == b"x"

    def test_unwritten_offsets_read_none(self, small_geometry):
        nftl, _ = make_nftl(small_geometry)
        nftl.write(0)
        assert nftl.read(1) is None

    def test_distinct_vbas_get_distinct_primaries(self, small_geometry):
        nftl, _ = make_nftl(small_geometry)
        ppb = small_geometry.pages_per_block
        nftl.write(0)
        nftl.write(ppb)
        assert nftl.chain_of(0).primary != nftl.chain_of(1).primary


class TestReplacementBlocks:
    def test_overwrite_goes_to_replacement(self, small_geometry):
        # Figure 2(b): subsequent writes "are sequentially written to the
        # replacement block".
        nftl, chip = make_nftl(small_geometry)
        nftl.write(2, data=b"v1")
        nftl.write(2, data=b"v2")
        chain = nftl.chain_of(0)
        assert chain.replacement is not None
        assert chain.repl_next == 1
        assert chip.page_lba(chain.replacement, 0) == 2
        assert nftl.read(2) == b"v2"

    def test_replacement_writes_are_sequential(self, small_geometry):
        nftl, chip = make_nftl(small_geometry)
        nftl.write(0, data=b"a0")
        for value in range(3):
            nftl.write(0, data=bytes([value]))
        chain = nftl.chain_of(0)
        assert chain.repl_next == 3
        # Most-recent content wins (the paper's B=10 example).
        assert nftl.read(0) == bytes([2])

    def test_fold_on_full_replacement(self, small_geometry):
        nftl, chip = make_nftl(small_geometry)
        ppb = small_geometry.pages_per_block
        nftl.write(0, data=b"seed")
        for step in range(ppb + 3):  # overflow the replacement
            nftl.write(0, data=step.to_bytes(2, "little"))
        assert nftl.stats.folds >= 1
        assert nftl.read(0) == (ppb + 2).to_bytes(2, "little")

    def test_fold_preserves_every_offset(self, small_geometry):
        nftl, _ = make_nftl(small_geometry)
        ppb = small_geometry.pages_per_block
        for offset in range(ppb):
            nftl.write(offset, data=bytes([offset]))
        for _ in range(ppb + 1):  # force a fold via offset 0 rewrites
            nftl.write(0, data=b"new")
        assert nftl.read(0) == b"new"
        for offset in range(1, ppb):
            assert nftl.read(offset) == bytes([offset])


class TestGarbageCollection:
    def test_gc_folds_under_pressure(self, small_geometry):
        nftl, chip = make_nftl(small_geometry)
        rng = random.Random(1)
        span = nftl.num_logical_pages
        for _ in range(4000):
            nftl.write(rng.randrange(span))
        assert nftl.stats.folds > 0
        assert chip.counters.erases > 0
        assert nftl.allocator.free_count >= 1

    def test_data_integrity_under_churn(self, small_geometry):
        nftl, _ = make_nftl(small_geometry)
        rng = random.Random(2)
        expected = {}
        for step in range(4000):
            lpn = rng.randrange(nftl.num_logical_pages)
            payload = step.to_bytes(4, "little")
            nftl.write(lpn, data=payload)
            expected[lpn] = payload
        for lpn, payload in expected.items():
            assert nftl.read(lpn) == payload


class TestForcedRecycle:
    def test_folds_owning_chain(self, small_geometry):
        nftl, chip = make_nftl(small_geometry)
        nftl.write(0, data=b"cold")
        chain = nftl.chain_of(0)
        old_primary = chain.primary
        recycled = nftl.recycle_block_range(range(old_primary, old_primary + 1))
        assert recycled == 1
        assert chain.primary != old_primary
        assert nftl.read(0) == b"cold"
        assert chip.erase_counts[old_primary] == 1

    def test_replacement_block_recycles_chain(self, small_geometry):
        nftl, _ = make_nftl(small_geometry)
        nftl.write(0, data=b"v1")
        nftl.write(0, data=b"v2")
        replacement = nftl.chain_of(0).replacement
        recycled = nftl.recycle_block_range(range(replacement, replacement + 1))
        assert recycled == 1
        chain = nftl.chain_of(0)
        assert chain.replacement is None
        assert nftl.read(0) == b"v2"

    def test_free_blocks_skipped(self, small_geometry):
        nftl, _ = make_nftl(small_geometry)
        free_block = next(iter(nftl.allocator.free_blocks()))
        assert nftl.recycle_block_range(range(free_block, free_block + 1)) == 0

    def test_same_chain_once_per_range(self, small_geometry):
        nftl, _ = make_nftl(small_geometry)
        nftl.write(0, data=b"a")
        nftl.write(0, data=b"b")
        chain = nftl.chain_of(0)
        lo = min(chain.primary, chain.replacement)
        hi = max(chain.primary, chain.replacement)
        if hi == lo + 1:
            recycled = nftl.recycle_block_range(range(lo, hi + 1))
            # After the first fold both old blocks are free, so the second
            # block in the range no longer has an owner.
            assert recycled == 1
            assert nftl.stats.folds == 1


class TestChainAccounting:
    def test_invalid_pages_counter(self, small_geometry):
        nftl, chip = make_nftl(small_geometry)
        nftl.write(0)
        nftl.write(0)
        nftl.write(0)
        chain = nftl.chain_of(0)
        # Home page + first replacement page superseded.
        assert chain.invalid_pages() == 2
        assert chain.valid_offsets == 1

    def test_owner_map_tracks_blocks(self, small_geometry):
        nftl, _ = make_nftl(small_geometry)
        nftl.write(0)
        nftl.write(0)
        chain = nftl.chain_of(0)
        assert nftl._owner[chain.primary] is chain
        assert nftl._owner[chain.replacement] is chain

    def test_valid_offsets_match_chip(self, small_geometry):
        nftl, chip = make_nftl(small_geometry)
        rng = random.Random(3)
        for _ in range(3000):
            nftl.write(rng.randrange(nftl.num_logical_pages))
        total_valid = sum(
            chip.count_pages(block, PAGE_VALID)
            for block in range(small_geometry.num_blocks)
        )
        tracked = sum(
            chain.valid_offsets for chain in nftl._chains if chain is not None
        )
        assert total_valid == tracked


@settings(max_examples=20, deadline=None)
@given(
    writes=st.lists(st.tuples(st.integers(0, 10_000), st.integers(0, 255)),
                    max_size=300),
)
def test_nftl_read_your_writes_property(writes):
    geometry = FlashGeometry(16, 4, 512, 10_000)
    nftl, _ = make_nftl(geometry)
    expected = {}
    for raw_lpn, value in writes:
        lpn = raw_lpn % nftl.num_logical_pages
        nftl.write(lpn, data=bytes([value]))
        expected[lpn] = bytes([value])
    for lpn in range(nftl.num_logical_pages):
        assert nftl.read(lpn) == expected.get(lpn)


@settings(max_examples=10, deadline=None)
@given(
    writes=st.lists(st.integers(0, 10_000), max_size=300),
    seed=st.integers(0, 100),
)
def test_ftl_and_nftl_agree_on_content(writes, seed):
    """Both translation layers must expose identical logical contents."""
    from repro.ftl.page_mapping import PageMappingFTL

    geometry = FlashGeometry(16, 4, 512, 10_000)
    nftl, _ = make_nftl(geometry)
    ftl = PageMappingFTL(MtdDevice(NandFlash(geometry, store_data=True)))
    span = min(nftl.num_logical_pages, ftl.num_logical_pages)
    rng = random.Random(seed)
    for raw in writes:
        lpn = raw % span
        payload = bytes([rng.randrange(256)])
        nftl.write(lpn, data=payload)
        ftl.write(lpn, data=payload)
    for lpn in range(span):
        assert nftl.read(lpn) == ftl.read(lpn)
