"""Policy-arena tournament: smoke run, accounting laws, report rendering."""

from __future__ import annotations

import json

import pytest

from repro.arena import DEFAULT_ROSTER, arena_report, roster_specs, run_arena
from repro.arena.report import arena_console_table
from repro.arena.tournament import DEFAULT_WORKLOADS, arena_waf
from repro.sim.experiment import scaled_mlc2_geometry

SMOKE_LEVELERS = ("baseline", "swl", "dual-pool")
SMOKE_WORKLOADS = ("hotspot", "sequential")


@pytest.fixture(scope="module")
def smoke_result():
    return run_arena(
        scaled_mlc2_geometry(24, scale=100),
        "ftl",
        workloads=SMOKE_WORKLOADS,
        levelers=SMOKE_LEVELERS,
        horizon=0.02 * 86_400.0,
        seed=3,
        service_requests=300,
        run_faults=False,
    )


class TestRoster:
    def test_default_roster_covers_every_mechanism(self):
        assert set(DEFAULT_ROSTER) == {
            "baseline", "swl", "dual-pool", "cache-avoid", "softwear"
        }
        assert len(DEFAULT_WORKLOADS) >= 3

    def test_roster_specs_preserves_order(self):
        specs = roster_specs(("swl", "baseline"))
        assert list(specs) == ["swl", "baseline"]

    def test_unknown_leveler_rejected(self):
        with pytest.raises(ValueError, match="unknown arena leveler"):
            roster_specs(("swl", "mystery"))


class TestArenaWaf:
    def test_identity_without_cache(self):
        # Non-intercepting mechanisms: the repo's exact-WAF identity.
        assert arena_waf(100, 40, {"swl_erases": 3}) == pytest.approx(1.4)

    def test_cache_absorption_deducted(self):
        stats = {"cache_hits": 30, "cache_resident": 10}
        assert arena_waf(100, 0, stats) == pytest.approx(0.6)

    def test_zero_host_pages(self):
        assert arena_waf(0, 5, {}) == 0.0


class TestSmokeTournament:
    def test_full_cross_product_of_cells(self, smoke_result):
        assert len(smoke_result.cells) == len(SMOKE_LEVELERS) * len(
            SMOKE_WORKLOADS
        )
        seen = {(cell.workload, cell.leveler) for cell in smoke_result.cells}
        assert seen == {
            (workload, leveler)
            for workload in SMOKE_WORKLOADS
            for leveler in SMOKE_LEVELERS
        }

    def test_baseline_cells_have_zero_extra_erases(self, smoke_result):
        for cell in smoke_result.cells:
            if cell.leveler == "baseline":
                assert cell.extra_erases == 0

    def test_leaderboard_sorted_by_endurance(self, smoke_result):
        days = [entry.endurance_days for entry in smoke_result.leaderboard]
        assert days == sorted(days, reverse=True)

    def test_leaderboard_row_per_leveler(self, smoke_result):
        assert {e.leveler for e in smoke_result.leaderboard} == set(
            SMOKE_LEVELERS
        )
        by_name = {e.leveler: e for e in smoke_result.leaderboard}
        # RAM accounting: baseline none, SWL one bit per block (k=0),
        # dual-pool a 4-byte counter per block.
        assert by_name["baseline"].ram_bytes == 0
        assert by_name["swl"].ram_bytes == (24 + 7) // 8
        assert by_name["dual-pool"].ram_bytes == 24 * 4
        # Faults were skipped: the column reports True trivially.
        assert all(e.faults_ok for e in smoke_result.leaderboard)
        # The service soak produced a real p99 for every contender.
        assert all(e.p99_s > 0 for e in smoke_result.leaderboard)

    def test_as_dict_is_json_serializable(self, smoke_result):
        payload = json.loads(json.dumps(smoke_result.as_dict()))
        assert payload["workloads"] == list(SMOKE_WORKLOADS)
        assert len(payload["leaderboard"]) == len(SMOKE_LEVELERS)
        assert {cell["leveler"] for cell in payload["cells"]} == set(
            SMOKE_LEVELERS
        )

    def test_markdown_report_carries_the_columns(self, smoke_result):
        report = arena_report(smoke_result)
        assert "## Leaderboard" in report
        for column in ("endurance", "extra erases", "WAF", "RAM", "p99"):
            assert column in report
        for entry in smoke_result.leaderboard:
            assert entry.label in report

    def test_console_table_renders(self, smoke_result):
        table = arena_console_table(smoke_result)
        assert "Policy arena leaderboard" in table
        assert "dual-pool" in table


class TestValidation:
    def test_horizon_must_be_positive(self):
        with pytest.raises(ValueError, match="horizon"):
            run_arena(
                scaled_mlc2_geometry(24, scale=100), "ftl", horizon=0.0
            )

    def test_needs_a_workload(self):
        with pytest.raises(ValueError, match="workload"):
            run_arena(
                scaled_mlc2_geometry(24, scale=100), "ftl", workloads=()
            )
