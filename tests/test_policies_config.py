"""Tests for selection/trigger policies and the SWLConfig sweep helper."""

from __future__ import annotations

import random

import pytest

from repro.core.bet import BlockErasingTable
from repro.core.config import (
    DISABLED,
    PAPER_K_VALUES,
    PAPER_THRESHOLDS,
    SWLConfig,
    paper_sweep,
)
from repro.core.policies import (
    EveryNRequestsTrigger,
    OnEraseTrigger,
    PeriodicTrigger,
    RandomSelection,
    SequentialSelection,
    make_selection_policy,
)


class TestSequentialSelection:
    def test_picks_next_zero(self):
        bet = BlockErasingTable(8)
        bet.record_erase(0)
        bet.record_erase(1)
        policy = SequentialSelection()
        assert policy.select(bet, 0, random.Random(1)) == 2

    def test_returns_none_when_full(self):
        bet = BlockErasingTable(4)
        for block in range(4):
            bet.record_erase(block)
        assert SequentialSelection().select(bet, 0, random.Random(1)) is None


class TestRandomSelection:
    def test_only_zero_flags_chosen(self):
        bet = BlockErasingTable(16)
        for block in range(12):
            bet.record_erase(block)
        policy = RandomSelection()
        rng = random.Random(3)
        for _ in range(20):
            choice = policy.select(bet, 0, rng)
            assert choice in {12, 13, 14, 15}

    def test_returns_none_when_full(self):
        bet = BlockErasingTable(4)
        for block in range(4):
            bet.record_erase(block)
        assert RandomSelection().select(bet, 0, random.Random(1)) is None

    def test_uniformish_coverage(self):
        bet = BlockErasingTable(8)
        policy = RandomSelection()
        rng = random.Random(5)
        seen = {policy.select(bet, 0, rng) for _ in range(200)}
        assert seen == set(range(8))


class TestSelectionFactory:
    def test_known_names(self):
        assert isinstance(make_selection_policy("sequential"), SequentialSelection)
        assert isinstance(make_selection_policy("random"), RandomSelection)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown selection"):
            make_selection_policy("zigzag")


class TestTriggers:
    def test_on_erase_always_checks(self):
        trigger = OnEraseTrigger()
        assert trigger.should_check(erases=0, requests=0, now=0.0)
        assert trigger.should_check(erases=5, requests=9, now=1.0)

    def test_every_n_requests(self):
        trigger = EveryNRequestsTrigger(10)
        fires = [
            trigger.should_check(erases=0, requests=r, now=0.0) for r in range(25)
        ]
        assert fires.count(True) == 3  # buckets 0, 1, 2

    def test_every_n_requires_positive(self):
        with pytest.raises(ValueError):
            EveryNRequestsTrigger(0)

    def test_periodic(self):
        trigger = PeriodicTrigger(10.0)
        assert trigger.should_check(erases=0, requests=0, now=0.0)
        assert not trigger.should_check(erases=0, requests=0, now=5.0)
        assert trigger.should_check(erases=0, requests=0, now=10.0)
        assert not trigger.should_check(erases=0, requests=0, now=19.0)

    def test_periodic_requires_positive(self):
        with pytest.raises(ValueError):
            PeriodicTrigger(0.0)


class TestSWLConfig:
    def test_label(self):
        assert SWLConfig(threshold=100, k=2).label() == "SWL+k=2+T=100"
        assert DISABLED.label() == "baseline"

    def test_disabled_builds_none(self):
        assert DISABLED.build(8, host=None) is None

    def test_build_wires_parameters(self):
        class Host:
            def recycle_block_range(self, blocks):
                return 0

            def swl_cost_probe(self):
                return (0, 0)

        leveler = SWLConfig(threshold=50, k=1, selection="random").build(16, Host())
        assert leveler is not None
        assert leveler.threshold == 50
        assert leveler.bet.k == 1
        assert isinstance(leveler.selection, RandomSelection)

    def test_trigger_variants(self):
        class Host:
            def recycle_block_range(self, blocks):
                return 0

            def swl_cost_probe(self):
                return (0, 0)

        request_cfg = SWLConfig(trigger="every-n-requests", trigger_param=100)
        periodic_cfg = SWLConfig(trigger="periodic", trigger_param=60.0)
        assert isinstance(request_cfg.build(8, Host()).trigger, EveryNRequestsTrigger)
        assert isinstance(periodic_cfg.build(8, Host()).trigger, PeriodicTrigger)

    def test_unknown_trigger(self):
        with pytest.raises(ValueError, match="trigger"):
            SWLConfig(trigger="sometimes")._make_trigger()

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            SWLConfig(threshold=0)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            SWLConfig(k=-1)

    def test_disabled_skips_threshold_check(self):
        # The baseline label carries no SWL parameters to validate.
        assert SWLConfig(enabled=False, threshold=-5).label() == "baseline"


class TestPaperSweep:
    def test_matrix_is_full_cross_product(self):
        sweep = paper_sweep()
        assert len(sweep) == len(PAPER_K_VALUES) * len(PAPER_THRESHOLDS)
        labels = {config.label() for config in sweep}
        assert "SWL+k=0+T=100" in labels
        assert "SWL+k=3+T=1000" in labels

    def test_paper_constants(self):
        assert PAPER_THRESHOLDS == (100, 400, 700, 1000)
        assert PAPER_K_VALUES == (0, 1, 2, 3)
