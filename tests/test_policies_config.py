"""Tests for selection/trigger policies and the SWLConfig sweep helper."""

from __future__ import annotations

import random

import pytest

from repro.core.bet import BlockErasingTable
from repro.core.config import (
    DISABLED,
    PAPER_K_VALUES,
    PAPER_THRESHOLDS,
    SWLConfig,
    paper_sweep,
)
from repro.core.alternatives import (
    CacheAvoidLeveler,
    DualPoolLeveler,
    SoftWearLeveler,
)
from repro.core.leveler import SWLeveler
from repro.core.policies import (
    EveryNRequestsTrigger,
    LevelerSpec,
    OnEraseTrigger,
    PeriodicTrigger,
    RandomSelection,
    SequentialSelection,
    leveler_kinds,
    make_selection_policy,
    make_trigger_policy,
)


class TestSequentialSelection:
    def test_picks_next_zero(self):
        bet = BlockErasingTable(8)
        bet.record_erase(0)
        bet.record_erase(1)
        policy = SequentialSelection()
        assert policy.select(bet, 0, random.Random(1)) == 2

    def test_returns_none_when_full(self):
        bet = BlockErasingTable(4)
        for block in range(4):
            bet.record_erase(block)
        assert SequentialSelection().select(bet, 0, random.Random(1)) is None


class TestRandomSelection:
    def test_only_zero_flags_chosen(self):
        bet = BlockErasingTable(16)
        for block in range(12):
            bet.record_erase(block)
        policy = RandomSelection()
        rng = random.Random(3)
        for _ in range(20):
            choice = policy.select(bet, 0, rng)
            assert choice in {12, 13, 14, 15}

    def test_returns_none_when_full(self):
        bet = BlockErasingTable(4)
        for block in range(4):
            bet.record_erase(block)
        assert RandomSelection().select(bet, 0, random.Random(1)) is None

    def test_uniformish_coverage(self):
        bet = BlockErasingTable(8)
        policy = RandomSelection()
        rng = random.Random(5)
        seen = {policy.select(bet, 0, rng) for _ in range(200)}
        assert seen == set(range(8))

    def test_seeded_determinism(self):
        """Same seed, same BET: the pick sequence replays exactly."""
        def picks():
            bet = BlockErasingTable(32)
            for block in range(10):
                bet.record_erase(block)
            policy = RandomSelection()
            rng = random.Random(7)
            return [policy.select(bet, 0, rng) for _ in range(50)]

        assert picks() == picks()


class TestSelectionFactory:
    def test_known_names(self):
        assert isinstance(make_selection_policy("sequential"), SequentialSelection)
        assert isinstance(make_selection_policy("random"), RandomSelection)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown selection"):
            make_selection_policy("zigzag")


class TestTriggers:
    def test_on_erase_always_checks(self):
        trigger = OnEraseTrigger()
        assert trigger.should_check(erases=0, requests=0, now=0.0)
        assert trigger.should_check(erases=5, requests=9, now=1.0)

    def test_every_n_requests(self):
        trigger = EveryNRequestsTrigger(10)
        fires = [
            trigger.should_check(erases=0, requests=r, now=0.0) for r in range(25)
        ]
        assert fires.count(True) == 3  # buckets 0, 1, 2

    def test_every_n_requires_positive(self):
        with pytest.raises(ValueError):
            EveryNRequestsTrigger(0)

    def test_periodic(self):
        trigger = PeriodicTrigger(10.0)
        assert trigger.should_check(erases=0, requests=0, now=0.0)
        assert not trigger.should_check(erases=0, requests=0, now=5.0)
        assert trigger.should_check(erases=0, requests=0, now=10.0)
        assert not trigger.should_check(erases=0, requests=0, now=19.0)

    def test_periodic_requires_positive(self):
        with pytest.raises(ValueError):
            PeriodicTrigger(0.0)

    def test_every_n_first_request_is_bucket_zero(self):
        """Bucket 0 fires on the very first request, not after ``n``.

        The cursor starts at -1, so the first evaluation (requests=0,
        bucket 0) counts as a fresh bucket — the leveler gets one check
        at startup and then exactly one per ``n`` requests.
        """
        trigger = EveryNRequestsTrigger(100)
        assert trigger.should_check(erases=0, requests=0, now=0.0)
        assert not trigger.should_check(erases=0, requests=50, now=0.0)
        assert not trigger.should_check(erases=0, requests=99, now=0.0)
        assert trigger.should_check(erases=0, requests=100, now=0.0)

    def test_periodic_fires_once_per_period_under_jitter(self):
        """N periods with jittered arrivals -> exactly N checks.

        The fixed grid is the point of the bugfix: a late check must not
        push the next one to ``now + period`` (which would drift the
        rate below ``1/period`` forever), and multiple arrivals inside
        one period must still yield one check.
        """
        rng = random.Random(2)
        trigger = PeriodicTrigger(10.0)
        fires = 0
        periods = 50
        for index in range(periods):
            arrivals = sorted(
                index * 10.0 + rng.uniform(0.0, 10.0) for _ in range(3)
            )
            for now in arrivals:
                fires += trigger.should_check(erases=0, requests=0, now=now)
        assert fires == periods

    def test_periodic_skips_missed_grid_points_without_burst(self):
        """A long gap yields one late check, not a catch-up burst."""
        trigger = PeriodicTrigger(10.0)
        assert trigger.should_check(erases=0, requests=0, now=0.0)
        # Five grid points pass silently; the next arrival checks once...
        assert trigger.should_check(erases=0, requests=0, now=57.0)
        assert not trigger.should_check(erases=0, requests=0, now=58.0)
        # ...and the grid stays anchored at multiples of the period.
        assert trigger.should_check(erases=0, requests=0, now=60.0)

    def test_trigger_factory_unknown_name(self):
        with pytest.raises(ValueError, match="unknown trigger"):
            make_trigger_policy("lunar", 1.0)


class TestSWLConfig:
    def test_label(self):
        assert SWLConfig(threshold=100, k=2).label() == "SWL+k=2+T=100"
        assert DISABLED.label() == "baseline"

    def test_disabled_builds_none(self):
        assert DISABLED.build(8, host=None) is None

    def test_build_wires_parameters(self):
        class Host:
            def recycle_block_range(self, blocks):
                return 0

            def swl_cost_probe(self):
                return (0, 0)

        leveler = SWLConfig(threshold=50, k=1, selection="random").build(16, Host())
        assert leveler is not None
        assert leveler.threshold == 50
        assert leveler.bet.k == 1
        assert isinstance(leveler.selection, RandomSelection)

    def test_trigger_variants(self):
        class Host:
            def recycle_block_range(self, blocks):
                return 0

            def swl_cost_probe(self):
                return (0, 0)

        request_cfg = SWLConfig(trigger="every-n-requests", trigger_param=100)
        periodic_cfg = SWLConfig(trigger="periodic", trigger_param=60.0)
        assert isinstance(request_cfg.build(8, Host()).trigger, EveryNRequestsTrigger)
        assert isinstance(periodic_cfg.build(8, Host()).trigger, PeriodicTrigger)

    def test_unknown_trigger(self):
        with pytest.raises(ValueError, match="trigger"):
            SWLConfig(trigger="sometimes")._make_trigger()

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            SWLConfig(threshold=0)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            SWLConfig(k=-1)

    def test_disabled_skips_threshold_check(self):
        # The baseline label carries no SWL parameters to validate.
        assert SWLConfig(enabled=False, threshold=-5).label() == "baseline"


class TestPaperSweep:
    def test_matrix_is_full_cross_product(self):
        sweep = paper_sweep()
        assert len(sweep) == len(PAPER_K_VALUES) * len(PAPER_THRESHOLDS)
        labels = {config.label() for config in sweep}
        assert "SWL+k=0+T=100" in labels
        assert "SWL+k=3+T=1000" in labels

    def test_paper_constants(self):
        assert PAPER_THRESHOLDS == (100, 400, 700, 1000)
        assert PAPER_K_VALUES == (0, 1, 2, 3)


# ----------------------------------------------------------------------
# The leveler registry (LevelerSpec)
# ----------------------------------------------------------------------
class _RegistryHost:
    """Minimal WearLevelingHost with the mtd the dual-pool kind needs."""

    class _Mtd:
        def __init__(self, num_blocks):
            self.erase_counts = [0] * num_blocks

    class _Geometry:
        page_size = 4096

    def __init__(self, num_blocks=16):
        self.mtd = self._Mtd(num_blocks)
        self.geometry = self._Geometry()

    def recycle_block_range(self, blocks):
        return 0

    def swl_cost_probe(self):
        return (0, 0)


class TestLevelerSpec:
    def test_registered_kinds(self):
        assert leveler_kinds() == [
            "cache-avoid", "dual-pool", "softwear", "swl"
        ]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown leveler kind"):
            LevelerSpec(kind="quantum")

    def test_builds_each_mechanism(self):
        host = _RegistryHost()
        built = {
            kind: LevelerSpec(kind=kind).build(16, host)
            for kind in leveler_kinds()
        }
        assert isinstance(built["swl"], SWLeveler)
        assert isinstance(built["dual-pool"], DualPoolLeveler)
        assert isinstance(built["cache-avoid"], CacheAvoidLeveler)
        assert isinstance(built["softwear"], SoftWearLeveler)

    def test_disabled_builds_none(self):
        assert LevelerSpec(enabled=False).build(16, _RegistryHost()) is None

    def test_labels(self):
        assert LevelerSpec(kind="swl", threshold=400, k=2).label() == (
            "SWL+k=2+T=400"
        )
        assert LevelerSpec(kind="dual-pool", delta=8).label() == "DP+d=8+p=64"
        assert LevelerSpec(kind="cache-avoid").label() == "CACHE+64p"
        assert LevelerSpec(kind="softwear").label() == "SOFTWEAR+n=256+s=1"
        assert LevelerSpec(enabled=False).label() == "baseline"

    def test_swl_label_matches_swlconfig(self):
        spec = LevelerSpec(kind="swl", threshold=100, k=2)
        assert spec.label() == SWLConfig(threshold=100, k=2).label()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "swl", "threshold": 0},
            {"kind": "swl", "k": -1},
            {"kind": "dual-pool", "delta": 0},
            {"kind": "dual-pool", "check_period": 0},
            {"kind": "dual-pool", "batch": 0},
            {"kind": "cache-avoid", "cache_pages": 0},
            {"kind": "softwear", "period_requests": 0},
            {"kind": "softwear", "span_blocks": 0},
        ],
    )
    def test_knob_validation(self, kwargs):
        with pytest.raises(ValueError):
            LevelerSpec(**kwargs)

    def test_disabled_skips_knob_validation(self):
        assert LevelerSpec(enabled=False, threshold=-1).label() == "baseline"

    def test_swl_kind_wires_policies_through(self):
        host = _RegistryHost()
        leveler = LevelerSpec(
            kind="swl",
            threshold=50,
            k=1,
            selection="random",
            trigger="every-n-requests",
            trigger_param=32,
        ).build(16, host)
        assert leveler.threshold == 50
        assert leveler.bet.k == 1
        assert isinstance(leveler.selection, RandomSelection)
        assert isinstance(leveler._trigger, EveryNRequestsTrigger)
        assert leveler._trigger.n == 32

    def test_cache_avoid_reads_page_size_from_host(self):
        leveler = LevelerSpec(kind="cache-avoid", cache_pages=8).build(
            16, _RegistryHost()
        )
        assert leveler.page_size == 4096
        assert leveler.ram_bytes == 8 * (4096 + 4)

    def test_dual_pool_shares_the_host_counters(self):
        host = _RegistryHost(num_blocks=12)
        leveler = LevelerSpec(kind="dual-pool").build(12, host)
        assert leveler.erase_counts is host.mtd.erase_counts

    def test_spec_is_hashable_and_picklable(self):
        import pickle

        spec = LevelerSpec(kind="softwear", period_requests=64)
        assert hash(spec) == hash(LevelerSpec(kind="softwear", period_requests=64))
        assert pickle.loads(pickle.dumps(spec)) == spec
