"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.traces.io import load_trace
from repro.traces.stats import summarize


class TestGenerateTrace:
    def test_writes_csv(self, tmp_path, capsys):
        path = tmp_path / "trace.csv"
        code = main([
            "generate-trace", str(path),
            "--sectors", "65536", "--days", "0.1", "--seed", "4",
        ])
        assert code == 0
        trace = load_trace(path)
        assert trace
        summary = summarize(trace, 65536)
        assert summary.written_lba_fraction == pytest.approx(0.3662, abs=0.01)
        assert "written LBA coverage" in capsys.readouterr().out

    def test_writes_binary(self, tmp_path):
        path = tmp_path / "trace.bin"
        main(["generate-trace", str(path), "--sectors", "65536",
              "--days", "0.05", "--seed", "4"])
        assert load_trace(path)

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        argv = ["generate-trace", None, "--sectors", "65536",
                "--days", "0.05", "--seed", "9"]
        main([argv[0], str(a), *argv[2:]])
        main([argv[0], str(b), *argv[2:]])
        assert a.read_text() == b.read_text()


class TestSimulate:
    def test_generated_workload(self, capsys):
        code = main([
            "simulate", "--blocks", "24", "--scale", "100",
            "--driver", "nftl", "-T", "10", "--days", "0.1", "--seed", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Simulation report" in out
        assert "NFTL+SWL+k=0+T=10" in out

    def test_trace_file_input(self, tmp_path, capsys):
        path = tmp_path / "t.csv"
        main(["generate-trace", str(path), "--sectors", "32768",
              "--days", "0.2", "--seed", "5"])
        code = main([
            "simulate", "--trace", str(path), "--blocks", "24",
            "--scale", "100", "--driver", "ftl", "--no-swl", "--seed", "2",
        ])
        assert code == 0
        assert "FTL" in capsys.readouterr().out

    def test_baseline_flag(self, capsys):
        main(["simulate", "--blocks", "24", "--scale", "100",
              "--driver", "nftl", "--no-swl", "--days", "0.1"])
        out = capsys.readouterr().out
        assert "SWL" not in out

    def test_multi_channel_reports_per_shard(self, capsys):
        code = main([
            "simulate", "--blocks", "24", "--scale", "100", "--driver", "ftl",
            "--channels", "2", "--striping", "page", "--swl-scope", "global",
            "--days", "0.1", "--seed", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "x2[page,global]" in out
        assert "Per-shard erase distributions (2 channels)" in out
        assert "shard 0" in out and "shard 1" in out
        assert "merged" in out

    def test_bad_striping_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--channels", "2", "--striping", "diagonal"])


class TestFaultsCommand:
    def test_multi_channel_rejected(self, capsys):
        code = main([
            "faults", "--blocks", "24", "--scale", "100", "--channels", "2",
        ])
        assert code == 2
        assert "--channels must be 1" in capsys.readouterr().err


class TestSweep:
    def test_sweep_table(self, capsys):
        code = main([
            "sweep", "--blocks", "24", "--scale", "100", "--driver", "nftl",
            "--thresholds", "10", "--ks", "0", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "First-failure sweep" in out
        assert "vs baseline" in out
        assert "NFTL+SWL+k=0+T=10" in out


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
