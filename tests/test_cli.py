"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.traces.io import load_trace
from repro.traces.stats import summarize


class TestGenerateTrace:
    def test_writes_csv(self, tmp_path, capsys):
        path = tmp_path / "trace.csv"
        code = main([
            "generate-trace", str(path),
            "--sectors", "65536", "--days", "0.1", "--seed", "4",
        ])
        assert code == 0
        trace = load_trace(path)
        assert trace
        summary = summarize(trace, 65536)
        assert summary.written_lba_fraction == pytest.approx(0.3662, abs=0.01)
        assert "written LBA coverage" in capsys.readouterr().out

    def test_writes_binary(self, tmp_path):
        path = tmp_path / "trace.bin"
        main(["generate-trace", str(path), "--sectors", "65536",
              "--days", "0.05", "--seed", "4"])
        assert load_trace(path)

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        argv = ["generate-trace", None, "--sectors", "65536",
                "--days", "0.05", "--seed", "9"]
        main([argv[0], str(a), *argv[2:]])
        main([argv[0], str(b), *argv[2:]])
        assert a.read_text() == b.read_text()


class TestSimulate:
    def test_generated_workload(self, capsys):
        code = main([
            "simulate", "--blocks", "24", "--scale", "100",
            "--driver", "nftl", "-T", "10", "--days", "0.1", "--seed", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Simulation report" in out
        assert "NFTL+SWL+k=0+T=10" in out

    def test_trace_file_input(self, tmp_path, capsys):
        path = tmp_path / "t.csv"
        main(["generate-trace", str(path), "--sectors", "32768",
              "--days", "0.2", "--seed", "5"])
        code = main([
            "simulate", "--trace", str(path), "--blocks", "24",
            "--scale", "100", "--driver", "ftl", "--no-swl", "--seed", "2",
        ])
        assert code == 0
        assert "FTL" in capsys.readouterr().out

    def test_baseline_flag(self, capsys):
        main(["simulate", "--blocks", "24", "--scale", "100",
              "--driver", "nftl", "--no-swl", "--days", "0.1"])
        out = capsys.readouterr().out
        assert "SWL" not in out

    def test_multi_channel_reports_per_shard(self, capsys):
        code = main([
            "simulate", "--blocks", "24", "--scale", "100", "--driver", "ftl",
            "--channels", "2", "--striping", "page", "--swl-scope", "global",
            "--days", "0.1", "--seed", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "x2[page,global]" in out
        assert "Per-shard erase distributions (2 channels)" in out
        assert "shard 0" in out and "shard 1" in out
        assert "merged" in out

    def test_bad_striping_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--channels", "2", "--striping", "diagonal"])


class TestFaultsCommand:
    def test_multi_channel_rejected(self, capsys):
        code = main([
            "faults", "--blocks", "24", "--scale", "100", "--channels", "2",
        ])
        assert code == 2
        assert "--channels must be 1" in capsys.readouterr().err

    def test_unrecovered_fault_exits_nonzero(self, capsys, monkeypatch):
        from repro.ftl.base import TranslationLayer

        monkeypatch.setattr(
            TranslationLayer,
            "failed_blocks",
            property(lambda self: frozenset({5})),
        )
        code = main([
            "faults", "--blocks", "24", "--scale", "100",
            "--soak-writes", "200", "--loss-points", "2", "--seed", "3",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "unrecovered" in out


class TestSweep:
    def test_sweep_table(self, capsys):
        code = main([
            "sweep", "--blocks", "24", "--scale", "100", "--driver", "nftl",
            "--thresholds", "10", "--ks", "0", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "First-failure sweep" in out
        assert "vs baseline" in out
        assert "NFTL+SWL+k=0+T=10" in out

    def test_supervised_sweep_resumes_and_reports_attempts(
        self, capsys, tmp_path
    ):
        workdir = tmp_path / "campaign"
        report_path = tmp_path / "sweep.md"
        argv = [
            "sweep", "--blocks", "24", "--scale", "100", "--driver", "ftl",
            "--thresholds", "10", "--ks", "0", "--seed", "3",
            "--resume", str(workdir), "--workers", "2",
            "--report", str(report_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "Supervised first-failure sweep" in first
        assert "Attempts" in first
        document = report_path.read_text()
        assert "## Supervision" in document
        assert "| Attempts |" in document
        # Cell state persists: a re-run adopts every finished cell and
        # prints the same table without recomputing.
        assert (workdir / "cell-000" / "result.pkl").exists()
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first.splitlines()[:8] == second.splitlines()[:8]


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestTraceCommand:
    def test_exports_artifact_set(self, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        code = main([
            "trace", str(out_dir), "--blocks", "24", "--scale", "100",
            "--hours", "1", "--days", "0.0208", "-T", "20", "--seed", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Traced replay" in out
        assert "Perfetto" in out
        document = json.load(open(out_dir / "trace.chrome.json"))
        assert document["traceEvents"]
        first = json.loads(
            (out_dir / "trace.jsonl").read_text().splitlines()[0]
        )
        assert {"ts", "shard", "kind"} <= set(first)
        prom = (out_dir / "metrics.prom").read_text()
        assert "repro_flash_erases_total" in prom

    def test_simulate_telemetry_flag(self, capsys):
        code = main([
            "simulate", "--blocks", "24", "--scale", "100", "--days", "0.1",
            "-T", "10", "--seed", "2", "--telemetry",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Telemetry" in out
        assert "wear heatmaps" in out

    def test_sweep_trace_out_writes_per_cell_dirs(self, tmp_path, capsys):
        out_dir = tmp_path / "sweep"
        code = main([
            "sweep", "--blocks", "24", "--scale", "100", "--thresholds",
            "20", "--ks", "0", "--seed", "3", "--trace-out", str(out_dir),
        ])
        assert code == 0
        cells = sorted(p.name for p in out_dir.iterdir())
        assert len(cells) == 2  # baseline + one (T, k) point
        for cell in cells:
            assert (out_dir / cell / "metrics.prom").exists()

    def test_sweep_bare_telemetry_warns(self, capsys):
        code = main([
            "sweep", "--blocks", "24", "--scale", "100", "--thresholds",
            "20", "--ks", "0", "--seed", "3", "--telemetry",
        ])
        assert code == 0
        assert "--trace-out" in capsys.readouterr().err


class TestLoggingOptions:
    def test_log_level_enables_diagnostics(self, capsys):
        from repro.util.diagnostics import reset_logging

        try:
            code = main([
                "--log-level", "DEBUG", "--log-channel", "leveler",
                "simulate", "--blocks", "24", "--scale", "100",
                "--days", "0.05", "-T", "10", "--seed", "2",
            ])
            assert code == 0
            assert "repro.leveler" in capsys.readouterr().err
        finally:
            reset_logging()

    def test_unknown_log_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            main(["--log-level", "LOUD", "simulate", "--blocks", "24",
                  "--scale", "100", "--days", "0.05", "--seed", "2"])
