"""Tests for the fault plan and the seeded fault injector."""

from __future__ import annotations

import pytest

from repro.fault.injector import FaultInjector
from repro.fault.plan import FaultPlan
from repro.flash.chip import PAGE_FREE, PAGE_INVALID, PAGE_VALID, NandFlash
from repro.flash.errors import (
    PowerLossError,
    ProgramFaultError,
    TransientEraseError,
    UncorrectableReadError,
)


class TestFaultPlan:
    def test_default_plan_is_inert(self):
        assert not FaultPlan().any_faults()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"erase_fail_prob": 1.5},
            {"program_fail_prob": -0.1},
            {"read_ber": 2.0},
            {"erase_weibull_shape": 0.0},
            {"power_loss_at": (0,)},
            {"read_retry_limit": -1},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_loss_schedule_is_sorted_and_deduplicated(self):
        plan = FaultPlan(power_loss_at=(30, 10, 30, 20))
        assert plan.power_loss_at == (10, 20, 30)

    def test_flat_erase_hazard(self):
        plan = FaultPlan(erase_fail_prob=0.25)
        assert plan.erase_hazard(0, 100) == 0.25
        assert plan.erase_hazard(99, 100) == 0.25

    def test_weibull_hazard_grows_with_wear(self):
        plan = FaultPlan(erase_fail_prob=0.5, erase_weibull_shape=2.0)
        fresh = plan.erase_hazard(1, 100)
        worn = plan.erase_hazard(90, 100)
        assert fresh < worn <= 0.5
        # At or beyond rated endurance the hazard hits the ceiling.
        assert plan.erase_hazard(150, 100) == 0.5


class TestDeterminism:
    def _drive(self, seed: int) -> list[str]:
        injector = FaultInjector(
            FaultPlan(seed=seed, erase_fail_prob=0.3, program_fail_prob=0.1),
            page_bits=8 * 512,
            endurance=100,
        )
        events = []
        for i in range(200):
            try:
                injector.on_program(i % 8, i % 4)
            except ProgramFaultError:
                events.append(f"p{i}")
            try:
                injector.on_erase(i % 8, wear=i)
            except TransientEraseError:
                events.append(f"e{i}")
        return events

    def test_same_seed_same_faults(self):
        assert self._drive(42) == self._drive(42)

    def test_different_seed_different_faults(self):
        assert self._drive(1) != self._drive(2)


class TestPowerLossScheduling:
    def test_loss_fires_at_scheduled_ordinal(self):
        injector = FaultInjector(FaultPlan(power_loss_at=(5,)))
        for _ in range(4):
            injector.on_read(0, 0)
        with pytest.raises(PowerLossError) as info:
            injector.on_read(0, 0)
        assert info.value.op_ordinal == 5
        assert injector.stats.power_losses == 1
        # The schedule is spent; later operations run normally.
        injector.on_read(0, 0)

    def test_cancel_power_loss_drops_pending_points(self):
        injector = FaultInjector(FaultPlan(power_loss_at=(3, 6)))
        injector.cancel_power_loss()
        for _ in range(10):
            injector.on_read(0, 0)
        assert injector.stats.power_losses == 0
        assert injector.next_loss_point() is None


class TestReadPath:
    def test_clean_reads_need_no_retries(self):
        injector = FaultInjector(FaultPlan(read_ber=0.0), page_bits=4096)
        assert injector.on_read(0, 0) == 0

    def test_hopeless_ber_becomes_uncorrectable(self):
        # With BER 1.0 every bit is wrong; ECC can never keep up.
        plan = FaultPlan(read_ber=1.0, ecc_correctable_bits=2, read_retry_limit=2)
        injector = FaultInjector(plan, page_bits=4096)
        with pytest.raises(UncorrectableReadError):
            injector.on_read(1, 2)
        assert injector.stats.reads_uncorrectable == 1
        assert injector.stats.read_retries == plan.read_retry_limit


class TestChipIntegration:
    def _chip(self, plan: FaultPlan, small_geometry) -> NandFlash:
        chip = NandFlash(small_geometry, store_data=True)
        chip.attach_injector(FaultInjector(plan))
        return chip

    def test_failed_erase_leaves_block_untouched(self, small_geometry):
        chip = self._chip(FaultPlan(erase_fail_prob=1.0), small_geometry)
        chip.program(0, 0, lba=7, data=b"x")
        with pytest.raises(TransientEraseError):
            chip.erase(0)
        assert chip.page_state(0, 0) == PAGE_VALID
        assert chip.erase_counts[0] == 0

    def test_program_fault_leaves_page_invalid_and_block_sticky(
        self, small_geometry
    ):
        chip = self._chip(FaultPlan(program_fail_prob=1.0), small_geometry)
        with pytest.raises(ProgramFaultError):
            chip.program(2, 0, lba=1)
        assert chip.page_state(2, 0) == PAGE_INVALID
        # The block is grown bad: the next program on it fails too.
        with pytest.raises(ProgramFaultError):
            chip.program(2, 1, lba=1)
        assert 2 in chip.injector.bad_program_blocks

    def test_power_loss_tears_the_inflight_program(self, small_geometry):
        chip = self._chip(FaultPlan(power_loss_at=(1,)), small_geometry)
        with pytest.raises(PowerLossError):
            chip.program(0, 0, lba=3, data=b"y")
        assert chip.page_state(0, 0) == PAGE_INVALID
        assert chip.injector.stats.torn_pages == 1

    def test_power_loss_without_torn_writes_leaves_page_free(
        self, small_geometry
    ):
        plan = FaultPlan(power_loss_at=(1,), torn_writes=False)
        chip = self._chip(plan, small_geometry)
        with pytest.raises(PowerLossError):
            chip.program(0, 0, lba=3)
        assert chip.page_state(0, 0) == PAGE_FREE
