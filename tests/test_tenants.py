"""Multi-tenant multiplexer and attribution-runner tests.

The load-bearing property is *conservation*: every request belongs to
exactly one tenant, so per-tenant counters must sum exactly (integer
``==``) to the device totals, through both the closed-loop replay and
the open-loop service engine.
"""

from __future__ import annotations

import pytest

from repro.core.config import SWLConfig
from repro.sim.experiment import (
    ExperimentSpec,
    logical_sectors_of,
    scaled_mlc2_geometry,
)
from repro.sim.metrics import TenantUsage
from repro.workloads import (
    MultiTenantWorkload,
    ShapeParams,
    TenantSpec,
    make_shape,
    run_multi_tenant_replay,
    run_multi_tenant_service,
)

SECTORS = 6000


def make_tenants(count=3, sectors=SECTORS, shapes=("hotspot", "phase", "mixed")):
    return [
        TenantSpec(
            name=f"t{index}",
            shape=make_shape(
                shapes[index % len(shapes)],
                ShapeParams(total_sectors=sectors, rate=10.0, seed=index),
                period=300.0,
            ),
            weight=1.0 + index,
        )
        for index in range(count)
    ]


def drain(workload, count):
    stream = workload.iter_tagged()
    return [next(stream) for _ in range(count)]


class TestRegions:
    def test_default_partition_is_disjoint_and_covers(self):
        workload = MultiTenantWorkload(make_tenants(3), SECTORS)
        regions = workload.regions
        assert regions[0][0] == 0
        assert regions[-1][1] == SECTORS
        for (_, end), (start, _) in zip(regions, regions[1:]):
            assert end == start

    def test_requests_stay_inside_their_region(self):
        workload = MultiTenantWorkload(make_tenants(3), SECTORS)
        for index, request in drain(workload, 2000):
            start, end = workload.regions[index]
            assert start <= request.lba < end
            assert request.end_lba <= end

    def test_explicit_regions_may_overlap(self):
        tenants = [
            TenantSpec("a", make_shape("uniform",
                       ShapeParams(total_sectors=SECTORS, seed=0)),
                       region=(0, 4000)),
            TenantSpec("b", make_shape("uniform",
                       ShapeParams(total_sectors=SECTORS, seed=1)),
                       region=(2000, 6000)),
        ]
        workload = MultiTenantWorkload(tenants, SECTORS)
        assert workload.regions == [(0, 4000), (2000, 6000)]

    def test_all_or_none_region_rule(self):
        tenants = make_tenants(2)
        mixed = [tenants[0],
                 TenantSpec("x", tenants[1].shape, region=(0, 100))]
        with pytest.raises(ValueError, match="every tenant"):
            MultiTenantWorkload(mixed, SECTORS)

    def test_region_bounds_checked(self):
        tenants = [
            TenantSpec("a", make_shape("uniform",
                       ShapeParams(total_sectors=SECTORS, seed=0)),
                       region=(0, SECTORS + 1)),
        ]
        with pytest.raises(ValueError, match="exceeds"):
            MultiTenantWorkload(tenants, SECTORS)

    def test_unique_names_required(self):
        shape = make_shape("uniform", ShapeParams(total_sectors=SECTORS))
        with pytest.raises(ValueError, match="unique"):
            MultiTenantWorkload(
                [TenantSpec("dup", shape), TenantSpec("dup", shape)], SECTORS
            )


class TestInterleaving:
    @pytest.mark.parametrize("policy", ["merge", "round-robin"])
    def test_deterministic_and_reiterable(self, policy):
        workload = MultiTenantWorkload(
            make_tenants(3), SECTORS, policy=policy, seed=5
        )
        assert drain(workload, 1000) == drain(workload, 1000)

    @pytest.mark.parametrize("policy", ["merge", "round-robin"])
    def test_arrivals_monotone_and_all_tenants_served(self, policy):
        workload = MultiTenantWorkload(
            make_tenants(3), SECTORS, policy=policy, seed=5
        )
        previous = 0.0
        seen = set()
        for index, request in drain(workload, 2000):
            assert request.time >= previous
            previous = request.time
            seen.add(index)
        assert seen == {0, 1, 2}

    def test_merge_weights_scale_request_share(self):
        # Weights 1:3 under merge time-compress the heavier tenant's
        # stream — it should land roughly 3x the requests.
        tenants = [
            TenantSpec("light", make_shape("uniform",
                       ShapeParams(total_sectors=SECTORS, seed=0)), weight=1.0),
            TenantSpec("heavy", make_shape("uniform",
                       ShapeParams(total_sectors=SECTORS, seed=1)), weight=3.0),
        ]
        workload = MultiTenantWorkload(tenants, SECTORS)
        counts = [0, 0]
        for index, _ in drain(workload, 4000):
            counts[index] += 1
        assert 2.0 < counts[1] / counts[0] < 4.5

    def test_round_robin_weights_are_exact(self):
        # Smooth WRR serves tenants in exact weight proportion.
        tenants = make_tenants(3)  # weights 1, 2, 3
        workload = MultiTenantWorkload(
            tenants, SECTORS, policy="round-robin", seed=2
        )
        counts = [0, 0, 0]
        for index, _ in drain(workload, 600):
            counts[index] += 1
        assert counts == [100, 200, 300]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            MultiTenantWorkload(make_tenants(2), SECTORS, policy="fifo")


class TestAttributionConservation:
    @pytest.fixture(scope="class")
    def spec(self):
        return ExperimentSpec(
            "ftl", scaled_mlc2_geometry(24, scale=100),
            SWLConfig(threshold=50.0), seed=7, channels=2,
        )

    @pytest.mark.parametrize("policy", ["merge", "round-robin"])
    def test_replay_conserves_exactly(self, spec, policy):
        sectors = logical_sectors_of(spec)
        workload = MultiTenantWorkload(
            make_tenants(3, sectors=sectors), sectors, policy=policy, seed=7
        )
        result = run_multi_tenant_replay(spec, workload, max_requests=6000)
        assert result.conservation_errors() == []
        total = TenantUsage.totals(result.tenants)
        assert total.erases == result.replay.total_erases
        assert total.pages_written == result.replay.pages_written
        assert total.pages_read == result.replay.pages_read
        assert total.requests == result.replay.requests
        # GC/SWL fired: attribution covered amplified work, not just
        # host writes.
        assert result.replay.total_erases > 0

    def test_service_conserves_and_attributes_latency(self, spec):
        sectors = logical_sectors_of(spec)
        workload = MultiTenantWorkload(
            make_tenants(3, sectors=sectors), sectors, seed=7
        )
        result = run_multi_tenant_service(
            spec, workload, max_requests=6000, queue_depth=8
        )
        assert result.conservation_errors() == []
        assert sum(s.count for s in result.tenant_latencies) == 6000
        for usage, summary in zip(result.tenants, result.tenant_latencies):
            assert summary.count == usage.requests
            assert 0.0 <= summary.p50 <= summary.p99 <= summary.maximum

    def test_replay_and_service_see_identical_wear(self, spec):
        """Determinism contract: the service engine mutates the backend
        through the same apply path, so wear equals the replay's."""
        sectors = logical_sectors_of(spec)
        workload = MultiTenantWorkload(
            make_tenants(2, sectors=sectors), sectors, seed=3
        )
        replay = run_multi_tenant_replay(spec, workload, max_requests=3000)
        service = run_multi_tenant_service(spec, workload, max_requests=3000)
        assert (replay.replay.total_erases
                == service.service.replay.total_erases)
        assert (replay.replay.pages_written
                == service.service.replay.pages_written)
        assert [t.erases for t in replay.tenants] == \
               [t.erases for t in service.tenants]

    def test_runner_requires_a_bound(self, spec):
        sectors = logical_sectors_of(spec)
        workload = MultiTenantWorkload(
            make_tenants(2, sectors=sectors), sectors
        )
        with pytest.raises(ValueError, match="needs max_requests"):
            run_multi_tenant_replay(spec, workload)
