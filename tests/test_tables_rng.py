"""Tests for the table renderer and the RNG plumbing."""

from __future__ import annotations

import pytest

from repro.util.rng import DEFAULT_SEED, make_rng, spawn_rng
from repro.util.tables import format_series, format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("+")
        assert "name" in lines[1]
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_numeric_right_alignment(self):
        text = format_table(["v"], [["1"], ["100"]])
        rows = [line for line in text.splitlines() if "|" in line][1:]
        assert rows[0] == "|   1 |"
        assert rows[1] == "| 100 |"

    def test_percent_cells_treated_numeric(self):
        text = format_table(["p"], [["5%"], ["100%"]])
        rows = [line for line in text.splitlines() if "|" in line][1:]
        assert rows[0].index("5") > rows[1].index("1")

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = format_table(["f"], [[1.5], [2.0]])
        assert "1.5" in text
        assert "2 " in text or "| 2 |" in text

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestFormatSeries:
    def test_series(self):
        text = format_series("s", [0, 1], [10, 20], x_label="k", y_label="years")
        assert "k" in text and "years" in text and "20" in text

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="xs"):
            format_series("s", [1], [1, 2])


class TestRng:
    def test_default_seed_reproduces(self):
        assert make_rng().random() == make_rng(DEFAULT_SEED).random()

    def test_distinct_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_spawn_streams_are_decorrelated(self):
        parent = make_rng(7)
        a = spawn_rng(parent, "a")
        parent = make_rng(7)
        b = spawn_rng(parent, "b")
        assert a.random() != b.random()

    def test_spawn_is_deterministic(self):
        first = spawn_rng(make_rng(7), "stream").random()
        second = spawn_rng(make_rng(7), "stream").random()
        assert first == second

    def test_spawn_order_independence(self):
        # Drawing from one child must not perturb a sibling created after.
        parent = make_rng(7)
        a = spawn_rng(parent, "a")
        b = spawn_rng(parent, "b")
        b_value = b.random()

        parent = make_rng(7)
        a2 = spawn_rng(parent, "a")
        _ = a2.random()  # consume from the first child this time
        b2 = spawn_rng(parent, "b")
        assert b2.random() == b_value
