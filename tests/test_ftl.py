"""Tests for the page-mapping FTL (paper Section 2.2, Figure 2(a))."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.flash.chip import PAGE_INVALID, PAGE_VALID, NandFlash
from repro.flash.errors import TranslationError
from repro.flash.geometry import FlashGeometry
from repro.flash.mtd import MtdDevice
from repro.ftl.page_mapping import PageMappingFTL


def make_ftl(geometry, **kwargs):
    chip = NandFlash(geometry, store_data=True)
    return PageMappingFTL(MtdDevice(chip), **kwargs), chip


class TestAddressTranslation:
    def test_unwritten_reads_none(self, small_geometry):
        ftl, _ = make_ftl(small_geometry)
        assert ftl.read(0) is None
        assert ftl.mapping_of(0) is None

    def test_write_then_read(self, small_geometry):
        ftl, _ = make_ftl(small_geometry)
        ftl.write(5, data=b"five")
        assert ftl.read(5) == b"five"
        assert ftl.mapping_of(5) is not None

    def test_out_place_update(self, small_geometry):
        # Figure 2(a): updated data goes to a new page; the old one turns
        # invalid and the table entry moves.
        ftl, chip = make_ftl(small_geometry)
        ftl.write(5, data=b"v1")
        first = ftl.mapping_of(5)
        ftl.write(5, data=b"v2")
        second = ftl.mapping_of(5)
        assert first != second
        assert ftl.read(5) == b"v2"
        assert chip.page_state(*first) == PAGE_INVALID
        assert chip.page_state(*second) == PAGE_VALID

    def test_lpn_range_checked(self, small_geometry):
        ftl, _ = make_ftl(small_geometry)
        with pytest.raises(TranslationError):
            ftl.write(ftl.num_logical_pages)
        with pytest.raises(TranslationError):
            ftl.read(-1)

    def test_logical_space_reserves_blocks(self, small_geometry):
        ftl, _ = make_ftl(small_geometry)
        assert ftl.num_logical_pages < small_geometry.total_pages
        assert ftl.num_logical_pages % small_geometry.pages_per_block == 0


class TestGarbageCollection:
    def test_space_reclaimed_under_pressure(self, small_geometry):
        ftl, chip = make_ftl(small_geometry)
        rng = random.Random(1)
        hot = list(range(16))
        for _ in range(2000):
            ftl.write(rng.choice(hot))
        assert chip.counters.erases > 0
        # A pure overwrite workload reclaims via erase-on-demand of fully
        # invalid blocks; copy-based GC stays idle.
        assert ftl.stats.dead_recycles + ftl.stats.gc_runs > 0
        assert ftl.allocator.free_count >= 1

    def test_copy_gc_engages_when_no_dead_blocks(self, small_geometry):
        ftl, _ = make_ftl(small_geometry)
        rng = random.Random(7)
        # Scatter writes over the whole space so blocks stay mixed
        # valid/invalid and only copy-based GC can reclaim.
        for _ in range(4000):
            ftl.write(rng.randrange(ftl.num_logical_pages))
        assert ftl.stats.gc_runs > 0
        assert ftl.stats.live_page_copies > 0

    def test_gc_preserves_all_data(self, small_geometry):
        ftl, _ = make_ftl(small_geometry)
        rng = random.Random(2)
        expected = {}
        for step in range(3000):
            lpn = rng.randrange(ftl.num_logical_pages // 2)
            payload = step.to_bytes(4, "little")
            ftl.write(lpn, data=payload)
            expected[lpn] = payload
        for lpn, payload in expected.items():
            assert ftl.read(lpn) == payload

    def test_stats_track_copies(self, small_geometry):
        ftl, _ = make_ftl(small_geometry)
        rng = random.Random(3)
        # Mixed hot/cold so victims carry live pages.
        for step in range(4000):
            if rng.random() < 0.3:
                ftl.write(rng.randrange(ftl.num_logical_pages))
            else:
                ftl.write(rng.randrange(8))
        assert ftl.stats.live_page_copies > 0
        assert ftl.stats.host_writes == 4000


class TestForcedRecycle:
    def test_moves_cold_data(self, small_geometry):
        ftl, chip = make_ftl(small_geometry)
        # Lay down cold data.
        for lpn in range(small_geometry.pages_per_block):
            ftl.write(lpn, data=lpn.to_bytes(2, "little"))
        cold_block = ftl.mapping_of(0)[0]
        recycled = ftl.recycle_block_range(range(cold_block, cold_block + 1))
        assert recycled == 1
        # Data survived and moved to a different block.
        assert ftl.read(0) == (0).to_bytes(2, "little")
        assert ftl.mapping_of(0)[0] != cold_block
        assert chip.erase_counts[cold_block] == 1

    def test_skips_free_blocks(self, small_geometry):
        ftl, _ = make_ftl(small_geometry)
        free_block = next(iter(ftl.allocator.free_blocks()))
        assert ftl.recycle_block_range(range(free_block, free_block + 1)) == 0

    def test_recycles_host_frontier(self, small_geometry):
        ftl, _ = make_ftl(small_geometry)
        ftl.write(0, data=b"x")
        frontier_block = ftl.mapping_of(0)[0]
        recycled = ftl.recycle_block_range(range(frontier_block, frontier_block + 1))
        assert recycled == 1
        assert ftl.read(0) == b"x"
        # Next write must still work (a fresh frontier opens).
        ftl.write(1, data=b"y")
        assert ftl.read(1) == b"y"

    def test_forced_recycle_counted(self, small_geometry):
        ftl, _ = make_ftl(small_geometry)
        ftl.write(0)
        block = ftl.mapping_of(0)[0]
        ftl.recycle_block_range(range(block, block + 1))
        assert ftl.stats.forced_recycles == 1


class TestRebuildMapping:
    def test_rebuild_recovers_all_valid_mappings(self, small_geometry):
        ftl, _ = make_ftl(small_geometry)
        rng = random.Random(4)
        expected = {}
        for step in range(1500):
            lpn = rng.randrange(ftl.num_logical_pages)
            payload = step.to_bytes(4, "little")
            ftl.write(lpn, data=payload)
            expected[lpn] = payload
        recovered = ftl.rebuild_mapping()
        assert recovered == len(expected)
        for lpn, payload in expected.items():
            assert ftl.read(lpn) == payload

    def test_writes_work_after_rebuild(self, small_geometry):
        ftl, _ = make_ftl(small_geometry)
        for lpn in range(20):
            ftl.write(lpn, data=b"a")
        ftl.rebuild_mapping()
        for lpn in range(20):
            ftl.write(lpn, data=b"b")
        assert all(ftl.read(lpn) == b"b" for lpn in range(20))


class TestInternalConsistency:
    def assert_counts_match_chip(self, ftl, chip):
        for block in range(chip.geometry.num_blocks):
            assert ftl._valid[block] == chip.count_pages(block, PAGE_VALID)
            assert ftl._invalid[block] == chip.count_pages(block, PAGE_INVALID)

    def test_counters_match_chip_after_churn(self, small_geometry):
        ftl, chip = make_ftl(small_geometry)
        rng = random.Random(5)
        for _ in range(3000):
            ftl.write(rng.randrange(ftl.num_logical_pages // 3))
        self.assert_counts_match_chip(ftl, chip)

    def test_single_valid_copy_per_lpn(self, small_geometry):
        ftl, chip = make_ftl(small_geometry)
        rng = random.Random(6)
        for _ in range(2500):
            ftl.write(rng.randrange(24))
        seen = set()
        for block in range(chip.geometry.num_blocks):
            for page in range(chip.geometry.pages_per_block):
                if chip.page_state(block, page) == PAGE_VALID:
                    lpn = chip.page_lba(block, page)
                    assert lpn not in seen, f"duplicate valid copy of {lpn}"
                    seen.add(lpn)


@settings(max_examples=20, deadline=None)
@given(
    writes=st.lists(st.tuples(st.integers(0, 10_000), st.integers(0, 255)),
                    max_size=400),
)
def test_read_your_writes_property(writes):
    geometry = FlashGeometry(16, 4, 512, 10_000)
    ftl, _ = make_ftl(geometry)
    expected = {}
    for raw_lpn, value in writes:
        lpn = raw_lpn % ftl.num_logical_pages
        ftl.write(lpn, data=bytes([value]))
        expected[lpn] = bytes([value])
    for lpn in range(ftl.num_logical_pages):
        assert ftl.read(lpn) == expected.get(lpn)
