"""Failure-injection tests: wear-out mid-operation, corrupted persistence,
and exhausted space."""

from __future__ import annotations

import random

import pytest

from repro.core.bet import BetStore, BlockErasingTable
from repro.core.config import SWLConfig
from repro.flash.chip import NandFlash
from repro.flash.errors import OutOfSpaceError, WearOutError
from repro.flash.geometry import FlashGeometry
from repro.flash.mtd import MtdDevice
from repro.ftl.factory import build_stack
from repro.ftl.page_mapping import PageMappingFTL


class TestWearOutDuringOperation:
    def test_layer_survives_wear_out(self, small_geometry):
        # Default chips record wear-out and keep serving; data stays
        # consistent long past the first failure (paper Table 4 runs).
        stack = build_stack(small_geometry, "ftl", store_data=True)
        layer = stack.layer
        rng = random.Random(1)
        expected = {}
        for step in range(40_000):
            lpn = rng.randrange(16)
            payload = step.to_bytes(4, "little")
            layer.write(lpn, data=payload)
            expected[lpn] = payload
        assert stack.flash.worn_blocks  # endurance 50 blows quickly
        for lpn, payload in expected.items():
            assert layer.read(lpn) == payload

    def test_fail_stop_chip_raises_through_stack(self, small_geometry):
        chip = NandFlash(small_geometry, fail_stop=True)
        layer = PageMappingFTL(MtdDevice(chip))
        rng = random.Random(2)
        with pytest.raises(WearOutError):
            for _ in range(200_000):
                layer.write(rng.randrange(8))


class TestSpaceExhaustion:
    def test_unreclaimable_space_raises(self):
        # Fill the logical space completely with live data, then demand
        # more blocks than exist by writing without ever invalidating:
        # impossible, so instead shrink physical space via a geometry that
        # leaves a single spare block and verify the error is clean.
        geometry = FlashGeometry(5, 4, 512, 1000)
        with pytest.raises(ValueError, match="no logical space"):
            PageMappingFTL(MtdDevice(NandFlash(geometry)))

    def test_error_message_mentions_cause(self, small_geometry):
        layer = PageMappingFTL(MtdDevice(NandFlash(small_geometry)))
        # Write every logical page once: all valid, no invalid pages.
        for lpn in range(layer.num_logical_pages):
            layer.write(lpn)
        # The pool has spare blocks, so this state is fine; now force the
        # allocator dry by requesting forced recycles into full space
        # repeatedly — the driver must either make progress or raise the
        # documented error, never corrupt state.
        for block in range(small_geometry.num_blocks):
            layer.recycle_block_range(range(block, block + 1))
        for lpn in range(layer.num_logical_pages):
            assert layer.mapping_of(lpn) is not None


class TestCorruptedPersistence:
    def test_both_slots_corrupt_returns_none(self, tmp_path):
        paths = (str(tmp_path / "a"), str(tmp_path / "b"))
        store = BetStore(paths)
        bet = BlockErasingTable(8)
        bet.record_erase(1)
        store.save(bet)
        store.save(bet)
        for path in paths:
            with open(path, "r+b") as handle:
                handle.seek(0)
                handle.write(b"\xde\xad\xbe\xef")
        assert BetStore(paths).load() is None

    def test_truncated_slot_skipped(self, tmp_path):
        paths = (str(tmp_path / "a"), str(tmp_path / "b"))
        store = BetStore(paths)
        first = BlockErasingTable(8)
        first.record_erase(3)
        store.save(first)
        second = BlockErasingTable(8)
        second.record_erase(5)
        store.save(second)
        # Truncate whichever slot holds the newer image.
        for path in paths:
            with open(path, "rb") as handle:
                raw = handle.read()
            try:
                _, sequence = BlockErasingTable.from_bytes(raw)
            except ValueError:
                continue
            if sequence == 2:
                with open(path, "wb") as handle:
                    handle.write(raw[: len(raw) // 2])
        loaded = BetStore(paths).load()
        assert loaded is not None
        assert loaded.is_set(3)

    def test_restore_after_unclean_shutdown_is_stale_not_wrong(self, small_geometry):
        # Paper Section 3.2: "If the system is not properly shut down, we
        # propose to load any existing correct version of the BET."
        stack = build_stack(small_geometry, "ftl", None)
        store = BetStore()
        early = BlockErasingTable(small_geometry.num_blocks)
        for block in range(4):
            early.record_erase(block)
        store.save(early)
        # Crash before the newer state is saved; reload yields the early
        # snapshot whose counters undercount but never overcount.
        swl_stack = build_stack(small_geometry, "ftl", swl=SWLConfig(threshold=50))
        assert swl_stack.leveler.restore(store)
        assert swl_stack.leveler.bet.ecnt == 4
