"""Tests for experiment specs/runners and the paper-layout result tables."""

from __future__ import annotations

import pytest

from repro.core.config import SWLConfig
from repro.sim.engine import SimResult
from repro.sim.experiment import (
    ExperimentSpec,
    logical_sectors_of,
    make_base_trace,
    make_workload,
    run_fixed_horizon,
    run_matrix,
    run_until_first_failure,
    scaled_mlc2_geometry,
    scaled_threshold,
    workload_params_for,
)
from repro.sim.metrics import EraseDistribution
from repro.sim.results import (
    fig5_rows,
    format_fig5,
    format_overheads,
    format_table4,
    overhead_rows,
    table4_rows,
)


def fast_geometry():
    """Small chip with low endurance so failure runs finish in seconds."""
    return scaled_mlc2_geometry(24, scale=200).scaled(
        num_blocks=24, endurance=50, name="test-24b"
    )


def fast_params(spec, hours=2.0, seed=3):
    return workload_params_for(spec, duration=hours * 3600.0, seed=seed)


class TestScaledSetup:
    def test_geometry_keeps_block_organization(self):
        geometry = scaled_mlc2_geometry(64, scale=20)
        assert geometry.pages_per_block == 128
        assert geometry.page_size == 2048
        assert geometry.endurance == 500

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            scaled_mlc2_geometry(0)
        with pytest.raises(ValueError):
            scaled_mlc2_geometry(64, scale=3)  # does not divide 10,000

    def test_scaled_threshold(self):
        assert scaled_threshold(100, scale=20) == 5.0
        assert scaled_threshold(1000, scale=20) == 50.0

    def test_scaled_threshold_too_small(self):
        with pytest.raises(ValueError, match="smaller scale"):
            scaled_threshold(100, scale=200)


class TestSpec:
    def test_labels(self):
        geometry = fast_geometry()
        assert ExperimentSpec("ftl", geometry).label() == "FTL"
        assert (
            ExperimentSpec("nftl", geometry, SWLConfig(threshold=5, k=2)).label()
            == "NFTL+SWL+k=2+T=5"
        )

    def test_logical_sectors(self):
        spec = ExperimentSpec("ftl", fast_geometry())
        sectors = logical_sectors_of(spec)
        stack = spec.build()
        assert sectors == stack.layer.num_logical_pages * 4

    def test_workload_params_overrides(self):
        spec = ExperimentSpec("ftl", fast_geometry())
        params = workload_params_for(spec, duration=100.0, hot_fraction=0.2)
        assert params.hot_fraction == 0.2
        assert params.duration == 100.0


class TestRunners:
    @pytest.fixture(scope="class")
    def shared(self):
        spec = ExperimentSpec("ftl", fast_geometry(), seed=1)
        params = fast_params(spec)
        workload = make_workload(params)
        return spec, workload.requests(), workload.prefill_requests()

    def test_first_failure_run(self, shared):
        spec, trace, warmup = shared
        result = run_until_first_failure(spec, trace, warmup=warmup)
        assert result.first_failure_time is not None
        assert result.first_failure_years > 0
        assert result.erase_distribution.maximum == spec.geometry.endurance + 1

    def test_fixed_horizon_run(self, shared):
        spec, trace, warmup = shared
        horizon = 6 * 3600.0
        result = run_fixed_horizon(spec, trace, horizon, warmup=warmup)
        assert result.sim_time <= horizon
        assert result.total_erases > 0

    def test_swl_beats_baseline_on_deviation(self, shared):
        spec, trace, warmup = shared
        swl_spec = ExperimentSpec(
            "ftl", spec.geometry, SWLConfig(threshold=2, k=0), seed=1
        )
        horizon = 12 * 3600.0
        baseline = run_fixed_horizon(spec, trace, horizon, warmup=warmup)
        leveled = run_fixed_horizon(swl_spec, trace, horizon, warmup=warmup)
        assert leveled.erase_distribution.deviation < baseline.erase_distribution.deviation

    def test_run_matrix_first_failure(self, shared):
        spec, trace, warmup = shared
        swl_spec = ExperimentSpec(
            "ftl", spec.geometry, SWLConfig(threshold=2, k=0), seed=1
        )
        results = run_matrix([spec, swl_spec], trace, warmup=warmup)
        assert [result.label for result in results] == ["FTL", "FTL+SWL+k=0+T=2"]
        assert all(result.first_failure_time is not None for result in results)

    def test_deterministic_given_seed(self, shared):
        spec, trace, warmup = shared
        first = run_until_first_failure(spec, trace, warmup=warmup)
        second = run_until_first_failure(spec, trace, warmup=warmup)
        assert first.total_erases == second.total_erases
        assert first.first_failure_time == second.first_failure_time

    def test_base_trace_shared_fairly(self, shared):
        # Different drivers replaying the same base trace see the same
        # request sequence (paper Section 5.1 fairness setup).
        spec, trace, warmup = shared
        nftl_spec = ExperimentSpec("nftl", spec.geometry, seed=1)
        ftl_result = run_fixed_horizon(spec, trace, 3600.0, warmup=warmup)
        nftl_result = run_fixed_horizon(nftl_spec, trace, 3600.0, warmup=warmup)
        assert ftl_result.requests == nftl_result.requests
        assert ftl_result.pages_written == nftl_result.pages_written


def _result(label, *, years=None, erases=100, copies=50, counts=(1, 2, 3)):
    failure = None if years is None else years * 365 * 86_400.0
    return SimResult(
        label=label,
        requests=10,
        pages_written=10,
        pages_read=0,
        sim_time=failure or 1000.0,
        first_failure_time=failure,
        erase_distribution=EraseDistribution.from_counts(list(counts)),
        total_erases=erases,
        live_page_copies=copies,
        gc_runs=5,
        layer_stats={},
    )


class TestResultTables:
    def test_table4_rows(self):
        rows = table4_rows([_result("FTL", counts=(900, 900, 900))])
        assert rows == [["FTL", 900, 0, 900]]
        assert "Avg." in format_table4([_result("FTL")])

    def test_fig5_rows_improvement(self):
        baseline = _result("FTL", years=2.0)
        swl = _result("FTL+SWL", years=3.0)
        rows = fig5_rows(baseline, [swl])
        assert rows[0][0] == "FTL"
        assert rows[1][2] == "+50.0%"
        assert "First failure" in format_fig5(baseline, [swl])

    def test_fig5_rows_unfinished_run(self):
        baseline = _result("FTL", years=2.0)
        unfinished = _result("FTL+SWL", years=None)
        rows = fig5_rows(baseline, [unfinished])
        assert str(rows[1][1]).startswith(">")
        assert rows[1][2] == "n/a"

    def test_overhead_rows(self):
        baseline = _result("NFTL", erases=1000, copies=2000)
        swl = _result("NFTL+SWL", erases=1010, copies=2030)
        rows = overhead_rows(baseline, [swl])
        assert rows[0] == ["NFTL", 100.0, 100.0]
        assert rows[1][1] == pytest.approx(101.0)
        assert rows[1][2] == pytest.approx(101.5)
        assert "Block erases" in format_overheads(baseline, [swl])

    def test_overhead_rows_zero_copy_baseline(self):
        baseline = _result("FTL", copies=0)
        swl = _result("FTL+SWL", copies=10)
        rows = overhead_rows(baseline, [swl])
        assert rows[1][2] == float("inf")
