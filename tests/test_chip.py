"""Tests for the NAND chip simulator: states, constraints, wear, failure."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.flash.chip import (
    PAGE_FREE,
    PAGE_INVALID,
    PAGE_VALID,
    NandFlash,
)
from repro.flash.errors import AddressError, ProgramError, WearOutError
from repro.flash.geometry import FlashGeometry


class TestPageLifecycle:
    def test_program_then_read(self, chip):
        chip.program(0, 0, lba=42, data=b"hello")
        lba, data = chip.read(0, 0)
        assert lba == 42
        assert data == b"hello"
        assert chip.page_state(0, 0) == PAGE_VALID

    def test_free_page_reads_empty(self, chip):
        lba, data = chip.read(1, 2)
        assert lba == -1
        assert data is None

    def test_overwrite_rejected(self, chip):
        chip.program(0, 0, lba=1)
        with pytest.raises(ProgramError, match="erased before"):
            chip.program(0, 0, lba=2)

    def test_program_invalid_page_rejected(self, chip):
        chip.program(0, 0, lba=1)
        chip.invalidate(0, 0)
        with pytest.raises(ProgramError):
            chip.program(0, 0, lba=2)

    def test_invalidate_requires_valid(self, chip):
        with pytest.raises(ProgramError, match="invalidate"):
            chip.invalidate(0, 0)

    def test_erase_frees_all_pages(self, chip):
        for page in range(chip.geometry.pages_per_block):
            chip.program(2, page, lba=page)
        chip.invalidate(2, 0)
        chip.erase(2)
        assert chip.is_block_free(2)
        assert chip.read(2, 0) == (-1, None)

    def test_data_not_stored_when_disabled(self, tiny_geometry):
        chip = NandFlash(tiny_geometry, store_data=False)
        chip.program(0, 0, lba=9, data=b"payload")
        lba, data = chip.read(0, 0)
        assert lba == 9
        assert data is None


class TestSequentialProgramming:
    def test_out_of_order_rejected_when_enforced(self, tiny_geometry):
        chip = NandFlash(tiny_geometry, enforce_sequential_program=True)
        chip.program(0, 0, lba=1)
        with pytest.raises(ProgramError, match="sequential"):
            chip.program(0, 2, lba=2)

    def test_in_order_accepted_when_enforced(self, tiny_geometry):
        chip = NandFlash(tiny_geometry, enforce_sequential_program=True)
        for page in range(tiny_geometry.pages_per_block):
            chip.program(0, page, lba=page)

    def test_out_of_order_allowed_by_default(self, chip):
        chip.program(0, 3, lba=1)  # NFTL writes at home offsets


class TestAddressValidation:
    @pytest.mark.parametrize("address", [(-1, 0), (16, 0), (0, -1), (0, 4)])
    def test_bad_page_addresses(self, chip, address):
        with pytest.raises(AddressError):
            chip.read(*address)

    def test_bad_erase_block(self, chip):
        with pytest.raises(AddressError):
            chip.erase(16)


class TestWear:
    def test_erase_counts_accumulate(self, chip):
        chip.erase(3)
        chip.erase(3)
        chip.erase(5)
        assert chip.erase_counts[3] == 2
        assert chip.erase_counts[5] == 1
        assert chip.total_erases() == 3
        assert chip.max_erase_count() == 2
        assert chip.min_erase_count() == 0

    def test_remaining_life(self, chip):
        chip.erase(0)
        assert chip.remaining_life(0) == chip.geometry.endurance - 1

    def test_first_failure_recorded_not_raised(self, tiny_geometry):
        chip = NandFlash(tiny_geometry)
        for _ in range(tiny_geometry.endurance + 1):
            chip.erase(7)
        assert chip.first_failure is not None
        assert chip.first_failure.block == 7
        assert chip.first_failure.erase_count == tiny_geometry.endurance + 1
        assert 7 in chip.worn_blocks

    def test_first_failure_is_first_only(self, tiny_geometry):
        chip = NandFlash(tiny_geometry)
        for _ in range(tiny_geometry.endurance + 1):
            chip.erase(7)
        for _ in range(tiny_geometry.endurance + 1):
            chip.erase(8)
        assert chip.first_failure.block == 7
        assert chip.worn_blocks == {7, 8}

    def test_fail_stop_raises(self, tiny_geometry):
        chip = NandFlash(tiny_geometry, fail_stop=True)
        for _ in range(tiny_geometry.endurance):
            chip.erase(0)
        with pytest.raises(WearOutError):
            chip.erase(0)

    def test_operation_counters(self, chip):
        chip.program(0, 0, lba=1)
        chip.read(0, 0)
        chip.erase(0)
        assert (chip.counters.reads, chip.counters.programs, chip.counters.erases) == (
            1,
            1,
            1,
        )


class TestEraseListeners:
    def test_listener_invoked_with_block(self, chip):
        seen = []
        chip.add_erase_listener(seen.append)
        chip.erase(4)
        chip.erase(9)
        assert seen == [4, 9]

    def test_listener_removal(self, chip):
        seen = []
        chip.add_erase_listener(seen.append)
        chip.remove_erase_listener(seen.append)
        chip.erase(0)
        assert seen == []

    def test_listener_runs_after_state_cleared(self, chip):
        chip.program(0, 0, lba=5)

        states = []
        chip.add_erase_listener(lambda block: states.append(chip.page_state(block, 0)))
        chip.erase(0)
        assert states == [PAGE_FREE]


class TestBlockTags:
    def test_set_and_get(self, chip):
        assert chip.block_tag(0) is None
        chip.set_block_tag(0, "P7")
        assert chip.block_tag(0) == "P7"

    def test_erase_clears_tag(self, chip):
        chip.set_block_tag(2, "R3")
        chip.erase(2)
        assert chip.block_tag(2) is None

    def test_bad_block_rejected(self, chip):
        from repro.flash.errors import AddressError

        with pytest.raises(AddressError):
            chip.set_block_tag(99, "x")
        with pytest.raises(AddressError):
            chip.block_tag(99)


class TestBlockQueries:
    def test_count_and_valid_pages(self, chip):
        chip.program(1, 0, lba=10)
        chip.program(1, 1, lba=11)
        chip.invalidate(1, 0)
        assert chip.count_pages(1, PAGE_VALID) == 1
        assert chip.count_pages(1, PAGE_INVALID) == 1
        assert chip.count_pages(1, PAGE_FREE) == 2
        assert chip.valid_pages(1) == [1]

    def test_page_lba(self, chip):
        chip.program(0, 2, lba=77)
        assert chip.page_lba(0, 2) == 77
        assert chip.page_lba(0, 3) == -1


# ----------------------------------------------------------------------
# Property: chip-level invariants under random legal operation sequences
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 10_000)), max_size=300),
       st.integers(0, 2**16))
def test_random_operations_keep_invariants(ops, seed):
    import random

    rng = random.Random(seed)
    geometry = FlashGeometry(4, 4, 512, 1000)
    chip = NandFlash(geometry, store_data=True)
    programmed = {}
    for kind, raw in ops:
        if kind == 0:  # program a random free page
            free = [
                (b, p)
                for b in range(4)
                for p in range(4)
                if chip.page_state(b, p) == PAGE_FREE
            ]
            if not free:
                continue
            block, page = free[raw % len(free)]
            lba = raw % 64
            chip.program(block, page, lba=lba, data=bytes([lba]))
            programmed[(block, page)] = lba
        elif kind == 1:  # invalidate a random valid page
            valid = [addr for addr in programmed]
            if not valid:
                continue
            block, page = valid[raw % len(valid)]
            chip.invalidate(block, page)
            del programmed[(block, page)]
        else:  # erase a random block
            block = raw % 4
            chip.erase(block)
            programmed = {
                addr: lba for addr, lba in programmed.items() if addr[0] != block
            }
        rng.random()
    # Every tracked valid page reads back its tag and payload.
    for (block, page), lba in programmed.items():
        read_lba, data = chip.read(block, page)
        assert read_lba == lba
        assert data == bytes([lba])
    # State counts per block always sum to pages_per_block.
    for block in range(4):
        states = chip.block_page_states(block)
        assert len(states) == 4
        assert set(states) <= {PAGE_FREE, PAGE_VALID, PAGE_INVALID}
