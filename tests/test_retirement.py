"""Tests for grown-bad-block retirement (device end-of-life model)."""

from __future__ import annotations

import random

import pytest

from repro.core.config import SWLConfig
from repro.flash.errors import OutOfSpaceError
from repro.flash.geometry import FlashGeometry
from repro.ftl.factory import build_stack


def worn_geometry():
    """Tiny chip with minuscule endurance so retirement happens fast."""
    return FlashGeometry(24, 8, 512, 30, name="retire-test")


class TestRetirementMechanics:
    def test_worn_blocks_leave_service(self):
        stack = build_stack(worn_geometry(), "ftl", retire_worn=True)
        layer = stack.layer
        rng = random.Random(1)
        try:
            for _ in range(100_000):
                layer.write(rng.randrange(8))
        except OutOfSpaceError:
            pass
        assert layer.retired_blocks
        for block in layer.retired_blocks:
            assert not layer.allocator.contains(block)
            assert stack.flash.erase_counts[block] > worn_geometry().endurance

    def test_retired_blocks_never_erased_again(self):
        stack = build_stack(worn_geometry(), "ftl", retire_worn=True)
        layer = stack.layer
        rng = random.Random(2)
        wear_at_retirement: dict[int, int] = {}
        try:
            for _ in range(100_000):
                layer.write(rng.randrange(8))
                for block in layer.retired_blocks:
                    wear_at_retirement.setdefault(
                        block, stack.flash.erase_counts[block]
                    )
        except OutOfSpaceError:
            pass
        for block, wear in wear_at_retirement.items():
            assert stack.flash.erase_counts[block] == wear

    def test_device_reaches_end_of_life(self):
        stack = build_stack(worn_geometry(), "ftl", retire_worn=True)
        layer = stack.layer
        rng = random.Random(3)
        with pytest.raises(OutOfSpaceError):
            for _ in range(10_000_000):
                layer.write(rng.randrange(8))
        # The chip lost real capacity before giving up.
        assert len(layer.retired_blocks) >= 1

    def test_data_intact_until_eol(self):
        stack = build_stack(worn_geometry(), "ftl", retire_worn=True,
                            store_data=True)
        layer = stack.layer
        cold = {}
        for lpn in range(32, 64):
            payload = lpn.to_bytes(2, "little")
            layer.write(lpn, data=payload)
            cold[lpn] = payload
        rng = random.Random(4)
        try:
            for _ in range(10_000_000):
                layer.write(rng.randrange(8), data=b"hot!")
        except OutOfSpaceError:
            pass
        for lpn, payload in cold.items():
            assert layer.read(lpn) == payload

    def test_nftl_retirement(self):
        stack = build_stack(worn_geometry(), "nftl", retire_worn=True)
        layer = stack.layer
        rng = random.Random(5)
        try:
            for _ in range(10_000_000):
                layer.write(rng.randrange(8))
        except OutOfSpaceError:
            pass
        assert layer.retired_blocks
        assert layer.stats.extra["retired"] == len(layer.retired_blocks)

    def test_disabled_by_default(self):
        stack = build_stack(worn_geometry(), "ftl")
        layer = stack.layer
        rng = random.Random(6)
        for _ in range(30_000):
            layer.write(rng.randrange(8))
        assert stack.flash.worn_blocks       # wear-out happened...
        assert not layer.retired_blocks      # ...but nothing was retired


class TestRetirementWithSWL:
    def test_swl_delays_first_retirement(self):
        """Static wear leveling postpones capacity loss — the usable-
        lifetime version of the paper's first-failure claim."""

        def writes_until_first_retirement(with_swl: bool) -> int:
            stack = build_stack(
                worn_geometry(), "ftl",
                SWLConfig(threshold=3, k=0) if with_swl else None,
                retire_worn=True,
                rng=random.Random(0),
            )
            layer = stack.layer
            # Pin cold data on half the chip.
            for lpn in range(64, 128):
                layer.write(lpn)
            rng = random.Random(7)
            count = 0
            try:
                while not layer.retired_blocks and count < 2_000_000:
                    layer.write(rng.randrange(16))
                    count += 1
            except OutOfSpaceError:
                pass
            return count

        baseline = writes_until_first_retirement(False)
        leveled = writes_until_first_retirement(True)
        assert leveled > baseline

    def test_swl_survives_retirements(self):
        stack = build_stack(
            worn_geometry(), "nftl", SWLConfig(threshold=3, k=0),
            retire_worn=True, rng=random.Random(0),
        )
        layer = stack.layer
        rng = random.Random(8)
        try:
            for _ in range(10_000_000):
                layer.write(rng.randrange(32))
        except OutOfSpaceError:
            pass
        assert layer.retired_blocks
        # The leveler kept functioning (no crash, BET consistent).
        assert stack.leveler.bet.fcnt <= stack.leveler.bet.size
