"""Crash-consistency acceptance tests: swept power-loss recovery.

The headline gate for the fault subsystem: a campaign with transient
erase failures, grown-bad program failures, and at least 50 swept
power-loss points completes with zero invariant violations under a fixed
RNG seed, for both translation drivers.
"""

from __future__ import annotations

import pytest

from repro.core.config import SWLConfig
from repro.fault.campaign import run_fault_campaign
from repro.fault.crashsim import CrashConsistencyHarness
from repro.fault.plan import FaultPlan
from repro.sim.experiment import scaled_mlc2_geometry

ACCEPTANCE_PLAN = FaultPlan(
    seed=3,
    erase_fail_prob=0.05,
    program_fail_prob=0.002,
    read_ber=1e-7,
)


class TestCrashHarness:
    def test_single_loss_point_recovers(self):
        harness = CrashConsistencyHarness(
            scaled_mlc2_geometry(32, scale=5),
            "ftl",
            SWLConfig(threshold=100, k=0),
            plan=FaultPlan(seed=1),
            seed=4,
            writes=200,
        )
        verdict = harness.run_once(150)
        assert verdict.crashed
        assert verdict.ok, verdict.violations
        assert verdict.writes_acked > 0
        assert verdict.mappings_recovered > 0
        assert verdict.bet_restored

    def test_loss_point_beyond_workload_never_fires(self):
        harness = CrashConsistencyHarness(
            scaled_mlc2_geometry(32, scale=5),
            "ftl",
            plan=FaultPlan(seed=1),
            seed=4,
            writes=50,
        )
        verdict = harness.run_once(10**9)
        assert not verdict.crashed
        assert verdict.ok, verdict.violations

    def test_sweep_is_deterministic(self):
        def run():
            harness = CrashConsistencyHarness(
                scaled_mlc2_geometry(32, scale=5),
                "nftl",
                plan=ACCEPTANCE_PLAN,
                seed=9,
                writes=120,
            )
            report = harness.sweep(range(40, 400, 90))
            return [
                (v.loss_point, v.crashed, v.writes_acked, v.retired_blocks)
                for v in report.verdicts
            ]

        assert run() == run()


class TestAcceptanceCampaign:
    """ISSUE acceptance: >= 50 loss points, fixed seed, zero violations."""

    @pytest.mark.parametrize("driver", ["ftl", "nftl"])
    def test_fifty_point_campaign_is_clean(self, driver):
        result = run_fault_campaign(
            scaled_mlc2_geometry(32, scale=5),
            driver,
            SWLConfig(threshold=100, k=0),
            plan=ACCEPTANCE_PLAN,
            seed=3,
            soak_writes=1500,
            loss_points=50,
        )
        assert len(result.crash_report.verdicts) == 50
        assert result.ok, result.violations
        # The campaign must actually have exercised the fault paths.
        assert result.injector_stats["erase_faults"] + result.injector_stats[
            "program_faults"
        ] > 0
        assert result.crash_report.crashes >= 45
        assert result.soak_writes > 0

    def test_unrecovered_fault_fails_the_gate(self, monkeypatch):
        # Simulate a driver that drops a recovery on the floor: a block
        # condemned by a fault but never retired must flip the campaign
        # verdict (and therefore the ``repro faults`` exit code).
        from repro.ftl.base import TranslationLayer

        monkeypatch.setattr(
            TranslationLayer,
            "failed_blocks",
            property(lambda self: frozenset({3})),
        )
        result = run_fault_campaign(
            scaled_mlc2_geometry(32, scale=5),
            "ftl",
            plan=ACCEPTANCE_PLAN,
            seed=3,
            soak_writes=200,
            loss_points=2,
        )
        assert not result.ok
        assert result.unrecovered_faults == 1
        assert any("unrecovered" in v for v in result.soak_violations)

    def test_campaign_report_roundtrip(self):
        from repro.sim.reporting import fault_campaign_report

        result = run_fault_campaign(
            scaled_mlc2_geometry(32, scale=5),
            "ftl",
            plan=ACCEPTANCE_PLAN,
            seed=3,
            soak_writes=400,
            loss_points=5,
        )
        document = fault_campaign_report(result)
        assert "Soak phase" in document
        assert "Power-loss sweep" in document
        assert ("PASS" in document) == result.ok
        as_dict = result.as_dict()
        assert as_dict["crash_loss_points"] == 5
        assert "inj_erase_faults" in as_dict
