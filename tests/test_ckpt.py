"""Checkpoint/restore: image format, resumable replay, round-trip laws.

The heart of this suite is the golden-hash pair: an uninterrupted
fixed-seed replay and one interrupted at a mid-run checkpoint and resumed
must both produce a ``SimResult.as_dict`` that hashes to the same
committed constant — the bit-identity contract of :mod:`repro.ckpt`.
"""

from __future__ import annotations

import hashlib
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.ckpt import (
    CheckpointCorruptError,
    CheckpointMismatchError,
    CheckpointPolicy,
    CheckpointTruncatedError,
    CheckpointVersionError,
    ReplayInterrupted,
    build_spec_backend,
    encode_payload,
    read_image,
    resume_spec,
    run_resumable,
    write_image,
)
from repro.ckpt.image import CHECKPOINT_VERSION, MAGIC
from repro.core.config import SWLConfig
from repro.fault.plan import FaultPlan
from repro.flash.errors import PowerLossError
from repro.ftl.factory import build_stack
from repro.sim.experiment import (
    ExperimentSpec,
    make_base_trace,
    run_until_first_failure,
    scaled_mlc2_geometry,
    workload_params_for,
)
from repro.util.rng import make_rng

#: SHA-256 of the canonical ``SimResult.as_dict`` JSON of the golden
#: configuration below.  Any change to replay semantics that moves this
#: hash is a reproducibility break and must be deliberate.
GOLDEN_SHA256 = (
    "0b4613179265a40590cfe4f5123c2ee5db75b49fb3e5a886aa94c3f09b36e282"
)


def golden_spec() -> ExperimentSpec:
    return ExperimentSpec(
        "ftl",
        scaled_mlc2_geometry(32, scale=100),
        SWLConfig(enabled=True, threshold=10, k=0),
        seed=7,
    )


@pytest.fixture(scope="module")
def golden_trace():
    spec = golden_spec()
    params = workload_params_for(spec, duration=1200.0, seed=3)
    return make_base_trace(params)


def result_sha256(result) -> str:
    blob = json.dumps(
        result.as_dict(), sort_keys=True, separators=(",", ":")
    ).encode()
    return hashlib.sha256(blob).hexdigest()


# ----------------------------------------------------------------------
# Image container
# ----------------------------------------------------------------------
class TestImage:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "a.ckpt"
        payload = {"kind": "test", "values": [1, 2.5, None, "x"], "nested": {"a": 1}}
        write_image(path, payload)
        assert read_image(path) == payload

    def test_canonical_encoding_is_order_independent(self):
        assert encode_payload({"b": 1, "a": 2}) == encode_payload({"a": 2, "b": 1})

    def test_nan_rejected_at_write_time(self, tmp_path):
        with pytest.raises(ValueError):
            write_image(tmp_path / "nan.ckpt", {"x": float("nan")})
        assert not (tmp_path / "nan.ckpt").exists()
        assert not (tmp_path / "nan.ckpt.tmp").exists()

    def test_atomic_overwrite_keeps_previous_on_error(self, tmp_path):
        path = tmp_path / "a.ckpt"
        write_image(path, {"generation": 1})
        with pytest.raises(ValueError):
            write_image(path, {"generation": float("inf")})
        assert read_image(path) == {"generation": 1}

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "short.ckpt"
        path.write_bytes(b"REPRO")
        with pytest.raises(CheckpointTruncatedError):
            read_image(path)

    def test_truncated_payload_rejected(self, tmp_path):
        path = tmp_path / "a.ckpt"
        write_image(path, {"k": list(range(100))})
        raw = path.read_bytes()
        path.write_bytes(raw[:-5])
        with pytest.raises(CheckpointTruncatedError):
            read_image(path)

    def test_bit_flip_rejected(self, tmp_path):
        path = tmp_path / "a.ckpt"
        write_image(path, {"k": list(range(100))})
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x40
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointCorruptError):
            read_image(path)

    def test_trailing_garbage_rejected(self, tmp_path):
        path = tmp_path / "a.ckpt"
        write_image(path, {"k": 1})
        path.write_bytes(path.read_bytes() + b"\x00")
        with pytest.raises(CheckpointCorruptError):
            read_image(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "a.ckpt"
        write_image(path, {"k": 1})
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointCorruptError, match="magic"):
            read_image(path)

    def test_version_mismatch_rejected(self, tmp_path):
        import struct

        path = tmp_path / "a.ckpt"
        write_image(path, {"k": 1})
        raw = bytearray(path.read_bytes())
        raw[8:10] = struct.pack("<H", CHECKPOINT_VERSION + 1)
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointVersionError):
            read_image(path)

    def test_magic_is_the_documented_constant(self, tmp_path):
        path = tmp_path / "a.ckpt"
        write_image(path, {"k": 1})
        assert path.read_bytes()[:8] == MAGIC == b"REPROCKP"


# ----------------------------------------------------------------------
# Resumable replay: the golden-hash bit-identity contract
# ----------------------------------------------------------------------
class TestGoldenResume:
    def test_uninterrupted_matches_golden_hash(self, golden_trace):
        result = run_resumable(golden_spec(), golden_trace)
        assert result_sha256(result) == GOLDEN_SHA256

    def test_checkpointing_changes_nothing(self, golden_trace, tmp_path):
        result = run_resumable(
            golden_spec(),
            golden_trace,
            checkpoint=CheckpointPolicy(tmp_path / "c.ckpt", every_requests=20_000),
        )
        assert result_sha256(result) == GOLDEN_SHA256

    def test_interrupted_and_resumed_matches_golden_hash(
        self, golden_trace, tmp_path
    ):
        path = tmp_path / "c.ckpt"
        with pytest.raises(ReplayInterrupted):
            run_resumable(
                golden_spec(),
                golden_trace,
                checkpoint=CheckpointPolicy(
                    path, every_requests=10_000, crash_after=4
                ),
            )
        resumed = run_resumable(golden_spec(), golden_trace, resume_from=path)
        assert result_sha256(resumed) == GOLDEN_SHA256

    def test_matches_plain_runner(self, golden_trace):
        spec = golden_spec()
        plain = run_until_first_failure(spec, golden_trace)
        resumable = run_resumable(spec, golden_trace)
        assert plain.as_dict() == resumable.as_dict()

    def test_resume_rejects_wrong_spec(self, golden_trace, tmp_path):
        path = tmp_path / "c.ckpt"
        with pytest.raises(ReplayInterrupted):
            run_resumable(
                golden_spec(),
                golden_trace,
                checkpoint=CheckpointPolicy(path, crash_after=1),
            )
        from dataclasses import replace

        other = replace(golden_spec(), seed=8)
        with pytest.raises(CheckpointMismatchError):
            run_resumable(other, golden_trace, resume_from=path)

    def test_resume_rejects_wrong_mode(self, golden_trace, tmp_path):
        path = tmp_path / "c.ckpt"
        with pytest.raises(ReplayInterrupted):
            run_resumable(
                golden_spec(),
                golden_trace,
                checkpoint=CheckpointPolicy(path, crash_after=1),
            )
        with pytest.raises(CheckpointMismatchError):
            run_resumable(
                golden_spec(), golden_trace, horizon=3600.0, resume_from=path
            )

    def test_resume_rejects_wrong_trace(self, golden_trace, tmp_path):
        path = tmp_path / "c.ckpt"
        with pytest.raises(ReplayInterrupted):
            run_resumable(
                golden_spec(),
                golden_trace,
                checkpoint=CheckpointPolicy(path, crash_after=1),
            )
        with pytest.raises(CheckpointMismatchError):
            run_resumable(golden_spec(), golden_trace[:-1], resume_from=path)

    def test_resume_spec_reads_seed_back(self, golden_trace, tmp_path):
        path = tmp_path / "c.ckpt"
        with pytest.raises(ReplayInterrupted):
            run_resumable(
                golden_spec(),
                golden_trace,
                checkpoint=CheckpointPolicy(path, crash_after=1),
            )
        assert resume_spec(golden_spec(), path) == golden_spec()


# ----------------------------------------------------------------------
# Power loss mid-run: checkpoint, crash, restore, invariants (satellite)
# ----------------------------------------------------------------------
class TestPowerLossRestore:
    def _stack(self, plan=None):
        from repro.fault.injector import FaultInjector

        geometry = scaled_mlc2_geometry(24, scale=100)
        injector = FaultInjector(plan) if plan is not None else None
        return build_stack(
            geometry,
            "ftl",
            SWLConfig(enabled=True, threshold=10, k=0),
            store_data=True,
            rng=make_rng(11),
            injector=injector,
        )

    def test_restore_after_power_loss_keeps_invariants(self, tmp_path):
        # Erase faults keep recovery machinery busy; the scheduled power
        # loss lands inside that churn (possibly mid-erase) and kills the
        # run well after the checkpoint was taken.
        plan = FaultPlan(seed=5, erase_fail_prob=0.05, power_loss_at=(900,))
        stack = self._stack(plan)
        layer = stack.layer
        rng = make_rng(3)
        num_pages = layer.num_logical_pages
        acked: dict[int, bytes] = {}
        snapshot_acked: dict[int, bytes] = {}
        path = tmp_path / "mid.ckpt"
        lost = False
        for step in range(2000):
            lpn = rng.randrange(num_pages)
            payload = f"step={step} lpn={lpn}".encode()
            try:
                layer.write(lpn, payload)
            except PowerLossError:
                lost = True
                break
            acked[lpn] = payload
            if step == 400:
                write_image(path, stack.snapshot_state())
                snapshot_acked = dict(acked)
        assert lost, "the scheduled power loss never fired"
        assert snapshot_acked, "checkpoint was never taken"

        restored = self._stack(plan)
        restored.restore_state(read_image(path))
        # Crash-consistency invariants on the restored stack: internal
        # bookkeeping balances, and every write acked before the
        # checkpoint reads back intact.
        restored.layer.assert_internal_consistency()
        for lpn, payload in snapshot_acked.items():
            assert restored.layer.read(lpn) == payload
        assert restored.layer.retired_blocks == set(restored.flash.bad_blocks)
        # The restored stack is live: it keeps absorbing writes.
        for step in range(50):
            restored.layer.write(step % num_pages, f"post={step}".encode())
        restored.layer.assert_internal_consistency()

    def test_power_loss_replay_resumes_identically(self, golden_trace, tmp_path):
        # End-to-end via the runner: a replay whose fault plan schedules a
        # power loss, interrupted at a checkpoint before the loss and
        # resumed, reports the identical (power-lost) result.
        spec = golden_spec()
        plan = FaultPlan(seed=5, power_loss_at=(60_000,))
        clean = run_resumable(spec, golden_trace, fault_plan=plan)
        assert clean.power_lost

        path = tmp_path / "c.ckpt"
        with pytest.raises(ReplayInterrupted):
            run_resumable(
                spec,
                golden_trace,
                fault_plan=plan,
                checkpoint=CheckpointPolicy(
                    path, every_requests=5_000, crash_after=2
                ),
            )
        resumed = run_resumable(
            spec, golden_trace, fault_plan=plan, resume_from=path
        )
        assert resumed.power_lost
        assert resumed.as_dict() == clean.as_dict()


# ----------------------------------------------------------------------
# Round-trip law: snapshot -> restore -> snapshot is byte-identical
# ----------------------------------------------------------------------
ROUND_TRIP_CONFIGS = [
    pytest.param(driver, k, channels, id=f"{driver}-k{k}-ch{channels}")
    for driver in ("ftl", "nftl")
    for k in (0, 3)
    for channels in (1, 4)
]


@pytest.mark.parametrize("driver,k,channels", ROUND_TRIP_CONFIGS)
@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    writes=st.lists(st.integers(0, 10_000), min_size=1, max_size=120),
)
def test_snapshot_round_trip_is_byte_identical(driver, k, channels, seed, writes):
    """snapshot -> restore-into-fresh-stack -> snapshot, byte for byte."""
    spec = ExperimentSpec(
        driver,
        scaled_mlc2_geometry(24, scale=100),
        SWLConfig(enabled=True, threshold=8, k=k),
        seed=seed,
        channels=channels,
    )
    backend = build_spec_backend(spec)
    pages = backend.num_logical_pages
    for lpn in writes:
        backend.write_pages([lpn % pages])
    first = encode_payload(backend.snapshot_state())

    fresh = build_spec_backend(spec)
    fresh.restore_state(json.loads(first))
    second = encode_payload(fresh.snapshot_state())
    assert first == second


@pytest.mark.parametrize("driver,k,channels", ROUND_TRIP_CONFIGS)
def test_restored_backend_behaves_identically(driver, k, channels):
    """After restore, both stacks evolve in lockstep under more writes."""
    spec = ExperimentSpec(
        driver,
        scaled_mlc2_geometry(24, scale=100),
        SWLConfig(enabled=True, threshold=8, k=k),
        seed=21,
        channels=channels,
    )
    backend = build_spec_backend(spec)
    pages = backend.num_logical_pages
    rng = make_rng(9)
    for _ in range(300):
        backend.write_pages([rng.randrange(pages)])
    frozen = json.loads(encode_payload(backend.snapshot_state()))

    twin = build_spec_backend(spec)
    twin.restore_state(frozen)
    tail_rng = make_rng(10)
    tail = [tail_rng.randrange(pages) for _ in range(200)]
    for lpn in tail:
        backend.write_pages([lpn])
        twin.write_pages([lpn])
    assert encode_payload(backend.snapshot_state()) == encode_payload(
        twin.snapshot_state()
    )
