"""Tests for NFTL attach-time mapping reconstruction."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.flash.chip import NandFlash
from repro.flash.geometry import FlashGeometry
from repro.flash.mtd import MtdDevice
from repro.ftl.nftl import NFTL


def make_nftl(geometry):
    chip = NandFlash(geometry, store_data=True)
    return NFTL(MtdDevice(chip)), chip


class TestRebuild:
    def test_recovers_primary_only_chains(self, small_geometry):
        nftl, _ = make_nftl(small_geometry)
        ppb = small_geometry.pages_per_block
        for offset in range(ppb):
            nftl.write(offset, data=bytes([offset]))
        recovered = nftl.rebuild_mapping()
        assert recovered == 1
        for offset in range(ppb):
            assert nftl.read(offset) == bytes([offset])

    def test_recovers_replacement_chains(self, small_geometry):
        nftl, _ = make_nftl(small_geometry)
        nftl.write(0, data=b"v1")
        nftl.write(0, data=b"v2")
        nftl.write(1, data=b"one")
        original = nftl.chain_of(0)
        primary, replacement = original.primary, original.replacement
        nftl.rebuild_mapping()
        chain = nftl.chain_of(0)
        assert chain.primary == primary
        assert chain.replacement == replacement
        assert chain.repl_next == 1
        assert nftl.read(0) == b"v2"
        assert nftl.read(1) == b"one"

    def test_recovers_after_heavy_churn(self, small_geometry):
        nftl, _ = make_nftl(small_geometry)
        rng = random.Random(5)
        expected = {}
        for step in range(5000):
            lpn = rng.randrange(nftl.num_logical_pages)
            payload = step.to_bytes(4, "little")
            nftl.write(lpn, data=payload)
            expected[lpn] = payload
        recovered = nftl.rebuild_mapping()
        assert recovered > 0
        for lpn, payload in expected.items():
            assert nftl.read(lpn) == payload

    def test_writes_continue_after_rebuild(self, small_geometry):
        nftl, _ = make_nftl(small_geometry)
        for lpn in range(20):
            nftl.write(lpn, data=b"a")
        nftl.rebuild_mapping()
        rng = random.Random(6)
        for _ in range(2000):
            nftl.write(rng.randrange(20), data=b"b")
        assert all(nftl.read(lpn) == b"b" for lpn in range(20))

    def test_free_pool_matches_unowned_blocks(self, small_geometry):
        nftl, chip = make_nftl(small_geometry)
        rng = random.Random(7)
        for _ in range(3000):
            nftl.write(rng.randrange(nftl.num_logical_pages))
        nftl.rebuild_mapping()
        owned = {
            block
            for chain in nftl._chains
            if chain is not None
            for block in (chain.primary, chain.replacement)
            if block is not None
        }
        assert owned.isdisjoint(nftl.allocator.free_blocks())
        assert len(owned) + nftl.allocator.free_count == small_geometry.num_blocks

    def test_empty_device_rebuilds_to_nothing(self, small_geometry):
        nftl, _ = make_nftl(small_geometry)
        assert nftl.rebuild_mapping() == 0
        assert nftl.allocator.free_count == small_geometry.num_blocks


@settings(max_examples=15, deadline=None)
@given(writes=st.lists(st.tuples(st.integers(0, 10_000), st.integers(0, 255)),
                       max_size=250))
def test_rebuild_preserves_all_content_property(writes):
    geometry = FlashGeometry(16, 4, 512, 10_000)
    nftl, _ = make_nftl(geometry)
    expected = {}
    for raw, value in writes:
        lpn = raw % nftl.num_logical_pages
        nftl.write(lpn, data=bytes([value]))
        expected[lpn] = bytes([value])
    nftl.rebuild_mapping()
    for lpn in range(nftl.num_logical_pages):
        assert nftl.read(lpn) == expected.get(lpn)
