"""Tests for the block-device layer and the FAT-style file system —
the full Figure 1 stack from file API down to NAND cells."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.flash.errors import TranslationError
from repro.flash.geometry import FlashGeometry
from repro.fs.fat import (
    FatFileSystem,
    FileNotFoundFsError,
    FileSystemError,
    FileSystemFullError,
)
from repro.ftl.blockdev import SECTOR_SIZE, BlockDevice
from repro.ftl.factory import build_stack


def make_device(driver="ftl", blocks=48, ppb=16):
    geometry = FlashGeometry(blocks, ppb, 2048, 100_000, name="fs-test")
    stack = build_stack(geometry, driver, store_data=True)
    return BlockDevice(stack.layer), stack


def make_fs(**kwargs):
    device, stack = make_device(**kwargs)
    fs = FatFileSystem(device, max_files=16)
    fs.format()
    return fs, device, stack


class TestBlockDevice:
    def test_unwritten_reads_zero(self):
        device, _ = make_device()
        assert device.read_sectors(0, 2) == b"\x00" * 1024

    def test_sector_roundtrip(self):
        device, _ = make_device()
        payload = bytes(range(256)) * 2
        device.write_sectors(5, payload)
        assert device.read_sectors(5, 1) == payload

    def test_sub_page_write_preserves_neighbours(self):
        device, _ = make_device()
        device.write_sectors(0, b"A" * SECTOR_SIZE * 4)  # one whole page
        device.write_sectors(1, b"B" * SECTOR_SIZE)      # splice sector 1
        assert device.read_sectors(0, 1) == b"A" * SECTOR_SIZE
        assert device.read_sectors(1, 1) == b"B" * SECTOR_SIZE
        assert device.read_sectors(2, 1) == b"A" * SECTOR_SIZE

    def test_multi_page_span(self):
        device, _ = make_device()
        payload = bytes([i % 251 for i in range(SECTOR_SIZE * 11)])
        device.write_sectors(3, payload)
        assert device.read_sectors(3, 11) == payload

    def test_ragged_length_rejected(self):
        device, _ = make_device()
        with pytest.raises(ValueError, match="whole number"):
            device.write_sectors(0, b"x")

    def test_out_of_range_rejected(self):
        device, _ = make_device()
        with pytest.raises(TranslationError):
            device.read_sectors(device.num_sectors, 1)
        with pytest.raises(TranslationError):
            device.write_sectors(device.num_sectors - 1,
                                 b"\x00" * SECTOR_SIZE * 2)

    @settings(max_examples=15, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 200), st.integers(1, 9), st.integers(0, 255)),
            max_size=40,
        )
    )
    def test_read_your_writes_property(self, ops):
        device, _ = make_device(blocks=24, ppb=8)
        shadow = bytearray(device.num_sectors * SECTOR_SIZE)
        for lba, count, fill in ops:
            lba %= max(1, device.num_sectors - count)
            payload = bytes([fill]) * (count * SECTOR_SIZE)
            device.write_sectors(lba, payload)
            shadow[lba * SECTOR_SIZE:(lba + count) * SECTOR_SIZE] = payload
        for lba, count, _ in ops:
            lba %= max(1, device.num_sectors - count)
            assert device.read_sectors(lba, count) == bytes(
                shadow[lba * SECTOR_SIZE:(lba + count) * SECTOR_SIZE]
            )


class TestFormatMount:
    def test_format_then_mount_fresh_instance(self):
        fs, device, _ = make_fs()
        fs.write_file("hello", b"world")
        remounted = FatFileSystem(device, max_files=16)
        remounted.mount()
        assert remounted.listdir() == ["hello"]
        assert remounted.read_file("hello") == b"world"

    def test_mount_without_format_fails(self):
        device, _ = make_device()
        fs = FatFileSystem(device, max_files=16)
        with pytest.raises(FileSystemError, match="magic"):
            fs.mount()

    def test_unmounted_operations_fail(self):
        device, _ = make_device()
        fs = FatFileSystem(device, max_files=16)
        with pytest.raises(FileSystemError, match="mounted"):
            fs.listdir()

    def test_too_small_device_rejected(self):
        geometry = FlashGeometry(8, 4, 2048, 1000)
        stack = build_stack(geometry, "ftl", store_data=True, op_ratio=0.3)
        device = BlockDevice(stack.layer)
        with pytest.raises(FileSystemError):
            FatFileSystem(device, max_files=512, sectors_per_cluster=64)


class TestFileCrud:
    def test_create_read(self):
        fs, *_ = make_fs()
        fs.write_file("a.txt", b"alpha")
        assert fs.read_file("a.txt") == b"alpha"
        assert fs.stat("a.txt").size == 5
        assert fs.exists("a.txt")

    def test_empty_file(self):
        fs, *_ = make_fs()
        fs.write_file("empty", b"")
        assert fs.read_file("empty") == b""

    def test_overwrite_replaces_content(self):
        fs, *_ = make_fs()
        fs.write_file("f", b"old" * 1000)
        fs.write_file("f", b"new")
        assert fs.read_file("f") == b"new"
        assert len(fs.listdir()) == 1

    def test_multi_cluster_file(self):
        fs, *_ = make_fs()
        payload = bytes([i % 256 for i in range(3 * 2048 + 123)])
        fs.write_file("big", payload)
        assert fs.read_file("big") == payload

    def test_delete_frees_clusters(self):
        fs, *_ = make_fs()
        before = fs.free_clusters()
        fs.write_file("f", b"x" * 8192)
        assert fs.free_clusters() < before
        fs.delete("f")
        assert fs.free_clusters() == before
        assert not fs.exists("f")

    def test_missing_file_errors(self):
        fs, *_ = make_fs()
        with pytest.raises(FileNotFoundFsError):
            fs.read_file("ghost")
        with pytest.raises(FileNotFoundFsError):
            fs.delete("ghost")

    def test_append_grows_file(self):
        fs, *_ = make_fs()
        fs.write_file("log", b"start:")
        for index in range(20):
            fs.append("log", f"entry{index};".encode())
        expected = b"start:" + b"".join(
            f"entry{index};".encode() for index in range(20)
        )
        assert fs.read_file("log") == expected

    def test_append_across_cluster_boundary(self):
        fs, *_ = make_fs()
        fs.write_file("log", b"a" * 2000)
        fs.append("log", b"b" * 3000)
        data = fs.read_file("log")
        assert data == b"a" * 2000 + b"b" * 3000

    def test_name_validation(self):
        fs, *_ = make_fs()
        with pytest.raises(FileSystemError):
            fs.write_file("this-name-is-way-too-long", b"")
        with pytest.raises(FileSystemError):
            fs.write_file("", b"")

    def test_directory_full(self):
        fs, *_ = make_fs()
        for index in range(16):
            fs.write_file(f"f{index}", b"x")
        with pytest.raises(FileSystemFullError, match="directory"):
            fs.write_file("onemore", b"x")

    def test_disk_full(self):
        fs, *_ = make_fs()
        with pytest.raises(FileSystemFullError, match="clusters"):
            fs.write_file("huge", b"x" * (fs.num_clusters + 2) * fs.cluster_bytes)

    def test_failed_write_leaks_no_clusters(self):
        fs, *_ = make_fs()
        free_before = fs.free_clusters()
        with pytest.raises(FileSystemFullError):
            fs.write_file("huge", b"x" * (fs.num_clusters + 2) * fs.cluster_bytes)
        assert fs.free_clusters() == free_before
        # And the device still works afterwards.
        fs.write_file("ok", b"fine")
        assert fs.read_file("ok") == b"fine"


class TestPersistence:
    def test_survives_ftl_rebuild(self):
        # Full-stack crash: FTL loses its RAM table, rebuilds from spare
        # areas, and the file system remounts intact on top.
        fs, device, stack = make_fs()
        payload = bytes(range(256)) * 16
        fs.write_file("keep", payload)
        fs.write_file("temp", b"junk")
        fs.delete("temp")
        stack.layer.rebuild_mapping()
        remounted = FatFileSystem(device, max_files=16)
        remounted.mount()
        assert remounted.listdir() == ["keep"]
        assert remounted.read_file("keep") == payload

    def test_append_never_reallocates_cluster_zero(self):
        # Regression: a FAT link to cluster 0 used to alias _FAT_FREE, so
        # appending past the tail could re-allocate a cluster that was
        # already part of the file's own chain and clobber it.
        fs, *_ = make_fs(blocks=32, ppb=16)
        fs.write_file("f1", b"")            # occupies cluster 0
        fs.write_file("f0", b"\x01" * 246)
        fs.delete("f1")                     # frees cluster 0
        fs.append("f0", b"\x01" * 3851)     # chain grows through cluster 0
        assert fs.read_file("f0") == b"\x01" * (246 + 3851)

    def test_fs_workload_wears_flash(self):
        fs, _, stack = make_fs()
        rng = random.Random(2)
        for round_number in range(60):
            fs.write_file("doc", rng.randbytes(rng.randrange(1, 6000)))
        assert stack.flash.total_erases() > 0


@settings(max_examples=10, deadline=None)
@given(
    steps=st.lists(
        st.tuples(st.sampled_from("wad"), st.integers(0, 3), st.integers(0, 4000)),
        max_size=30,
    )
)
def test_fs_matches_dict_model(steps):
    """The file system agrees with a plain-dict reference model."""
    fs, *_ = make_fs(blocks=32, ppb=16)
    model: dict[str, bytes] = {}
    names = ["f0", "f1", "f2", "f3"]
    for op, which, size in steps:
        name = names[which]
        payload = bytes([which + 1]) * size
        if op == "w":
            try:
                fs.write_file(name, payload)
                model[name] = payload
            except FileSystemFullError:
                model.pop(name, None)
        elif op == "a" and name in model:
            try:
                fs.append(name, payload)
                model[name] += payload
            except FileSystemFullError:
                pass
        elif op == "d" and name in model:
            fs.delete(name)
            del model[name]
    assert sorted(fs.listdir()) == sorted(model)
    for name, payload in model.items():
        assert fs.read_file(name) == payload
