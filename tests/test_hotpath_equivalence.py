"""Property tests pinning the word-level hot path to its O(n) references.

The hot-path rewrite (word-level :class:`~repro.util.bitarray.BitArray`,
incremental :class:`~repro.sim.metrics.WearAccumulator`, O(bins) heatmap
snapshots) must be observationally identical to the straightforward
implementations it replaced.  Each property here drives a random workload
through both the new code and a reference derivation — the historical
bit-by-bit ``bytearray`` bit array, ``EraseDistribution.from_counts``,
``WearHeatmap.from_counts`` — and asserts exact equality, including the
floating-point fields (the accounting is designed to be bit-identical,
not merely close; see DESIGN.md, hot-path accounting invariants).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bet import BlockErasingTable
from repro.obs.heatmap import WearHeatmap
from repro.sim.metrics import EraseDistribution, WearAccumulator
from repro.util.bitarray import BitArray


class ReferenceBitArray:
    """The historical bit-by-bit implementation, kept as the test oracle.

    Mirrors the pre-rewrite ``bytearray`` backing store: bit ``i`` lives
    in byte ``i >> 3`` at position ``i & 7``, every query walks bits in
    Python.  Deliberately naive — its only job is to be obviously
    correct.
    """

    def __init__(self, size: int) -> None:
        self.size = size
        self._bytes = bytearray((size + 7) // 8)

    def __getitem__(self, index: int) -> bool:
        return bool(self._bytes[index >> 3] & (1 << (index & 7)))

    def set(self, index: int) -> bool:
        byte, bit = index >> 3, 1 << (index & 7)
        if self._bytes[byte] & bit:
            return False
        self._bytes[byte] |= bit
        return True

    def clear(self, index: int) -> bool:
        byte, bit = index >> 3, 1 << (index & 7)
        if not self._bytes[byte] & bit:
            return False
        self._bytes[byte] &= ~bit
        return True

    def fill(self) -> None:
        for index in range(self.size):
            self.set(index)

    def reset(self) -> None:
        self._bytes = bytearray(len(self._bytes))

    def popcount(self) -> int:
        return sum(1 for i in range(self.size) if self[i])

    def all_set(self) -> bool:
        return self.popcount() == self.size

    def any_set(self) -> bool:
        return any(self._bytes)

    def next_zero(self, start: int) -> int | None:
        for offset in range(self.size):
            index = (start + offset) % self.size
            if not self[index]:
                return index
        return None

    def zero_indices(self) -> list[int]:
        return [i for i in range(self.size) if not self[i]]

    def to_bytes(self) -> bytes:
        return bytes(self._bytes)


# Weighted op alphabet for random sequences: mutations and queries mixed.
_OPS = ("set", "set", "set", "clear", "clear", "fill", "reset",
        "next_zero", "popcount", "zero_indices", "roundtrip")


@settings(max_examples=60, deadline=None)
@given(size=st.integers(1, 200), seed=st.integers(0, 2**32 - 1),
       steps=st.integers(1, 120))
def test_random_op_sequence_matches_reference(size, seed, steps):
    """Every observable of the word-level array equals the bit-by-bit
    oracle after each step of a random operation sequence."""
    rng = random.Random(seed)
    fast = BitArray(size)
    slow = ReferenceBitArray(size)
    for _ in range(steps):
        op = rng.choice(_OPS)
        if op in ("set", "clear"):
            index = rng.randrange(size)
            assert getattr(fast, op)(index) == getattr(slow, op)(index)
        elif op in ("fill", "reset"):
            getattr(fast, op)()
            getattr(slow, op)()
        elif op == "next_zero":
            start = rng.randrange(size)
            assert fast.next_zero(start) == slow.next_zero(start)
        elif op == "popcount":
            assert fast.popcount() == slow.popcount()
        elif op == "zero_indices":
            assert fast.zero_indices() == slow.zero_indices()
        else:  # roundtrip
            assert fast.to_bytes() == slow.to_bytes()
            assert BitArray.from_bytes(fast.to_bytes(), size) == fast
        # Invariants that must hold after every operation.
        assert fast.popcount() == slow.popcount()
        assert fast.all_set() == slow.all_set()
        assert fast.any_set() == slow.any_set()
    assert list(fast) == [slow[i] for i in range(size)]
    assert fast.to_bytes() == slow.to_bytes()


@given(size=st.integers(1, 128))
def test_fill_keeps_tail_byte_masked(size):
    """``fill`` must never set padding bits beyond ``size`` — serialized
    images with dirty padding are rejected as corrupt."""
    bits = BitArray(size)
    bits.fill()
    data = bits.to_bytes()
    assert len(data) == (size + 7) // 8
    tail_bits = size & 7
    if tail_bits:
        assert data[-1] >> tail_bits == 0
    # A filled image must round-trip (its own padding is clean).
    assert BitArray.from_bytes(data, size).all_set()


@settings(max_examples=60, deadline=None)
@given(size=st.integers(1, 128), seed=st.integers(0, 2**32 - 1))
def test_from_bytes_rejects_any_padding_corruption(size, seed):
    """Flipping any padding bit of a valid image raises; flipping any
    in-range bit yields a valid image with that one bit changed."""
    rng = random.Random(seed)
    bits = BitArray(size)
    for index in range(size):
        if rng.random() < 0.5:
            bits.set(index)
    image = bytearray(bits.to_bytes())
    nbits = len(image) * 8
    flip = rng.randrange(nbits)
    image[flip >> 3] ^= 1 << (flip & 7)
    if flip >= size:
        with pytest.raises(ValueError, match="padding"):
            BitArray.from_bytes(bytes(image), size)
    else:
        restored = BitArray.from_bytes(bytes(image), size)
        assert restored[flip] != bits[flip]
        assert sum(a != b for a, b in zip(restored, bits)) == 1


@given(size=st.integers(1, 64), extra=st.integers(-2, 2).filter(bool))
def test_from_bytes_rejects_wrong_length(size, extra):
    good = BitArray(size).to_bytes()
    bad = good + b"\x00" * extra if extra > 0 else good[:extra]
    with pytest.raises(ValueError, match="expected"):
        BitArray.from_bytes(bad, size)


# ----------------------------------------------------------------------
# Incremental wear accounting vs the one-shot reference
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(blocks=st.integers(1, 96), seed=st.integers(0, 2**32 - 1),
       erases=st.integers(0, 400))
def test_accumulator_matches_from_counts_exactly(blocks, seed, erases):
    """After any erase sequence the O(1) snapshot equals the O(n)
    reference on every field — floats compared with ``==``, not approx."""
    rng = random.Random(seed)
    counts = [0] * blocks
    wear = WearAccumulator(blocks)
    for _ in range(erases):
        block = rng.randrange(blocks)
        wear.record_erase(block, counts[block])
        counts[block] += 1
    incremental = wear.distribution()
    reference = EraseDistribution.from_counts(counts)
    assert incremental == reference
    assert incremental.average == reference.average
    assert incremental.deviation == reference.deviation
    assert incremental.minimum == min(counts)
    assert incremental.maximum == max(counts)


@settings(max_examples=40, deadline=None)
@given(shards=st.integers(2, 5), blocks=st.integers(1, 48),
       seed=st.integers(0, 2**32 - 1))
def test_shard_merge_matches_concatenated_from_counts(shards, blocks, seed):
    """The array path — per-shard accumulators merged — equals a single
    ``from_counts`` over the concatenated counts, bit for bit."""
    rng = random.Random(seed)
    all_counts: list[int] = []
    parts: list[EraseDistribution] = []
    for _ in range(shards):
        counts = [0] * blocks
        wear = WearAccumulator(blocks)
        for _ in range(rng.randrange(200)):
            block = rng.randrange(blocks)
            wear.record_erase(block, counts[block])
            counts[block] += 1
        all_counts.extend(counts)
        parts.append(wear.distribution())
    assert EraseDistribution.merge(parts) == \
        EraseDistribution.from_counts(all_counts)


@settings(max_examples=60, deadline=None)
@given(blocks=st.integers(1, 96), bins=st.integers(1, 32),
       seed=st.integers(0, 2**32 - 1))
def test_bin_sums_heatmap_matches_from_counts(blocks, bins, seed):
    """O(bins) heatmaps from incremental bin sums equal the O(n) scan,
    including the short last cell when bins do not divide blocks."""
    rng = random.Random(seed)
    counts = [0] * blocks
    wear = WearAccumulator(blocks)
    width = max(1, -(-blocks // bins))
    wear.ensure_bins(width, counts)
    for _ in range(rng.randrange(300)):
        block = rng.randrange(blocks)
        wear.record_erase(block, counts[block])
        counts[block] += 1
    fast = WearHeatmap.from_bin_sums(
        1.0,
        num_blocks=blocks,
        bin_width=width,
        bin_sums=wear.bin_sums,
        min_count=wear.minimum,
        max_count=wear.maximum,
        total_erases=wear.total,
    )
    assert fast == WearHeatmap.from_counts(1.0, counts, bins=bins)


def test_ensure_bins_mid_run_rebuild_is_exact():
    """Re-shaping the bins mid-run rebuilds from live counts, so sums
    stay exact across a heatmap-width reconfiguration."""
    counts = [0] * 10
    wear = WearAccumulator(10)
    rng = random.Random(3)
    for _ in range(50):
        block = rng.randrange(10)
        wear.record_erase(block, counts[block])
        counts[block] += 1
    wear.ensure_bins(3, counts)          # first shape: 4 bins, tail of 1
    assert wear.bin_sums == [sum(counts[i:i + 3]) for i in range(0, 10, 3)]
    for _ in range(50):
        block = rng.randrange(10)
        wear.record_erase(block, counts[block])
        counts[block] += 1
    assert wear.bin_sums == [sum(counts[i:i + 3]) for i in range(0, 10, 3)]
    wear.ensure_bins(4, counts)          # reshape: rebuilds exactly
    assert wear.bin_sums == [sum(counts[i:i + 4]) for i in range(0, 10, 4)]


# ----------------------------------------------------------------------
# BET over the word-level array, including k > 0 short-tail sets
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(num_blocks=st.integers(1, 80), k=st.integers(0, 4),
       seed=st.integers(0, 2**32 - 1))
def test_bet_counters_and_scan_with_short_tail_sets(num_blocks, k, seed):
    """BET behaviour over the new bit array for every (num_blocks, k)
    shape, in particular when ``2^k`` does not divide ``num_blocks`` and
    the last flag covers a short tail set."""
    if (1 << k) > num_blocks:
        return  # rejected geometry, covered by test_bet.py
    rng = random.Random(seed)
    bet = BlockErasingTable(num_blocks, k)
    flagged: set[int] = set()
    for _ in range(rng.randrange(150)):
        block = rng.randrange(num_blocks)
        flipped = bet.record_erase(block)
        assert flipped == (block >> k not in flagged)
        flagged.add(block >> k)
    assert bet.fcnt == len(flagged)
    assert bet.ecnt >= bet.fcnt
    assert bet.zero_flags() == [i for i in range(bet.size)
                                if i not in flagged]
    # The tail set never reaches past the device.
    tail = bet.blocks_in_set(bet.size - 1)
    assert tail.stop == num_blocks
    assert len(tail) == num_blocks - ((bet.size - 1) << k)
    # Persistence round-trips the flags exactly (fcnt cross-check runs
    # inside from_bytes against the word-level popcount).
    restored, _ = BlockErasingTable.from_bytes(bet.to_bytes())
    assert restored.fcnt == bet.fcnt
    assert restored.zero_flags() == bet.zero_flags()
