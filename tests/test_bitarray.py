"""Unit and property tests for the BET's backing bit array."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.util.bitarray import BitArray


class TestBasics:
    def test_starts_all_zero(self):
        bits = BitArray(37)
        assert len(bits) == 37
        assert not bits.any_set()
        assert bits.popcount() == 0
        assert all(not bit for bit in bits)

    def test_set_and_get(self):
        bits = BitArray(10)
        assert bits.set(3) is True
        assert bits[3] is True
        assert bits[4] is False
        assert bits.set(3) is False  # already set: no flip
        assert bits.popcount() == 1

    def test_clear(self):
        bits = BitArray(10)
        bits.set(7)
        assert bits.clear(7) is True
        assert bits.clear(7) is False
        assert bits[7] is False

    def test_setitem_getitem(self):
        bits = BitArray(9)
        bits[8] = True
        assert bits[8]
        bits[8] = False
        assert not bits[8]

    def test_negative_index(self):
        bits = BitArray(8)
        bits.set(-1)
        assert bits[7]

    @pytest.mark.parametrize("index", [-9, 8, 100])
    def test_out_of_range_raises(self, index):
        bits = BitArray(8)
        with pytest.raises(IndexError):
            bits[index]

    @pytest.mark.parametrize("size", [0, -1, -100])
    def test_bad_size_rejected(self, size):
        with pytest.raises(ValueError):
            BitArray(size)

    def test_repr_truncates(self):
        assert "..." in repr(BitArray(100))
        assert "..." not in repr(BitArray(8))


class TestBulkOperations:
    def test_reset(self):
        bits = BitArray(20)
        for index in (0, 5, 19):
            bits.set(index)
        bits.reset()
        assert bits.popcount() == 0

    def test_fill_masks_tail(self):
        bits = BitArray(11)  # tail bits beyond 11 must stay clear
        bits.fill()
        assert bits.popcount() == 11
        assert bits.all_set()

    def test_fill_exact_byte_boundary(self):
        bits = BitArray(16)
        bits.fill()
        assert bits.popcount() == 16

    def test_all_set_requires_every_bit(self):
        bits = BitArray(9)
        for index in range(8):
            bits.set(index)
        assert not bits.all_set()
        bits.set(8)
        assert bits.all_set()


class TestScanning:
    def test_next_zero_from_start(self):
        bits = BitArray(8)
        bits.set(0)
        bits.set(1)
        assert bits.next_zero(0) == 2

    def test_next_zero_wraps(self):
        bits = BitArray(8)
        for index in range(4, 8):
            bits.set(index)
        assert bits.next_zero(5) == 0

    def test_next_zero_all_set(self):
        bits = BitArray(8)
        bits.fill()
        assert bits.next_zero(3) is None

    def test_next_zero_self(self):
        bits = BitArray(8)
        assert bits.next_zero(5) == 5

    def test_zero_indices(self):
        bits = BitArray(5)
        bits.set(1)
        bits.set(3)
        assert bits.zero_indices() == [0, 2, 4]


class TestSerialization:
    def test_roundtrip(self):
        bits = BitArray(13)
        for index in (0, 3, 12):
            bits.set(index)
        clone = BitArray.from_bytes(bits.to_bytes(), 13)
        assert clone == bits

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="expected"):
            BitArray.from_bytes(b"\x00", 13)

    def test_dirty_padding_rejected(self):
        with pytest.raises(ValueError, match="padding"):
            BitArray.from_bytes(b"\xff\xff", 13)

    def test_nbytes(self):
        assert BitArray(1).nbytes == 1
        assert BitArray(8).nbytes == 1
        assert BitArray(9).nbytes == 2
        assert BitArray(4096).nbytes == 512  # paper Table 1: 4GB SLC, k=3

    def test_copy_is_independent(self):
        bits = BitArray(8)
        clone = bits.copy()
        bits.set(0)
        assert not clone[0]

    def test_equality_against_other_types(self):
        assert BitArray(4) != "0000"


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
@given(size=st.integers(1, 512), indices=st.lists(st.integers(0, 10_000)))
def test_popcount_matches_reference(size, indices):
    bits = BitArray(size)
    reference = set()
    for raw in indices:
        index = raw % size
        bits.set(index)
        reference.add(index)
    assert bits.popcount() == len(reference)
    assert sorted(reference) == [i for i in range(size) if bits[i]]


@given(size=st.integers(1, 256), seed=st.integers(0, 2**32 - 1))
def test_serialization_roundtrip_random(size, seed):
    import random

    rng = random.Random(seed)
    bits = BitArray(size)
    for index in range(size):
        if rng.random() < 0.5:
            bits.set(index)
    restored = BitArray.from_bytes(bits.to_bytes(), size)
    assert restored == bits
    assert restored.popcount() == bits.popcount()


@given(
    size=st.integers(1, 128),
    set_bits=st.sets(st.integers(0, 127)),
    start=st.integers(0, 127),
)
def test_next_zero_matches_linear_scan(size, set_bits, start):
    bits = BitArray(size)
    for index in set_bits:
        if index < size:
            bits.set(index)
    start %= size
    expected = None
    for offset in range(size):
        candidate = (start + offset) % size
        if not bits[candidate]:
            expected = candidate
            break
    assert bits.next_zero(start) == expected
