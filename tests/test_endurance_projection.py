"""Endurance projection, matrix, report, and ``repro endure`` tests."""

from __future__ import annotations

import math

import pytest

from repro.cli import main
from repro.core.config import SWLConfig
from repro.endurance import (
    EnduranceCell,
    endurance_cells,
    first_failure_horizon,
    project_endurance,
    run_endurance_matrix,
)
from repro.sim.engine import Simulator
from repro.sim.experiment import ExperimentSpec, scaled_mlc2_geometry
from repro.sim.reporting import endurance_markdown_report
from repro.workloads import ShapeParams, make_shape


def small_spec(**overrides):
    defaults = dict(
        driver="ftl",
        geometry=scaled_mlc2_geometry(16, scale=100),
        swl=SWLConfig(threshold=50.0),
        seed=3,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def replay_shape(spec, name, requests=4000):
    backend = spec.build()
    simulator = Simulator(backend)
    sectors = backend.num_logical_pages * backend.sectors_per_page
    shape = make_shape(name, ShapeParams(total_sectors=sectors, seed=spec.seed))
    stream = shape.iter_requests()
    for _ in range(requests):
        simulator.apply(next(stream))
    return backend, simulator.result(label=spec.label())


class TestChokepoint:
    def test_linear_extrapolation(self):
        assert first_failure_horizon(1000.0, 100, 50) == 2000.0

    def test_waf_ratio_rescales(self):
        # Doubling the projected WAF halves the horizon.
        assert first_failure_horizon(1000.0, 100, 50, waf_ratio=2.0) == 1000.0

    def test_unworn_device_projects_to_infinity(self):
        assert first_failure_horizon(1000.0, 100, 0) == math.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            first_failure_horizon(0.0, 100, 5)
        with pytest.raises(ValueError):
            first_failure_horizon(10.0, 0, 5)
        with pytest.raises(ValueError):
            first_failure_horizon(10.0, 100, -1)
        with pytest.raises(ValueError):
            first_failure_horizon(10.0, 100, 5, waf_ratio=0.0)


class TestProjectEndurance:
    def test_waf_is_exact_against_total_programs(self):
        spec = small_spec()
        backend, result = replay_shape(spec, "hotspot")
        # The identity behind the projection: every physical program is
        # a host write or a live copy.
        assert backend.total_programs() == (
            result.pages_written + result.live_page_copies
        )
        projection = project_endurance(result, spec.geometry)
        assert projection.waf == pytest.approx(
            backend.total_programs() / result.pages_written
        )
        assert projection.waf >= 1.0

    def test_waf_exact_on_multi_channel_array(self):
        spec = small_spec(channels=2)
        backend, result = replay_shape(spec, "uniform")
        assert backend.total_programs() == (
            result.pages_written + result.live_page_copies
        )

    def test_projection_fields(self):
        spec = small_spec()
        _, result = replay_shape(spec, "hotspot")
        geometry = spec.geometry
        projection = project_endurance(result, geometry)
        capacity = (geometry.num_blocks * geometry.pages_per_block
                    * geometry.page_size)
        assert projection.capacity_bytes == capacity
        assert projection.host_bytes_written == (
            result.pages_written * geometry.page_size
        )
        maximum = result.erase_distribution.maximum
        assert maximum > 0
        assert projection.erase_maximum == maximum
        assert projection.tbw_bytes == pytest.approx(
            projection.host_bytes_written * geometry.endurance / maximum
        )
        # Perfect leveling can only help.
        assert projection.tbw_ideal_bytes >= projection.tbw_bytes
        assert projection.days_at_one_dwpd == pytest.approx(
            projection.tbw_bytes / capacity
        )
        assert projection.projected_first_failure_s == pytest.approx(
            first_failure_horizon(result.sim_time, geometry.endurance, maximum)
        )
        assert projection.wear_skew == pytest.approx(
            maximum / result.erase_distribution.average
        )
        assert projection.dwpd_over(projection.days_at_one_dwpd) == (
            pytest.approx(1.0)
        )
        assert projection.as_dict()["waf"] == projection.waf

    def test_multi_channel_capacity_scales(self):
        spec = small_spec(channels=2)
        _, result = replay_shape(spec, "uniform")
        projection = project_endurance(result, spec.geometry)
        single = (spec.geometry.num_blocks * spec.geometry.pages_per_block
                  * spec.geometry.page_size)
        assert projection.capacity_bytes == 2 * single

    def test_rejects_writeless_run(self):
        spec = small_spec()
        backend = spec.build()
        result = Simulator(backend).result(label="empty")
        with pytest.raises(ValueError, match="no host writes"):
            project_endurance(result, spec.geometry)


class TestMatrix:
    def test_cells_cross_product_workload_major(self):
        specs = [small_spec(), small_spec(swl=None)]
        cells = endurance_cells(["hotspot", "uniform"], specs)
        assert [c.workload for c in cells] == \
               ["hotspot", "hotspot", "uniform", "uniform"]
        assert cells[0].label().startswith("hotspot×")

    def test_matrix_runs_and_projects_every_cell(self):
        specs = [small_spec(swl=None), small_spec()]
        cells = endurance_cells(["hotspot", "sequential"], specs)
        results = run_endurance_matrix(cells, horizon=900.0, seed=3)
        assert len(results) == 4
        assert all(r is not None for r in results)
        for cell, result in zip(cells, results):
            assert result.cell is cell
            assert result.projection.label == cell.label()
            assert result.replay.sim_time <= 900.0
        # Same workload group shares one trace: the two hotspot cells
        # replayed identical requests.
        assert results[0].replay.requests == results[1].replay.requests

    def test_matrix_rejects_bad_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            run_endurance_matrix([], horizon=0.0)


class TestReporting:
    def test_markdown_report_lists_cells(self):
        spec = small_spec()
        cells = endurance_cells(["hotspot"], [spec])
        results = run_endurance_matrix(cells, horizon=700.0, seed=1)
        report = endurance_markdown_report(results, title="Projection check")
        assert "# Projection check" in report
        assert "hotspot×" in report
        assert "Days @ 1 DWPD" in report

    def test_markdown_report_requires_results(self):
        with pytest.raises(ValueError, match="no results"):
            endurance_markdown_report([])


class TestEndureCli:
    def test_endure_smoke(self, capsys, tmp_path):
        report = tmp_path / "endure.md"
        status = main([
            "endure", "--driver", "ftl", "--blocks", "16", "--scale", "100",
            "--shapes", "hotspot", "mixed", "--horizon-days", "0.02",
            "--channels", "2", "--tenants", "3", "--tenant-requests", "2000",
            "--seed", "7", "--report", str(report),
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "Endurance projections" in out
        assert "hotspot×FTL" in out
        assert "Per-tenant attribution" in out
        assert "conservation: per-tenant sums equal device totals" in out
        text = report.read_text()
        assert "Per-tenant wear attribution" in text
        assert "**device**" in text
