"""Declarative fault model — what can go wrong, how often, and when.

A :class:`FaultPlan` is an immutable value describing every failure mode
the injector can exercise.  Keeping the model declarative (probabilities
and schedules, no callbacks) makes campaigns reproducible from a single
seed and lets the CLI construct plans from flags.

Failure modes
-------------
* **Transient erase failures** — an erase pulse aborts without changing
  the block; the driver retries a bounded number of times before
  declaring the block grown-bad.  The per-erase probability is either
  fixed (``erase_fail_prob``) or wear-dependent through a Weibull-shaped
  hazard (``erase_weibull_shape``): the probability scales with
  ``(erase_count / endurance) ** shape``, matching wear-distribution
  models where old blocks fail more often than fresh ones.
* **Program failures** — a page program fails verification and the block
  is grown-bad *permanently*: once a block suffers one program failure,
  every later program on it fails too (until it is retired).  The page
  involved holds garbage (invalid state).
* **Read bit errors** — each page read draws a bit-error count from a
  Poisson approximation of ``BER x page_bits``; counts at or below
  ``ecc_correctable_bits`` are corrected transparently, larger counts
  force a re-read, and ``read_retry_limit`` exhausted retries surface as
  an uncorrectable read error.
* **Power loss** — at scheduled operation ordinals (programs + erases +
  reads, counted chip-wide) the in-flight operation never takes effect
  and :class:`~repro.flash.errors.PowerLossError` unwinds the stack.
  With ``torn_writes`` enabled, a program hit by power loss leaves its
  page in the invalid state (a half-programmed page that fails ECC at
  the next attach scan) instead of free.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class FaultPlan:
    """Immutable description of the faults one injector will deliver.

    All probabilities are per-operation and in ``[0, 1]``.  The default
    plan injects nothing; campaigns typically enable two or three modes
    at once.
    """

    seed: int = 0

    # -- erase failures -------------------------------------------------
    #: Per-erase probability of a transient failure (fixed mode), or the
    #: hazard ceiling reached at rated endurance (Weibull mode).
    erase_fail_prob: float = 0.0
    #: When set, the erase-failure hazard is
    #: ``erase_fail_prob * min(1, wear / endurance) ** shape`` — fresh
    #: blocks almost never fail, worn blocks approach the ceiling.
    erase_weibull_shape: float | None = None

    # -- program failures ----------------------------------------------
    #: Per-program probability that the target block becomes grown-bad.
    program_fail_prob: float = 0.0

    # -- read errors ----------------------------------------------------
    #: Raw bit-error rate per read (errors per bit).
    read_ber: float = 0.0
    #: Bits ECC corrects per page read; more forces a retry.
    ecc_correctable_bits: int = 8
    #: Re-reads attempted before the error surfaces as uncorrectable.
    read_retry_limit: int = 3

    # -- power loss -----------------------------------------------------
    #: Chip-wide operation ordinals (1-based) at which power is lost.
    power_loss_at: tuple[int, ...] = field(default=())
    #: Whether a program interrupted by power loss leaves a torn
    #: (invalid) page rather than a free one.
    torn_writes: bool = True

    def __post_init__(self) -> None:
        for name in ("erase_fail_prob", "program_fail_prob", "read_ber"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.erase_weibull_shape is not None and self.erase_weibull_shape <= 0:
            raise ValueError(
                f"erase_weibull_shape must be positive, got {self.erase_weibull_shape}"
            )
        if self.ecc_correctable_bits < 0:
            raise ValueError(
                f"ecc_correctable_bits must be >= 0, got {self.ecc_correctable_bits}"
            )
        if self.read_retry_limit < 0:
            raise ValueError(
                f"read_retry_limit must be >= 0, got {self.read_retry_limit}"
            )
        if any(point <= 0 for point in self.power_loss_at):
            raise ValueError("power_loss_at ordinals must be positive (1-based)")
        # Normalize the schedule so the injector can pop points in order.
        object.__setattr__(
            self, "power_loss_at", tuple(sorted(set(self.power_loss_at)))
        )

    def for_shard(self, index: int) -> "FaultPlan":
        """A copy of this plan reseeded for one channel shard.

        Device arrays attach one injector per shard; giving every shard
        the same seed would fault all channels in lock-step, which no
        physical array does.  The shard seed is drawn from a stream named
        by ``(seed, shard index)`` — the same salted-stream idiom as
        :func:`~repro.util.rng.spawn_rng` — so plans stay reproducible
        and shard streams stay decorrelated.  Scheduled power-loss
        ordinals are kept only on shard 0: operation ordinals are counted
        per chip, and replaying the schedule on every channel would
        multiply one planned outage into N.
        """
        if index < 0:
            raise ValueError(f"shard index must be >= 0, got {index}")
        shard_seed = random.Random(f"{self.seed}:shard{index}").getrandbits(48)
        return replace(
            self,
            seed=shard_seed,
            power_loss_at=self.power_loss_at if index == 0 else (),
        )

    def any_faults(self) -> bool:
        """``True`` when this plan can inject at least one failure mode."""
        return bool(
            self.erase_fail_prob
            or self.program_fail_prob
            or self.read_ber
            or self.power_loss_at
        )

    def erase_hazard(self, wear: int, endurance: int) -> float:
        """Erase-failure probability for a block at ``wear`` cycles."""
        if self.erase_fail_prob == 0.0:
            return 0.0
        if self.erase_weibull_shape is None:
            return self.erase_fail_prob
        if endurance <= 0:
            return self.erase_fail_prob
        age = min(1.0, wear / endurance)
        return self.erase_fail_prob * age ** self.erase_weibull_shape
