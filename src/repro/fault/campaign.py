"""Whole fault campaigns: transient-fault soak + power-loss sweep.

A campaign answers the robustness question end to end for one stack
configuration:

1. **Soak phase** — a long deterministic hot/cold workload runs with
   transient erase failures, grown-bad program failures, and read bit
   errors enabled.  Every acknowledged write is tracked and verified at
   the end, so silent data loss under fault recovery is caught; the
   recovery costs (retries, re-issued programs, drain copies, retired
   blocks) are collected from the driver and injector stats.
2. **Crash phase** — a :class:`~repro.fault.crashsim.CrashConsistencyHarness`
   sweeps scheduled power-loss points across the operation stream and
   checks the recovery invariants after each simulated reboot.

The result aggregates both phases; ``ok`` is the campaign's pass/fail
gate (zero data-integrity violations and zero crash-invariant
violations), which is what the ``repro faults`` CLI command reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.config import SWLConfig
from repro.core.policies import LevelerSpec
from repro.fault.crashsim import CrashConsistencyHarness, CrashSweepReport
from repro.fault.injector import FaultInjector
from repro.fault.plan import FaultPlan
from repro.flash.errors import OutOfSpaceError, UncorrectableReadError
from repro.flash.geometry import FlashGeometry
from repro.ftl.factory import build_stack
from repro.util.diagnostics import fault_log
from repro.util.rng import make_rng


@dataclass
class FaultCampaignResult:
    """Everything a fault campaign measured."""

    label: str
    soak_writes: int = 0                 #: host writes acknowledged in the soak
    injector_stats: dict[str, int] = field(default_factory=dict)
    recovery_stats: dict[str, int] = field(default_factory=dict)
    retired_blocks: int = 0
    soak_erases: int = 0                 #: all block erases during the soak
    unrecovered_faults: int = 0          #: blocks condemned but never retired
    soak_violations: list[str] = field(default_factory=list)
    crash_report: CrashSweepReport = field(default_factory=CrashSweepReport)

    @property
    def ok(self) -> bool:
        return not self.soak_violations and self.crash_report.ok

    @property
    def violations(self) -> list[str]:
        return self.soak_violations + self.crash_report.violations

    def recovery_summary(self) -> "FaultRecoverySummary":
        """Fault-vs-recovery cost digest (see :mod:`repro.sim.metrics`)."""
        from repro.sim.metrics import FaultRecoverySummary

        return FaultRecoverySummary.from_stats(
            self.injector_stats,
            self.recovery_stats,
            blocks_retired=self.retired_blocks,
            total_erases=self.soak_erases,
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "label": self.label,
            "ok": self.ok,
            "soak_writes": self.soak_writes,
            "soak_erases": self.soak_erases,
            "retired_blocks": self.retired_blocks,
            "unrecovered_faults": self.unrecovered_faults,
            "soak_violations": len(self.soak_violations),
            **{f"inj_{k}": v for k, v in self.injector_stats.items()},
            **{f"rec_{k}": v for k, v in self.recovery_stats.items()},
            **{f"crash_{k}": v for k, v in self.crash_report.as_dict().items()},
        }


def run_fault_campaign(
    geometry: FlashGeometry,
    driver: str = "ftl",
    swl: "SWLConfig | LevelerSpec | None" = None,
    *,
    plan: FaultPlan | None = None,
    seed: int = 0,
    soak_writes: int = 2000,
    loss_points: int = 50,
    loss_start: int = 25,
    loss_stride: int = 13,
    crash_writes: int = 600,
) -> FaultCampaignResult:
    """Run a full fault campaign against one stack configuration.

    Parameters
    ----------
    plan:
        Transient-fault model for the soak; its power-loss schedule is
        ignored there (crashes belong to the sweep).
    loss_points / loss_start / loss_stride:
        The crash sweep schedules ``loss_points`` power losses at
        operation ordinals ``loss_start + i * loss_stride`` — a prime-ish
        stride lands losses inside host writes, GC, folds, and SWL moves
        alike rather than beating with any workload period.
    """
    plan = plan or FaultPlan()
    soak_plan = replace(plan, power_loss_at=())
    label = f"{driver}+{swl.label()}" if swl is not None else driver
    result = FaultCampaignResult(label=label)

    # ---- phase 1: transient-fault soak with data-integrity tracking ----
    injector = FaultInjector(soak_plan)
    stack = build_stack(
        geometry,
        driver,
        swl,
        store_data=True,
        rng=make_rng(seed),
        injector=injector,
    )
    layer = stack.layer
    rng = make_rng(seed)
    num_pages = layer.num_logical_pages
    hot_pages = max(1, num_pages // 5)
    acked: dict[int, bytes] = {}
    completed = 0
    device_full = False
    for version in range(soak_writes):
        lpn = rng.randrange(hot_pages if rng.random() < 0.8 else num_pages)
        payload = f"soak lpn={lpn} v={version}".encode()
        try:
            layer.write(lpn, payload)
        except OutOfSpaceError:
            device_full = True
            fault_log.warning(
                "soak stopped after %d writes: retirement consumed the "
                "over-provisioning reserve", version,
            )
            break
        acked[lpn] = payload
        completed += 1
    result.soak_writes = completed
    for lpn, payload in acked.items():
        try:
            got = layer.read(lpn)
        except UncorrectableReadError as exc:
            result.soak_violations.append(f"uncorrectable read of lpn {lpn}: {exc}")
            continue
        if got != payload:
            result.soak_violations.append(
                f"soak data loss on lpn {lpn}: expected {payload!r}, got {got!r}"
            )
    # A soak that ended at device-full aborted an operation midway; the
    # strict bookkeeping check only applies to a device still in service.
    if not device_full:
        try:
            layer.assert_internal_consistency()
        except AssertionError as exc:
            result.soak_violations.append(f"soak internal consistency: {exc}")

    # Unrecovered-fault gate: every block a delivered fault condemned must
    # have finished its retirement by soak end — data migrated off and the
    # block marked bad.  Anything still pending is a recovery the driver
    # dropped on the floor, and ``repro faults`` must exit nonzero for it.
    # A device-full abort is exempt like the consistency check above: the
    # OutOfSpaceError interrupted a retirement that had nowhere to migrate
    # to — end of device life, not a dropped recovery.
    unrecovered = sorted(layer.failed_blocks) if not device_full else []
    result.unrecovered_faults = len(unrecovered)
    if unrecovered:
        result.soak_violations.append(
            f"{len(unrecovered)} injected fault(s) left unrecovered at soak "
            f"end: blocks {unrecovered} condemned but never retired"
        )

    result.injector_stats = injector.stats.as_dict()
    layer_stats = layer.stats.as_dict()
    result.recovery_stats = {
        key: layer_stats.get(key, 0)
        for key in (
            "erase_retries",
            "program_faults",
            "recovery_copies",
            "recovery_erases",
        )
    }
    result.retired_blocks = len(layer.retired_blocks)
    result.soak_erases = stack.flash.total_erases()

    # ---- phase 2: power-loss sweep with recovery invariants ------------
    harness = CrashConsistencyHarness(
        geometry,
        driver,
        swl,
        plan=soak_plan,
        seed=seed,
        writes=crash_writes,
    )
    result.crash_report = harness.sweep(
        loss_start + i * loss_stride for i in range(loss_points)
    )
    return result
