"""Power-loss crash-consistency harness.

Drives a deterministic host workload against a freshly built stack while a
:class:`~repro.fault.injector.FaultInjector` schedules one power loss; when
the loss fires, the harness "reboots" the device — RAM wiring is dropped, a
new driver rebuilds its mapping from spare-area tags, a new SW Leveler
reloads its BET from the dual-buffer store — and then checks the recovery
invariants:

* every write acknowledged before the loss reads back its exact payload
  (unacknowledged in-flight writes may vanish; acknowledged ones must not);
* the driver's RAM tables agree with the chip's page states
  (``assert_internal_consistency``);
* the restored BET is self-consistent (``popcount(flags) == fcnt``);
* the free pool and the retired-block set are disjoint, and the retired
  set matches the chip's bad-block table;
* retired blocks are never erased again by post-reboot traffic.

Sweeping the loss point across many operation ordinals
(:meth:`CrashConsistencyHarness.sweep`) exercises crashes inside host
writes, garbage collection, folds, and SWL-forced recycles alike — the
fault-campaign acceptance gate of this repository.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.bet import BetStore
from repro.core.config import SWLConfig
from repro.fault.injector import FaultInjector
from repro.fault.plan import FaultPlan
from repro.flash.errors import OutOfSpaceError, PowerLossError
from repro.flash.geometry import FlashGeometry
from repro.ftl.factory import build_stack, make_layer
from repro.util.diagnostics import fault_log
from repro.util.rng import make_rng


@dataclass
class CrashVerdict:
    """Outcome of one crash/recovery cycle at a single loss point."""

    loss_point: int                  #: scheduled chip-op ordinal
    crashed: bool                    #: whether the loss fired in time
    writes_acked: int                #: host writes acknowledged pre-loss
    mappings_recovered: int = 0      #: mappings rebuilt at attach
    bet_restored: bool = False       #: dual-buffer BET load succeeded
    retired_blocks: int = 0          #: grown-bad blocks after recovery
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class CrashSweepReport:
    """Aggregate of a loss-point sweep."""

    verdicts: list[CrashVerdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    @property
    def crashes(self) -> int:
        return sum(1 for v in self.verdicts if v.crashed)

    @property
    def violations(self) -> list[str]:
        return [
            f"loss@{v.loss_point}: {violation}"
            for v in self.verdicts
            for violation in v.violations
        ]

    def as_dict(self) -> dict[str, object]:
        return {
            "loss_points": len(self.verdicts),
            "crashes": self.crashes,
            "violations": len(self.violations),
            "bet_restores": sum(1 for v in self.verdicts if v.bet_restored),
            "mappings_recovered": sum(v.mappings_recovered for v in self.verdicts),
        }


class CrashConsistencyHarness:
    """Build, crash, reboot, and verify one storage configuration.

    Parameters
    ----------
    geometry:
        Chip organization under test.
    driver:
        ``"ftl"`` or ``"nftl"``.
    swl:
        SW Leveler configuration; ``None`` runs the baseline driver.
    plan:
        Base fault plan; its power-loss schedule is replaced per run, the
        other modes (erase/program faults, read errors) stay active so
        crashes compose with fault recovery.
    seed:
        Master seed for the workload and the leveler.
    writes:
        Host writes attempted per run (the loss usually fires earlier).
    persist_every:
        BET saves to the dual-buffer store every this many host writes.
    hot_fraction / hot_pages_fraction:
        Hot/cold skew: ``hot_fraction`` of writes land on
        ``hot_pages_fraction`` of the logical pages.
    """

    def __init__(
        self,
        geometry: FlashGeometry,
        driver: str = "ftl",
        swl: SWLConfig | None = None,
        *,
        plan: FaultPlan | None = None,
        seed: int = 0,
        writes: int = 400,
        persist_every: int = 16,
        hot_fraction: float = 0.8,
        hot_pages_fraction: float = 0.2,
    ) -> None:
        if writes <= 0:
            raise ValueError(f"writes must be positive, got {writes}")
        if persist_every <= 0:
            raise ValueError(f"persist_every must be positive, got {persist_every}")
        self.geometry = geometry
        self.driver = driver
        self.swl = swl
        self.plan = plan or FaultPlan()
        self.seed = seed
        self.writes = writes
        self.persist_every = persist_every
        self.hot_fraction = hot_fraction
        self.hot_pages_fraction = hot_pages_fraction

    # ------------------------------------------------------------------
    def _workload(self, num_pages: int):
        """Deterministic hot/cold write stream: (lpn, payload) pairs."""
        rng = make_rng(self.seed)
        hot_pages = max(1, int(num_pages * self.hot_pages_fraction))
        for version in range(self.writes):
            if rng.random() < self.hot_fraction:
                lpn = rng.randrange(hot_pages)
            else:
                lpn = rng.randrange(num_pages)
            yield lpn, f"lpn={lpn} v={version}".encode()

    # ------------------------------------------------------------------
    def run_once(self, loss_at: int) -> CrashVerdict:
        """One crash/recovery cycle with power loss scheduled at ``loss_at``."""
        plan = replace(self.plan, power_loss_at=(loss_at,))
        injector = FaultInjector(plan)
        stack = build_stack(
            self.geometry,
            self.driver,
            self.swl,
            store_data=True,
            rng=make_rng(self.seed),
            injector=injector,
        )
        layer, leveler = stack.layer, stack.leveler
        store = BetStore()
        acked: dict[int, bytes] = {}
        inflight: tuple[int, bytes] | None = None
        crashed = False
        device_full = False
        for count, (lpn, payload) in enumerate(
            self._workload(layer.num_logical_pages), start=1
        ):
            try:
                layer.write(lpn, payload)
            except PowerLossError:
                crashed = True
                inflight = (lpn, payload)
                break
            except OutOfSpaceError:
                # Grown-bad retirement ate the reserve: end of device life.
                # Acknowledged data must survive; internal bookkeeping of
                # the aborted operation is no longer held to account.
                device_full = True
                break
            acked[lpn] = payload
            # Only the BET-carrying SW Leveler persists state to the
            # media (dual-buffer BetStore); challenger mechanisms hold
            # RAM-only bookkeeping and reboot blank by design.
            if (
                leveler is not None
                and hasattr(leveler, "persist")
                and count % self.persist_every == 0
            ):
                leveler.persist(store)

        verdict = CrashVerdict(
            loss_point=loss_at, crashed=crashed, writes_acked=len(acked)
        )
        # A loss point beyond the workload must not fire mid-verification:
        # the checks model a later, fully powered session.
        injector.cancel_power_loss()
        if crashed:
            layer, leveler, verdict.bet_restored, verdict.mappings_recovered = (
                self._reboot(stack, store)
            )
        if inflight is not None:
            # The write the crash interrupted was never acknowledged, so it
            # may legally be lost — or fully durable when the loss struck
            # after its program and invalidate (e.g. in the deferred GC).
            # If it persisted, it supersedes the last acked version.
            lpn, payload = inflight
            if layer.read(lpn) == payload:
                acked[lpn] = payload
        self._check_invariants(
            stack, layer, leveler, acked, verdict, device_full=device_full
        )
        verdict.retired_blocks = len(layer.retired_blocks)
        return verdict

    def _reboot(self, stack, store: BetStore):
        """Power-cycle the device: drop RAM state, rebuild from the media."""
        fault_log.info("rebooting %s after power loss", self.driver)
        # RAM wiring (erase listeners, driver tables, leveler) dies with
        # the power; the chip object *is* the persistent media.
        stack.mtd.clear_erase_listeners()
        layer = make_layer(self.driver, stack.mtd)
        recovered = layer.rebuild_mapping()
        leveler = None
        restored = False
        if self.swl is not None and self.swl.enabled:
            leveler = self.swl.build(
                self.geometry.num_blocks, layer, rng=make_rng(self.seed + 1)
            )
            layer.attach_leveler(leveler)
            if hasattr(leveler, "restore"):
                restored = leveler.restore(store)
        stack.layer = layer
        stack.leveler = leveler
        return layer, leveler, restored, recovered

    def _check_invariants(
        self, stack, layer, leveler, acked, verdict, *, device_full: bool = False
    ) -> None:
        violations = verdict.violations

        # 1. No acknowledged write may be lost or corrupted.
        for lpn, payload in acked.items():
            try:
                got = layer.read(lpn)
            except Exception as exc:  # noqa: BLE001 - any failure is a finding
                violations.append(f"read of acked lpn {lpn} raised {exc!r}")
                continue
            if got != payload:
                violations.append(
                    f"acked lpn {lpn}: expected {payload!r}, got {got!r}"
                )

        # 2. Driver RAM tables vs chip page states.  An operation aborted
        # by device-full (OutOfSpaceError) leaves the strict bookkeeping
        # legitimately degraded; data readability above still holds.
        if not device_full:
            try:
                layer.assert_internal_consistency()
            except AssertionError as exc:
                violations.append(f"internal consistency: {exc}")

        # 3. Restored BET self-consistency (BET-carrying levelers only).
        if leveler is not None and hasattr(leveler, "bet"):
            bet = leveler.bet
            if bet._flags.popcount() != bet.fcnt:
                violations.append(
                    f"BET fcnt={bet.fcnt} disagrees with "
                    f"{bet._flags.popcount()} set flags"
                )

        # 4. Retired set matches the chip's bad-block table; never pooled.
        if layer.retired_blocks != stack.flash.bad_blocks:
            violations.append(
                f"retired set {sorted(layer.retired_blocks)} != chip "
                f"bad-block table {sorted(stack.flash.bad_blocks)}"
            )
        pooled = layer.allocator.free_blocks() & layer.retired_blocks
        if pooled:
            violations.append(f"retired blocks in the free pool: {sorted(pooled)}")

        # 5. Post-reboot traffic must leave retired blocks untouched and
        #    keep acknowledged data readable.
        wear_before = {
            block: stack.mtd.erase_counts[block] for block in layer.retired_blocks
        }
        rng = make_rng(self.seed + 2)
        extra = min(self.writes // 4, layer.num_logical_pages)
        for version in range(extra):
            lpn = rng.randrange(layer.num_logical_pages)
            payload = f"post lpn={lpn} v={version}".encode()
            try:
                layer.write(lpn, payload)
            except OutOfSpaceError:
                break  # a heavily-faulted tiny chip may legitimately fill up
            acked[lpn] = payload
        for block, wear in wear_before.items():
            if stack.mtd.erase_counts[block] != wear:
                violations.append(
                    f"retired block {block} was erased again after reboot"
                )
        for lpn, payload in acked.items():
            if layer.read(lpn) != payload:
                violations.append(f"post-reboot data loss on lpn {lpn}")
                break

    # ------------------------------------------------------------------
    def sweep(self, loss_points) -> CrashSweepReport:
        """Run :meth:`run_once` for every ordinal in ``loss_points``."""
        report = CrashSweepReport()
        for point in loss_points:
            report.verdicts.append(self.run_once(point))
        return report
