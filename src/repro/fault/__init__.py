"""Fault injection and crash consistency for the simulated flash stack.

The paper's endurance argument presumes a device that fails; this package
makes failure *executable*:

* :mod:`repro.fault.plan` — :class:`FaultPlan`, the declarative fault
  model (transient erase failures, grown-bad program failures, read bit
  errors with bounded-retry ECC, scheduled power loss);
* :mod:`repro.fault.injector` — :class:`FaultInjector`, the seeded
  deterministic engine the chip consults on every primitive operation;
* :mod:`repro.fault.crashsim` — the power-loss harness: snapshot, reboot,
  rebuild, and invariant checks swept across many loss points;
* :mod:`repro.fault.campaign` — whole fault campaigns combining transient
  faults with a crash sweep, reported through the CLI.
"""

from repro.fault.campaign import FaultCampaignResult, run_fault_campaign
from repro.fault.crashsim import (
    CrashConsistencyHarness,
    CrashSweepReport,
    CrashVerdict,
)
from repro.fault.injector import FaultInjector, FaultStats
from repro.fault.plan import FaultPlan

__all__ = [
    "CrashConsistencyHarness",
    "CrashSweepReport",
    "CrashVerdict",
    "FaultCampaignResult",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "run_fault_campaign",
]
