"""The seeded, deterministic fault-injection engine.

A :class:`FaultInjector` is attached to one :class:`~repro.flash.chip.NandFlash`
(via :meth:`NandFlash.attach_injector`) and consulted on every primitive
operation.  The chip calls one hook per operation *before* applying any
state change; the hook either returns normally (no fault) or raises one of
the :mod:`repro.flash.errors` fault types.  Partial-effect semantics (a
torn page, a program-failed page) are enacted by the chip, which knows its
own state representation.

Determinism: all randomness comes from one ``random.Random`` seeded from
the plan, and decisions depend only on the operation sequence — replaying
the same workload against the same plan reproduces the same faults, which
is what makes fault campaigns CI-able.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.flash.errors import (
    PowerLossError,
    ProgramFaultError,
    TransientEraseError,
    UncorrectableReadError,
)
from repro.fault.plan import FaultPlan
from repro.obs.bus import M_FAULT_INJECTED, M_POWER_LOSS
from repro.obs.events import FaultInjected
from repro.obs.events import PowerLoss as PowerLossEvent
from repro.util.diagnostics import fault_log
from repro.util.rng import make_rng, rng_state_from_json, rng_state_to_json

if TYPE_CHECKING:
    from repro.obs.bus import BusLike


@dataclass
class FaultStats:
    """Everything the injector did, for campaign reporting."""

    ops: int = 0                     #: chip operations observed
    erase_faults: int = 0            #: transient erase failures delivered
    program_faults: int = 0          #: program failures delivered
    read_errors_corrected: int = 0   #: reads with bit errors ECC fixed
    read_retries: int = 0            #: extra read attempts forced by ECC
    reads_uncorrectable: int = 0     #: reads that exhausted the retry budget
    power_losses: int = 0            #: scheduled power-loss points fired
    torn_pages: int = 0              #: pages left torn by power loss

    def as_dict(self) -> dict[str, int]:
        return {
            "ops": self.ops,
            "erase_faults": self.erase_faults,
            "program_faults": self.program_faults,
            "read_errors_corrected": self.read_errors_corrected,
            "read_retries": self.read_retries,
            "reads_uncorrectable": self.reads_uncorrectable,
            "power_losses": self.power_losses,
            "torn_pages": self.torn_pages,
        }


class FaultInjector:
    """Per-chip fault source driven by a :class:`FaultPlan`.

    Parameters
    ----------
    plan:
        The declarative fault model.
    page_bits:
        Data bits per page (for the read bit-error model); set by the
        chip at attach time when omitted.
    endurance:
        Rated erase endurance (for the Weibull erase hazard); set by the
        chip at attach time when omitted.
    """

    def __init__(
        self,
        plan: FaultPlan,
        *,
        page_bits: int | None = None,
        endurance: int | None = None,
    ) -> None:
        self.plan = plan
        self.page_bits = page_bits
        self.endurance = endurance
        self.rng = make_rng(plan.seed)
        self.stats = FaultStats()
        #: Blocks whose programs permanently fail (grown bad): one program
        #: failure condemns the block until the driver retires it.
        self.bad_program_blocks: set[int] = set()
        self._loss_schedule = list(plan.power_loss_at)  # ascending
        self._loss_cursor = 0
        self._obs: "BusLike | None" = None

    def attach_bus(self, bus: "BusLike | None") -> None:
        """Emit ``FaultInjected``/``PowerLoss`` telemetry on ``bus``."""
        self._obs = bus if bus else None

    # ------------------------------------------------------------------
    # Power-loss scheduling
    # ------------------------------------------------------------------
    def _tick(self) -> bool:
        """Count one operation; ``True`` when power dies at this ordinal."""
        self.stats.ops += 1
        if self._loss_cursor < len(self._loss_schedule):
            if self.stats.ops >= self._loss_schedule[self._loss_cursor]:
                self._loss_cursor += 1
                self.stats.power_losses += 1
                return True
        return False

    def next_loss_point(self) -> int | None:
        """The next scheduled power-loss ordinal, or ``None`` when spent."""
        if self._loss_cursor < len(self._loss_schedule):
            return self._loss_schedule[self._loss_cursor]
        return None

    def cancel_power_loss(self) -> None:
        """Drop any unfired loss points (the crash harness verifies a
        device that stayed powered through its workload)."""
        self._loss_cursor = len(self._loss_schedule)

    def _power_loss(self) -> PowerLossError:
        fault_log.info("power loss at op %d", self.stats.ops)
        if self._obs is not None and self._obs.mask & M_POWER_LOSS:
            self._obs.emit(PowerLossEvent(self.stats.ops))
        return PowerLossError(
            f"power lost at operation {self.stats.ops}", op_ordinal=self.stats.ops
        )

    # ------------------------------------------------------------------
    # Chip-facing hooks (called before the operation takes effect)
    # ------------------------------------------------------------------
    def on_erase(self, block: int, wear: int) -> None:
        """Erase hook: may raise power loss or a transient erase failure."""
        if self._tick():
            raise self._power_loss()
        hazard = self.plan.erase_hazard(wear, self.endurance or 0)
        if hazard and self.rng.random() < hazard:
            self.stats.erase_faults += 1
            fault_log.debug("transient erase failure on block %d (wear %d)",
                            block, wear)
            if self._obs is not None and self._obs.mask & M_FAULT_INJECTED:
                self._obs.emit(FaultInjected("erase", block, -1))
            raise TransientEraseError(
                f"erase of block {block} failed (transient, wear={wear})",
                block=block,
            )

    def on_program(self, block: int, page: int) -> None:
        """Program hook: may raise power loss or a program failure.

        Raises :class:`PowerLossError` at a scheduled point and
        :class:`ProgramFaultError` when the block is (or becomes) grown
        bad for programs; torn-page semantics on power loss are enacted
        by the chip from :attr:`FaultPlan.torn_writes`.
        """
        if self._tick():
            raise self._power_loss()
        if block in self.bad_program_blocks or (
            self.plan.program_fail_prob
            and self.rng.random() < self.plan.program_fail_prob
        ):
            self.bad_program_blocks.add(block)
            self.stats.program_faults += 1
            fault_log.debug("program failure on page (%d, %d)", block, page)
            if self._obs is not None and self._obs.mask & M_FAULT_INJECTED:
                self._obs.emit(FaultInjected("program", block, page))
            raise ProgramFaultError(
                f"program of page ({block}, {page}) failed verification; "
                "block is grown bad",
                block=block,
                page=page,
            )

    def on_read(self, block: int, page: int) -> int:
        """Read hook; returns the number of extra read attempts performed.

        Models the bounded-retry ECC path: each attempt draws a bit-error
        count; at most ``ecc_correctable_bits`` errors are corrected
        transparently, more forces a re-read.  Exhausting
        ``read_retry_limit`` retries raises
        :class:`UncorrectableReadError`.
        """
        if self._tick():
            raise self._power_loss()
        if not self.plan.read_ber or not self.page_bits:
            return 0
        lam = self.plan.read_ber * self.page_bits
        retries = 0
        while True:
            errors = self._poisson(lam)
            if errors == 0:
                return retries
            if errors <= self.plan.ecc_correctable_bits:
                self.stats.read_errors_corrected += 1
                return retries
            if retries >= self.plan.read_retry_limit:
                self.stats.reads_uncorrectable += 1
                fault_log.debug("uncorrectable read on page (%d, %d) "
                                "after %d retries", block, page, retries)
                if self._obs is not None and self._obs.mask & M_FAULT_INJECTED:
                    self._obs.emit(FaultInjected("read", block, page))
                raise UncorrectableReadError(
                    f"read of page ({block}, {page}) uncorrectable after "
                    f"{retries} retries ({errors} bit errors)",
                    block=block,
                    page=page,
                )
            retries += 1
            self.stats.read_retries += 1

    def note_torn_page(self) -> None:
        """Called by the chip after leaving a page torn on power loss."""
        self.stats.torn_pages += 1

    # ------------------------------------------------------------------
    # Checkpointing (see repro.ckpt)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict[str, object]:
        """Freeze the fault engine mid-plan: RNG, stats, loss cursor.

        The plan itself is not serialized — it is part of the experiment
        configuration the checkpoint consumer rebuilds — but its seed is
        recorded so a restore into a different plan is rejected.
        """
        return {
            "plan_seed": self.plan.seed,
            "rng": rng_state_to_json(self.rng),
            "bad_program_blocks": sorted(self.bad_program_blocks),
            "loss_schedule": list(self._loss_schedule),
            "loss_cursor": self._loss_cursor,
            "stats": self.stats.as_dict(),
        }

    def restore_state(self, state: dict[str, object]) -> None:
        """Inverse of :meth:`snapshot_state`; rejects plan mismatches."""
        if state["plan_seed"] != self.plan.seed:
            raise ValueError(
                f"injector snapshot belongs to plan seed {state['plan_seed']}, "
                f"injector has seed {self.plan.seed}"
            )
        if list(state["loss_schedule"]) != self._loss_schedule:  # type: ignore[arg-type]
            raise ValueError(
                "injector snapshot power-loss schedule does not match the plan"
            )
        self.rng.setstate(rng_state_from_json(state["rng"]))  # type: ignore[arg-type]
        self.bad_program_blocks = set(state["bad_program_blocks"])  # type: ignore[arg-type]
        self._loss_cursor = state["loss_cursor"]  # type: ignore[assignment]
        stats = state["stats"]
        self.stats = FaultStats(**stats)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    def _poisson(self, lam: float) -> int:
        """Knuth's Poisson sampler (lam is small for realistic BERs)."""
        if lam <= 0:
            return 0
        threshold = math.exp(-lam)
        k = 0
        p = 1.0
        while True:
            p *= self.rng.random()
            if p <= threshold:
                return k
            k += 1

    def __repr__(self) -> str:
        return (
            f"FaultInjector(ops={self.stats.ops}, "
            f"erase_faults={self.stats.erase_faults}, "
            f"program_faults={self.stats.program_faults}, "
            f"power_losses={self.stats.power_losses})"
        )
