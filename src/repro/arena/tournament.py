"""Tournament runner: every leveler through the shared matrices.

One :func:`run_arena` call drives each roster entry through

* the **workload matrix** — fixed-horizon replays over the shared
  workload shapes (:func:`repro.endurance.run_endurance_matrix`), every
  mechanism of one workload seeing bit-identical requests, projected to
  endurance via :mod:`repro.endurance.projection`;
* a **service soak** — the open-loop engine under the first workload's
  trace, measuring the p99 a host observes while the mechanism levels
  underneath (:func:`repro.sim.experiment.run_service_soak`);
* a **fault campaign** — the transient-fault soak plus the swept
  power-loss crash-consistency check
  (:func:`repro.fault.run_fault_campaign`), because a leveler that
  corrupts data under power loss has no business winning.

Cross-mechanism accounting notes:

* **Extra erases** are each cell's total erases minus the same
  workload's baseline cell — the paper's Figure 6 quantity, generalized
  to any mechanism.
* **WAF** is exact, from the identity ``total_programs == pages_written
  + live_page_copies`` — except for write-intercepting mechanisms,
  where host pages absorbed by the cache (hits plus the still-resident
  set) never reach flash; the arena subtracts them so the column stays
  "physical programs per host page" for every contender.
* **RAM** is each mechanism's own ``ram_bytes`` accounting (Table 1 for
  the BET; full counter array, page buffers, or a bare cursor for the
  challengers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.policies import LevelerSpec
from repro.endurance.matrix import endurance_cells, run_endurance_matrix
from repro.fault.campaign import run_fault_campaign
from repro.fault.plan import FaultPlan
from repro.flash.geometry import FlashGeometry
from repro.ftl.factory import build_stack
from repro.sim.experiment import (
    ExperimentSpec,
    logical_sectors_of,
    run_service_soak,
)
from repro.traces.extend import SEGMENT_SECONDS
from repro.workloads.generators import ShapeParams, make_shape

#: The shipped tournament roster, in leaderboard row order: the paper's
#: baseline and SW Leveler, then one challenger per prior-art philosophy.
DEFAULT_ROSTER: dict[str, LevelerSpec] = {
    "baseline": LevelerSpec(enabled=False),
    "swl": LevelerSpec(kind="swl"),
    "dual-pool": LevelerSpec(kind="dual-pool"),
    "cache-avoid": LevelerSpec(kind="cache-avoid"),
    "softwear": LevelerSpec(kind="softwear"),
}

#: Default workload shapes: skewed, streaming, and blended access — the
#: three regimes that separate leveling philosophies most sharply.
DEFAULT_WORKLOADS = ("hotspot", "sequential", "mixed")


def roster_specs(levelers: list[str] | tuple[str, ...]) -> dict[str, LevelerSpec]:
    """Resolve roster names to :class:`LevelerSpec` values, in order."""
    unknown = [name for name in levelers if name not in DEFAULT_ROSTER]
    if unknown:
        raise ValueError(
            f"unknown arena leveler(s) {unknown}; "
            f"choose from {sorted(DEFAULT_ROSTER)}"
        )
    return {name: DEFAULT_ROSTER[name] for name in levelers}


@dataclass(frozen=True)
class ArenaCellResult:
    """One (workload × leveler) cell of the tournament."""

    workload: str
    leveler: str                    #: roster name (``swl``, ``dual-pool``, ...)
    label: str                      #: mechanism label (``SWL+k=0+T=100``, ...)
    total_erases: int
    extra_erases: int               #: vs the same workload's baseline cell
    waf: float                      #: physical programs per host page (exact)
    wear_skew: float                #: max / average erase count
    endurance_days: float           #: projected first failure at 1x pace
    swl_erases: int                 #: erases attributed to the mechanism
    swl_copies: int                 #: live copies attributed to the mechanism

    def as_dict(self) -> dict[str, object]:
        return {
            "workload": self.workload,
            "leveler": self.leveler,
            "label": self.label,
            "total_erases": self.total_erases,
            "extra_erases": self.extra_erases,
            "waf": self.waf,
            "wear_skew": self.wear_skew,
            "endurance_days": self.endurance_days,
            "swl_erases": self.swl_erases,
            "swl_copies": self.swl_copies,
        }


@dataclass(frozen=True)
class ArenaEntryResult:
    """One leveler's leaderboard row, aggregated over every workload."""

    leveler: str
    label: str
    ram_bytes: int
    endurance_days: float           #: mean projected first failure
    endurance_gain: float           #: mean endurance / baseline endurance
    extra_erases: int               #: summed over workloads
    waf: float                      #: mean exact WAF
    p99_s: float                    #: service-soak p99 latency (seconds)
    faults_ok: bool                 #: fault campaign verdict

    def as_dict(self) -> dict[str, object]:
        return {
            "leveler": self.leveler,
            "label": self.label,
            "ram_bytes": self.ram_bytes,
            "endurance_days": self.endurance_days,
            "endurance_gain": self.endurance_gain,
            "extra_erases": self.extra_erases,
            "waf": self.waf,
            "p99_s": self.p99_s,
            "faults_ok": self.faults_ok,
        }


@dataclass(frozen=True)
class ArenaResult:
    """Full tournament outcome: per-cell detail plus the leaderboard."""

    geometry: str
    driver: str
    horizon_s: float
    seed: int
    workloads: tuple[str, ...]
    cells: list[ArenaCellResult] = field(default_factory=list)
    leaderboard: list[ArenaEntryResult] = field(default_factory=list)

    def as_dict(self) -> dict[str, object]:
        return {
            "geometry": self.geometry,
            "driver": self.driver,
            "horizon_s": self.horizon_s,
            "seed": self.seed,
            "workloads": list(self.workloads),
            "cells": [cell.as_dict() for cell in self.cells],
            "leaderboard": [entry.as_dict() for entry in self.leaderboard],
        }


def arena_waf(
    pages_written: int, live_page_copies: int, swl_stats: dict[str, int]
) -> float:
    """Exact physical-programs-per-host-page, cache absorption included.

    For every erase-count mechanism this is the repo's standard identity
    ``(pages_written + live_page_copies) / pages_written``.  A
    write-intercepting cache absorbs ``cache_hits`` rewrites outright
    and still holds ``cache_resident`` dirty pages that never reached
    flash, so those host pages programmed nothing (yet) and leave the
    numerator.
    """
    if pages_written <= 0:
        return 0.0
    absorbed = swl_stats.get("cache_hits", 0) + swl_stats.get(
        "cache_resident", 0
    )
    return (pages_written - absorbed + live_page_copies) / pages_written


def _ram_bytes(
    geometry: FlashGeometry, driver: str, spec: LevelerSpec
) -> int:
    """Controller RAM of the mechanism a spec builds (0 when disabled)."""
    if not spec.enabled:
        return 0
    stack = build_stack(geometry, driver, spec)
    assert stack.leveler is not None
    return stack.leveler.ram_bytes


def run_arena(
    geometry: FlashGeometry,
    driver: str = "ftl",
    *,
    workloads: tuple[str, ...] | list[str] = DEFAULT_WORKLOADS,
    levelers: tuple[str, ...] | list[str] = tuple(DEFAULT_ROSTER),
    horizon: float = 0.25 * 86_400.0,
    rate: float = 4.0,
    seed: int = 0,
    workers: int | None = None,
    service_requests: int = 2_000,
    service_speedup: float = 50.0,
    fault_soak_writes: int = 600,
    fault_loss_points: int = 10,
    run_faults: bool = True,
) -> ArenaResult:
    """Run the tournament and build the leaderboard.

    Every leveler replays every workload over ``horizon`` simulated
    seconds; each workload's trace is materialized once, so all
    mechanisms of one workload see bit-identical requests (and the
    paper-SWL cells replay exactly as the classic ``SWLConfig`` stack
    would — same construction, same RNG streams).  ``run_faults=False``
    skips the fault campaign (its column reports ``True`` trivially);
    smoke configurations use it to stay fast.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    if not workloads:
        raise ValueError("arena needs at least one workload shape")
    roster = roster_specs(tuple(levelers))
    specs = {
        name: ExperimentSpec(driver, geometry, spec, seed=seed)
        for name, spec in roster.items()
    }

    # ---- workload matrix: one endurance cell per (workload, leveler) ----
    cells = endurance_cells(list(workloads), list(specs.values()))
    matrix = run_endurance_matrix(
        cells, horizon=horizon, rate=rate, seed=seed, workers=workers
    )
    names = list(roster)
    per_entry: dict[str, list[ArenaCellResult]] = {name: [] for name in names}
    arena_cells: list[ArenaCellResult] = []
    stride = len(names)
    for group, workload in enumerate(workloads):
        group_results = matrix[group * stride:(group + 1) * stride]
        assert all(result is not None for result in group_results)
        baseline_erases = (
            group_results[names.index("baseline")].replay.total_erases
            if "baseline" in roster else 0
        )
        for name, result in zip(names, group_results):
            replay = result.replay
            cell = ArenaCellResult(
                workload=workload,
                leveler=name,
                label=roster[name].label(),
                total_erases=replay.total_erases,
                extra_erases=replay.total_erases - baseline_erases,
                waf=arena_waf(
                    replay.pages_written,
                    replay.live_page_copies,
                    replay.swl_stats,
                ),
                wear_skew=result.projection.wear_skew,
                endurance_days=result.projection.projected_first_failure_days,
                swl_erases=replay.swl_stats.get("swl_erases", 0),
                swl_copies=replay.swl_stats.get("swl_copies", 0),
            )
            arena_cells.append(cell)
            per_entry[name].append(cell)

    # ---- service soak: p99 under leveling interference ------------------
    soak_trace = make_shape(
        workloads[0],
        ShapeParams(
            total_sectors=logical_sectors_of(next(iter(specs.values()))),
            rate=rate,
            seed=seed,
        ),
    ).requests(2 * SEGMENT_SECONDS)
    p99: dict[str, float] = {}
    for name, spec in specs.items():
        soak = run_service_soak(
            spec,
            soak_trace,
            trace_speedup=service_speedup,
            max_requests=service_requests,
        )
        p99[name] = soak.latency.p99

    # ---- fault campaign: crash survival is table stakes ------------------
    faults_ok: dict[str, bool] = {name: True for name in names}
    if run_faults:
        for name, leveler_spec in roster.items():
            campaign = run_fault_campaign(
                geometry,
                driver,
                leveler_spec if leveler_spec.enabled else None,
                plan=FaultPlan(seed=seed),
                seed=seed,
                soak_writes=fault_soak_writes,
                loss_points=fault_loss_points,
            )
            faults_ok[name] = campaign.ok

    # ---- leaderboard -----------------------------------------------------
    baseline_days = (
        _mean([c.endurance_days for c in per_entry["baseline"]])
        if "baseline" in roster else 0.0
    )
    leaderboard = []
    for name in names:
        entry_cells = per_entry[name]
        days = _mean([c.endurance_days for c in entry_cells])
        leaderboard.append(
            ArenaEntryResult(
                leveler=name,
                label=roster[name].label(),
                ram_bytes=_ram_bytes(geometry, driver, roster[name]),
                endurance_days=days,
                endurance_gain=(days / baseline_days if baseline_days else 1.0),
                extra_erases=sum(c.extra_erases for c in entry_cells),
                waf=_mean([c.waf for c in entry_cells]),
                p99_s=p99[name],
                faults_ok=faults_ok[name],
            )
        )
    leaderboard.sort(key=lambda entry: entry.endurance_days, reverse=True)
    return ArenaResult(
        geometry=geometry.name,
        driver=driver,
        horizon_s=horizon,
        seed=seed,
        workloads=tuple(workloads),
        cells=arena_cells,
        leaderboard=leaderboard,
    )


def _mean(values: list[float]) -> float:
    finite = [value for value in values if value != float("inf")]
    if not finite:
        return float("inf")
    return sum(finite) / len(finite)
