"""The policy arena: a tournament across wear-leveling mechanisms.

The paper (Section 2, Table 1) positions the BET-based SW Leveler
against counter-based prior art on controller RAM at comparable leveling
quality; related work adds two more philosophies — cache-based wear
*avoidance* and software-only cyclic scrubbing.  The arena settles the
comparison empirically: every registered
:class:`~repro.core.policies.LevelerSpec` kind runs through the shared
workload × fault matrix and a leaderboard reports endurance gained,
extra erases paid, exact WAF, controller RAM, and p99 latency under
leveling interference.

* :mod:`repro.arena.tournament` — the runner (:func:`run_arena`) and its
  result records.
* :mod:`repro.arena.report` — the markdown leaderboard.

Run it with ``repro arena`` or publish it into ``BENCH_PR.json`` with
``python benchmarks/bench_arena.py``.
"""

from repro.arena.report import arena_report
from repro.arena.tournament import (
    DEFAULT_ROSTER,
    ArenaCellResult,
    ArenaEntryResult,
    ArenaResult,
    roster_specs,
    run_arena,
)

__all__ = [
    "ArenaCellResult",
    "ArenaEntryResult",
    "ArenaResult",
    "DEFAULT_ROSTER",
    "arena_report",
    "roster_specs",
    "run_arena",
]
