"""Markdown leaderboard for a policy-arena tournament."""

from __future__ import annotations

from repro.arena.tournament import ArenaResult
from repro.util.tables import format_table


def _days(value: float) -> str:
    return "inf" if value == float("inf") else f"{value:.1f}"


def _ram(ram_bytes: int) -> str:
    if ram_bytes >= 1 << 20:
        return f"{ram_bytes / (1 << 20):.1f} MiB"
    if ram_bytes >= 1 << 10:
        return f"{ram_bytes / (1 << 10):.1f} KiB"
    return f"{ram_bytes} B"


def arena_report(result: ArenaResult) -> str:
    """The tournament as a markdown document (leaderboard + cell table)."""
    lines = [
        "# Policy arena",
        "",
        f"Geometry `{result.geometry}`, driver `{result.driver}`, "
        f"horizon {result.horizon_s / 86_400.0:.2f} simulated days, "
        f"seed {result.seed}.",
        "",
        f"Workloads: {', '.join(result.workloads)}.  Endurance is the "
        "projected first-failure horizon at the replayed pace (mean over "
        "workloads); extra erases are summed against each workload's "
        "baseline; WAF counts physical programs per host page (cache "
        "absorption deducted); RAM is the mechanism's controller-memory "
        "accounting; p99 comes from an open-loop service soak.",
        "",
        "## Leaderboard",
        "",
        "| leveler | label | endurance (days) | gain | extra erases "
        "| WAF | RAM | p99 (ms) | faults |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    for entry in result.leaderboard:
        lines.append(
            f"| {entry.leveler} | `{entry.label}` "
            f"| {_days(entry.endurance_days)} "
            f"| {entry.endurance_gain:.2f}x "
            f"| {entry.extra_erases} "
            f"| {entry.waf:.3f} "
            f"| {_ram(entry.ram_bytes)} "
            f"| {entry.p99_s * 1e3:.2f} "
            f"| {'ok' if entry.faults_ok else 'FAIL'} |"
        )
    lines += ["", "## Cells", ""]
    lines.append(
        "| workload | leveler | total erases | extra | WAF | skew "
        "| endurance (days) |"
    )
    lines.append("|---|---|---|---|---|---|---|")
    for cell in result.cells:
        lines.append(
            f"| {cell.workload} | {cell.leveler} | {cell.total_erases} "
            f"| {cell.extra_erases} | {cell.waf:.3f} "
            f"| {cell.wear_skew:.2f} | {_days(cell.endurance_days)} |"
        )
    lines.append("")
    return "\n".join(lines)


def arena_console_table(result: ArenaResult) -> str:
    """The leaderboard as a console table (``repro arena`` output)."""
    rows: list[list[object]] = []
    for entry in result.leaderboard:
        rows.append([
            entry.leveler,
            entry.label,
            _days(entry.endurance_days),
            f"{entry.endurance_gain:.2f}x",
            entry.extra_erases,
            f"{entry.waf:.3f}",
            _ram(entry.ram_bytes),
            f"{entry.p99_s * 1e3:.2f}",
            "ok" if entry.faults_ok else "FAIL",
        ])
    return format_table(
        ["leveler", "label", "endure(d)", "gain", "extra-er",
         "WAF", "RAM", "p99(ms)", "faults"],
        rows,
        title="Policy arena leaderboard",
    )
