"""NAND flash geometries and catalog parts.

Paper Section 1 fixes the three NAND organizations under discussion:

* small-block SLC — 512 B pages, 32 pages per block;
* large-block SLC — 2 KB pages, 64 pages per block;
* MLC×2 — 2 KB pages, 128 pages per block (same as large-block SLC except
  for the page count), 10,000-cycle endurance versus SLC's 100,000.

Section 5.1 evaluates a 1 GB MLC×2 part with 2,097,152 512-byte LBAs.  This
module encodes those organizations as an immutable :class:`FlashGeometry`
value plus a catalog of ready-made parts, including proportionally scaled
variants used by the simulation benchmarks (see DESIGN.md, Substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

SECTOR_SIZE = 512  # bytes; the LBA unit used by the paper's trace.

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


class CellType(Enum):
    """NAND cell technology; determines endurance and timing defaults."""

    SLC = "slc"
    MLC2 = "mlc2"


@dataclass(frozen=True)
class FlashGeometry:
    """Immutable description of a NAND chip's organization.

    Parameters
    ----------
    num_blocks:
        Number of erase blocks on the chip.
    pages_per_block:
        Pages per erase block (32 for small-block SLC, 64 for large-block
        SLC, 128 for MLC×2).
    page_size:
        User-data bytes per page (512 or 2048 in the paper).
    endurance:
        Rated program/erase cycles per block (100,000 SLC; 10,000 MLC×2).
    cell_type:
        :class:`CellType`; informs timing defaults and catalog naming.
    name:
        Human-readable part name for reports.
    """

    num_blocks: int
    pages_per_block: int
    page_size: int
    endurance: int
    cell_type: CellType = CellType.SLC
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.num_blocks <= 0:
            raise ValueError(f"num_blocks must be positive, got {self.num_blocks}")
        if self.pages_per_block <= 0:
            raise ValueError(
                f"pages_per_block must be positive, got {self.pages_per_block}"
            )
        if self.page_size <= 0 or self.page_size % SECTOR_SIZE:
            raise ValueError(
                f"page_size must be a positive multiple of {SECTOR_SIZE}, "
                f"got {self.page_size}"
            )
        if self.endurance <= 0:
            raise ValueError(f"endurance must be positive, got {self.endurance}")

    # ------------------------------------------------------------------
    # Derived sizes
    # ------------------------------------------------------------------
    @property
    def total_pages(self) -> int:
        """Total number of pages on the chip."""
        return self.num_blocks * self.pages_per_block

    @property
    def block_size(self) -> int:
        """Bytes of user data per erase block."""
        return self.pages_per_block * self.page_size

    @property
    def capacity_bytes(self) -> int:
        """Total user-data capacity in bytes."""
        return self.num_blocks * self.block_size

    @property
    def sectors_per_page(self) -> int:
        """512-byte LBAs stored per page (LBA-to-logical-page conversion)."""
        return self.page_size // SECTOR_SIZE

    @property
    def total_sectors(self) -> int:
        """Total 512-byte sectors (the paper's LBA count: 2,097,152 at 1 GB)."""
        return self.capacity_bytes // SECTOR_SIZE

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def page_index(self, block: int, page: int) -> int:
        """Flatten a (block, page) address to a chip-wide page index."""
        return block * self.pages_per_block + page

    def page_address(self, index: int) -> tuple[int, int]:
        """Inverse of :meth:`page_index`."""
        return divmod(index, self.pages_per_block)

    def contains_block(self, block: int) -> bool:
        return 0 <= block < self.num_blocks

    def contains_page(self, block: int, page: int) -> bool:
        return self.contains_block(block) and 0 <= page < self.pages_per_block

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def scaled(self, *, num_blocks: int, endurance: int | None = None,
               name: str | None = None) -> "FlashGeometry":
        """A smaller (or larger) chip with the same block organization.

        Used to run the paper's experiments at laptop scale while keeping
        pages-per-block, page size, and all policy parameters identical
        (see DESIGN.md).  ``endurance`` may be scaled down alongside so that
        wear-out remains reachable within a short trace.
        """
        return replace(
            self,
            num_blocks=num_blocks,
            endurance=self.endurance if endurance is None else endurance,
            name=name or f"{self.name}-scaled-{num_blocks}b",
        )


def _blocks_for(capacity_bytes: int, pages_per_block: int, page_size: int) -> int:
    block_size = pages_per_block * page_size
    if capacity_bytes % block_size:
        raise ValueError(
            f"capacity {capacity_bytes} is not a whole number of "
            f"{block_size}-byte blocks"
        )
    return capacity_bytes // block_size


def slc_small_block(capacity_bytes: int, *, name: str | None = None) -> FlashGeometry:
    """Small-block SLC: 512 B pages, 32 pages/block, 100k endurance."""
    return FlashGeometry(
        num_blocks=_blocks_for(capacity_bytes, 32, 512),
        pages_per_block=32,
        page_size=512,
        endurance=100_000,
        cell_type=CellType.SLC,
        name=name or f"slc-small-{capacity_bytes // MIB}MB",
    )


def slc_large_block(capacity_bytes: int, *, name: str | None = None) -> FlashGeometry:
    """Large-block SLC: 2 KB pages, 64 pages/block, 100k endurance."""
    return FlashGeometry(
        num_blocks=_blocks_for(capacity_bytes, 64, 2048),
        pages_per_block=64,
        page_size=2048,
        endurance=100_000,
        cell_type=CellType.SLC,
        name=name or f"slc-large-{capacity_bytes // MIB}MB",
    )


def mlc2(capacity_bytes: int, *, name: str | None = None) -> FlashGeometry:
    """MLC×2: 2 KB pages, 128 pages/block, 10k endurance (paper Section 5.1)."""
    return FlashGeometry(
        num_blocks=_blocks_for(capacity_bytes, 128, 2048),
        pages_per_block=128,
        page_size=2048,
        endurance=10_000,
        cell_type=CellType.MLC2,
        name=name or f"mlc2-{capacity_bytes // MIB}MB",
    )


#: The exact part evaluated in paper Section 5.1: 1 GB MLC×2, 4,096 blocks,
#: 128 pages/block, 2 KB pages, 2,097,152 512-byte LBAs.
MLC2_1GB = mlc2(1 * GIB, name="mlc2-1GB")

#: The SLC sizes of paper Table 1 (BET memory requirements).
TABLE1_SLC_SIZES = (128 * MIB, 256 * MIB, 512 * MIB, 1 * GIB, 2 * GIB, 4 * GIB)

#: Scaled MLC×2 part for trace-driven benchmarks: identical organization
#: (128 pages/block, 2 KB pages) but 512 blocks and 1/50 the endurance so a
#: first-failure run completes in seconds instead of hours.
MLC2_BENCH = mlc2(128 * MIB, name="mlc2-bench").scaled(
    num_blocks=512, endurance=200, name="mlc2-bench-512b"
)

#: Even smaller part for unit tests.
MLC2_TINY = FlashGeometry(
    num_blocks=32,
    pages_per_block=8,
    page_size=2048,
    endurance=50,
    cell_type=CellType.MLC2,
    name="mlc2-tiny",
)
