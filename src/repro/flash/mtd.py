"""Memory Technology Device (MTD) layer.

Paper Figure 1 places an MTD driver between the Flash Translation Layer and
the raw flash: it "provide[s] primitive functions, such as read, write, and
erase over flash memory".  This class is that layer for the simulator: a
thin pass-through to :class:`~repro.flash.chip.NandFlash` that additionally
accumulates device-busy time from a :class:`~repro.flash.timing.TimingModel`
and exposes operation counters, so higher layers never touch the chip
object directly.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.flash.chip import NandFlash, OpCounters
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import TimingModel, timing_for


class MtdDevice:
    """Primitive read/write/erase interface over one NAND chip.

    Parameters
    ----------
    flash:
        The chip to drive, or ``None`` to create one from ``geometry``.
    geometry:
        Required when ``flash`` is ``None``.
    timing:
        Latency model; defaults to the chip's cell-type defaults.
    """

    def __init__(
        self,
        flash: NandFlash | None = None,
        *,
        geometry: FlashGeometry | None = None,
        timing: TimingModel | None = None,
        **chip_kwargs: bool,
    ) -> None:
        if flash is None:
            if geometry is None:
                raise ValueError("either a flash chip or a geometry is required")
            flash = NandFlash(geometry, **chip_kwargs)
        elif chip_kwargs:
            raise ValueError("chip kwargs are only valid when MTD creates the chip")
        self.flash = flash
        self.geometry = flash.geometry
        self.timing = timing or timing_for(flash.geometry)
        self.busy_time = 0.0
        #: Service time of the most recent primitive, so drivers that
        #: need per-operation latency (the service engine) can read it
        #: without diffing ``busy_time`` around every call.
        self.last_op_time = 0.0

    # ------------------------------------------------------------------
    # Primitive operations (paper Figure 1: read / write / erase)
    # ------------------------------------------------------------------
    def read_page(self, block: int, page: int) -> tuple[int, bytes | None]:
        """Read one page; returns ``(spare_lba, payload)``."""
        elapsed = self.timing.read_page
        self.last_op_time = elapsed
        self.busy_time += elapsed
        return self.flash.read(block, page)

    def write_page(
        self, block: int, page: int, *, lba: int, data: bytes | None = None
    ) -> None:
        """Program one page."""
        elapsed = self.timing.program_page
        self.last_op_time = elapsed
        self.busy_time += elapsed
        self.flash.program(block, page, lba=lba, data=data)

    def erase_block(self, block: int) -> None:
        """Erase one block (~1.5 ms on MLC×2 per the paper's datasheet)."""
        elapsed = self.timing.erase_block
        self.last_op_time = elapsed
        self.busy_time += elapsed
        self.flash.erase(block)

    def invalidate_page(self, block: int, page: int) -> None:
        """Mark a page's data superseded (a spare-area status update)."""
        self.flash.invalidate(block, page)

    def copy_page(
        self, src: tuple[int, int], dst: tuple[int, int]
    ) -> None:
        """Live-page copy: read ``src``, program ``dst``, invalidate ``src``.

        This is the unit the paper counts as one *live-page copying*
        (Section 4.3); callers count copies themselves so that FTL merges
        and SWL moves are attributed to the right cause.
        """
        lba, data = self.read_page(*src)
        self.write_page(*dst, lba=lba, data=data)
        self.invalidate_page(*src)

    # ------------------------------------------------------------------
    # Observation pass-throughs
    # ------------------------------------------------------------------
    def add_erase_listener(self, listener: Callable[[int], None]) -> None:
        """Register a per-erase callback (the SW Leveler's update hook)."""
        self.flash.add_erase_listener(listener)

    def clear_erase_listeners(self) -> None:
        """Drop every erase listener (used when simulating a reboot)."""
        self.flash.clear_erase_listeners()

    def mark_bad(self, block: int) -> None:
        """Record a grown-bad block in the chip's bad-block table."""
        self.flash.mark_bad(block)

    @property
    def bad_blocks(self) -> set[int]:
        """The chip's grown-bad-block table."""
        return self.flash.bad_blocks

    @property
    def counters(self) -> OpCounters:
        return self.flash.counters

    @property
    def erase_counts(self) -> list[int]:
        return self.flash.erase_counts

    def __repr__(self) -> str:
        return f"MtdDevice({self.flash!r}, busy={self.busy_time:.3f}s)"
