"""Spare-area record encoding.

Figure 2(a) of the paper shows each flash page split into a *user area* and
a *spare area* holding ``LBA``, ``ECC`` and ``Status`` fields; FTL rebuilds
its RAM translation table from these records at attach time.  The chip
simulator stores the logical tag natively, but persistence features (BET
save/load, attach-time table rebuild in the examples) need a concrete byte
layout — provided here, together with a CRC in place of the full ECC.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from enum import IntEnum

_FORMAT = struct.Struct("<iBxxxI")  # lba: int32, status: uint8, pad, crc: uint32

#: Encoded record size in bytes; fits the 16-byte spare of a 512 B page.
RECORD_SIZE = _FORMAT.size


class PageStatus(IntEnum):
    """Spare-area status byte."""

    FREE = 0xFF      # erased NAND reads all-ones
    LIVE = 0x0F      # programmed, data current
    DEAD = 0x00      # superseded by a newer copy


@dataclass(frozen=True)
class SpareRecord:
    """Decoded spare-area content of one page."""

    lba: int
    status: PageStatus

    def encode(self) -> bytes:
        """Serialize to :data:`RECORD_SIZE` bytes with a CRC32 checksum."""
        body = struct.pack("<iB", self.lba, int(self.status))
        crc = zlib.crc32(body) & 0xFFFFFFFF
        return _FORMAT.pack(self.lba, int(self.status), crc)

    @classmethod
    def decode(cls, raw: bytes) -> "SpareRecord":
        """Parse bytes produced by :meth:`encode`.

        Raises ``ValueError`` on wrong length, bad CRC, or an unknown
        status byte — the conditions an attach-time scan must tolerate.
        """
        if len(raw) != RECORD_SIZE:
            raise ValueError(
                f"spare record must be {RECORD_SIZE} bytes, got {len(raw)}"
            )
        lba, status_byte, crc = _FORMAT.unpack(raw)
        body = struct.pack("<iB", lba, status_byte)
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            raise ValueError("spare record CRC mismatch")
        try:
            status = PageStatus(status_byte)
        except ValueError as exc:
            raise ValueError(f"unknown page status byte 0x{status_byte:02x}") from exc
        return cls(lba=lba, status=status)


#: Record representing an erased page (all fields at their erased values).
FREE_RECORD = SpareRecord(lba=-1, status=PageStatus.FREE)
