"""NAND flash substrate: geometry, chip simulator, timing, MTD layer.

This package models everything below the Flash Translation Layer in the
paper's system architecture (Figure 1): the raw NAND chip with its
page/block organization, wear accounting and out-place-update constraints
(:mod:`repro.flash.chip`), catalog geometries including the paper's 1 GB
MLC×2 part (:mod:`repro.flash.geometry`), datasheet timing
(:mod:`repro.flash.timing`), spare-area records (:mod:`repro.flash.spare`),
and the MTD primitive-operation layer (:mod:`repro.flash.mtd`).
"""

from repro.flash.chip import (
    PAGE_FREE,
    PAGE_INVALID,
    PAGE_VALID,
    FirstFailure,
    NandFlash,
    OpCounters,
)
from repro.flash.errors import (
    AddressError,
    EraseError,
    FlashError,
    OutOfSpaceError,
    ProgramError,
    TranslationError,
    WearOutError,
)
from repro.flash.geometry import (
    GIB,
    KIB,
    MIB,
    MLC2_1GB,
    MLC2_BENCH,
    MLC2_TINY,
    SECTOR_SIZE,
    CellType,
    FlashGeometry,
    mlc2,
    slc_large_block,
    slc_small_block,
)
from repro.flash.mtd import MtdDevice
from repro.flash.spare import FREE_RECORD, RECORD_SIZE, PageStatus, SpareRecord
from repro.flash.timing import MLC2_TIMING, SLC_TIMING, TimingModel, timing_for

__all__ = [
    "AddressError",
    "CellType",
    "EraseError",
    "FirstFailure",
    "FlashError",
    "FlashGeometry",
    "FREE_RECORD",
    "GIB",
    "KIB",
    "MIB",
    "MLC2_1GB",
    "MLC2_BENCH",
    "MLC2_TIMING",
    "MLC2_TINY",
    "MtdDevice",
    "NandFlash",
    "OpCounters",
    "OutOfSpaceError",
    "PAGE_FREE",
    "PAGE_INVALID",
    "PAGE_VALID",
    "PageStatus",
    "ProgramError",
    "RECORD_SIZE",
    "SECTOR_SIZE",
    "SLC_TIMING",
    "SpareRecord",
    "TimingModel",
    "TranslationError",
    "WearOutError",
    "mlc2",
    "slc_large_block",
    "slc_small_block",
    "timing_for",
]
