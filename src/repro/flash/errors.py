"""Exception hierarchy for the NAND flash simulator.

All simulator errors derive from :class:`FlashError` so that callers can
catch anything flash-related with one clause, while tests can assert on the
precise failure mode.
"""

from __future__ import annotations


class FlashError(Exception):
    """Base class for every error raised by the flash subsystem."""


class AddressError(FlashError):
    """A block or page address is outside the chip's geometry."""

    def __init__(self, message: str, *, block: int | None = None, page: int | None = None) -> None:
        super().__init__(message)
        self.block = block
        self.page = page


class ProgramError(FlashError):
    """An illegal program (write) operation.

    NAND pages cannot be overwritten in place: a programmed page must be
    erased (at block granularity) before it can be programmed again.  MLC
    parts additionally require pages within a block to be programmed in
    ascending order.  Both violations raise this error.
    """

    def __init__(self, message: str, *, block: int, page: int) -> None:
        super().__init__(message)
        self.block = block
        self.page = page


class EraseError(FlashError):
    """An erase operation failed (only in ``fail_stop`` wear-out mode)."""

    def __init__(self, message: str, *, block: int) -> None:
        super().__init__(message)
        self.block = block


class WearOutError(EraseError):
    """A block exceeded its rated erase endurance in ``fail_stop`` mode.

    The paper's endurance metric is the *first failure time* — the first
    time any block wears out.  By default the chip only records that event
    (matching the paper's Table 4 methodology, which keeps simulating after
    wear-out); with ``fail_stop=True`` the erase raises this error instead.
    """


class FaultError(FlashError):
    """Base class for *injected* device faults.

    Unlike :class:`ProgramError` / :class:`AddressError` — which signal
    protocol violations (caller bugs) — a ``FaultError`` models the device
    misbehaving: transient erase failures, grown bad blocks, uncorrectable
    read errors, or power loss.  Translation layers are expected to catch
    these and recover; see :mod:`repro.fault`.
    """


class TransientEraseError(FaultError):
    """An erase pulse failed to complete; the block state is unchanged.

    Real NAND erase failures are frequently transient (charge detrapping,
    temperature): datasheets prescribe a bounded number of retries before
    the block is declared grown-bad.  The simulator leaves the block's
    pages and erase count untouched when raising this, so a retry models
    exactly one more erase attempt.
    """

    def __init__(self, message: str, *, block: int) -> None:
        super().__init__(message)
        self.block = block


class ProgramFaultError(FaultError):
    """A program operation failed; the target page holds garbage.

    The page is left in the *invalid* state (it consumed charge but its
    contents fail verification), and the block should be treated as grown
    bad: the driver re-issues the write to a fresh page and retires the
    failing block after relocating its live data.
    """

    def __init__(self, message: str, *, block: int, page: int) -> None:
        super().__init__(message)
        self.block = block
        self.page = page


class UncorrectableReadError(FaultError):
    """A page read had more bit errors than ECC can correct, after retries."""

    def __init__(self, message: str, *, block: int, page: int) -> None:
        super().__init__(message)
        self.block = block
        self.page = page


class PowerLossError(FaultError):
    """Injected power loss: the in-flight operation never takes effect.

    Raised by the fault injector at a scheduled operation ordinal.  All
    RAM state (translation tables, BET, frontiers) is conceptually lost;
    the crash-consistency harness rebuilds it from on-flash state.
    """

    def __init__(self, message: str, *, op_ordinal: int) -> None:
        super().__init__(message)
        self.op_ordinal = op_ordinal


class OutOfSpaceError(FlashError):
    """A translation layer ran out of free blocks and GC could not help.

    This indicates the logical space is too large for the physical space
    (over-provisioning too small) or a leak in block accounting — both are
    bugs in the caller's configuration, not transient conditions.
    """


class TranslationError(FlashError):
    """An LBA is out of the logical range exported by a translation layer."""
