"""Exception hierarchy for the NAND flash simulator.

All simulator errors derive from :class:`FlashError` so that callers can
catch anything flash-related with one clause, while tests can assert on the
precise failure mode.
"""

from __future__ import annotations


class FlashError(Exception):
    """Base class for every error raised by the flash subsystem."""


class AddressError(FlashError):
    """A block or page address is outside the chip's geometry."""

    def __init__(self, message: str, *, block: int | None = None, page: int | None = None) -> None:
        super().__init__(message)
        self.block = block
        self.page = page


class ProgramError(FlashError):
    """An illegal program (write) operation.

    NAND pages cannot be overwritten in place: a programmed page must be
    erased (at block granularity) before it can be programmed again.  MLC
    parts additionally require pages within a block to be programmed in
    ascending order.  Both violations raise this error.
    """

    def __init__(self, message: str, *, block: int, page: int) -> None:
        super().__init__(message)
        self.block = block
        self.page = page


class EraseError(FlashError):
    """An erase operation failed (only in ``fail_stop`` wear-out mode)."""

    def __init__(self, message: str, *, block: int) -> None:
        super().__init__(message)
        self.block = block


class WearOutError(EraseError):
    """A block exceeded its rated erase endurance in ``fail_stop`` mode.

    The paper's endurance metric is the *first failure time* — the first
    time any block wears out.  By default the chip only records that event
    (matching the paper's Table 4 methodology, which keeps simulating after
    wear-out); with ``fail_stop=True`` the erase raises this error instead.
    """


class OutOfSpaceError(FlashError):
    """A translation layer ran out of free blocks and GC could not help.

    This indicates the logical space is too large for the physical space
    (over-provisioning too small) or a leak in block accounting — both are
    bugs in the caller's configuration, not transient conditions.
    """


class TranslationError(FlashError):
    """An LBA is out of the logical range exported by a translation layer."""
