"""Datasheet timing models for NAND operations.

Paper Section 4.2 quotes a block erase time of "about 1.5 ms over a 1GB
MLC×2 flash memory", citing the STMicroelectronics NAND08Gx3C2A datasheet
[8].  This module encodes per-operation latencies so the MTD layer can
accumulate device-busy time; the simulation engine uses trace timestamps
for wall-clock (first-failure) time, and device-busy time is reported as an
auxiliary overhead metric.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flash.geometry import CellType, FlashGeometry


@dataclass(frozen=True)
class TimingModel:
    """Per-operation latencies in seconds.

    ``read_page`` covers array-to-register sensing plus bus transfer;
    ``program_page`` covers bus transfer plus cell programming;
    ``erase_block`` is the block-erase pulse.
    """

    read_page: float
    program_page: float
    erase_block: float

    def __post_init__(self) -> None:
        for field_name in ("read_page", "program_page", "erase_block"):
            value = getattr(self, field_name)
            if value < 0:
                raise ValueError(f"{field_name} must be non-negative, got {value}")

    def copy_page_time(self) -> float:
        """Time for one live-page copy (read + program, no copy-back)."""
        return self.read_page + self.program_page

    def time_for(self, op: str) -> float:
        """Per-operation latency by primitive name.

        ``op`` is one of ``"read"``, ``"program"``, ``"erase"`` — the
        three MTD primitives of paper Figure 1.  This is the lookup the
        service engine and exporters use to reason about a single
        operation's service time, where the replay path only ever needs
        the accumulated ``busy_time``.
        """
        if op == "read":
            return self.read_page
        if op == "program":
            return self.program_page
        if op == "erase":
            return self.erase_block
        raise ValueError(
            f"unknown operation {op!r}; expected 'read', 'program', or 'erase'"
        )


#: Large-block SLC figures (typical 2005-era datasheet values).
SLC_TIMING = TimingModel(
    read_page=25e-6 + 60e-6,     # 25 us sense + ~60 us bus at 2 KB
    program_page=200e-6 + 60e-6,
    erase_block=1.5e-3,
)

#: MLC×2 figures per the NAND08Gx3C2A datasheet the paper cites: slower
#: program, ~1.5 ms erase (Section 4.2).
MLC2_TIMING = TimingModel(
    read_page=60e-6 + 60e-6,
    program_page=800e-6 + 60e-6,
    erase_block=1.5e-3,
)


def timing_for(geometry: FlashGeometry) -> TimingModel:
    """Pick the default timing model for a geometry's cell type."""
    if geometry.cell_type is CellType.MLC2:
        return MLC2_TIMING
    return SLC_TIMING
