"""Behavioural NAND flash chip simulator.

Models exactly the properties the paper's experiments depend on:

* a chip is an array of erase blocks, each a fixed number of pages
  (Section 1);
* reads and programs are page operations, erase is a block operation;
* a programmed page cannot be reprogrammed until its block is erased
  (the out-place-update constraint that creates the wear-leveling problem);
* every block has a rated erase endurance; the first block to exceed it
  defines the *first failure time* (Section 5.1), and — matching the
  paper's Table 4 methodology — the chip keeps operating after wear-out
  unless ``fail_stop`` is requested;
* each page carries a small spare-area record (the logical address tag and
  status of Figure 2(a)).

Data payloads are optional: wear-leveling behaviour depends only on page
*state*, so by default the simulator tracks states and spare data without
storing user bytes.  Tests that verify end-to-end data integrity enable
``store_data``.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.flash.errors import (
    AddressError,
    PowerLossError,
    ProgramError,
    ProgramFaultError,
    WearOutError,
)
from repro.flash.geometry import FlashGeometry
from repro.obs.bus import M_ERASE, M_PROGRAM, M_READ

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.fault.injector import FaultInjector
    from repro.obs.bus import BusLike
    from repro.sim.metrics import EraseDistribution, WearAccumulator

# Page states, stored one byte per page.
PAGE_FREE = 0
PAGE_VALID = 1
PAGE_INVALID = 2

_STATE_NAMES = {PAGE_FREE: "free", PAGE_VALID: "valid", PAGE_INVALID: "invalid"}


@dataclass(frozen=True)
class FirstFailure:
    """Record of the first block wear-out event on a chip."""

    block: int
    erase_ordinal: int  # chip-wide erase count at the moment of failure
    erase_count: int    # the failing block's own count (== endurance + 1)


@dataclass
class OpCounters:
    """Cumulative operation counts for one chip."""

    reads: int = 0
    programs: int = 0
    erases: int = 0

    def snapshot(self) -> "OpCounters":
        return OpCounters(self.reads, self.programs, self.erases)


class NandFlash:
    """Simulated NAND chip.

    Parameters
    ----------
    geometry:
        Chip organization (:class:`~repro.flash.geometry.FlashGeometry`).
    fail_stop:
        When ``True``, erasing a block beyond its endurance raises
        :class:`~repro.flash.errors.WearOutError`.  Default ``False``:
        the event is recorded (:attr:`first_failure`, :attr:`worn_blocks`)
        and the simulation continues, as in the paper's Table 4 runs.
    store_data:
        When ``True``, page payloads are stored and returned by
        :meth:`read`; otherwise reads return ``None`` payloads.
    enforce_sequential_program:
        When ``True``, pages within a block must be programmed in ascending
        order (a real MLC constraint).  NFTL's primary blocks legitimately
        program pages out of order (Figure 2(b)), so this defaults to
        ``False``; FTL-only setups may enable it as an extra invariant.
    """

    def __init__(
        self,
        geometry: FlashGeometry,
        *,
        fail_stop: bool = False,
        store_data: bool = False,
        enforce_sequential_program: bool = False,
    ) -> None:
        self.geometry = geometry
        self.fail_stop = fail_stop
        self.store_data = store_data
        self.enforce_sequential_program = enforce_sequential_program

        total_pages = geometry.total_pages
        self._num_blocks = geometry.num_blocks
        self._ppb = geometry.pages_per_block
        self._states = bytearray(total_pages)            # PAGE_FREE
        self._spare_lba = [-1] * total_pages             # logical tag per page
        self._block_tags: dict[int, str] = {}            # erase-unit headers
        self._data: dict[int, bytes] = {}                # page index -> payload
        self.erase_counts = [0] * geometry.num_blocks
        # Deferred import: repro.sim pulls in the FTL factory, which pulls
        # in this module — a runtime import here is safe in every order
        # because by construction time this module is fully initialized.
        from repro.sim.metrics import WearAccumulator

        #: Running erase-count distribution, maintained O(1) per erase so
        #: wear sampling never rescans ``erase_counts`` (see
        #: :class:`~repro.sim.metrics.WearAccumulator`).
        self.wear: WearAccumulator = WearAccumulator(geometry.num_blocks)
        self.counters = OpCounters()
        self.worn_blocks: set[int] = set()
        self.first_failure: FirstFailure | None = None
        #: Fired once, when :attr:`first_failure` transitions from
        #: ``None``.  A :class:`~repro.array.DeviceArray` hangs its
        #: any-shard-failed flag here so its per-request failure poll is
        #: O(1) until a failure actually exists.
        self.failure_sink: Callable[[], None] | None = None
        # Stored as an immutable tuple: every mutation rebinds the name,
        # so an in-flight dispatch loop keeps iterating its own snapshot
        # even when a listener unsubscribes (itself or others) mid-fire.
        self._erase_listeners: tuple[Callable[[int], None], ...] = ()
        #: Grown-bad blocks, marked by the translation layer at retirement.
        #: Conceptually the on-flash bad-block table: it survives "reboots"
        #: of the RAM layers above, so attach-time scans can skip them.
        self.bad_blocks: set[int] = set()
        self._injector: FaultInjector | None = None
        self._obs: BusLike | None = None

    # ------------------------------------------------------------------
    # Fault injection and bad-block marks
    # ------------------------------------------------------------------
    @property
    def injector(self) -> "FaultInjector | None":
        """The attached fault injector, or ``None`` (the default)."""
        return self._injector

    def attach_injector(self, injector: "FaultInjector") -> None:
        """Consult ``injector`` on every program/erase/read from now on.

        The injector's bit-error and wear models are sized from this
        chip's geometry unless already configured.
        """
        if injector.page_bits is None:
            injector.page_bits = self.geometry.page_size * 8
        if injector.endurance is None:
            injector.endurance = self.geometry.endurance
        self._injector = injector

    def attach_bus(self, bus: "BusLike | None") -> None:
        """Emit telemetry events on ``bus`` from now on.

        A falsy bus (``None`` or the null bus) normalises to ``None`` so
        the disabled hot path stays a single ``is not None`` test.
        """
        self._obs = bus if bus else None

    def mark_bad(self, block: int) -> None:
        """Record ``block`` in the on-flash grown-bad-block table."""
        self._check_block(block)
        self.bad_blocks.add(block)

    def is_bad(self, block: int) -> bool:
        """``True`` when ``block`` is marked grown bad."""
        self._check_block(block)
        return block in self.bad_blocks

    # ------------------------------------------------------------------
    # Address validation
    # ------------------------------------------------------------------
    def _check_block(self, block: int) -> None:
        if not self.geometry.contains_block(block):
            raise AddressError(
                f"block {block} out of range [0, {self.geometry.num_blocks})",
                block=block,
            )

    def _check_page(self, block: int, page: int) -> int:
        # Hot path: one flattened bounds test instead of two range checks.
        if 0 <= page < self._ppb and 0 <= block < self._num_blocks:
            return block * self._ppb + page
        raise AddressError(
            f"page ({block}, {page}) out of range for geometry "
            f"{self.geometry.name}",
            block=block,
            page=page,
        )

    # ------------------------------------------------------------------
    # Primitive operations
    # ------------------------------------------------------------------
    def read(self, block: int, page: int) -> tuple[int, bytes | None]:
        """Read one page; returns ``(spare_lba, payload)``.

        ``spare_lba`` is -1 for a free page.  ``payload`` is ``None``
        unless ``store_data`` is enabled and the page holds data.
        """
        index = self._check_page(block, page)
        if self._injector is not None:
            self._injector.on_read(block, page)
        self.counters.reads += 1
        obs = self._obs
        if obs is not None and obs.mask & M_READ:
            obs.emit_read(block, page)
        return self._spare_lba[index], self._data.get(index)

    def program(
        self,
        block: int,
        page: int,
        *,
        lba: int,
        data: bytes | None = None,
    ) -> None:
        """Program one free page with a logical tag and optional payload.

        Raises :class:`ProgramError` on overwrite of a non-free page, and on
        out-of-order programming when ``enforce_sequential_program`` is set.
        """
        index = self._check_page(block, page)
        if self._states[index] != PAGE_FREE:
            raise ProgramError(
                f"page ({block}, {page}) is {_STATE_NAMES[self._states[index]]}; "
                "NAND pages must be erased before reprogramming",
                block=block,
                page=page,
            )
        if self.enforce_sequential_program and page > 0:
            prev = self.geometry.page_index(block, page - 1)
            if self._states[prev] == PAGE_FREE:
                raise ProgramError(
                    f"page ({block}, {page}) programmed before page "
                    f"({block}, {page - 1}); sequential order required",
                    block=block,
                    page=page,
                )
        if self._injector is not None:
            try:
                self._injector.on_program(block, page)
            except PowerLossError:
                # A program interrupted by power loss may leave the page
                # half-programmed: unreadable garbage that fails ECC at
                # the next attach scan — modelled as the invalid state
                # with no spare tag.
                if self._injector.plan.torn_writes:
                    self._states[index] = PAGE_INVALID
                    self._injector.note_torn_page()
                raise
            except ProgramFaultError:
                # Program failure: charge moved but verification failed.
                # The page is unusable until the block is erased, and the
                # attempt still counts as device activity.
                self._states[index] = PAGE_INVALID
                self.counters.programs += 1
                raise
        self._states[index] = PAGE_VALID
        self._spare_lba[index] = lba
        if self.store_data and data is not None:
            self._data[index] = bytes(data)
        self.counters.programs += 1
        obs = self._obs
        if obs is not None and obs.mask & M_PROGRAM:
            obs.emit_program(block, page, lba)

    def invalidate(self, block: int, page: int) -> None:
        """Mark a valid page invalid (out-place update of its logical data)."""
        index = self._check_page(block, page)
        if self._states[index] != PAGE_VALID:
            raise ProgramError(
                f"cannot invalidate page ({block}, {page}): it is "
                f"{_STATE_NAMES[self._states[index]]}",
                block=block,
                page=page,
            )
        self._states[index] = PAGE_INVALID

    def erase(self, block: int) -> None:
        """Erase one block, freeing all of its pages and bumping wear.

        Records the first wear-out event; raises only in ``fail_stop`` mode.
        Erase listeners run after the erase completes (the Cleaner uses one
        to trigger SWL-BETUpdate).

        With a fault injector attached the erase may fail before any state
        change: a :class:`~repro.flash.errors.TransientEraseError` leaves
        pages, erase counts, and listeners untouched, so a driver retry
        models exactly one more attempt.
        """
        self._check_block(block)
        if self._injector is not None:
            self._injector.on_erase(block, self.erase_counts[block])
        previous = self.erase_counts[block]
        self.erase_counts[block] = previous + 1
        self.wear.record_erase(block, previous)
        self.counters.erases += 1
        if self.erase_counts[block] > self.geometry.endurance:
            if block not in self.worn_blocks:
                self.worn_blocks.add(block)
                if self.first_failure is None:
                    self.first_failure = FirstFailure(
                        block=block,
                        erase_ordinal=self.counters.erases,
                        erase_count=self.erase_counts[block],
                    )
                    if self.failure_sink is not None:
                        self.failure_sink()
            if self.fail_stop:
                raise WearOutError(
                    f"block {block} exceeded endurance "
                    f"{self.geometry.endurance}",
                    block=block,
                )
        start = block * self.geometry.pages_per_block
        stop = start + self.geometry.pages_per_block
        for index in range(start, stop):
            self._states[index] = PAGE_FREE
            self._spare_lba[index] = -1
            self._data.pop(index, None)
        self._block_tags.pop(block, None)
        obs = self._obs
        if obs is not None and obs.mask & M_ERASE:
            # Before the listeners: SWL work a listener triggers then
            # traces causally after the erase that provoked it.
            obs.emit_erase(block, self.erase_counts[block])
        for listener in self._erase_listeners:
            listener(block)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def add_erase_listener(self, listener: Callable[[int], None]) -> None:
        """Register a callback invoked with the block number on every erase."""
        self._erase_listeners = self._erase_listeners + (listener,)

    def remove_erase_listener(self, listener: Callable[[int], None]) -> None:
        """Unregister one registration of ``listener``; absent is a no-op.

        Idempotent by design: a leveler detached both explicitly and by a
        power-loss reset must not blow up the second time.  A dispatch in
        progress keeps firing its pre-removal snapshot.
        """
        remaining = list(self._erase_listeners)
        if listener in remaining:
            remaining.remove(listener)
            self._erase_listeners = tuple(remaining)

    def clear_erase_listeners(self) -> None:
        """Drop every erase listener (RAM wiring lost at power loss).

        The crash-consistency harness calls this when "rebooting": the
        listeners belong to the previous session's leveler, which no
        longer exists.
        """
        self._erase_listeners = ()

    def set_block_tag(self, block: int, tag: str) -> None:
        """Write a small erase-unit header for ``block``.

        Real translation layers stamp each allocated erase unit with its
        role (e.g. NFTL's unit header carrying the virtual unit number),
        stored in the spare area of the block's first page; attach-time
        scans read it back.  Cleared by erase.
        """
        self._check_block(block)
        self._block_tags[block] = tag

    def block_tag(self, block: int) -> str | None:
        """The erase-unit header of ``block``, or ``None`` when unset."""
        self._check_block(block)
        return self._block_tags.get(block)

    def page_state(self, block: int, page: int) -> int:
        """State constant of one page (PAGE_FREE / PAGE_VALID / PAGE_INVALID)."""
        return self._states[self._check_page(block, page)]

    def page_lba(self, block: int, page: int) -> int:
        """Spare-area logical tag of one page (-1 when free)."""
        return self._spare_lba[self._check_page(block, page)]

    def block_page_states(self, block: int) -> bytes:
        """States of every page in ``block`` as a bytes object."""
        self._check_block(block)
        start = block * self.geometry.pages_per_block
        return bytes(self._states[start:start + self.geometry.pages_per_block])

    def count_pages(self, block: int, state: int) -> int:
        """Number of pages of ``block`` in the given state."""
        return self.block_page_states(block).count(state)

    def valid_pages(self, block: int) -> list[int]:
        """Page offsets within ``block`` that currently hold valid data."""
        states = self.block_page_states(block)
        return [page for page, s in enumerate(states) if s == PAGE_VALID]

    def is_block_free(self, block: int) -> bool:
        """``True`` when every page of ``block`` is free (fully erased)."""
        states = self.block_page_states(block)
        return states.count(PAGE_FREE) == len(states)

    # ------------------------------------------------------------------
    # Checkpointing (see repro.ckpt)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict[str, object]:
        """JSON-friendly snapshot of all durable chip state.

        Covers everything a power cycle would preserve on real media
        (page states, spare tags, erase-unit headers, payloads, the
        grown-bad-block table) plus the simulator's wear accounting
        (erase counts, :class:`~repro.sim.metrics.WearAccumulator`
        moments, worn blocks, the first-failure record, op counters).
        RAM wiring — erase listeners, the injector, the telemetry bus —
        is deliberately absent: it is rebuilt by whoever reconstructs
        the stack around the restored chip.
        """
        failure = self.first_failure
        return {
            "geometry": {
                "name": self.geometry.name,
                "num_blocks": self.geometry.num_blocks,
                "pages_per_block": self.geometry.pages_per_block,
                "page_size": self.geometry.page_size,
                "endurance": self.geometry.endurance,
                "cell_type": self.geometry.cell_type.name,
            },
            "store_data": self.store_data,
            "states": bytes(self._states).hex(),
            "spare_lba": list(self._spare_lba),
            "block_tags": [[block, tag] for block, tag
                           in sorted(self._block_tags.items())],
            "data": [[index, payload.hex()] for index, payload
                     in sorted(self._data.items())],
            "erase_counts": list(self.erase_counts),
            "wear": self.wear.snapshot_state(),
            "counters": {
                "reads": self.counters.reads,
                "programs": self.counters.programs,
                "erases": self.counters.erases,
            },
            "worn_blocks": sorted(self.worn_blocks),
            "first_failure": None if failure is None else {
                "block": failure.block,
                "erase_ordinal": failure.erase_ordinal,
                "erase_count": failure.erase_count,
            },
            "bad_blocks": sorted(self.bad_blocks),
        }

    def restore_state(self, state: dict[str, object]) -> None:
        """Overwrite chip state in place from :meth:`snapshot_state`.

        In place matters: the allocator and MTD hold live references to
        ``erase_counts`` and ``wear``, so both are mutated rather than
        rebound.  Raises ``ValueError`` when the snapshot was taken on a
        different geometry.
        """
        geometry = state["geometry"]
        assert isinstance(geometry, dict)
        mine = {
            "name": self.geometry.name,
            "num_blocks": self.geometry.num_blocks,
            "pages_per_block": self.geometry.pages_per_block,
            "page_size": self.geometry.page_size,
            "endurance": self.geometry.endurance,
            "cell_type": self.geometry.cell_type.name,
        }
        if geometry != mine:
            raise ValueError(
                f"chip snapshot geometry {geometry} does not match {mine}"
            )
        states = bytes.fromhex(state["states"])  # type: ignore[arg-type]
        if len(states) != len(self._states):
            raise ValueError(
                f"snapshot has {len(states)} page states, chip has "
                f"{len(self._states)}"
            )
        self._states[:] = states
        self._spare_lba[:] = state["spare_lba"]  # type: ignore[index]
        self._block_tags = {block: tag for block, tag in state["block_tags"]}  # type: ignore[union-attr]
        self._data = {index: bytes.fromhex(payload)
                      for index, payload in state["data"]}  # type: ignore[union-attr]
        self.erase_counts[:] = state["erase_counts"]  # type: ignore[index]
        self.wear.restore_state(state["wear"])  # type: ignore[arg-type]
        counters = state["counters"]
        assert isinstance(counters, dict)
        self.counters.reads = counters["reads"]
        self.counters.programs = counters["programs"]
        self.counters.erases = counters["erases"]
        self.worn_blocks = set(state["worn_blocks"])  # type: ignore[arg-type]
        failure = state["first_failure"]
        if failure is None:
            self.first_failure = None
        else:
            assert isinstance(failure, dict)
            self.first_failure = FirstFailure(
                block=failure["block"],
                erase_ordinal=failure["erase_ordinal"],
                erase_count=failure["erase_count"],
            )
        self.bad_blocks = set(state["bad_blocks"])  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Wear statistics
    # ------------------------------------------------------------------
    def max_erase_count(self) -> int:
        return max(self.erase_counts)

    def min_erase_count(self) -> int:
        return min(self.erase_counts)

    def total_erases(self) -> int:
        return self.counters.erases

    def remaining_life(self, block: int) -> int:
        """Erase cycles left before ``block`` wears out (may be negative)."""
        self._check_block(block)
        return self.geometry.endurance - self.erase_counts[block]

    def __repr__(self) -> str:
        return (
            f"NandFlash({self.geometry.name}, blocks={self.geometry.num_blocks}, "
            f"erases={self.counters.erases}, worn={len(self.worn_blocks)})"
        )
