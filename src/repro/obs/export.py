"""Trace exporters: JSONL, Chrome ``trace_event`` JSON, and log routing.

Each exporter is a plain bus subscriber (callable taking a
:class:`~repro.obs.bus.TraceRecord`); attach any combination to one bus.

* :class:`JsonlTraceExporter` streams one JSON object per event to a
  text file — the lossless archival format, `jq`-friendly.
* :class:`ChromeTraceExporter` buffers Chrome ``trace_event`` objects
  (loadable in Perfetto / ``chrome://tracing``).  The clock is simulated
  device time — ``ts`` is busy-time seconds scaled to microseconds — so
  a trace of a deterministic run is itself deterministic.  GC passes
  become duration (``B``/``E``) slices per shard-thread, SWL and fault
  activity become instant events, and erase totals become a counter
  (``C``) track per shard.
* :class:`LogExporter` routes events onto the ``repro.*`` logging
  channels from :mod:`repro.util.diagnostics`, so bus telemetry and
  `--log-level` output come from the same event stream instead of
  diverging call sites.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from typing import IO, Union

from repro.obs.bus import (
    ALL_EVENTS,
    K_ERASE,
    K_PROGRAM,
    K_READ,
    M_PROGRAM,
    M_READ,
    BatchOp,
    TraceRecord,
)
from repro.obs.events import (
    BetReset,
    Erase,
    FaultInjected,
    GcEnd,
    GcStart,
    PowerLoss,
    Program,
    QueueDepth,
    Read,
    Recovery,
    SwlInvoke,
)
from repro.util.diagnostics import get_logger


def _op_to_record(op: BatchOp) -> TraceRecord:
    """Rehydrate a buffered op into the legacy per-event record form."""
    kind = op[0]
    if kind == K_READ:
        return TraceRecord(op[1], op[2], Read(op[3], op[4]))
    if kind == K_PROGRAM:
        return TraceRecord(op[1], op[2], Program(op[3], op[4], op[5]))
    if kind == K_ERASE:
        return TraceRecord(op[1], op[2], Erase(op[3], op[4]))
    return TraceRecord(op[1], op[2], op[3])


class JsonlTraceExporter:
    """Stream every record as one JSON line: ``{ts, shard, kind, ...}``."""

    def __init__(self, target: Union[str, Path, IO[str]]) -> None:
        if isinstance(target, (str, Path)):
            self._stream: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self.records_written = 0

    def __call__(self, record: TraceRecord) -> None:
        line = {"ts": record.ts, "shard": record.shard,
                "kind": record.event.kind}
        line.update(record.event.payload())
        self._stream.write(json.dumps(line) + "\n")
        self.records_written += 1

    def consume_batch(self, batch: list[BatchOp]) -> None:
        """Serialise a buffered batch; byte-identical to per-record calls.

        Hot kinds build their JSON dicts straight from the flat tuple
        (same key order as ``payload()``), skipping event rehydration.
        """
        write = self._stream.write
        dumps = json.dumps
        for op in batch:
            kind = op[0]
            if kind == K_READ:
                line: dict[str, object] = {
                    "ts": op[1], "shard": op[2], "kind": "read",
                    "block": op[3], "page": op[4]}
            elif kind == K_PROGRAM:
                line = {"ts": op[1], "shard": op[2], "kind": "program",
                        "block": op[3], "page": op[4], "lba": op[5]}
            elif kind == K_ERASE:
                line = {"ts": op[1], "shard": op[2], "kind": "erase",
                        "block": op[3], "count": op[4]}
            else:
                event = op[3]
                line = {"ts": op[1], "shard": op[2], "kind": event.kind}
                line.update(event.payload())
            write(dumps(line) + "\n")
        self.records_written += len(batch)

    def close(self) -> None:
        """Flush and (if we opened it) close the underlying stream."""
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()


class ChromeTraceExporter:
    """Buffer Chrome ``trace_event`` objects; ``dump()`` writes the file.

    Timestamps are simulated-time microseconds.  One process (pid 0,
    named for the run) with one thread per shard keeps multi-channel
    traces readable as parallel tracks.
    """

    #: Per-page read/program volume would dwarf the interesting tracks;
    #: a bus whose only subscribers declare this mask skips those kinds
    #: at the emit site (the JSONL trace keeps them when attached).
    interest_mask = ALL_EVENTS & ~(M_READ | M_PROGRAM)

    def __init__(self, run_name: str = "repro") -> None:
        self.run_name = run_name
        self._events: list[dict[str, object]] = []
        self._shards_named: set[int] = set()
        self._erases_by_shard: dict[int, int] = {}

    def _ensure_thread(self, shard: int) -> None:
        if shard in self._shards_named:
            return
        self._shards_named.add(shard)
        self._events.append({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": shard,
            "args": {"name": f"shard {shard}"},
        })

    def __call__(self, record: TraceRecord) -> None:
        self._ensure_thread(record.shard)
        ts = record.ts * 1e6
        event = record.event
        base: dict[str, object] = {"pid": 0, "tid": record.shard, "ts": ts}
        if isinstance(event, GcStart):
            self._events.append(
                {**base, "ph": "B", "cat": "gc",
                 "name": f"GC {event.reason}",
                 "args": {"victim": event.victim}})
        elif isinstance(event, GcEnd):
            self._events.append(
                {**base, "ph": "E", "cat": "gc",
                 "name": f"GC {event.reason}",
                 "args": {"victim": event.victim, "copies": event.copies,
                          "erases": event.erases}})
        elif isinstance(event, Erase):
            total = self._erases_by_shard.get(record.shard, 0) + 1
            self._erases_by_shard[record.shard] = total
            self._events.append(
                {**base, "ph": "C", "cat": "flash", "name": "erases",
                 "args": {"erases": total}})
        elif isinstance(event, QueueDepth):
            # Per-channel occupancy as a counter track, so service-mode
            # traces show queue build-up alongside the GC slices that
            # cause it (tail-latency forensics in one Perfetto view).
            self._events.append(
                {**base, "ph": "C", "cat": "service", "name": "queue depth",
                 "args": {"depth": event.depth}})
            self._events.append(
                {**base, "ph": "C", "cat": "service", "name": "queue stalls",
                 "args": {"stalls": event.stalls}})
        elif isinstance(event, (SwlInvoke, BetReset, FaultInjected,
                                Recovery, PowerLoss)):
            self._events.append(
                {**base, "ph": "i", "s": "t",
                 "cat": "swl" if isinstance(event, (SwlInvoke, BetReset))
                 else "fault",
                 "name": event.kind, "args": event.payload()})
        # Read/Program are deliberately not serialised: per-page volume
        # would dwarf the interesting tracks; the JSONL trace keeps them.

    def consume_batch(self, batch: list[BatchOp]) -> None:
        """Buffered delivery; behaves exactly like per-record calls.

        Erases take a flat fast path; reads/programs that ride in a
        shared buffer (because another subscriber wants them) still name
        the shard thread, as they would on a synchronous bus.
        """
        for op in batch:
            kind = op[0]
            if kind == K_ERASE:
                shard = op[2]
                self._ensure_thread(shard)
                total = self._erases_by_shard.get(shard, 0) + 1
                self._erases_by_shard[shard] = total
                self._events.append(
                    {"pid": 0, "tid": shard, "ts": op[1] * 1e6,
                     "ph": "C", "cat": "flash", "name": "erases",
                     "args": {"erases": total}})
            elif kind == K_READ or kind == K_PROGRAM:
                self._ensure_thread(op[2])
            else:
                self(_op_to_record(op))

    def trace_object(self) -> dict[str, object]:
        """The complete Chrome trace document."""
        header = [{
            "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
            "args": {"name": self.run_name},
        }]
        return {"traceEvents": header + self._events,
                "displayTimeUnit": "ms"}

    def dump(self, path: Union[str, Path]) -> None:
        """Write the trace document as JSON to ``path``."""
        Path(path).write_text(json.dumps(self.trace_object()) + "\n",
                              encoding="utf-8")


class LogExporter:
    """Route bus events onto the ``repro.*`` diagnostics channels.

    SWL activity goes to ``repro.leveler`` and fault activity to
    ``repro.fault`` — the same channels library code logs on — so
    enabling telemetry does not create a second, divergent narrative.
    """

    def __init__(self, level: int = logging.INFO) -> None:
        self.level = level
        self._leveler = get_logger("leveler")
        self._fault = get_logger("fault")
        self._trace = get_logger("obs")

    def __call__(self, record: TraceRecord) -> None:
        event = record.event
        if isinstance(event, SwlInvoke):
            self._leveler.log(
                self.level,
                "t=%.3f shard=%d swl_invoke findex=%d unevenness=%.3f "
                "latency=%d erases",
                record.ts, record.shard, event.findex, event.unevenness,
                event.latency_erases)
        elif isinstance(event, BetReset):
            self._leveler.log(
                self.level,
                "t=%.3f shard=%d bet_reset resets=%d findex=%d",
                record.ts, record.shard, event.resets, event.findex)
        elif isinstance(event, FaultInjected):
            self._fault.log(
                self.level,
                "t=%.3f shard=%d fault_injected fault=%s block=%d page=%d",
                record.ts, record.shard, event.fault, event.block, event.page)
        elif isinstance(event, (Recovery, PowerLoss)):
            self._fault.log(self.level, "t=%.3f shard=%d %s %s",
                            record.ts, record.shard, event.kind,
                            event.payload())
        else:
            self._trace.debug("t=%.3f shard=%d %s %s", record.ts,
                              record.shard, event.kind, event.payload())

    def consume_batch(self, batch: list[BatchOp]) -> None:
        """Buffered delivery: rehydrate each op and log it in order."""
        for op in batch:
            self(_op_to_record(op))

    #: alias so LogExporter can sit in exporter lists that get ``close()``d
    def close(self) -> None:
        pass
