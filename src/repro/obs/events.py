"""Typed telemetry events — the vocabulary of the observability layer.

Every instrumented component of the stack (chip, Cleaner, drivers, SW
Leveler, fault injector) emits one of these small frozen dataclasses to an
:class:`~repro.obs.bus.EventBus`.  The taxonomy follows the quantities the
paper reasons about longitudinally:

* device activity — :class:`Read`, :class:`Program`, :class:`Erase`;
* garbage collection — :class:`GcStart`/:class:`GcEnd` (with a ``reason``
  attributing the run to free-space pressure, dead-block reclaim, a fold,
  SW-Leveler force, or fault recovery) and :class:`GcScan` (victim
  selection cost);
* static wear leveling — :class:`SwlInvoke` (one SWL-Procedure run) and
  :class:`BetReset` (one completed resetting interval);
* robustness — :class:`FaultInjected`, :class:`Recovery`,
  :class:`PowerLoss`.

Events are plain data: no behaviour, no references into live objects, so
exporters may retain them indefinitely.  Construction happens **only** on
the enabled path — instrumentation sites guard with ``if obs is not None``
before building an event, which is what keeps the disabled stack free of
per-operation allocations (see DESIGN.md §5c, the overhead contract).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar


@dataclass(frozen=True)
class Event:
    """Base class of all telemetry events.

    ``kind`` is a class-level tag used by exporters and filters; it never
    occupies per-instance storage.
    """

    kind: ClassVar[str] = "event"

    def payload(self) -> dict[str, object]:
        """The event's fields as a plain dict (for JSON exporters)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class Read(Event):
    """One page read completed on a chip."""

    kind: ClassVar[str] = "read"
    block: int
    page: int


@dataclass(frozen=True)
class Program(Event):
    """One page program completed on a chip."""

    kind: ClassVar[str] = "program"
    block: int
    page: int
    lba: int


@dataclass(frozen=True)
class Erase(Event):
    """One block erase completed; ``count`` is the block's new wear."""

    kind: ClassVar[str] = "erase"
    block: int
    count: int


@dataclass(frozen=True)
class GcStart(Event):
    """A garbage-collection pass begins.

    ``reason`` attributes the pass: ``"free-space"`` (the Section 5.1
    trigger), ``"dead"`` (erase-on-demand of a fully invalid block),
    ``"fold"`` (NFTL replacement-full merge), ``"swl"`` (a forced recycle
    requested by SWL-Procedure), or ``"recovery"`` (draining a faulted
    block).  ``victim`` is a physical block for FTL and a virtual block
    address for NFTL.
    """

    kind: ClassVar[str] = "gc_start"
    reason: str
    victim: int


@dataclass(frozen=True)
class GcEnd(Event):
    """The matching end of a :class:`GcStart`, with its measured cost."""

    kind: ClassVar[str] = "gc_end"
    reason: str
    victim: int
    copies: int     #: live pages moved by this pass
    erases: int     #: block erases performed by this pass


@dataclass(frozen=True)
class GcScan(Event):
    """One Cleaner victim-selection scan (cyclic/greedy, Section 5.1)."""

    kind: ClassVar[str] = "gc_scan"
    mode: str       #: "least-worn", "first-fit", or "fallback"
    probes: int     #: candidates examined by this scan
    victim: int     #: selected unit, -1 when the scan found none


@dataclass(frozen=True)
class SwlInvoke(Event):
    """One SWL-Procedure run that did work (Algorithm 1).

    ``latency_erases`` counts block erases between the trigger firing and
    the procedure actually running — non-zero only when the host driver
    had the leveler suspended mid-GC (the deferred-check path).
    """

    kind: ClassVar[str] = "swl_invoke"
    findex: int
    unevenness: float   #: ecnt/fcnt at entry
    ecnt: int
    fcnt: int
    latency_erases: int


@dataclass(frozen=True)
class BetReset(Event):
    """A resetting interval completed (Algorithm 1, steps 4-7)."""

    kind: ClassVar[str] = "bet_reset"
    resets: int     #: cumulative reset count
    findex: int     #: the randomly re-seeded cursor


@dataclass(frozen=True)
class FaultInjected(Event):
    """The injector delivered a fault (``fault``: erase/program/read)."""

    kind: ClassVar[str] = "fault_injected"
    fault: str
    block: int
    page: int       #: -1 for block-granular faults


@dataclass(frozen=True)
class Recovery(Event):
    """The driver performed a fault-recovery action.

    ``action``: ``"erase_retry"`` (transient erase re-attempted),
    ``"condemn"`` (retry budget exhausted, block awaiting retirement),
    ``"reissue"`` (a failed program re-driven to a fresh page), or
    ``"retire"`` (block permanently withdrawn from service).
    """

    kind: ClassVar[str] = "recovery"
    action: str
    block: int


@dataclass(frozen=True)
class PowerLoss(Event):
    """A scheduled power loss fired at chip-operation ``op_ordinal``."""

    kind: ClassVar[str] = "power_loss"
    op_ordinal: int


@dataclass(frozen=True)
class QueueDepth(Event):
    """A periodic per-channel queue-occupancy sample (service mode).

    Emitted by the open-loop service engine (:mod:`repro.service`): the
    channel rides the record's shard tag, ``depth`` is the number of
    requests in flight or waiting on that channel's FIFO at the sample
    instant, and ``stalls`` is the cumulative count of arrivals that hit
    the bounded queue's backpressure so far.
    """

    kind: ClassVar[str] = "queue_depth"
    depth: int
    stalls: int


#: All concrete event classes, keyed by their ``kind`` tag.
EVENT_TYPES: dict[str, type[Event]] = {
    cls.kind: cls
    for cls in (
        Read, Program, Erase, GcStart, GcEnd, GcScan,
        SwlInvoke, BetReset, FaultInjected, Recovery, PowerLoss,
        QueueDepth,
    )
}
