"""Metrics registry: counters, gauges, histograms with exact merging.

A :class:`MetricsRegistry` is a mutable bag of named instruments updated
by the collector as events arrive.  :meth:`MetricsRegistry.snapshot`
freezes it into a :class:`MetricsSnapshot` — plain immutable samples —
and snapshots **compose across array shards exactly**, the same way
``EraseDistribution.merge`` reconstitutes a global erase distribution
from per-shard sufficient statistics:

* counters add;
* histograms with identical bucket bounds add bucket-wise (sum and
  count included), which is exact because the buckets are fixed-width
  and agreed on up front;
* gauges carry an explicit aggregation (``"sum"``, ``"max"``, ``"min"``)
  chosen per metric — e.g. the unevenness gauge merges with ``max``
  (the array's wear ceiling is its worst shard).

:func:`render_prometheus` serialises a snapshot in the Prometheus text
exposition format (``# HELP`` / ``# TYPE`` / samples, histogram
``_bucket{le=...}`` with cumulative counts).
"""

from __future__ import annotations

from dataclasses import dataclass


class Counter:
    """Monotonically increasing count."""

    def __init__(self, name: str, help: str) -> None:
        self.name = name
        self.help = help
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount


class Gauge:
    """Point-in-time value with a declared cross-shard aggregation."""

    AGGREGATIONS = ("sum", "max", "min")

    def __init__(self, name: str, help: str, agg: str = "max") -> None:
        if agg not in self.AGGREGATIONS:
            raise ValueError(f"unknown gauge aggregation {agg!r}")
        self.name = name
        self.help = help
        self.agg = agg
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram; ``buckets`` are upper bounds, ascending.

    ``counts`` has one slot per bucket plus a final +Inf overflow slot.
    """

    def __init__(self, name: str, help: str,
                 buckets: tuple[float, ...]) -> None:
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError("histogram buckets must be strictly ascending")
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(buckets) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def add_counts(self, counts: "list[int] | tuple[int, ...]",
                   *, total: float = 0.0) -> None:
        """Fold pre-binned observations in bulk (exact, like ``merge``).

        ``counts`` must carry one slot per bucket plus the trailing +Inf
        overflow slot, binned against this histogram's own bounds —
        the shape :class:`HistogramSample` exposes.  ``total`` is the sum
        of the folded observations.  The service engine uses this to
        publish millions of per-request latency observations into the
        registry as one fold instead of one ``observe`` call each.
        """
        if len(counts) != len(self.counts):
            raise ValueError(
                f"histogram {self.name!r} has {len(self.counts)} slots, "
                f"got {len(counts)}"
            )
        for index, bucket_count in enumerate(counts):
            self.counts[index] += bucket_count
        self.count += sum(counts)
        self.sum += total


@dataclass(frozen=True)
class CounterSample:
    """Frozen counter state."""

    name: str
    help: str
    value: float


@dataclass(frozen=True)
class GaugeSample:
    """Frozen gauge state, tagged with its merge aggregation."""

    name: str
    help: str
    value: float
    agg: str


@dataclass(frozen=True)
class HistogramSample:
    """Frozen histogram state (non-cumulative per-bucket counts)."""

    name: str
    help: str
    buckets: tuple[float, ...]
    counts: tuple[int, ...]
    sum: float
    count: int

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by interpolating within buckets.

        The same estimate Prometheus's ``histogram_quantile`` computes:
        observations are assumed uniform within their bucket, the first
        bucket interpolates from zero, and a quantile landing in the
        +Inf overflow slot clamps to the highest finite bound (the
        histogram cannot resolve beyond it).  Returns 0.0 when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bound in enumerate(self.buckets):
            bucket_count = self.counts[index]
            if cumulative + bucket_count >= rank:
                if bucket_count == 0:
                    return bound
                lower = self.buckets[index - 1] if index else 0.0
                fraction = (rank - cumulative) / bucket_count
                return lower + (bound - lower) * fraction
            cumulative += bucket_count
        return self.buckets[-1] if self.buckets else 0.0


class MetricsRegistry:
    """Get-or-create registry of instruments, keyed by metric name."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        existing = self._counters.get(name)
        if existing is None:
            existing = self._counters[name] = Counter(name, help)
        return existing

    def gauge(self, name: str, help: str = "", agg: str = "max") -> Gauge:
        existing = self._gauges.get(name)
        if existing is None:
            existing = self._gauges[name] = Gauge(name, help, agg)
        return existing

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] = (1.0, 2.0, 5.0, 10.0)
                  ) -> Histogram:
        existing = self._histograms.get(name)
        if existing is None:
            existing = self._histograms[name] = Histogram(name, help, buckets)
        return existing

    def snapshot(self) -> "MetricsSnapshot":
        """Freeze current values into an immutable, mergeable snapshot."""
        return MetricsSnapshot(
            counters={
                n: CounterSample(n, c.help, c.value)
                for n, c in self._counters.items()
            },
            gauges={
                n: GaugeSample(n, g.help, g.value, g.agg)
                for n, g in self._gauges.items()
            },
            histograms={
                n: HistogramSample(n, h.help, h.buckets, tuple(h.counts),
                                   h.sum, h.count)
                for n, h in self._histograms.items()
            },
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable metric samples; merging across shards is exact."""

    counters: dict[str, CounterSample]
    gauges: dict[str, GaugeSample]
    histograms: dict[str, HistogramSample]

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Exact composition of two shards' snapshots.

        Counters and histogram buckets add; gauges apply their declared
        aggregation.  Metrics present on only one side pass through
        unchanged, so shards need not expose identical metric sets.
        """
        counters = dict(self.counters)
        for name, sample in other.counters.items():
            mine = counters.get(name)
            counters[name] = sample if mine is None else CounterSample(
                name, mine.help or sample.help, mine.value + sample.value)

        gauges = dict(self.gauges)
        for name, sample in other.gauges.items():
            mine = gauges.get(name)
            if mine is None:
                gauges[name] = sample
                continue
            if mine.agg != sample.agg:
                raise ValueError(
                    f"gauge {name!r} merged with conflicting aggregations "
                    f"{mine.agg!r} and {sample.agg!r}")
            combine = {"sum": lambda a, b: a + b, "max": max, "min": min}
            gauges[name] = GaugeSample(
                name, mine.help or sample.help,
                combine[mine.agg](mine.value, sample.value), mine.agg)

        histograms = dict(self.histograms)
        for name, sample in other.histograms.items():
            mine = histograms.get(name)
            if mine is None:
                histograms[name] = sample
                continue
            if mine.buckets != sample.buckets:
                raise ValueError(
                    f"histogram {name!r} merged with differing buckets")
            histograms[name] = HistogramSample(
                name, mine.help or sample.help, mine.buckets,
                tuple(a + b for a, b in zip(mine.counts, sample.counts)),
                mine.sum + sample.sum, mine.count + sample.count)

        return MetricsSnapshot(counters, gauges, histograms)

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly view (used by ``repro trace --summary``)."""
        return {
            "counters": {n: s.value for n, s in sorted(self.counters.items())},
            "gauges": {n: s.value for n, s in sorted(self.gauges.items())},
            "histograms": {
                n: {"buckets": list(s.buckets), "counts": list(s.counts),
                    "sum": s.sum, "count": s.count}
                for n, s in sorted(self.histograms.items())
            },
        }


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def render_prometheus(snapshot: MetricsSnapshot) -> str:
    """Serialise ``snapshot`` in the Prometheus text exposition format."""
    lines: list[str] = []
    for name in sorted(snapshot.counters):
        sample = snapshot.counters[name]
        if sample.help:
            lines.append(f"# HELP {name} {sample.help}")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_format_value(sample.value)}")
    for name in sorted(snapshot.gauges):
        gauge = snapshot.gauges[name]
        if gauge.help:
            lines.append(f"# HELP {name} {gauge.help}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(gauge.value)}")
    for name in sorted(snapshot.histograms):
        histogram = snapshot.histograms[name]
        if histogram.help:
            lines.append(f"# HELP {name} {histogram.help}")
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for bound, bucket_count in zip(histogram.buckets, histogram.counts):
            cumulative += bucket_count
            lines.append(f'{name}_bucket{{le="{_format_value(bound)}"}} '
                         f"{cumulative}")
        cumulative += histogram.counts[-1]
        lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{name}_sum {_format_value(histogram.sum)}")
        lines.append(f"{name}_count {histogram.count}")
    return "\n".join(lines) + "\n"
