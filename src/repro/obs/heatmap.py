"""Wear heatmaps: periodic binned snapshots of per-block erase counts.

The paper's Figures 5–7 are exactly this view — the *spatial* erase
distribution at points in time — so the simulator can attach a bounded
series of :class:`WearHeatmap` snapshots to ``SimResult`` instead of only
the end-of-run distribution.  Blocks are binned into a fixed-width grid
(``ceil(num_blocks / bins)`` blocks per cell) so the memory footprint is
independent of device size; each cell records the mean erase count of
its blocks, and the snapshot keeps global min/max for colour scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class WearHeatmap:
    """One binned snapshot of per-block wear at simulated time ``ts``."""

    ts: float                   #: simulated seconds at capture
    num_blocks: int             #: blocks summarised by the grid
    bin_width: int              #: blocks per cell (last cell may be short)
    cells: tuple[float, ...]    #: mean erase count per cell
    min_count: int              #: least-worn block's erase count
    max_count: int              #: most-worn block's erase count
    total_erases: int           #: sum over all blocks

    @classmethod
    def from_counts(cls, ts: float, counts: Sequence[int],
                    bins: int = 64) -> "WearHeatmap":
        """Bin ``counts`` (per-block erase counts) into at most ``bins`` cells."""
        if bins <= 0:
            raise ValueError("bins must be positive")
        num_blocks = len(counts)
        if num_blocks == 0:
            return cls(ts, 0, 1, (), 0, 0, 0)
        width = max(1, -(-num_blocks // bins))
        cells = tuple(
            round(sum(chunk) / len(chunk), 3)
            for chunk in (counts[i:i + width]
                          for i in range(0, num_blocks, width))
        )
        return cls(ts, num_blocks, width, cells,
                   min(counts), max(counts), sum(counts))

    @classmethod
    def from_bin_sums(
        cls,
        ts: float,
        *,
        num_blocks: int,
        bin_width: int,
        bin_sums: Sequence[int],
        min_count: int,
        max_count: int,
        total_erases: int,
    ) -> "WearHeatmap":
        """Build a snapshot from pre-aggregated per-bin erase-count sums.

        The O(bins) companion of :meth:`from_counts` for callers that
        maintain the bin sums incrementally (see
        :class:`~repro.sim.metrics.WearAccumulator`).  Cell values are
        the same ``round(sum / size, 3)`` means — the sums are exact
        integers either way, so both constructors produce identical
        cells; the last cell covers the short tail
        ``num_blocks - (len(bin_sums) - 1) * bin_width``.
        """
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        if num_blocks == 0:
            return cls(ts, 0, 1, (), 0, 0, 0)
        expected = -(-num_blocks // bin_width)
        if len(bin_sums) != expected:
            raise ValueError(
                f"expected {expected} bin sums for {num_blocks} blocks at "
                f"width {bin_width}, got {len(bin_sums)}"
            )
        tail = num_blocks - (len(bin_sums) - 1) * bin_width
        cells = tuple(
            round(total / (bin_width if i < len(bin_sums) - 1 else tail), 3)
            for i, total in enumerate(bin_sums)
        )
        return cls(ts, num_blocks, bin_width, cells,
                   min_count, max_count, total_erases)

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly form used by ``SimResult.as_dict``."""
        return {
            "ts": self.ts,
            "num_blocks": self.num_blocks,
            "bin_width": self.bin_width,
            "cells": list(self.cells),
            "min_count": self.min_count,
            "max_count": self.max_count,
            "total_erases": self.total_erases,
        }
