"""Event bus: fan-out of typed telemetry events to subscribers.

The bus is deliberately tiny.  Instrumented components hold either a live
bus or ``None`` — never a "maybe disabled" object — so the disabled hot
path is a single ``if self._obs is not None:`` test with no attribute
chasing, no event construction, and no call dispatch.  Components
normalise whatever they are handed with ``bus if bus else None``, which
maps :data:`NULL_BUS` (falsy) onto the cheap ``None`` representation.

Four refinements keep the *enabled* path cheap as well (DESIGN.md §5f):

* **Kind masks** — every event kind owns one bit (:data:`M_READ`,
  :data:`M_PROGRAM`, ...), and ``bus.mask`` is the union of what the
  current subscribers want.  Emit sites guard with
  ``if obs is not None and obs.mask & M_READ:`` so an event kind no
  subscriber cares about costs one integer test — no event object, no
  call.  An empty subscriber set has mask 0, so a bus with nobody
  listening never timestamps or allocates anything.
* **Batched emission** — a bus built with a ``capacity`` buffers flat
  tuples instead of dispatching per event, *provided every subscriber is
  batch-capable* (exposes ``consume_batch``).  The hot kinds (read,
  program, erase) have dedicated ``emit_read`` / ``emit_program`` /
  ``emit_erase`` entry points that append ``(kind_id, ts, shard,
  fields...)`` without constructing an :class:`~repro.obs.events.Event`
  or a :class:`TraceRecord` at all; rare kinds ride in the same buffer
  as ``(K_OBJ, ts, shard, event)``, preserving global order.  The buffer
  drains to every subscriber when full, on :meth:`EventBus.flush`, and
  around any subscription change.  If any plain per-record subscriber is
  attached the bus falls back to the original synchronous
  :class:`TraceRecord` dispatch, so ad-hoc observers keep exact legacy
  semantics.
* **Tally mode** — when additionally *no* subscriber needs timestamps
  and every subscriber exposes ``consume_tallies`` (the metrics
  collector — the only subscriber a plain ``Telemetry()`` attaches —
  qualifies), a hot emission shrinks to appending one shard tag to a
  per-kind list through a closure rebound on each subscription change.
  Counting is order-insensitive across kinds (the collector folds hot
  kinds into disjoint counters, and its only cross-event aggregations
  are maxima), so splitting the hot kinds out of the ordered stream is
  observationally lossless; rare kinds still ride the ordered op
  buffer.
* **Pulled hot counters** — the hot kinds carry nothing the device does
  not already know: the chip's cumulative ``OpCounters`` and its wear
  state determine the read/program/erase totals and the per-block erase
  peak exactly.  The factory registers each chip as a *hot source*
  (:meth:`EventBus.register_hot_source`); the telemetry facade reacts by
  flipping its collector to pull mode, which removes :data:`HOT_KINDS`
  from the collector's interest and syncs the counters from device state
  at flush time instead.  With no other hot-kind subscriber attached the
  emit-site mask test then fails, so the per-operation cost of metrics
  collection drops to one integer test — this is what holds telemetry-on
  replay overhead inside the published budget.  Trace exporters still
  declare hot interest and stream every event.

Timestamps come from an injectable ``clock`` callable rather than wall
time: the factory wires it to the device's accumulated ``busy_time``, so
exported traces are in *simulated* seconds and runs are reproducible.
When no attached subscriber needs timestamps (the metrics collector
declares ``needs_timestamps = False``) the batched paths skip the clock
read entirely.  Multi-channel arrays hand each shard a :class:`ShardBus`
view — same subscribers, shard-specific tag and clock — mirroring how
``DeviceArray`` composes per-shard ``EraseDistribution`` snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

from repro.obs.events import Erase, Event, Program, Read

Subscriber = Callable[["TraceRecord"], None]
Clock = Callable[[], float]

#: One buffered emission: ``(kind_id, ts, shard, fields...)`` for the hot
#: kinds, ``(K_OBJ, ts, shard, event)`` for everything else.
BatchOp = Tuple[Any, ...]

# -- batch kind ids ------------------------------------------------------
#: Buffered op carries a full :class:`~repro.obs.events.Event` object.
K_OBJ = 0
#: Buffered op is a flat read: ``(K_READ, ts, shard, block, page)``.
K_READ = 1
#: Flat program: ``(K_PROGRAM, ts, shard, block, page, lba)``.
K_PROGRAM = 2
#: Flat erase: ``(K_ERASE, ts, shard, block, count)``.
K_ERASE = 3

# -- per-kind enable masks ----------------------------------------------
M_READ = 1 << 0
M_PROGRAM = 1 << 1
M_ERASE = 1 << 2
M_GC_START = 1 << 3
M_GC_END = 1 << 4
M_GC_SCAN = 1 << 5
M_SWL_INVOKE = 1 << 6
M_BET_RESET = 1 << 7
M_FAULT_INJECTED = 1 << 8
M_RECOVERY = 1 << 9
M_POWER_LOSS = 1 << 10
M_QUEUE_DEPTH = 1 << 11

#: Every kind bit set — the interest of a subscriber that declares none.
ALL_EVENTS = (1 << 12) - 1

#: The per-operation kinds a device emits on its own hot path.  A
#: subscriber that can reconstruct these from device state (see
#: ``register_hot_source``) drops them from its interest so the emit
#: sites never fire at all.
HOT_KINDS = M_READ | M_PROGRAM | M_ERASE

#: Kind tag -> mask bit, for subscribers that filter by kind name.
KIND_MASKS: dict[str, int] = {
    "read": M_READ,
    "program": M_PROGRAM,
    "erase": M_ERASE,
    "gc_start": M_GC_START,
    "gc_end": M_GC_END,
    "gc_scan": M_GC_SCAN,
    "swl_invoke": M_SWL_INVOKE,
    "bet_reset": M_BET_RESET,
    "fault_injected": M_FAULT_INJECTED,
    "recovery": M_RECOVERY,
    "power_loss": M_POWER_LOSS,
    "queue_depth": M_QUEUE_DEPTH,
}

#: Default buffered-path capacity (events held before an automatic flush).
DEFAULT_BATCH_CAPACITY = 4096

#: Hot-path emitter names that get closure-bound in tally mode.
_FAST_EMITTERS = ("emit_read", "emit_program", "emit_erase")


@dataclass(frozen=True)
class TraceRecord:
    """One event as delivered to subscribers: timestamped and shard-tagged.

    ``ts`` is simulated device time in seconds (monotonic per shard,
    since it tracks that shard's accumulated busy time).
    """

    ts: float
    shard: int
    event: Event


class EventBus:
    """Fan-out of telemetry to subscribers: synchronous, batched, or tallied.

    ``capacity=None`` (the default) keeps the original synchronous
    semantics: every emission builds a :class:`TraceRecord` and calls
    each subscriber immediately.  A positive ``capacity`` enables the
    batched paths whenever every subscriber is batch-capable (see the
    module docstring); :class:`~repro.obs.telemetry.Telemetry` builds
    its bus this way.

    Synchronous dispatch snapshots the subscriber tuple, so a subscriber
    may subscribe/unsubscribe others (or itself) mid-dispatch without
    corrupting iteration.
    """

    def __init__(self, clock: Optional[Clock] = None,
                 capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._subscribers: tuple[Subscriber, ...] = ()
        #: Returns current simulated time; ``None`` until the factory
        #: wires it to the backing device.
        self.clock: Optional[Clock] = clock
        #: Union of the subscribers' kind interests; emit sites test
        #: their kind bit against this before building anything.
        self.mask: int = 0
        self._capacity = capacity
        self._buffer: list[BatchOp] = []
        # Tally-mode per-kind accumulators: shard tags for reads and
        # programs, (shard, erase_count) pairs for erases.  Identities
        # are stable — cleared in place — because the closure emitters
        # capture the list objects.
        self._tally_reads: list[int] = []
        self._tally_programs: list[int] = []
        self._tally_erases: list[tuple[int, int]] = []
        self._buffered = False
        self._tallying = False
        self._need_ts = False
        #: Shard views handed out by :meth:`for_shard`, kept so a
        #: subscription change can rebind their fast emitters too.
        self._views: list[ShardBus] = []
        #: Per-shard devices whose cumulative hot counters can be read
        #: directly (see :meth:`register_hot_source`).
        self.hot_sources: dict[int, Any] = {}
        #: Invoked after every :meth:`register_hot_source`; the telemetry
        #: facade hooks this to flip its collector into pull mode.
        self.on_sources_changed: Optional[Callable[[], None]] = None

    def __bool__(self) -> bool:
        return True

    # -- subscription ----------------------------------------------------
    def _rewire(self) -> None:
        """Recompute mask/mode and rebind fast emitters after a change."""
        subs = self._subscribers
        mask = 0
        for subscriber in subs:
            mask |= getattr(subscriber, "interest_mask", ALL_EVENTS)
        self.mask = mask
        self._need_ts = any(
            getattr(subscriber, "needs_timestamps", True) for subscriber in subs
        )
        self._buffered = bool(subs) and self._capacity is not None and all(
            hasattr(subscriber, "consume_batch") for subscriber in subs
        )
        self._tallying = self._buffered and not self._need_ts and all(
            hasattr(subscriber, "consume_tallies") for subscriber in subs
        )
        self._bind_emitters()
        for view in self._views:
            view._bind_emitters()

    def _bind_emitters(self) -> None:
        """Shadow the ``emit_*`` methods with tally-mode closures.

        In tally mode a hot emission must be as close to a bare
        ``list.append(shard)`` as Python allows; binding closures over
        the tally lists into the instance ``__dict__`` drops every
        ``self`` attribute hop from the per-event path.  Outside tally
        mode the shadows are removed and the class methods (which handle
        every mode) resolve again.
        """
        instance = self.__dict__
        for name in _FAST_EMITTERS:
            instance.pop(name, None)
        if not self._tallying:
            return
        capacity = self._capacity
        assert capacity is not None
        flush = self.flush
        reads = self._tally_reads
        programs = self._tally_programs
        erases = self._tally_erases

        def emit_read(block: int, page: int, shard: int = 0,
                      _append: Any = reads.append, _len: Any = len) -> None:
            _append(shard)
            if _len(reads) >= capacity:
                flush()

        def emit_program(block: int, page: int, lba: int, shard: int = 0,
                         _append: Any = programs.append,
                         _len: Any = len) -> None:
            _append(shard)
            if _len(programs) >= capacity:
                flush()

        def emit_erase(block: int, count: int, shard: int = 0,
                       _append: Any = erases.append, _len: Any = len) -> None:
            _append((shard, count))
            if _len(erases) >= capacity:
                flush()

        instance["emit_read"] = emit_read
        instance["emit_program"] = emit_program
        instance["emit_erase"] = emit_erase

    def subscribe(self, subscriber: Subscriber) -> None:
        """Register ``subscriber``; duplicates are allowed and fire twice."""
        self.flush()
        self._subscribers = self._subscribers + (subscriber,)
        self._rewire()

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Remove one registration of ``subscriber``; absent is a no-op."""
        self.flush()
        subs = list(self._subscribers)
        if subscriber in subs:
            subs.remove(subscriber)
            self._subscribers = tuple(subs)
            self._rewire()

    def refresh(self) -> None:
        """Recompute dispatch mode after a subscriber changed its interest.

        Subscribers are plain objects; when one mutates its
        ``interest_mask`` (e.g. the collector entering pull mode) the bus
        cannot see it happen, so the mutator calls this.  Flushes first
        so buffered emissions are folded under the old interest.
        """
        self.flush()
        self._rewire()

    # -- hot counter sources ---------------------------------------------
    def register_hot_source(self, source: Any, shard: int = 0) -> None:
        """Register a device whose hot counters can be read from state.

        ``source`` must expose cumulative ``counters`` (with ``reads``,
        ``programs``, ``erases``) and ``max_erase_count()`` — the exact
        facts the hot event kinds carry.  A state-capable subscriber
        (the metrics collector) can then *pull* those totals at flush
        time and drop :data:`HOT_KINDS` from its interest, which silences
        the per-operation emit sites entirely.  The factory registers
        every chip it wires to a bus; re-registering a shard replaces its
        source.
        """
        self.hot_sources[shard] = source
        callback = self.on_sources_changed
        if callback is not None:
            callback()

    # -- time ------------------------------------------------------------
    def now(self) -> float:
        """Current simulated time, 0.0 before a clock is wired."""
        clock = self.clock
        return clock() if clock is not None else 0.0

    # -- emission --------------------------------------------------------
    def emit(self, event: Event, shard: int = 0) -> None:
        """Timestamp ``event`` and deliver (or buffer) it.

        With no subscribers this returns before touching the clock or
        allocating anything — the subscriber-free path is free.
        """
        if not self._subscribers:
            return
        if self._buffered:
            buffer = self._buffer
            buffer.append(
                (K_OBJ, self.now() if self._need_ts else 0.0, shard, event)
            )
            if len(buffer) >= self._capacity:  # type: ignore[operator]
                self.flush()
            return
        record = TraceRecord(self.now(), shard, event)
        for subscriber in self._subscribers:
            subscriber(record)

    def emit_read(self, block: int, page: int, shard: int = 0) -> None:
        """Hot-path read emission: no Event/TraceRecord when batched.

        In tally mode an instance-bound closure shadows this method;
        this general version covers every mode for callers that resolve
        it through the class (and the synchronous/op-buffered paths).
        """
        if self._tallying:
            reads = self._tally_reads
            reads.append(shard)
            if len(reads) >= self._capacity:  # type: ignore[operator]
                self.flush()
        elif self._buffered:
            buffer = self._buffer
            buffer.append(
                (K_READ, self.now() if self._need_ts else 0.0, shard,
                 block, page)
            )
            if len(buffer) >= self._capacity:  # type: ignore[operator]
                self.flush()
        elif self._subscribers:
            self.emit(Read(block, page), shard)

    def emit_program(self, block: int, page: int, lba: int,
                     shard: int = 0) -> None:
        """Hot-path program emission: no Event/TraceRecord when batched."""
        if self._tallying:
            programs = self._tally_programs
            programs.append(shard)
            if len(programs) >= self._capacity:  # type: ignore[operator]
                self.flush()
        elif self._buffered:
            buffer = self._buffer
            buffer.append(
                (K_PROGRAM, self.now() if self._need_ts else 0.0, shard,
                 block, page, lba)
            )
            if len(buffer) >= self._capacity:  # type: ignore[operator]
                self.flush()
        elif self._subscribers:
            self.emit(Program(block, page, lba), shard)

    def emit_erase(self, block: int, count: int, shard: int = 0) -> None:
        """Hot-path erase emission: no Event/TraceRecord when batched."""
        if self._tallying:
            erases = self._tally_erases
            erases.append((shard, count))
            if len(erases) >= self._capacity:  # type: ignore[operator]
                self.flush()
        elif self._buffered:
            buffer = self._buffer
            buffer.append(
                (K_ERASE, self.now() if self._need_ts else 0.0, shard,
                 block, count)
            )
            if len(buffer) >= self._capacity:  # type: ignore[operator]
                self.flush()
        elif self._subscribers:
            self.emit(Erase(block, count), shard)

    def flush(self) -> None:
        """Drain buffered emissions to every subscriber.

        Consumers receive the batch/tally lists for the duration of the
        call only and must not retain them.  A no-op when nothing is
        buffered (in particular, always a no-op in synchronous mode).
        """
        if self._tallying:
            reads = self._tally_reads
            programs = self._tally_programs
            erases = self._tally_erases
            ops = self._buffer
            if not (reads or programs or erases or ops):
                return
            for subscriber in self._subscribers:
                subscriber.consume_tallies(  # type: ignore[attr-defined]
                    reads, programs, erases, ops
                )
            # Clear in place: the closure emitters capture these lists.
            del reads[:]
            del programs[:]
            del erases[:]
            del ops[:]
            return
        batch = self._buffer
        if not batch:
            return
        self._buffer = []
        for subscriber in self._subscribers:
            subscriber.consume_batch(batch)  # type: ignore[attr-defined]

    @property
    def pending(self) -> int:
        """Buffered emissions not yet delivered (0 in synchronous mode)."""
        return (
            len(self._buffer) + len(self._tally_reads)
            + len(self._tally_programs) + len(self._tally_erases)
        )

    def for_shard(self, shard: int, clock: Optional[Clock] = None) -> "ShardBus":
        """A view of this bus that tags emissions with ``shard``.

        ``clock`` overrides the timestamp source for that shard (each
        array channel keeps its own busy-time tally).
        """
        return ShardBus(self, shard, clock)


class ShardBus:
    """Shard-tagged view over a parent :class:`EventBus`.

    Presents the same ``emit``/``emit_*``/``mask``/``clock`` surface as
    :class:`EventBus` so instrumented components are topology-blind.
    Registers itself with the parent so tally-mode closure emitters
    (with the shard tag baked in) stay current across subscription
    changes.
    """

    def __init__(self, parent: EventBus, shard: int,
                 clock: Optional[Clock] = None) -> None:
        self.parent = parent
        self.shard = shard
        self.clock: Optional[Clock] = clock
        #: Mirror of ``parent.mask`` as a plain attribute — emit-site
        #: guards test it per event, so a property would put a descriptor
        #: call on the hot path.  Kept in sync by :meth:`_bind_emitters`,
        #: which the parent invokes on every subscription change.
        self.mask: int = parent.mask
        parent._views.append(self)
        self._bind_emitters()

    def __bool__(self) -> bool:
        return True

    def _bind_emitters(self) -> None:
        """Mirror of :meth:`EventBus._bind_emitters` with a fixed shard."""
        self.mask = self.parent.mask
        instance = self.__dict__
        for name in _FAST_EMITTERS:
            instance.pop(name, None)
        parent = self.parent
        if not parent._tallying:
            return
        shard = self.shard
        capacity = parent._capacity
        assert capacity is not None
        flush = parent.flush
        reads = parent._tally_reads
        programs = parent._tally_programs
        erases = parent._tally_erases

        def emit_read(block: int, page: int,
                      _append: Any = reads.append, _len: Any = len) -> None:
            _append(shard)
            if _len(reads) >= capacity:
                flush()

        def emit_program(block: int, page: int, lba: int,
                         _append: Any = programs.append,
                         _len: Any = len) -> None:
            _append(shard)
            if _len(programs) >= capacity:
                flush()

        def emit_erase(block: int, count: int,
                       _append: Any = erases.append, _len: Any = len) -> None:
            _append((shard, count))
            if _len(erases) >= capacity:
                flush()

        instance["emit_read"] = emit_read
        instance["emit_program"] = emit_program
        instance["emit_erase"] = emit_erase

    def now(self) -> float:
        clock = self.clock
        if clock is not None:
            return clock()
        return self.parent.now()

    def emit(self, event: Event, shard: Optional[int] = None) -> None:
        parent = self.parent
        if not parent._subscribers:
            return
        tag = self.shard if shard is None else shard
        if parent._buffered:
            buffer = parent._buffer
            buffer.append(
                (K_OBJ, self.now() if parent._need_ts else 0.0, tag, event)
            )
            if len(buffer) >= parent._capacity:  # type: ignore[operator]
                parent.flush()
            return
        record = TraceRecord(self.now(), tag, event)
        for subscriber in parent._subscribers:
            subscriber(record)

    def emit_read(self, block: int, page: int) -> None:
        parent = self.parent
        if parent._tallying:
            reads = parent._tally_reads
            reads.append(self.shard)
            if len(reads) >= parent._capacity:  # type: ignore[operator]
                parent.flush()
        elif parent._buffered:
            buffer = parent._buffer
            buffer.append(
                (K_READ, self.now() if parent._need_ts else 0.0, self.shard,
                 block, page)
            )
            if len(buffer) >= parent._capacity:  # type: ignore[operator]
                parent.flush()
        elif parent._subscribers:
            self.emit(Read(block, page))

    def emit_program(self, block: int, page: int, lba: int) -> None:
        parent = self.parent
        if parent._tallying:
            programs = parent._tally_programs
            programs.append(self.shard)
            if len(programs) >= parent._capacity:  # type: ignore[operator]
                parent.flush()
        elif parent._buffered:
            buffer = parent._buffer
            buffer.append(
                (K_PROGRAM, self.now() if parent._need_ts else 0.0, self.shard,
                 block, page, lba)
            )
            if len(buffer) >= parent._capacity:  # type: ignore[operator]
                parent.flush()
        elif parent._subscribers:
            self.emit(Program(block, page, lba))

    def emit_erase(self, block: int, count: int) -> None:
        parent = self.parent
        if parent._tallying:
            erases = parent._tally_erases
            erases.append((self.shard, count))
            if len(erases) >= parent._capacity:  # type: ignore[operator]
                parent.flush()
        elif parent._buffered:
            buffer = parent._buffer
            buffer.append(
                (K_ERASE, self.now() if parent._need_ts else 0.0, self.shard,
                 block, count)
            )
            if len(buffer) >= parent._capacity:  # type: ignore[operator]
                parent.flush()
        elif parent._subscribers:
            self.emit(Erase(block, count))

    def flush(self) -> None:
        self.parent.flush()

    def refresh(self) -> None:
        self.parent.refresh()

    def register_hot_source(self, source: Any, shard: Optional[int] = None) -> None:
        self.parent.register_hot_source(
            source, self.shard if shard is None else shard
        )

    def for_shard(self, shard: int, clock: Optional[Clock] = None) -> "ShardBus":
        return ShardBus(self.parent, shard, clock)


class NullEventBus:
    """Falsy do-nothing bus: ``bus if bus else None`` maps it to ``None``.

    Exists so call sites can accept "a bus" unconditionally while the
    hot path stays a bare ``None`` check.  Its ``emit`` is still safe to
    call (it discards the event) for code outside any hot path.
    """

    #: No kind is ever enabled on the null bus.
    mask: int = 0

    def __bool__(self) -> bool:
        return False

    def subscribe(self, subscriber: Subscriber) -> None:
        pass

    def unsubscribe(self, subscriber: Subscriber) -> None:
        pass

    def now(self) -> float:
        return 0.0

    def emit(self, event: Event, shard: int = 0) -> None:
        pass

    def emit_read(self, block: int, page: int, shard: int = 0) -> None:
        pass

    def emit_program(self, block: int, page: int, lba: int,
                     shard: int = 0) -> None:
        pass

    def emit_erase(self, block: int, count: int, shard: int = 0) -> None:
        pass

    def flush(self) -> None:
        pass

    def refresh(self) -> None:
        pass

    def register_hot_source(self, source: Any, shard: int = 0) -> None:
        pass

    def for_shard(self, shard: int,
                  clock: Optional[Clock] = None) -> "NullEventBus":
        return self


#: Shared falsy bus instance for call sites that want a default object.
NULL_BUS = NullEventBus()

#: A live bus an instrumented component may hold after normalisation.
BusLike = EventBus | ShardBus
