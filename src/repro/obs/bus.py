"""Event bus: fan-out of typed telemetry events to subscribers.

The bus is deliberately tiny.  Instrumented components hold either a live
bus or ``None`` — never a "maybe disabled" object — so the disabled hot
path is a single ``if self._obs is not None:`` test with no attribute
chasing, no event construction, and no call dispatch.  Components
normalise whatever they are handed with ``bus if bus else None``, which
maps :data:`NULL_BUS` (falsy) onto the cheap ``None`` representation.

Timestamps come from an injectable ``clock`` callable rather than wall
time: the factory wires it to the device's accumulated ``busy_time``, so
exported traces are in *simulated* seconds and runs are reproducible.
Multi-channel arrays hand each shard a :class:`ShardBus` view — same
subscribers, shard-specific tag and clock — mirroring how
``DeviceArray`` composes per-shard ``EraseDistribution`` snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.obs.events import Event

Subscriber = Callable[["TraceRecord"], None]
Clock = Callable[[], float]


@dataclass(frozen=True)
class TraceRecord:
    """One event as delivered to subscribers: timestamped and shard-tagged.

    ``ts`` is simulated device time in seconds (monotonic per shard,
    since it tracks that shard's accumulated busy time).
    """

    ts: float
    shard: int
    event: Event


class EventBus:
    """Synchronous fan-out of :class:`TraceRecord` to subscribers.

    Dispatch snapshots the subscriber tuple, so a subscriber may
    subscribe/unsubscribe others (or itself) mid-dispatch without
    corrupting iteration.
    """

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self._subscribers: tuple[Subscriber, ...] = ()
        #: Returns current simulated time; ``None`` until the factory
        #: wires it to the backing device.
        self.clock: Optional[Clock] = clock

    def __bool__(self) -> bool:
        return True

    def subscribe(self, subscriber: Subscriber) -> None:
        """Register ``subscriber``; duplicates are allowed and fire twice."""
        self._subscribers = self._subscribers + (subscriber,)

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Remove one registration of ``subscriber``; absent is a no-op."""
        subs = list(self._subscribers)
        if subscriber in subs:
            subs.remove(subscriber)
            self._subscribers = tuple(subs)

    def now(self) -> float:
        """Current simulated time, 0.0 before a clock is wired."""
        clock = self.clock
        return clock() if clock is not None else 0.0

    def emit(self, event: Event, shard: int = 0) -> None:
        """Timestamp ``event`` and deliver it to every subscriber."""
        record = TraceRecord(self.now(), shard, event)
        for subscriber in self._subscribers:
            subscriber(record)

    def for_shard(self, shard: int, clock: Optional[Clock] = None) -> "ShardBus":
        """A view of this bus that tags emissions with ``shard``.

        ``clock`` overrides the timestamp source for that shard (each
        array channel keeps its own busy-time tally).
        """
        return ShardBus(self, shard, clock)


class ShardBus:
    """Shard-tagged view over a parent :class:`EventBus`.

    Presents the same ``emit``/``clock`` surface as :class:`EventBus`
    so instrumented components are topology-blind.
    """

    def __init__(self, parent: EventBus, shard: int,
                 clock: Optional[Clock] = None) -> None:
        self.parent = parent
        self.shard = shard
        self.clock: Optional[Clock] = clock

    def __bool__(self) -> bool:
        return True

    def now(self) -> float:
        clock = self.clock
        if clock is not None:
            return clock()
        return self.parent.now()

    def emit(self, event: Event, shard: Optional[int] = None) -> None:
        record = TraceRecord(self.now(), self.shard if shard is None else shard,
                             event)
        for subscriber in self.parent._subscribers:
            subscriber(record)

    def for_shard(self, shard: int, clock: Optional[Clock] = None) -> "ShardBus":
        return ShardBus(self.parent, shard, clock)


class NullEventBus:
    """Falsy do-nothing bus: ``bus if bus else None`` maps it to ``None``.

    Exists so call sites can accept "a bus" unconditionally while the
    hot path stays a bare ``None`` check.  Its ``emit`` is still safe to
    call (it discards the event) for code outside any hot path.
    """

    def __bool__(self) -> bool:
        return False

    def subscribe(self, subscriber: Subscriber) -> None:
        pass

    def unsubscribe(self, subscriber: Subscriber) -> None:
        pass

    def now(self) -> float:
        return 0.0

    def emit(self, event: Event, shard: int = 0) -> None:
        pass

    def for_shard(self, shard: int,
                  clock: Optional[Clock] = None) -> "NullEventBus":
        return self


#: Shared falsy bus instance for call sites that want a default object.
NULL_BUS = NullEventBus()

#: A live bus an instrumented component may hold after normalisation.
BusLike = EventBus | ShardBus
