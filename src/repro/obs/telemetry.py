"""Telemetry facade: one object bundling bus, collector, and exporters.

The CLI and experiment runners deal with a single :class:`Telemetry`
handle instead of wiring bus/collector/exporters by hand:

>>> telemetry = Telemetry.to_directory("out/")   # doctest: +SKIP
>>> result = run_fixed_horizon(spec, trace, horizon,
...                            telemetry=telemetry)   # doctest: +SKIP
>>> telemetry.finish()                                # doctest: +SKIP

``finish()`` flushes every exporter: it closes the JSONL stream, writes
the Chrome trace document, and renders the Prometheus snapshot.  The
heatmap preferences ride along so one object carries the whole
observability configuration of a run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.obs.bus import DEFAULT_BATCH_CAPACITY, EventBus
from repro.obs.collect import MetricsCollector
from repro.obs.export import (
    ChromeTraceExporter,
    JsonlTraceExporter,
    LogExporter,
)
from repro.obs.metrics import MetricsSnapshot, render_prometheus

#: Default heatmap grid width (cells) and snapshot cap per run.
DEFAULT_HEATMAP_BINS = 64
DEFAULT_MAX_HEATMAPS = 64


class Telemetry:
    """Owns an :class:`EventBus` plus the standard subscriber set.

    A :class:`~repro.obs.collect.MetricsCollector` is always attached;
    file exporters are attached for whichever paths are given.  Pass
    ``log_events=True`` to additionally route events onto the
    ``repro.*`` logging channels.

    The facade's bus is built with a batch capacity: every standard
    subscriber is batch-capable, so hot events append flat tuples to a
    buffer instead of allocating per-event records (DESIGN.md §5f).
    :meth:`flush` drains the buffer; :meth:`snapshot` and :meth:`finish`
    flush first, so observed metrics are always complete.  The experiment
    runners also flush after each run, so collector state read directly
    (``telemetry.collector``) is complete too.
    """

    def __init__(
        self,
        *,
        jsonl_path: Optional[Union[str, Path]] = None,
        chrome_path: Optional[Union[str, Path]] = None,
        prometheus_path: Optional[Union[str, Path]] = None,
        run_name: str = "repro",
        log_events: bool = False,
        heatmap_bins: int = DEFAULT_HEATMAP_BINS,
        heatmap_interval: Optional[float] = None,
    ) -> None:
        self.bus = EventBus(capacity=DEFAULT_BATCH_CAPACITY)
        self.collector = MetricsCollector()
        self.bus.subscribe(self.collector)
        # When the factory registers the chips it wires (hot counter
        # sources), flip the collector to pull mode: hot totals then come
        # from device state at flush time and the per-operation emit
        # sites go quiet (see repro.obs.bus, "Pulled hot counters").
        self.bus.on_sources_changed = self._on_sources_changed
        self.heatmap_bins = heatmap_bins
        self.heatmap_interval = heatmap_interval
        self.jsonl: Optional[JsonlTraceExporter] = None
        self._jsonl_path: Optional[Path] = None
        if jsonl_path is not None:
            self._jsonl_path = Path(jsonl_path)
            self.jsonl = JsonlTraceExporter(self._jsonl_path)
            self.bus.subscribe(self.jsonl)
        self.chrome: Optional[ChromeTraceExporter] = None
        self._chrome_path: Optional[Path] = None
        if chrome_path is not None:
            self._chrome_path = Path(chrome_path)
            self.chrome = ChromeTraceExporter(run_name)
            self.bus.subscribe(self.chrome)
        self._prometheus_path = (Path(prometheus_path)
                                 if prometheus_path is not None else None)
        if log_events:
            self.bus.subscribe(LogExporter())

    @classmethod
    def to_directory(cls, directory: Union[str, Path],
                     **kwargs: object) -> "Telemetry":
        """Telemetry writing the standard file set into ``directory``.

        Creates the directory and produces ``trace.jsonl``,
        ``trace.chrome.json``, and ``metrics.prom`` on ``finish()``.
        """
        base = Path(directory)
        base.mkdir(parents=True, exist_ok=True)
        return cls(
            jsonl_path=base / "trace.jsonl",
            chrome_path=base / "trace.chrome.json",
            prometheus_path=base / "metrics.prom",
            **kwargs,  # type: ignore[arg-type]
        )

    def _on_sources_changed(self) -> None:
        enabled = bool(self.bus.hot_sources)
        if enabled != self.collector.pulls_hot_counters:
            self.collector.set_pull_mode(enabled)
            self.bus.refresh()

    def flush(self) -> None:
        """Drain any buffered events; sync pulled counters from devices."""
        self.bus.flush()
        if self.collector.pulls_hot_counters:
            self.collector.pull_hot_counters(self.bus.hot_sources)

    def snapshot(self) -> MetricsSnapshot:
        """Global metrics snapshot (exact merge across shards)."""
        self.flush()
        return self.collector.snapshot()

    def finish(self) -> dict[str, Path]:
        """Flush every exporter; returns the files written by name."""
        self.flush()
        written: dict[str, Path] = {}
        if self.jsonl is not None and self._jsonl_path is not None:
            self.jsonl.close()
            written["jsonl"] = self._jsonl_path
        if self.chrome is not None and self._chrome_path is not None:
            self.chrome.dump(self._chrome_path)
            written["chrome"] = self._chrome_path
        if self._prometheus_path is not None:
            self._prometheus_path.write_text(
                render_prometheus(self.snapshot()), encoding="utf-8")
            written["prometheus"] = self._prometheus_path
        return written
