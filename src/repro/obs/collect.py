"""Metrics collector: folds the event stream into per-shard registries.

The collector is an ordinary bus subscriber.  It keeps **one registry per
shard** and produces the global view by merging their snapshots — the
same composition discipline as ``DeviceArray`` merging per-shard
``EraseDistribution``s — so array telemetry is exact by construction
rather than approximated by sampling the merged device.

Metric naming follows Prometheus conventions (``*_total`` counters,
base-unit gauge/histogram names) under a single ``repro_`` prefix.
"""

from __future__ import annotations

from typing import Callable

from repro.obs.bus import TraceRecord
from repro.obs.events import (
    BetReset,
    Erase,
    Event,
    FaultInjected,
    GcEnd,
    GcScan,
    GcStart,
    PowerLoss,
    Program,
    Read,
    Recovery,
    SwlInvoke,
)
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot

#: SWL trigger latency buckets, in block erases between trigger and run.
LATENCY_BUCKETS: tuple[float, ...] = (0.0, 1.0, 2.0, 5.0, 10.0, 25.0, 100.0)


class MetricsCollector:
    """Subscribe to a bus and aggregate events into mergeable metrics."""

    def __init__(self) -> None:
        self._registries: dict[int, MetricsRegistry] = {}
        self._handlers: dict[type[Event], Callable[[MetricsRegistry, Event],
                                                   None]] = {
            Read: self._on_read,
            Program: self._on_program,
            Erase: self._on_erase,
            GcStart: self._on_gc_start,
            GcEnd: self._on_gc_end,
            GcScan: self._on_gc_scan,
            SwlInvoke: self._on_swl_invoke,
            BetReset: self._on_bet_reset,
            FaultInjected: self._on_fault,
            Recovery: self._on_recovery,
            PowerLoss: self._on_power_loss,
        }

    @property
    def shards(self) -> tuple[int, ...]:
        """Shards seen so far, ascending."""
        return tuple(sorted(self._registries))

    def registry(self, shard: int) -> MetricsRegistry:
        """The (created-on-demand) registry for ``shard``."""
        registry = self._registries.get(shard)
        if registry is None:
            registry = self._registries[shard] = MetricsRegistry()
        return registry

    def __call__(self, record: TraceRecord) -> None:
        handler = self._handlers.get(type(record.event))
        if handler is not None:
            handler(self.registry(record.shard), record.event)

    # -- per-event folds ---------------------------------------------------

    def _on_read(self, registry: MetricsRegistry, event: Event) -> None:
        registry.counter("repro_flash_reads_total",
                         "Page reads completed").inc()

    def _on_program(self, registry: MetricsRegistry, event: Event) -> None:
        registry.counter("repro_flash_programs_total",
                         "Page programs completed").inc()

    def _on_erase(self, registry: MetricsRegistry, event: Event) -> None:
        assert isinstance(event, Erase)
        registry.counter("repro_flash_erases_total",
                         "Block erases completed").inc()
        peak = registry.gauge("repro_flash_max_block_erases",
                              "Highest per-block erase count observed",
                              agg="max")
        if event.count > peak.value:
            peak.set(event.count)

    def _on_gc_start(self, registry: MetricsRegistry, event: Event) -> None:
        assert isinstance(event, GcStart)
        registry.counter("repro_gc_passes_total",
                         "Garbage-collection passes started").inc()
        reason = event.reason.replace("-", "_")
        registry.counter(f"repro_gc_passes_{reason}_total",
                         f"GC passes attributed to {event.reason}").inc()

    def _on_gc_end(self, registry: MetricsRegistry, event: Event) -> None:
        assert isinstance(event, GcEnd)
        copies = registry.counter("repro_gc_copied_pages_total",
                                  "Live pages copied by GC")
        erases = registry.counter("repro_gc_erases_total",
                                  "Block erases performed by GC")
        copies.inc(event.copies)
        erases.inc(event.erases)
        if erases.value:
            registry.gauge(
                "repro_gc_copy_amplification",
                "Cumulative live-page copies per GC erase", agg="max",
            ).set(round(copies.value / erases.value, 6))

    def _on_gc_scan(self, registry: MetricsRegistry, event: Event) -> None:
        assert isinstance(event, GcScan)
        registry.counter("repro_gc_scans_total",
                         "Victim-selection scans").inc()
        registry.counter("repro_gc_scan_probes_total",
                         "Candidates examined during victim scans"
                         ).inc(event.probes)

    def _on_swl_invoke(self, registry: MetricsRegistry, event: Event) -> None:
        assert isinstance(event, SwlInvoke)
        registry.counter("repro_swl_invocations_total",
                         "SWL-Procedure runs that moved data").inc()
        registry.gauge("repro_swl_unevenness",
                       "ecnt/fcnt at SWL-Procedure entry",
                       agg="max").set(round(event.unevenness, 6))
        registry.histogram(
            "repro_swl_trigger_latency_erases",
            "Erases between SWL trigger and procedure run",
            buckets=LATENCY_BUCKETS,
        ).observe(event.latency_erases)

    def _on_bet_reset(self, registry: MetricsRegistry, event: Event) -> None:
        registry.counter("repro_bet_resets_total",
                         "BET resetting intervals completed").inc()

    def _on_fault(self, registry: MetricsRegistry, event: Event) -> None:
        assert isinstance(event, FaultInjected)
        registry.counter("repro_faults_injected_total",
                         "Faults delivered by the injector").inc()
        registry.counter(f"repro_faults_{event.fault}_total",
                         f"Injected {event.fault} faults").inc()

    def _on_recovery(self, registry: MetricsRegistry, event: Event) -> None:
        assert isinstance(event, Recovery)
        registry.counter("repro_recovery_actions_total",
                         "Driver fault-recovery actions").inc()
        registry.counter(f"repro_recovery_{event.action}_total",
                         f"Recovery actions of kind {event.action}").inc()

    def _on_power_loss(self, registry: MetricsRegistry, event: Event) -> None:
        registry.counter("repro_power_loss_total",
                         "Scheduled power losses delivered").inc()

    # -- snapshots ---------------------------------------------------------

    def shard_snapshot(self, shard: int) -> MetricsSnapshot:
        """Snapshot of one shard's registry."""
        return self.registry(shard).snapshot()

    def snapshot(self) -> MetricsSnapshot:
        """Global snapshot: exact merge of every shard's snapshot."""
        merged = MetricsSnapshot({}, {}, {})
        for shard in self.shards:
            merged = merged.merge(self._registries[shard].snapshot())
        return merged
