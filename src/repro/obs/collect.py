"""Metrics collector: folds the event stream into per-shard registries.

The collector is an ordinary bus subscriber.  It keeps **one registry per
shard** and produces the global view by merging their snapshots — the
same composition discipline as ``DeviceArray`` merging per-shard
``EraseDistribution``s — so array telemetry is exact by construction
rather than approximated by sampling the merged device.

Metric naming follows Prometheus conventions (``*_total`` counters,
base-unit gauge/histogram names) under a single ``repro_`` prefix.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Mapping, Protocol

from repro.obs.bus import (
    ALL_EVENTS,
    HOT_KINDS,
    K_ERASE,
    K_PROGRAM,
    K_READ,
    BatchOp,
    TraceRecord,
)
from repro.obs.events import (
    BetReset,
    Erase,
    Event,
    FaultInjected,
    GcEnd,
    GcScan,
    GcStart,
    PowerLoss,
    Program,
    QueueDepth,
    Read,
    Recovery,
    SwlInvoke,
)
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot

#: Event types whose facts are device-state-derived in pull mode.
_HOT_EVENT_TYPES = (Read, Program, Erase)

#: SWL trigger latency buckets, in block erases between trigger and run.
LATENCY_BUCKETS: tuple[float, ...] = (0.0, 1.0, 2.0, 5.0, 10.0, 25.0, 100.0)


class _OpCountersLike(Protocol):
    """Cumulative per-device operation totals (``NandFlash.counters``)."""

    reads: int
    programs: int
    erases: int


class HotCounterSource(Protocol):
    """A device whose hot-kind facts are readable from state.

    ``NandFlash`` satisfies this structurally; anything exposing the
    same two members can back a pulled shard.
    """

    counters: _OpCountersLike

    def max_erase_count(self) -> int: ...


class MetricsCollector:
    """Subscribe to a bus and aggregate events into mergeable metrics.

    Batch-capable: on a buffered bus the collector receives whole batches
    via :meth:`consume_batch` and folds the hot kinds (read, program,
    erase) with per-batch tallies — one counter ``inc(n)`` per shard per
    kind instead of one dict dispatch + method call per event.  Counter
    increments are integer sums, and the erase-peak gauge takes the
    per-batch maximum before a single conditional ``set``, so the folded
    state is identical to per-event delivery (property-tested in
    ``tests/test_obs.py``).

    The collector never reads timestamps, which it advertises with
    ``needs_timestamps = False`` so a bus whose only subscriber is a
    collector skips the clock call entirely.
    """

    #: Batch consumers ignore record timestamps (lets the bus skip its clock).
    needs_timestamps = False

    def __init__(self) -> None:
        #: The collector folds every event kind — until pull mode drops
        #: the hot kinds (see :meth:`set_pull_mode`).
        self.interest_mask = ALL_EVENTS
        self._pull_hot = False
        #: Last-seen cumulative device totals per shard, so each pull
        #: applies only the delta since the previous one.
        self._pull_baselines: dict[int, tuple[int, int, int]] = {}
        self._registries: dict[int, MetricsRegistry] = {}
        self._handlers: dict[type[Event], Callable[[MetricsRegistry, Event],
                                                   None]] = {
            Read: self._on_read,
            Program: self._on_program,
            Erase: self._on_erase,
            GcStart: self._on_gc_start,
            GcEnd: self._on_gc_end,
            GcScan: self._on_gc_scan,
            SwlInvoke: self._on_swl_invoke,
            BetReset: self._on_bet_reset,
            FaultInjected: self._on_fault,
            Recovery: self._on_recovery,
            PowerLoss: self._on_power_loss,
            QueueDepth: self._on_queue_depth,
        }

    @property
    def shards(self) -> tuple[int, ...]:
        """Shards seen so far, ascending."""
        return tuple(sorted(self._registries))

    def registry(self, shard: int) -> MetricsRegistry:
        """The (created-on-demand) registry for ``shard``."""
        registry = self._registries.get(shard)
        if registry is None:
            registry = self._registries[shard] = MetricsRegistry()
        return registry

    def __call__(self, record: TraceRecord) -> None:
        event = record.event
        if self._pull_hot and type(event) in _HOT_EVENT_TYPES:
            return
        handler = self._handlers.get(type(event))
        if handler is not None:
            handler(self.registry(record.shard), event)

    # -- pulled hot counters -----------------------------------------------

    @property
    def pulls_hot_counters(self) -> bool:
        """True when hot-kind totals come from device state, not events."""
        return self._pull_hot

    def set_pull_mode(self, enabled: bool) -> None:
        """Choose where hot-kind totals come from.

        Enabled, the collector drops :data:`~repro.obs.bus.HOT_KINDS`
        from its interest (the caller refreshes the bus so emit sites see
        the narrower mask) and ignores any hot events another subscriber
        still causes to flow — their totals arrive via
        :meth:`pull_hot_counters` instead, exactly once.
        """
        self._pull_hot = enabled
        self.interest_mask = ALL_EVENTS & ~HOT_KINDS if enabled else ALL_EVENTS

    def pull_hot_counters(
        self, sources: Mapping[int, HotCounterSource]
    ) -> None:
        """Sync hot-kind metrics from cumulative device counters.

        Applies the delta since the previous pull, so repeated pulls
        (periodic snapshots plus the final flush) never double-count.  A
        device whose counters moved backwards (a checkpoint restore
        rewound it) re-baselines without applying a negative delta: the
        rewound operations never happened in the restored timeline.
        """
        for shard, source in sources.items():
            counters = source.counters
            reads, programs, erases = (
                counters.reads, counters.programs, counters.erases,
            )
            base = self._pull_baselines.get(shard, (0, 0, 0))
            self._pull_baselines[shard] = (reads, programs, erases)
            registry = self.registry(shard)
            delta = reads - base[0]
            if delta > 0:
                registry.counter("repro_flash_reads_total",
                                 "Page reads completed").inc(delta)
            delta = programs - base[1]
            if delta > 0:
                registry.counter("repro_flash_programs_total",
                                 "Page programs completed").inc(delta)
            delta = erases - base[2]
            if delta > 0:
                registry.counter("repro_flash_erases_total",
                                 "Block erases completed").inc(delta)
            peak = registry.gauge(
                "repro_flash_max_block_erases",
                "Highest per-block erase count observed", agg="max",
            )
            maximum = source.max_erase_count()
            if maximum > peak.value:
                peak.set(maximum)

    # -- per-event folds ---------------------------------------------------

    def _on_read(self, registry: MetricsRegistry, event: Event) -> None:
        registry.counter("repro_flash_reads_total",
                         "Page reads completed").inc()

    def _on_program(self, registry: MetricsRegistry, event: Event) -> None:
        registry.counter("repro_flash_programs_total",
                         "Page programs completed").inc()

    def _on_erase(self, registry: MetricsRegistry, event: Event) -> None:
        assert isinstance(event, Erase)
        registry.counter("repro_flash_erases_total",
                         "Block erases completed").inc()
        peak = registry.gauge("repro_flash_max_block_erases",
                              "Highest per-block erase count observed",
                              agg="max")
        if event.count > peak.value:
            peak.set(event.count)

    def _on_gc_start(self, registry: MetricsRegistry, event: Event) -> None:
        assert isinstance(event, GcStart)
        registry.counter("repro_gc_passes_total",
                         "Garbage-collection passes started").inc()
        reason = event.reason.replace("-", "_")
        registry.counter(f"repro_gc_passes_{reason}_total",
                         f"GC passes attributed to {event.reason}").inc()

    def _on_gc_end(self, registry: MetricsRegistry, event: Event) -> None:
        assert isinstance(event, GcEnd)
        copies = registry.counter("repro_gc_copied_pages_total",
                                  "Live pages copied by GC")
        erases = registry.counter("repro_gc_erases_total",
                                  "Block erases performed by GC")
        copies.inc(event.copies)
        erases.inc(event.erases)
        if erases.value:
            registry.gauge(
                "repro_gc_copy_amplification",
                "Cumulative live-page copies per GC erase", agg="max",
            ).set(round(copies.value / erases.value, 6))

    def _on_gc_scan(self, registry: MetricsRegistry, event: Event) -> None:
        assert isinstance(event, GcScan)
        registry.counter("repro_gc_scans_total",
                         "Victim-selection scans").inc()
        registry.counter("repro_gc_scan_probes_total",
                         "Candidates examined during victim scans"
                         ).inc(event.probes)

    def _on_swl_invoke(self, registry: MetricsRegistry, event: Event) -> None:
        assert isinstance(event, SwlInvoke)
        registry.counter("repro_swl_invocations_total",
                         "SWL-Procedure runs that moved data").inc()
        registry.gauge("repro_swl_unevenness",
                       "ecnt/fcnt at SWL-Procedure entry",
                       agg="max").set(round(event.unevenness, 6))
        registry.histogram(
            "repro_swl_trigger_latency_erases",
            "Erases between SWL trigger and procedure run",
            buckets=LATENCY_BUCKETS,
        ).observe(event.latency_erases)

    def _on_bet_reset(self, registry: MetricsRegistry, event: Event) -> None:
        registry.counter("repro_bet_resets_total",
                         "BET resetting intervals completed").inc()

    def _on_fault(self, registry: MetricsRegistry, event: Event) -> None:
        assert isinstance(event, FaultInjected)
        registry.counter("repro_faults_injected_total",
                         "Faults delivered by the injector").inc()
        registry.counter(f"repro_faults_{event.fault}_total",
                         f"Injected {event.fault} faults").inc()

    def _on_recovery(self, registry: MetricsRegistry, event: Event) -> None:
        assert isinstance(event, Recovery)
        registry.counter("repro_recovery_actions_total",
                         "Driver fault-recovery actions").inc()
        registry.counter(f"repro_recovery_{event.action}_total",
                         f"Recovery actions of kind {event.action}").inc()

    def _on_power_loss(self, registry: MetricsRegistry, event: Event) -> None:
        registry.counter("repro_power_loss_total",
                         "Scheduled power losses delivered").inc()

    def _on_queue_depth(self, registry: MetricsRegistry, event: Event) -> None:
        assert isinstance(event, QueueDepth)
        # Peak occupancy per channel; the global merge takes the worst
        # channel, which is the array's backpressure ceiling.
        peak = registry.gauge("repro_service_queue_depth",
                              "Peak channel queue occupancy sampled",
                              agg="max")
        if event.depth > peak.value:
            peak.set(event.depth)
        # Cumulative per-channel stall count rides as a summed gauge: the
        # event carries the running total, so `set` (not `inc`) keeps
        # repeated samples from double-counting.
        registry.gauge("repro_service_queue_stalls",
                       "Arrivals that waited on queue backpressure",
                       agg="sum").set(event.stalls)

    # -- batched fold ------------------------------------------------------

    def consume_batch(self, batch: list[BatchOp]) -> None:
        """Fold a buffered batch; equivalent to per-event ``__call__``.

        Hot kinds are tallied per shard in batch-local dicts and applied
        once; cold kinds (``K_OBJ`` ops) reuse the per-event handlers in
        stream order.  Ordering between hot tallies and cold events does
        not matter for the folded state: they touch disjoint metrics.
        """
        reads: dict[int, int] = {}
        programs: dict[int, int] = {}
        erases: dict[int, int] = {}
        erase_peak: dict[int, int] = {}
        handlers = self._handlers
        pull = self._pull_hot
        for op in batch:
            kind = op[0]
            if kind == K_READ:
                if pull:
                    continue
                shard = op[2]
                reads[shard] = reads.get(shard, 0) + 1
            elif kind == K_PROGRAM:
                if pull:
                    continue
                shard = op[2]
                programs[shard] = programs.get(shard, 0) + 1
            elif kind == K_ERASE:
                if pull:
                    continue
                shard = op[2]
                erases[shard] = erases.get(shard, 0) + 1
                count = op[4]
                if count > erase_peak.get(shard, -1):
                    erase_peak[shard] = count
            else:
                event = op[3]
                if pull and type(event) in _HOT_EVENT_TYPES:
                    continue
                handler = handlers.get(type(event))
                if handler is not None:
                    handler(self.registry(op[2]), event)
        for shard, n in reads.items():
            self.registry(shard).counter(
                "repro_flash_reads_total", "Page reads completed"
            ).inc(n)
        for shard, n in programs.items():
            self.registry(shard).counter(
                "repro_flash_programs_total", "Page programs completed"
            ).inc(n)
        for shard, n in erases.items():
            registry = self.registry(shard)
            registry.counter(
                "repro_flash_erases_total", "Block erases completed"
            ).inc(n)
            peak = registry.gauge(
                "repro_flash_max_block_erases",
                "Highest per-block erase count observed", agg="max",
            )
            if erase_peak[shard] > peak.value:
                peak.set(erase_peak[shard])

    def consume_tallies(
        self,
        reads: list[int],
        programs: list[int],
        erases: list[tuple[int, int]],
        ops: list[BatchOp],
    ) -> None:
        """Fold tally-mode delivery; equivalent to per-event ``__call__``.

        ``reads``/``programs`` are shard tags (one per event), ``erases``
        are ``(shard, erase_count)`` pairs, and ``ops`` holds the cold
        ``K_OBJ`` stream in order.  The fold is order-insensitive across
        the four lists — counters sum, the erase-peak gauge maxes — so
        the per-kind split loses nothing (property-tested in
        ``tests/test_obs.py``).
        """
        if self._pull_hot:
            # Hot totals come from device state; only the cold stream
            # (which is empty of hot kinds anyway in pull mode) folds.
            if ops:
                self.consume_batch(ops)
            return
        for shard, n in Counter(reads).items():
            self.registry(shard).counter(
                "repro_flash_reads_total", "Page reads completed"
            ).inc(n)
        for shard, n in Counter(programs).items():
            self.registry(shard).counter(
                "repro_flash_programs_total", "Page programs completed"
            ).inc(n)
        if erases:
            erase_peak: dict[int, int] = {}
            for shard, count in erases:
                if count > erase_peak.get(shard, -1):
                    erase_peak[shard] = count
            for shard, n in Counter(shard for shard, _ in erases).items():
                registry = self.registry(shard)
                registry.counter(
                    "repro_flash_erases_total", "Block erases completed"
                ).inc(n)
                peak = registry.gauge(
                    "repro_flash_max_block_erases",
                    "Highest per-block erase count observed", agg="max",
                )
                if erase_peak[shard] > peak.value:
                    peak.set(erase_peak[shard])
        if ops:
            self.consume_batch(ops)

    # -- snapshots ---------------------------------------------------------

    def shard_snapshot(self, shard: int) -> MetricsSnapshot:
        """Snapshot of one shard's registry."""
        return self.registry(shard).snapshot()

    def snapshot(self) -> MetricsSnapshot:
        """Global snapshot: exact merge of every shard's snapshot."""
        merged = MetricsSnapshot({}, {}, {})
        for shard in self.shards:
            merged = merged.merge(self._registries[shard].snapshot())
        return merged
