"""Observability layer: typed events, metrics, heatmaps, exporters.

``repro.obs`` is the stack's telemetry subsystem.  Components emit typed
events (:mod:`repro.obs.events`) on an :class:`~repro.obs.bus.EventBus`;
a :class:`~repro.obs.collect.MetricsCollector` folds them into
counters/gauges/histograms whose snapshots merge exactly across array
shards; exporters serialise the stream as JSONL, Chrome ``trace_event``
JSON (Perfetto-loadable, simulated-time clock), or Prometheus text; and
the simulator attaches periodic :class:`~repro.obs.heatmap.WearHeatmap`
snapshots to its results.

Disabled is the default and costs nothing measurable: components hold
``None`` instead of a bus and skip event construction entirely, runs
stay bit-identical, and no RNG stream is ever consulted.  See
DESIGN.md §5c for the taxonomy, formats, and overhead contract.
"""

from repro.obs.bus import (
    BusLike,
    EventBus,
    NULL_BUS,
    NullEventBus,
    ShardBus,
    TraceRecord,
)
from repro.obs.collect import MetricsCollector
from repro.obs.events import (
    EVENT_TYPES,
    BetReset,
    Erase,
    Event,
    FaultInjected,
    GcEnd,
    GcScan,
    GcStart,
    PowerLoss,
    Program,
    Read,
    Recovery,
    SwlInvoke,
)
from repro.obs.export import (
    ChromeTraceExporter,
    JsonlTraceExporter,
    LogExporter,
)
from repro.obs.heatmap import WearHeatmap
from repro.obs.metrics import (
    Counter,
    CounterSample,
    Gauge,
    GaugeSample,
    Histogram,
    HistogramSample,
    MetricsRegistry,
    MetricsSnapshot,
    render_prometheus,
)
from repro.obs.telemetry import Telemetry

__all__ = [
    "BetReset",
    "BusLike",
    "ChromeTraceExporter",
    "Counter",
    "CounterSample",
    "Erase",
    "Event",
    "EventBus",
    "EVENT_TYPES",
    "FaultInjected",
    "Gauge",
    "GaugeSample",
    "GcEnd",
    "GcScan",
    "GcStart",
    "Histogram",
    "HistogramSample",
    "JsonlTraceExporter",
    "LogExporter",
    "MetricsCollector",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_BUS",
    "NullEventBus",
    "PowerLoss",
    "Program",
    "Read",
    "Recovery",
    "render_prometheus",
    "ShardBus",
    "SwlInvoke",
    "Telemetry",
    "TraceRecord",
    "WearHeatmap",
]
