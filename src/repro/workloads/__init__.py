"""Composable workload generators and the multi-tenant multiplexer.

Workload *shapes* (:mod:`repro.workloads.generators`) produce endless
seeded request streams — hotspot, sequential, uniform, mixed
read/write, and the phase-shifting migrating hot set.  The multiplexer
(:mod:`repro.workloads.tenants`) interleaves N tenant shapes onto
regions of one device, and the runners (:mod:`repro.workloads.runner`)
drive them through the closed-loop Simulator or the open-loop
ServiceEngine with per-tenant wear and latency attribution.

All randomness lives on dedicated ``"workload:*"`` RNG streams; replay
randomness is untouched (see DESIGN.md §5h).
"""

from repro.workloads.generators import (
    DEFAULT_PHASE_PERIOD,
    DEFAULT_THETA,
    SHAPE_NAMES,
    HotspotWorkload,
    MixedWorkload,
    PhaseShiftingWorkload,
    SequentialStreamWorkload,
    ShapeParams,
    UniformAccessWorkload,
    WorkloadShape,
    make_shape,
)
from repro.workloads.runner import (
    MultiTenantReplayResult,
    MultiTenantServiceResult,
    run_multi_tenant_replay,
    run_multi_tenant_service,
)
from repro.workloads.tenants import (
    TENANT_POLICIES,
    MultiTenantWorkload,
    TenantSpec,
)

__all__ = [
    "DEFAULT_PHASE_PERIOD",
    "DEFAULT_THETA",
    "HotspotWorkload",
    "MixedWorkload",
    "MultiTenantReplayResult",
    "MultiTenantServiceResult",
    "MultiTenantWorkload",
    "PhaseShiftingWorkload",
    "SHAPE_NAMES",
    "SequentialStreamWorkload",
    "ShapeParams",
    "TENANT_POLICIES",
    "TenantSpec",
    "UniformAccessWorkload",
    "WorkloadShape",
    "make_shape",
    "run_multi_tenant_replay",
    "run_multi_tenant_service",
]
