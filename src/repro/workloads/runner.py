"""Drive multi-tenant workloads with per-tenant resource attribution.

Two runners, one per execution mode:

* :func:`run_multi_tenant_replay` — the closed-loop
  :class:`~repro.sim.engine.Simulator` path: every request completes
  instantly at its timestamp; the interesting outputs are wear and
  erase attribution.
* :func:`run_multi_tenant_service` — the open-loop
  :class:`~repro.service.engine.ServiceEngine` path: requests queue per
  channel; the runner additionally attributes end-to-end latency
  percentiles per tenant via the engine's ``on_served`` hook.

Attribution works by diffing the backend's cumulative counters
(``total_erases``, ``busy_time`` and the core's page counters) around
each request application and charging the delta to the tenant that
issued the request.  GC and SWL work triggered by a request is therefore
billed to its tenant — and since every request belongs to exactly one
tenant and the runs start from a fresh backend (no warmup), the
**conservation invariant** is exact: summing any
:class:`~repro.sim.metrics.TenantUsage` field over tenants reproduces
the device total.  Tests and the CI scale gate assert this equality with
``==``, not a tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.obs.telemetry import DEFAULT_HEATMAP_BINS
from repro.service.engine import ServiceEngine
from repro.service.latency import LatencyHistogram, LatencySummary
from repro.sim.engine import Simulator
from repro.sim.metrics import TenantUsage
from repro.workloads.tenants import MultiTenantWorkload

if TYPE_CHECKING:
    from repro.obs.telemetry import Telemetry
    from repro.service.results import ServiceResult
    from repro.sim.engine import SimResult
    from repro.sim.experiment import ExperimentSpec
    from repro.traces.model import Request


@dataclass(frozen=True)
class MultiTenantReplayResult:
    """A closed-loop replay plus its per-tenant attribution rows."""

    replay: "SimResult"
    tenants: list[TenantUsage]

    def conservation_errors(self) -> list[str]:
        """Violations of the per-tenant == device-total invariant.

        Empty on every correct run; the list form keeps gate output
        readable when something does break.
        """
        return _conservation_errors(self.tenants, self.replay)


@dataclass(frozen=True)
class MultiTenantServiceResult:
    """An open-loop service run plus per-tenant usage and latency."""

    service: "ServiceResult"
    tenants: list[TenantUsage]
    tenant_latencies: list[LatencySummary]

    def conservation_errors(self) -> list[str]:
        errors = _conservation_errors(self.tenants, self.service.replay)
        total = TenantUsage.totals(self.tenants)
        served = self.service.latency.count
        if total.requests != served:
            errors.append(
                f"tenant requests {total.requests} != served {served}"
            )
        return errors


def _conservation_errors(
    tenants: list[TenantUsage], replay: "SimResult"
) -> list[str]:
    total = TenantUsage.totals(tenants)
    errors = []
    if total.erases != replay.total_erases:
        errors.append(
            f"tenant erases {total.erases} != device {replay.total_erases}"
        )
    if total.pages_written != replay.pages_written:
        errors.append(
            f"tenant pages_written {total.pages_written} "
            f"!= device {replay.pages_written}"
        )
    if abs(total.busy_time - replay.device_busy_time) > 1e-6:
        errors.append(
            f"tenant busy_time {total.busy_time} "
            f"!= device {replay.device_busy_time}"
        )
    return errors


def run_multi_tenant_replay(
    spec: "ExperimentSpec",
    workload: MultiTenantWorkload,
    *,
    max_requests: int | None = None,
    horizon: float | None = None,
    telemetry: "Telemetry | None" = None,
) -> MultiTenantReplayResult:
    """Replay the multiplexed stream, attributing wear per tenant.

    At least one of ``max_requests`` / ``horizon`` (virtual seconds) is
    required — tenant streams are endless.  Reads are applied (not
    skipped): tenants with read-heavy shapes must still be charged their
    read service time so busy-time attribution stays conserved.
    """
    _check_bounds(max_requests, horizon)
    backend = spec.build(telemetry=telemetry)
    simulator = Simulator(
        backend,
        skip_reads=False,
        heatmap_interval=(
            telemetry.heatmap_interval if telemetry is not None else None
        ),
        heatmap_bins=(
            telemetry.heatmap_bins if telemetry is not None
            else DEFAULT_HEATMAP_BINS
        ),
    )
    usage = [TenantUsage(name=t.name) for t in workload.tenants]
    erases = 0
    busy = 0.0
    pages_written = 0
    pages_read = 0
    served = 0
    for index, request in workload.iter_tagged():
        if horizon is not None and request.time > horizon:
            break
        simulator.apply(request)
        row = usage[index]
        row.requests += 1
        row.erases += backend.total_erases() - erases
        row.busy_time += backend.busy_time - busy
        row.pages_written += simulator.pages_written - pages_written
        row.pages_read += simulator.pages_read - pages_read
        erases = backend.total_erases()
        busy = backend.busy_time
        pages_written = simulator.pages_written
        pages_read = simulator.pages_read
        served += 1
        if max_requests is not None and served >= max_requests:
            break
    label = f"{spec.label()}·{len(usage)}tenants[{workload.policy}]"
    result = simulator.result(label=label)
    if telemetry is not None:
        telemetry.flush()
    return MultiTenantReplayResult(replay=result, tenants=usage)


def run_multi_tenant_service(
    spec: "ExperimentSpec",
    workload: MultiTenantWorkload,
    *,
    max_requests: int | None = None,
    max_time: float | None = None,
    queue_depth: int = 64,
    telemetry: "Telemetry | None" = None,
) -> MultiTenantServiceResult:
    """Serve the multiplexed stream, attributing wear *and* latency.

    The engine pulls requests from a wrapper generator that records each
    request's tenant tag as it is yielded; the engine's ``on_served``
    hook fires once per request, in order, so the pending-tag queue
    never holds more than one entry and attribution cannot drift.
    """
    _check_bounds(max_requests, max_time)
    backend = spec.build(telemetry=telemetry)
    engine = ServiceEngine(
        backend,
        queue_depth=queue_depth,
        telemetry=telemetry,
        heatmap_interval=(
            telemetry.heatmap_interval if telemetry is not None else None
        ),
        heatmap_bins=(
            telemetry.heatmap_bins if telemetry is not None
            else DEFAULT_HEATMAP_BINS
        ),
    )
    usage = [TenantUsage(name=t.name) for t in workload.tenants]
    histograms = [LatencyHistogram() for _ in workload.tenants]
    pending: list[int] = []
    previous = {
        "erases": 0,
        "busy": 0.0,
        "pages_written": 0,
        "pages_read": 0,
    }

    def tagged_stream() -> Iterator["Request"]:
        for index, request in workload.iter_tagged():
            pending.append(index)
            yield request

    def on_served(request: "Request", latency: float) -> None:
        index = pending.pop(0)
        row = usage[index]
        row.requests += 1
        row.erases += backend.total_erases() - previous["erases"]
        row.busy_time += backend.busy_time - previous["busy"]
        row.pages_written += engine.pages_written - previous["pages_written"]
        row.pages_read += engine.pages_read - previous["pages_read"]
        previous["erases"] = backend.total_erases()
        previous["busy"] = backend.busy_time
        previous["pages_written"] = engine.pages_written
        previous["pages_read"] = engine.pages_read
        histograms[index].observe(latency)

    engine.on_served = on_served
    label = f"{spec.label()}·{len(usage)}tenants[{workload.policy}]"
    result = engine.serve(
        tagged_stream(),
        max_requests=max_requests,
        max_time=max_time,
        label=label,
    )
    return MultiTenantServiceResult(
        service=result,
        tenants=usage,
        tenant_latencies=[h.summary() for h in histograms],
    )


def _check_bounds(max_requests: int | None, max_time: float | None) -> None:
    if max_requests is None and max_time is None:
        raise ValueError(
            "a multi-tenant run needs max_requests or a time bound"
        )
    if max_requests is not None and max_requests <= 0:
        raise ValueError(f"max_requests must be positive, got {max_requests}")
    if max_time is not None and max_time <= 0:
        raise ValueError(f"time bound must be positive, got {max_time}")
