"""Composable workload generators for endurance studies.

The paper's evaluation replays one desktop trace; the ROADMAP's north
star serves shifting multi-tenant traffic.  This module provides the
workload *shapes* that bridge the two — each a seeded, deterministic
generator of endless :class:`~repro.traces.model.Request` streams:

* :class:`HotspotWorkload` — Zipf(θ)-popular chunks over a seeded random
  placement; θ ≈ 0.99 is the classic YCSB-style skew.
* :class:`SequentialStreamWorkload` — an append-only circular stream
  (log shipping, media ingest).
* :class:`UniformAccessWorkload` — uniformly random requests, the
  no-skew null case.
* :class:`MixedWorkload` — uniform placement with a configurable
  read/write ratio (the default through :func:`make_shape` is 50/50).
* :class:`PhaseShiftingWorkload` — a Zipf hot set that *migrates* on a
  configurable period, modeling tenant churn and working-set drift; the
  stress case for a static wear leveler, whose cold blocks keep turning
  hot.

RNG discipline
--------------
Every shape draws from its own ``spawn_rng(make_rng(seed),
"workload:<name>")`` stream — a sibling of the existing ``"leveler"``,
``"resampler"``, and ``"arrivals"`` streams — so generating or consuming
workload traffic can never perturb replay randomness (the seed-stability
tests pin this: the golden replay digest is unchanged with workloads
active).

Arrival times are Poisson at ``params.rate`` requests per second.  The
read/write decision is drawn on every request even when
``read_fraction`` is 0, so changing the mix changes *only* the ops of a
stream, never its LBA sequence — mixes stay directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

from repro.traces.model import Op, Request
from repro.util.rng import make_rng, spawn_rng

#: Default Zipf exponent for hotspot-style shapes (YCSB's zipfian θ).
DEFAULT_THETA = 0.99

#: Default hot-set migration period of the phase-shifting shape (1 h).
DEFAULT_PHASE_PERIOD = 3600.0


@dataclass(frozen=True)
class ShapeParams:
    """Common knobs of every workload shape.

    ``rate`` is the total request rate (reads and writes together); the
    mobile-PC trace runs at roughly 4 requests per second, which is the
    default so generated workloads are comparable to the paper's.
    """

    total_sectors: int
    rate: float = 4.0                 #: requests per second (Poisson)
    request_sectors: int = 8          #: sectors per request
    read_fraction: float = 0.0        #: probability a request is a read
    seed: int = 0

    def __post_init__(self) -> None:
        if self.total_sectors <= 0:
            raise ValueError("total_sectors must be positive")
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.request_sectors < 1:
            raise ValueError("request_sectors must be >= 1")
        if not 0.0 <= self.read_fraction < 1.0:
            raise ValueError(
                f"read_fraction must be in [0, 1), got {self.read_fraction}"
            )


class WorkloadShape:
    """Base shape: Poisson arrivals, per-shape LBA policy, own RNG stream."""

    #: Stable shape identifier; also names the RNG stream, so two shapes
    #: with the same seed still draw decorrelated randomness.
    shape_name = "abstract"

    def __init__(self, params: ShapeParams) -> None:
        self.params = params
        self._rng = spawn_rng(
            make_rng(params.seed), f"workload:{self.shape_name}"
        )

    def _next_lba(self, now: float) -> int:
        """First sector of the next request (shape-specific)."""
        raise NotImplementedError

    def _reset_stream(self) -> None:
        """Restart the stream state (RNG and any cursors).

        Called at the top of every :meth:`iter_requests`, so each call
        replays the *identical* stream — the stream is a pure function
        of (seed, shape), and one shape instance can drive a replay run
        and a service run with the same requests.  The ``:stream`` salt
        keeps arrival draws decorrelated from the construction-time
        placement shuffle.  One active iteration per instance: a second
        concurrent iterator would share (and reset) this state.
        """
        self._rng = spawn_rng(
            make_rng(self.params.seed), f"workload:{self.shape_name}:stream"
        )

    def iter_requests(self) -> Iterator[Request]:
        """Endless request stream; bound it with a stop condition."""
        self._reset_stream()
        params = self.params
        rng = self._rng
        rate = params.rate
        read_fraction = params.read_fraction
        total = params.total_sectors
        step = params.request_sectors
        now = 0.0
        while True:
            now += rng.expovariate(rate)
            # The op draw always happens so read_fraction never shifts
            # the LBA stream (see module docstring).
            op = Op.READ if rng.random() < read_fraction else Op.WRITE
            lba = self._next_lba(now)
            yield Request(now, op, lba, min(step, total - lba))

    def requests(self, duration: float) -> list[Request]:
        """Materialize the stream up to ``duration`` simulated seconds."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        out: list[Request] = []
        for request in self.iter_requests():
            if request.time >= duration:
                break
            out.append(request)
        return out


class _ZipfChunks(WorkloadShape):
    """Shared machinery: Zipf(θ) popularity over permuted fixed chunks."""

    def __init__(self, params: ShapeParams, *, theta: float = DEFAULT_THETA) -> None:
        if theta <= 0:
            raise ValueError(f"theta must be positive, got {theta}")
        super().__init__(params)
        self.theta = theta
        count = max(1, params.total_sectors // params.request_sectors)
        # A seeded permutation scatters the popularity ranks over the
        # address space, so "hot" is not synonymous with "low LBA".
        self._placement = list(range(count))
        self._rng.shuffle(self._placement)
        weights = [1.0 / (rank + 1) ** theta for rank in range(count)]
        total = sum(weights)
        running = 0.0
        self._cdf = []
        for weight in weights:
            running += weight / total
            self._cdf.append(running)

    @property
    def chunk_count(self) -> int:
        return len(self._cdf)

    def _zipf_rank(self) -> int:
        """Draw a popularity rank (0 = hottest) by CDF binary search."""
        point = self._rng.random()
        lo, hi = 0, len(self._cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < point:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _chunk_for(self, rank: int, now: float) -> int:
        return self._placement[rank]

    def _next_lba(self, now: float) -> int:
        chunk = self._chunk_for(self._zipf_rank(), now)
        return chunk * self.params.request_sectors


class HotspotWorkload(_ZipfChunks):
    """Zipf(θ)-skewed requests: a few chunks absorb most traffic."""

    shape_name = "hotspot"


class PhaseShiftingWorkload(_ZipfChunks):
    """A Zipf hot set that migrates across the space every ``period``.

    Each phase rotates the popularity placement by a fixed stride
    (about a third of the space), so the blocks that were cold last
    phase — exactly the ones a static wear leveler would park behind
    its BET flags — turn hot in the next.  The phase index is derived
    from the request's own timestamp, so the stream stays a pure
    function of (seed, time): replaying any prefix is deterministic.
    """

    shape_name = "phase"

    def __init__(
        self,
        params: ShapeParams,
        *,
        theta: float = DEFAULT_THETA,
        period: float = DEFAULT_PHASE_PERIOD,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        super().__init__(params, theta=theta)
        self.period = period
        self._stride = max(1, self.chunk_count // 3)

    def _chunk_for(self, rank: int, now: float) -> int:
        phase = int(now // self.period)
        return self._placement[
            (rank + phase * self._stride) % self.chunk_count
        ]


class SequentialStreamWorkload(WorkloadShape):
    """Append-only circular stream over the whole space."""

    shape_name = "sequential"

    def __init__(self, params: ShapeParams) -> None:
        super().__init__(params)
        self._cursor = 0

    def _reset_stream(self) -> None:
        super()._reset_stream()
        self._cursor = 0

    def _next_lba(self, now: float) -> int:
        params = self.params
        if self._cursor + params.request_sectors > params.total_sectors:
            self._cursor = 0
        lba = self._cursor
        self._cursor += params.request_sectors
        return lba


class UniformAccessWorkload(WorkloadShape):
    """Uniformly random requests — the no-skew null case."""

    shape_name = "uniform"

    def _next_lba(self, now: float) -> int:
        params = self.params
        span = max(1, params.total_sectors - params.request_sectors + 1)
        return self._rng.randrange(span)


class MixedWorkload(UniformAccessWorkload):
    """Uniform placement with a read/write mix (default 50/50 via factory)."""

    shape_name = "mixed"


#: Shape names accepted by :func:`make_shape`, in canonical order.
SHAPE_NAMES = ("hotspot", "sequential", "uniform", "mixed", "phase")


def make_shape(
    name: str,
    params: ShapeParams,
    *,
    theta: float = DEFAULT_THETA,
    period: float = DEFAULT_PHASE_PERIOD,
) -> WorkloadShape:
    """Build a workload shape by name.

    ``theta`` applies to the hotspot and phase-shifting shapes,
    ``period`` to phase-shifting only.  The mixed shape defaults its
    read fraction to 0.5 when ``params`` leaves it at 0 — passing an
    explicit nonzero fraction always wins.
    """
    key = name.lower()
    if key == "hotspot":
        return HotspotWorkload(params, theta=theta)
    if key == "sequential":
        return SequentialStreamWorkload(params)
    if key == "uniform":
        return UniformAccessWorkload(params)
    if key == "mixed":
        if params.read_fraction == 0.0:
            params = replace(params, read_fraction=0.5)
        return MixedWorkload(params)
    if key == "phase":
        return PhaseShiftingWorkload(params, theta=theta, period=period)
    raise ValueError(
        f"unknown workload shape {name!r}; choose from {SHAPE_NAMES}"
    )
