"""Multi-tenant multiplexer: N tenant streams onto one device.

A tenant is a named workload shape plus a weight and a device region.
The :class:`MultiTenantWorkload` multiplexer maps each tenant's private
LBA stream onto its region of the shared device — disjoint regions by
default (equal partition of the space in tenant order), or deliberately
overlapping ones when the caller assigns explicit regions — and
interleaves the streams into one arrival-ordered request sequence.

Interleaving policies
---------------------
``"merge"``
    Every tenant keeps its own (Poisson) arrival clock, time-compressed
    by its weight (weight 2 ⇒ twice the request rate), and the streams
    are merged by timestamp.  Weights change only the *pacing* of a
    tenant's stream, never its LBA sequence, so attribution comparisons
    across weight settings stay apples-to-apples.
``"round-robin"``
    Tenants take turns under smooth weighted round-robin (the classic
    credit scheme: each step every tenant earns its weight, the richest
    tenant is served and pays the total), and arrivals are re-stamped by
    a shared Poisson clock at the combined weighted rate, drawn from a
    dedicated ``"workload:mux"`` RNG stream.

Both policies yield ``(tenant_index, Request)`` pairs from
:meth:`MultiTenantWorkload.iter_tagged`; the tag is what the runners in
:mod:`repro.workloads.runner` use for per-tenant wear and latency
attribution.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.traces.model import Request
from repro.util.rng import make_rng, spawn_rng
from repro.workloads.generators import WorkloadShape

#: Interleaving policies accepted by :class:`MultiTenantWorkload`.
TENANT_POLICIES = ("merge", "round-robin")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a name, a workload shape, a weight, and a region.

    ``region`` is a half-open device-sector interval ``[start, end)``;
    ``None`` lets the multiplexer assign disjoint equal partitions.
    Explicit regions may overlap — that is the "noisy neighbours on
    shared blocks" configuration, and the multiplexer only checks basic
    well-formedness.
    """

    name: str
    shape: WorkloadShape
    weight: float = 1.0
    region: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.region is not None:
            start, end = self.region
            if start < 0 or end <= start:
                raise ValueError(f"malformed region {self.region}")


class MultiTenantWorkload:
    """Interleave tenant streams onto regions of one shared device."""

    def __init__(
        self,
        tenants: Sequence[TenantSpec],
        total_sectors: int,
        *,
        policy: str = "merge",
        seed: int = 0,
    ) -> None:
        if not tenants:
            raise ValueError("at least one tenant is required")
        if total_sectors <= 0:
            raise ValueError("total_sectors must be positive")
        if policy not in TENANT_POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; choose from {TENANT_POLICIES}"
            )
        names = [tenant.name for tenant in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique, got {names}")
        self.tenants = list(tenants)
        self.total_sectors = total_sectors
        self.policy = policy
        self.seed = seed
        self.regions = self._assign_regions()

    def _assign_regions(self) -> list[tuple[int, int]]:
        """Explicit regions verbatim; otherwise disjoint equal slices."""
        explicit = [t.region for t in self.tenants if t.region is not None]
        if explicit and len(explicit) != len(self.tenants):
            raise ValueError(
                "either every tenant declares a region or none does"
            )
        if explicit:
            for start, end in explicit:
                if end > self.total_sectors:
                    raise ValueError(
                        f"region [{start}, {end}) exceeds the device's "
                        f"{self.total_sectors} sectors"
                    )
            return list(explicit)  # type: ignore[arg-type]
        count = len(self.tenants)
        width = self.total_sectors // count
        if width < 1:
            raise ValueError(
                f"{count} tenants cannot partition {self.total_sectors} sectors"
            )
        regions = [
            (index * width, (index + 1) * width) for index in range(count)
        ]
        # The last tenant absorbs the remainder of an uneven split.
        regions[-1] = (regions[-1][0], self.total_sectors)
        return regions

    def _place(self, index: int, request: Request) -> Request:
        """Map a tenant-private request onto the tenant's device region."""
        start, end = self.regions[index]
        length = end - start
        lba = start + request.lba % length
        return Request(
            request.time,
            request.op,
            lba,
            min(request.sectors, end - lba),
        )

    # ------------------------------------------------------------------
    def iter_tagged(self) -> Iterator[tuple[int, Request]]:
        """Endless ``(tenant_index, device_request)`` stream.

        Each call replays the identical stream: tenant shapes restart
        their seeded streams on re-iteration, and the multiplexer's own
        ``"workload:mux"`` RNG is re-derived here — so one multiplexer
        can drive a replay run and a service run with the same requests.
        """
        if self.policy == "merge":
            return self._iter_merge()
        return self._iter_round_robin()

    def iter_requests(self) -> Iterator[Request]:
        """The same stream without the tenant tags."""
        return (request for _, request in self.iter_tagged())

    def _iter_merge(self) -> Iterator[tuple[int, Request]]:
        streams = [tenant.shape.iter_requests() for tenant in self.tenants]
        weights = [tenant.weight for tenant in self.tenants]
        # (scaled_time, tenant_index) keys make the heap order total and
        # deterministic: ties in time break by tenant position.
        heap: list[tuple[float, int, Request]] = []
        for index, stream in enumerate(streams):
            request = next(stream)
            heapq.heappush(heap, (request.time / weights[index], index, request))
        while heap:
            when, index, request = heapq.heappop(heap)
            yield index, self._place(
                index,
                Request(when, request.op, request.lba, request.sectors),
            )
            upcoming = next(streams[index])
            heapq.heappush(
                heap, (upcoming.time / weights[index], index, upcoming)
            )

    def _iter_round_robin(self) -> Iterator[tuple[int, Request]]:
        streams = [tenant.shape.iter_requests() for tenant in self.tenants]
        weights = [tenant.weight for tenant in self.tenants]
        total_weight = sum(weights)
        combined_rate = sum(
            tenant.weight * tenant.shape.params.rate for tenant in self.tenants
        )
        credits = [0.0] * len(self.tenants)
        rng = spawn_rng(make_rng(self.seed), "workload:mux")
        now = 0.0
        while True:
            for index, weight in enumerate(weights):
                credits[index] += weight
            index = max(range(len(credits)), key=lambda i: (credits[i], -i))
            credits[index] -= total_weight
            now += rng.expovariate(combined_rate)
            request = next(streams[index])
            yield index, self._place(
                index,
                Request(now, request.op, request.lba, request.sectors),
            )
