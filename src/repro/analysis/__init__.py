"""Analytic models of paper Section 4 and endurance-distribution tools.

:mod:`repro.analysis.memory` regenerates Table 1 (BET RAM requirements);
:mod:`repro.analysis.overhead` regenerates Tables 2-3 (worst-case extra
erases and live-page copyings); :mod:`repro.analysis.endurance` adds
distribution diagnostics and lifetime projection used by the examples.
"""

from repro.analysis.endurance import (
    LifetimeProjection,
    erase_histogram,
    ideal_leveling_gain,
    pinned_fraction,
    project_lifetime,
    wear_gini,
)
from repro.analysis.figures import bar_chart, series_chart, sparkline, wear_map
from repro.analysis.memory import (
    bet_size_bytes,
    bet_size_for,
    mlc2_reduction,
    table1,
    table1_headers,
)
from repro.analysis.overhead import (
    TABLE2_CONFIGS,
    TABLE3_CONFIGS,
    TABLE3_PAGES_PER_BLOCK,
    WorstCaseConfig,
    table2,
    table3,
)

__all__ = [
    "LifetimeProjection",
    "TABLE2_CONFIGS",
    "TABLE3_CONFIGS",
    "TABLE3_PAGES_PER_BLOCK",
    "WorstCaseConfig",
    "bar_chart",
    "bet_size_bytes",
    "bet_size_for",
    "erase_histogram",
    "ideal_leveling_gain",
    "mlc2_reduction",
    "pinned_fraction",
    "project_lifetime",
    "series_chart",
    "sparkline",
    "table1",
    "table1_headers",
    "table2",
    "table3",
    "wear_map",
]
