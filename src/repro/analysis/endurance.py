"""Endurance-distribution analysis helpers (paper Section 5.2).

Functions for studying *how* wear is distributed — histograms, Gini-style
imbalance, lifetime extrapolation — used by the examples and the ablation
benches on top of the raw Table 4 statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.sim.metrics import EraseDistribution


def erase_histogram(
    counts: Sequence[int], *, num_bins: int = 16
) -> list[tuple[str, int]]:
    """Histogram of per-block erase counts as (range label, block count)."""
    if not counts:
        raise ValueError("no erase counts")
    if num_bins <= 0:
        raise ValueError("num_bins must be positive")
    top = max(counts)
    width = max(1, (top + num_bins) // num_bins)
    bins = [0] * num_bins
    for count in counts:
        bins[min(count // width, num_bins - 1)] += 1
    return [
        (f"[{i * width}, {(i + 1) * width})", bins[i]) for i in range(num_bins)
    ]


def wear_gini(counts: Sequence[int]) -> float:
    """Gini coefficient of the erase-count distribution.

    0.0 = perfectly even wear (the wear-leveling ideal); values toward 1.0
    mean a few blocks absorb almost all erases (the static-data pathology
    the paper attacks).
    """
    n = len(counts)
    if n == 0:
        raise ValueError("no erase counts")
    total = sum(counts)
    if total == 0:
        return 0.0
    ordered = sorted(counts)
    cumulative = 0
    weighted = 0
    for rank, value in enumerate(ordered, start=1):
        cumulative += value
        weighted += cumulative
    # Standard discrete Gini from the Lorenz curve.
    return (n + 1 - 2 * weighted / total) / n


def pinned_fraction(counts: Sequence[int], *, threshold: float = 0.05) -> float:
    """Fraction of blocks effectively pinned out of the wear rotation.

    A block counts as pinned when its erase count is below ``threshold``
    of the chip's maximum — the blocks "likely to stay intact, regardless
    of how updates of non-cold data wear out other blocks" (paper
    Section 1).  Returns 0.0 on an unworn chip.
    """
    if not counts:
        raise ValueError("no erase counts")
    if not 0.0 <= threshold < 1.0:
        raise ValueError(f"threshold must be in [0, 1), got {threshold}")
    top = max(counts)
    if top == 0:
        return 0.0
    cutoff = threshold * top
    return sum(1 for count in counts if count <= cutoff) / len(counts)


def ideal_leveling_gain(pinned: float) -> float:
    """Upper bound on the first-failure improvement from perfect leveling.

    If a fraction ``pinned`` of blocks absorbs no wear, the remaining
    blocks exhaust their endurance ``1 / (1 - pinned)`` times sooner than
    a perfectly leveled chip; unpinning them buys at most
    ``pinned / (1 - pinned)`` extra lifetime (returned as a fraction,
    e.g. 0.33 for +33 %).  Static wear leveling realizes part of this
    bound, minus its own overhead — the budget every Figure 5 number
    lives inside.
    """
    if not 0.0 <= pinned < 1.0:
        raise ValueError(f"pinned must be in [0, 1), got {pinned}")
    return pinned / (1.0 - pinned)


@dataclass(frozen=True)
class LifetimeProjection:
    """Extrapolated device lifetime from an observed wear distribution.

    ``observed_waf`` / ``projected_waf`` record the write-amplification
    assumption behind the projection when the caller supplied one
    (``None`` = the historical WAF-blind extrapolation).
    """

    observed_time: float          #: simulated seconds observed
    endurance: int                #: rated cycles per block
    max_erase_count: int
    projected_first_failure: float  #: seconds until the hottest block dies
    observed_waf: float | None = None
    projected_waf: float | None = None

    @property
    def projected_years(self) -> float:
        return self.projected_first_failure / (365.0 * 86_400.0)


def project_lifetime(
    counts: Sequence[int],
    observed_time: float,
    endurance: int,
    *,
    observed_waf: float | None = None,
    projected_waf: float | None = None,
) -> LifetimeProjection:
    """Linear first-failure projection from a fixed-horizon run.

    Assumes the hottest block keeps wearing at its observed rate — the
    standard firmware-endurance estimate, and a cross-check for the
    direct Figure 5 measurement.

    The observed erase rate already embeds the measured write
    amplification; when the workload ahead will amplify differently,
    pass both ``observed_waf`` and ``projected_waf`` and the erase rate
    is rescaled by their ratio (a doubled WAF halves the horizon).  The
    arithmetic delegates to the repository's single WAF-aware
    chokepoint, :func:`repro.endurance.projection.first_failure_horizon`.
    """
    # Imported lazily: analysis.endurance loads during repro.sim's own
    # import (via reporting -> figures), before repro.endurance's
    # matrix module could resolve its sim.experiment imports.
    from repro.endurance.projection import first_failure_horizon

    if (observed_waf is None) != (projected_waf is None):
        raise ValueError(
            "pass observed_waf and projected_waf together or not at all"
        )
    if observed_waf is not None:
        if observed_waf < 1.0 or projected_waf is None or projected_waf < 1.0:
            raise ValueError("write amplification factors must be >= 1.0")
        waf_ratio = projected_waf / observed_waf
    else:
        waf_ratio = 1.0
    distribution = EraseDistribution.from_counts(counts)
    hottest = distribution.maximum
    projected = first_failure_horizon(
        observed_time, endurance, hottest, waf_ratio=waf_ratio
    )
    return LifetimeProjection(
        observed_time=observed_time,
        endurance=endurance,
        max_erase_count=hottest,
        projected_first_failure=projected,
        observed_waf=observed_waf,
        projected_waf=projected_waf,
    )
