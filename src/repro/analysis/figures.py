"""Plain-text figure rendering.

The paper's Figures 5-7 are line charts over k with one series per T.
This module renders the same data as terminal-friendly charts — grouped
bar charts and sparkline series — so benchmark output can *show* the
shape, not just tabulate it, without a plotting dependency.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

_BLOCKS = " ▏▎▍▌▋▊▉█"
_SPARKS = "▁▂▃▄▅▆▇█"


def _bar(fraction: float, width: int) -> str:
    """A horizontal bar filling ``fraction`` of ``width`` character cells."""
    fraction = min(max(fraction, 0.0), 1.0)
    eighths = round(fraction * width * 8)
    full, partial = divmod(eighths, 8)
    bar = _BLOCKS[-1] * full
    if partial:
        bar += _BLOCKS[partial]
    return bar


def bar_chart(
    values: Mapping[str, float],
    *,
    width: int = 40,
    title: str | None = None,
    unit: str = "",
    baseline: float = 0.0,
) -> str:
    """Render labelled values as a horizontal bar chart.

    ``baseline`` shifts the bar origin (e.g. 100 for the paper's
    increased-ratio figures, where every series starts at 100 %).
    """
    if not values:
        raise ValueError("no values to chart")
    label_width = max(len(label) for label in values)
    top = max(max(values.values()) - baseline, 1e-12)
    lines = [title] if title else []
    for label, value in values.items():
        fraction = (value - baseline) / top
        lines.append(
            f"{label.ljust(label_width)} │{_bar(fraction, width).ljust(width)}│ "
            f"{value:g}{unit}"
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """Compress a numeric series into one line of block characters."""
    if not values:
        raise ValueError("no values")
    low, high = min(values), max(values)
    span = high - low
    if span == 0:
        return _SPARKS[0] * len(values)
    return "".join(
        _SPARKS[min(int((value - low) / span * len(_SPARKS)), len(_SPARKS) - 1)]
        for value in values
    )


def series_chart(
    x_labels: Sequence[object],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 40,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Render multiple series over a shared x-axis (the Figure 5 layout).

    Each series becomes one row: a sparkline over the x points plus the
    per-point values, so trends in k (or T) are visible at a glance.
    """
    if not series:
        raise ValueError("no series to chart")
    for name, values in series.items():
        if len(values) != len(x_labels):
            raise ValueError(
                f"series {name!r} has {len(values)} points for "
                f"{len(x_labels)} x labels"
            )
    label_width = max(len(name) for name in series)
    lines = [title] if title else []
    lines.append(
        f"{''.ljust(label_width)}   x = "
        + ", ".join(str(label) for label in x_labels)
    )
    for name, values in series.items():
        rendered = ", ".join(f"{value:g}{unit}" for value in values)
        lines.append(f"{name.ljust(label_width)}   {sparkline(values)}  {rendered}")
    return "\n".join(lines)


def wear_map(erase_counts: Sequence[int], *, columns: int = 32) -> str:
    """Render per-block erase counts as a block heat map.

    One character per physical block, row-major; darker means more worn.
    Makes pinned cold regions (runs of light cells) directly visible.
    """
    if not erase_counts:
        raise ValueError("no erase counts")
    top = max(max(erase_counts), 1)
    lines = []
    for start in range(0, len(erase_counts), columns):
        row = erase_counts[start:start + columns]
        lines.append(
            "".join(
                _SPARKS[min(int(count / top * len(_SPARKS)), len(_SPARKS) - 1)]
                for count in row
            )
        )
    lines.append(f"(scale: ▁ = 0 … █ = {top} erases)")
    return "\n".join(lines)
