"""Worst-case overhead analysis — paper Sections 4.2-4.3, Tables 2-3.

The worst case for static wear leveling (Figure 4): a chip of ``H + C``
blocks where ``H - 1`` blocks hold hot data, ``C`` blocks hold cold
(static) data, one block is free, and hot updates land only on the hot
blocks and the free block (k = 0).  In one resetting interval the hot
traffic causes ``T * (H + C) - C`` regular erases while SWL-Procedure
recycles each cold block exactly once, giving:

* increased block-erase ratio  ``C / (T*(H+C) - C)``            (Table 2)
* increased live-copy ratio    ``C*N / ((T*(H+C) - C) * L)``    (Table 3)

with ``N`` pages per block and ``L`` average live pages copied per
regular hot-block erase.  Both tables are reproduced exactly, including
the paper's ``~`` approximations when ``T*(H+C) >> C``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WorstCaseConfig:
    """One row of the worst-case scenario of paper Figure 4.

    ``hot_blocks`` is the paper's ``H`` (``H - 1`` hot blocks plus the one
    free block); ``cold_blocks`` is ``C``; ``threshold`` is ``T``.
    """

    hot_blocks: int
    cold_blocks: int
    threshold: float

    def __post_init__(self) -> None:
        if self.hot_blocks < 1:
            raise ValueError(f"H must be >= 1, got {self.hot_blocks}")
        if self.cold_blocks < 1:
            raise ValueError(f"C must be >= 1, got {self.cold_blocks}")
        if self.threshold <= 0:
            raise ValueError(f"T must be positive, got {self.threshold}")

    @property
    def total_blocks(self) -> int:
        return self.hot_blocks + self.cold_blocks

    # ------------------------------------------------------------------
    # Section 4.2: extra block erases
    # ------------------------------------------------------------------
    def erases_per_interval(self) -> float:
        """Total block erases in one resetting interval: ``T * (H + C)``."""
        return self.threshold * self.total_blocks

    def extra_erase_ratio(self) -> float:
        """Exact increased ratio of block erases: ``C / (T*(H+C) - C)``."""
        return self.cold_blocks / (
            self.erases_per_interval() - self.cold_blocks
        )

    def extra_erase_ratio_approx(self) -> float:
        """Paper's approximation ``C / (T*(H+C))`` for ``T*(H+C) >> C``."""
        return self.cold_blocks / self.erases_per_interval()

    # ------------------------------------------------------------------
    # Section 4.3: extra live-page copyings
    # ------------------------------------------------------------------
    def extra_copy_ratio(self, pages_per_block: int, live_pages_per_erase: float) -> float:
        """Exact increased ratio of live-page copyings.

        ``C*N`` pages are copied by SWL per interval against
        ``(T*(H+C) - C) * L`` regular copies.
        """
        if pages_per_block <= 0:
            raise ValueError(f"N must be positive, got {pages_per_block}")
        if live_pages_per_erase <= 0:
            raise ValueError(f"L must be positive, got {live_pages_per_erase}")
        regular = (self.erases_per_interval() - self.cold_blocks) * live_pages_per_erase
        return (self.cold_blocks * pages_per_block) / regular

    def extra_copy_ratio_approx(
        self, pages_per_block: int, live_pages_per_erase: float
    ) -> float:
        """Paper's approximation ``C*N / (T*L*(H+C))``."""
        return (self.cold_blocks * pages_per_block) / (
            self.threshold * live_pages_per_erase * self.total_blocks
        )


#: The (H, C, T) rows of paper Table 2 (1 GB MLC×2 = 4,096 blocks).
TABLE2_CONFIGS = (
    WorstCaseConfig(256, 3840, 100),
    WorstCaseConfig(2048, 2048, 100),
    WorstCaseConfig(256, 3840, 1000),
    WorstCaseConfig(2048, 2048, 1000),
)

#: Pages per block of the paper's MLC×2 part (N = 128 in Table 3).
TABLE3_PAGES_PER_BLOCK = 128

#: The (H, C, T, L) rows of paper Table 3.
TABLE3_CONFIGS = (
    (WorstCaseConfig(256, 3840, 100), 16),
    (WorstCaseConfig(2048, 2048, 100), 16),
    (WorstCaseConfig(256, 3840, 100), 32),
    (WorstCaseConfig(2048, 2048, 100), 32),
    (WorstCaseConfig(256, 3840, 1000), 16),
    (WorstCaseConfig(2048, 2048, 1000), 16),
    (WorstCaseConfig(256, 3840, 1000), 32),
    (WorstCaseConfig(2048, 2048, 1000), 32),
)


def table2() -> list[list[object]]:
    """Regenerate paper Table 2 (increased ratio of block erases)."""
    rows: list[list[object]] = []
    for config in TABLE2_CONFIGS:
        ratio_h_c = f"1:{config.cold_blocks // config.hot_blocks}"
        rows.append(
            [
                config.hot_blocks,
                config.cold_blocks,
                ratio_h_c,
                int(config.threshold),
                f"{100 * config.extra_erase_ratio():.3f}%",
            ]
        )
    return rows


def table3() -> list[list[object]]:
    """Regenerate paper Table 3 (increased ratio of live-page copyings)."""
    rows: list[list[object]] = []
    n = TABLE3_PAGES_PER_BLOCK
    for config, live in TABLE3_CONFIGS:
        rows.append(
            [
                config.hot_blocks,
                config.cold_blocks,
                f"1:{config.cold_blocks // config.hot_blocks}",
                int(config.threshold),
                live,
                round(n / (config.threshold * live), 4),
                f"{100 * config.extra_copy_ratio(n, live):.3f}%",
            ]
        )
    return rows
