"""Main-memory (BET size) analysis — paper Section 4.1, Table 1.

"Since one-bit flag is needed for each block set, the BET contributes the
major main-memory space overheads on the controller."  The BET size is
``ceil(num_blocks / 2^k / 8)`` bytes; Table 1 tabulates it for SLC flash
from 128 MB to 4 GB and k = 0..3 (e.g., 512 B for 4 GB SLC at k = 3).
"""

from __future__ import annotations

from repro.flash.geometry import (
    TABLE1_SLC_SIZES,
    FlashGeometry,
    mlc2,
    slc_large_block,
)


def bet_size_bytes(num_blocks: int, k: int) -> int:
    """RAM bytes for a BET covering ``num_blocks`` at resolution ``k``."""
    if num_blocks <= 0:
        raise ValueError(f"num_blocks must be positive, got {num_blocks}")
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    flags = (num_blocks + (1 << k) - 1) >> k
    return (flags + 7) // 8


def bet_size_for(geometry: FlashGeometry, k: int) -> int:
    """BET bytes for a concrete chip geometry."""
    return bet_size_bytes(geometry.num_blocks, k)


def table1(
    capacities: tuple[int, ...] = TABLE1_SLC_SIZES,
    k_values: tuple[int, ...] = (0, 1, 2, 3),
) -> list[list[object]]:
    """Regenerate paper Table 1: BET bytes per SLC capacity and k.

    Rows are k values; columns are capacities.  The paper's numbers assume
    large-block SLC (2 KB pages, 64 pages/block: a 128 MB chip has 1,024
    blocks, hence 128 B at k = 0).
    """
    rows: list[list[object]] = []
    for k in k_values:
        row: list[object] = [f"k = {k}"]
        for capacity in capacities:
            geometry = slc_large_block(capacity)
            row.append(f"{bet_size_for(geometry, k)}B")
        rows.append(row)
    return rows


def table1_headers(
    capacities: tuple[int, ...] = TABLE1_SLC_SIZES,
) -> list[str]:
    """Header row matching :func:`table1` (capacity labels)."""
    labels = []
    for capacity in capacities:
        mib = capacity // (1024 * 1024)
        labels.append(f"{mib}MB" if mib < 1024 else f"{mib // 1024}GB")
    return ["", *labels]


def mlc2_reduction(capacity: int, k: int) -> float:
    """BET size ratio of MLC×2 versus large-block SLC at equal capacity.

    Section 4.1: "When MLC flash memory is adopted, the BET size will be
    much reduced" — MLC×2 blocks are twice as large (128 vs 64 pages), so
    the table halves.
    """
    slc = bet_size_for(slc_large_block(capacity), k)
    mlc = bet_size_for(mlc2(capacity), k)
    return mlc / slc
