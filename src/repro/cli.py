"""Command-line interface: ``python -m repro <command>``.

These commands cover the library's main workflows without writing code:

``generate-trace``
    Synthesize a mobile-PC trace (Section 5.1 statistics) to a file.
``simulate``
    Replay a trace file (or a freshly generated one) against a chosen
    stack and print the wear report.
``sweep``
    Run the paper's k x T first-failure sweep for one driver and print a
    Figure 5-style table.
``serve``
    Open-loop service soak: re-time the workload with an arrival model
    (Poisson client population or trace-paced), push it through bounded
    per-channel queues, and report p50/p95/p99 request latency —
    optionally comparing SWL-off against SWL-on at each threshold T.
``endure``
    Project device lifetime (WAF, TBW, DWPD, first-failure horizon)
    across generated workload shapes, SWL-on vs SWL-off, single- and
    multi-channel — optionally with a multi-tenant replay whose
    per-tenant wear attribution rows must sum exactly to the device
    totals.
``arena``
    Policy tournament: race the paper's SW Leveler against the
    challenger mechanisms (dual-pool, cache-based avoidance, SoftWear
    scrubbing) through the shared workload and fault matrices and print
    the leaderboard — endurance, extra erases, WAF, controller RAM, p99.
``faults``
    Run a fault-injection campaign (transient-fault soak plus a swept
    power-loss crash-consistency check) and report the verdict; exits
    non-zero on any invariant violation.
``trace``
    Replay with telemetry enabled and export the full artifact set —
    JSONL event trace, Chrome/Perfetto ``trace_event`` JSON, Prometheus
    metrics text, and wear heatmaps (see :mod:`repro.obs`).

Every command accepts ``--seed`` and is fully deterministic.  The global
``--log-level`` / ``--log-channel`` options (before the command name)
enable the library's diagnostics logging channels.
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import replace
from pathlib import Path

from repro.arena.report import arena_console_table, arena_report
from repro.arena.tournament import (
    DEFAULT_ROSTER,
    DEFAULT_WORKLOADS,
    run_arena,
)
from repro.core.config import SWLConfig
from repro.endurance import endurance_cells, run_endurance_matrix
from repro.fault.campaign import run_fault_campaign
from repro.fault.plan import FaultPlan
from repro.obs.telemetry import DEFAULT_HEATMAP_BINS, Telemetry
from repro.service.arrival import open_loop_rate
from repro.sim.experiment import (
    ExperimentSpec,
    logical_sectors_of,
    make_workload,
    run_fixed_horizon,
    run_service_soak,
    run_until_first_failure,
    scaled_mlc2_geometry,
    workload_params_for,
)
from repro.sim.metrics import improvement_ratio
from repro.sim.reporting import (
    fault_campaign_report,
    save_endurance_report,
    save_report,
    save_service_report,
)
from repro.workloads import (
    DEFAULT_PHASE_PERIOD,
    DEFAULT_THETA,
    SHAPE_NAMES,
    TENANT_POLICIES,
    MultiTenantWorkload,
    ShapeParams,
    TenantSpec,
    make_shape,
    run_multi_tenant_replay,
)
from repro.sim.results import format_channel_latency, format_latency
from repro.traces.generator import DAY, WorkloadParams
from repro.traces.io import load_trace, save_trace
from repro.traces.stats import summarize
from repro.util.diagnostics import configure_logging
from repro.util.tables import format_table


def _add_stack_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--driver", choices=("ftl", "nftl"), default="nftl",
                        help="translation layer (default: nftl)")
    parser.add_argument("--blocks", type=int, default=64,
                        help="simulated chip size in blocks (default: 64)")
    parser.add_argument("--scale", type=int, default=5,
                        help="endurance scale: cycles = 10000/scale (default: 5)")
    parser.add_argument("--threshold", "-T", type=float, default=100.0,
                        help="SWL unevenness threshold T (default: 100)")
    parser.add_argument("--k", type=int, default=0,
                        help="BET resolution exponent k (default: 0)")
    parser.add_argument("--no-swl", action="store_true",
                        help="run the baseline without static wear leveling")
    parser.add_argument("--channels", type=int, default=1,
                        help="channel shards in the device array (default: 1 "
                             "= the classic single-chip stack)")
    parser.add_argument("--striping", choices=("page", "range"),
                        default="page",
                        help="logical-page striping across channels: "
                             "page-interleaved round-robin or contiguous "
                             "ranges (default: page)")
    parser.add_argument("--swl-scope", choices=("per-shard", "global"),
                        default="per-shard",
                        help="wear-leveling coordination: independent "
                             "per-shard thresholds or one array-wide "
                             "global-T coordinator (default: per-shard)")
    parser.add_argument("--seed", type=int, default=0, help="master seed")


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--telemetry", action="store_true",
                        help="attach the telemetry event bus (in-memory "
                             "metrics; no files unless --trace-out)")
    parser.add_argument("--trace-out", metavar="DIR", default=None,
                        help="write trace.jsonl, trace.chrome.json, and "
                             "metrics.prom into DIR (implies --telemetry)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Static wear leveling for flash storage (DAC 2007 reproduction)",
    )
    parser.add_argument("--log-level", default=None, metavar="LEVEL",
                        help="enable diagnostics logging at LEVEL "
                             "(DEBUG, INFO, WARNING, ...)")
    parser.add_argument("--log-channel", action="append", metavar="NAME",
                        help="restrict logging to a channel (repeatable; "
                             "e.g. leveler, fault, obs); default: every "
                             "repro.* channel")
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate-trace", help="synthesize a mobile-PC trace to a file"
    )
    generate.add_argument("output", help="output path (.csv or binary)")
    generate.add_argument("--sectors", type=int, default=262_144,
                          help="LBA space in 512B sectors (default: 262144)")
    generate.add_argument("--days", type=float, default=1.0,
                          help="trace duration in days (default: 1)")
    generate.add_argument("--seed", type=int, default=0, help="master seed")

    simulate = commands.add_parser(
        "simulate", help="replay a trace against a stack and report wear"
    )
    simulate.add_argument("--trace", help="trace file; omit to synthesize one")
    simulate.add_argument("--days", type=float, default=1.0,
                          help="generated-trace duration in days (default: 1)")
    _add_stack_arguments(simulate)
    _add_telemetry_arguments(simulate)

    sweep = commands.add_parser(
        "sweep", help="run the paper's k x T first-failure sweep (Figure 5)"
    )
    sweep.add_argument("--thresholds", type=float, nargs="+",
                       default=[100, 1000], help="T values (default: 100 1000)")
    sweep.add_argument("--ks", type=int, nargs="+", default=[0],
                       help="k values (default: 0)")
    sweep.add_argument("--report", metavar="PATH",
                       help="also write a markdown report to PATH")
    sweep.add_argument("--resume", metavar="DIR", default=None,
                       help="run under the fault-tolerant campaign "
                            "supervisor with scratch directory DIR: cells "
                            "checkpoint as they run, and re-running with "
                            "the same DIR resumes interrupted cells and "
                            "skips finished ones")
    sweep.add_argument("--workers", type=int, default=1,
                       help="supervised worker processes (default: 1; "
                            "needs --resume)")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-attempt wall-clock timeout in seconds "
                            "for supervised cells (default: none)")
    sweep.add_argument("--max-attempts", type=int, default=3,
                       help="attempts per supervised cell before "
                            "quarantine (default: 3)")
    _add_stack_arguments(sweep)
    _add_telemetry_arguments(sweep)

    trace = commands.add_parser(
        "trace",
        help="replay with telemetry on and export the trace artifact set",
    )
    trace.add_argument("output",
                       help="output directory for trace.jsonl, "
                            "trace.chrome.json, and metrics.prom")
    trace.add_argument("--hours", type=float, default=2.0,
                       help="simulated replay horizon in hours (default: 2)")
    trace.add_argument("--days", type=float, default=0.25,
                       help="generated base-trace duration in days "
                            "(default: 0.25)")
    trace.add_argument("--heatmap-bins", type=int,
                       default=DEFAULT_HEATMAP_BINS,
                       help="wear-heatmap grid width in cells "
                            f"(default: {DEFAULT_HEATMAP_BINS})")
    trace.add_argument("--heatmap-interval", type=float, default=None,
                       help="simulated seconds between wear heatmaps "
                            "(default: horizon/16)")
    trace.add_argument("--log-events", action="store_true",
                       help="also mirror events onto the repro.* log "
                            "channels")
    _add_stack_arguments(trace)

    serve = commands.add_parser(
        "serve",
        help="open-loop service soak with tail-latency accounting",
    )
    serve.add_argument("--mode", choices=("poisson", "trace"),
                       default="poisson",
                       help="arrival model: open-loop Poisson client "
                            "population or trace-paced (default: poisson)")
    serve.add_argument("--clients", type=int, default=1000,
                       help="simulated concurrent clients, poisson mode "
                            "(default: 1000)")
    serve.add_argument("--think-time", type=float, default=1.0,
                       help="mean client think time in seconds, poisson "
                            "mode (default: 1.0)")
    serve.add_argument("--rate", type=float, default=None,
                       help="explicit arrival rate in requests/s; "
                            "overrides --clients/--think-time")
    serve.add_argument("--speedup", type=float, default=1.0,
                       help="trace-mode timestamp compression factor "
                            "(default: 1 = recorded pacing)")
    serve.add_argument("--requests", type=int, default=1_000_000,
                       help="requests to serve (default: 1000000)")
    serve.add_argument("--hours", type=float, default=None,
                       help="virtual-time bound in hours (default: "
                            "bounded by --requests only)")
    serve.add_argument("--depth", type=int, default=64,
                       help="per-channel queue-depth bound (default: 64)")
    serve.add_argument("--days", type=float, default=0.25,
                       help="generated base-trace duration in days "
                            "(default: 0.25)")
    serve.add_argument("--compare", action="store_true",
                       help="run an SWL-off baseline plus SWL-on at each "
                            "--thresholds value instead of one config")
    serve.add_argument("--thresholds", type=float, nargs="+",
                       default=[100, 1000],
                       help="T values for --compare (default: 100 1000)")
    serve.add_argument("--report", metavar="PATH",
                       help="also write a markdown latency report to PATH")
    _add_stack_arguments(serve)
    _add_telemetry_arguments(serve)

    endure = commands.add_parser(
        "endure",
        help="project device lifetime (WAF/TBW/DWPD) across workload shapes",
    )
    endure.add_argument("--shapes", nargs="+", choices=SHAPE_NAMES,
                        default=["hotspot", "sequential", "mixed", "phase"],
                        help="workload shapes to project (default: hotspot "
                             "sequential mixed phase)")
    endure.add_argument("--horizon-days", type=float, default=0.25,
                        help="measured replay horizon per cell in simulated "
                             "days (default: 0.25)")
    endure.add_argument("--rate", type=float, default=4.0,
                        help="workload request rate in req/s (default: 4, "
                             "the mobile-PC trace's ballpark)")
    endure.add_argument("--theta", type=float, default=DEFAULT_THETA,
                        help="Zipf exponent of hotspot/phase shapes "
                             f"(default: {DEFAULT_THETA})")
    endure.add_argument("--period", type=float, default=DEFAULT_PHASE_PERIOD,
                        help="hot-set migration period of the phase shape in "
                             f"seconds (default: {DEFAULT_PHASE_PERIOD:g})")
    endure.add_argument("--workers", type=int, default=None,
                        help="worker processes for the cell matrix "
                             "(default: serial)")
    endure.add_argument("--tenants", type=int, default=0,
                        help="also run a multi-tenant attribution replay "
                             "with this many tenants (default: 0 = skip)")
    endure.add_argument("--tenant-requests", type=int, default=20_000,
                        help="requests in the multi-tenant replay "
                             "(default: 20000)")
    endure.add_argument("--tenant-policy", choices=TENANT_POLICIES,
                        default="merge",
                        help="tenant interleaving policy (default: merge)")
    endure.add_argument("--report", metavar="PATH",
                        help="also write a markdown projection report to PATH")
    _add_stack_arguments(endure)
    _add_telemetry_arguments(endure)

    arena = commands.add_parser(
        "arena",
        help="policy tournament: paper SWL vs challenger wear levelers",
    )
    arena.add_argument("--levelers", nargs="+",
                       choices=list(DEFAULT_ROSTER),
                       default=list(DEFAULT_ROSTER),
                       help="roster entries to race "
                            f"(default: {' '.join(DEFAULT_ROSTER)})")
    arena.add_argument("--workloads", nargs="+", choices=SHAPE_NAMES,
                       default=list(DEFAULT_WORKLOADS),
                       help="workload shapes of the matrix "
                            f"(default: {' '.join(DEFAULT_WORKLOADS)})")
    arena.add_argument("--horizon-days", type=float, default=0.25,
                       help="replay horizon per cell in simulated days "
                            "(default: 0.25)")
    arena.add_argument("--rate", type=float, default=4.0,
                       help="workload request rate in req/s (default: 4)")
    arena.add_argument("--service-requests", type=int, default=2000,
                       help="requests in the p99 service soak "
                            "(default: 2000)")
    arena.add_argument("--no-faults", action="store_true",
                       help="skip the per-leveler fault campaign")
    arena.add_argument("--workers", type=int, default=None,
                       help="worker processes for the workload matrix "
                            "(default: serial)")
    arena.add_argument("--driver", choices=("ftl", "nftl"), default="ftl",
                       help="translation layer (default: ftl)")
    arena.add_argument("--blocks", type=int, default=64,
                       help="simulated chip size in blocks (default: 64)")
    arena.add_argument("--scale", type=int, default=5,
                       help="endurance scale: cycles = 10000/scale "
                            "(default: 5)")
    arena.add_argument("--seed", type=int, default=0, help="master seed")
    arena.add_argument("--report", metavar="PATH",
                       help="also write the markdown leaderboard to PATH")
    arena.add_argument("--json", metavar="PATH",
                       help="also write the full arena result as JSON to "
                            "PATH")

    faults = commands.add_parser(
        "faults", help="run a fault-injection and crash-consistency campaign"
    )
    faults.add_argument("--erase-fail-prob", type=float, default=0.02,
                        help="transient erase-failure probability (default: 0.02)")
    faults.add_argument("--erase-weibull-shape", type=float, default=None,
                        help="wear-dependent erase hazard shape; omit for a "
                             "flat rate")
    faults.add_argument("--program-fail-prob", type=float, default=0.001,
                        help="per-program grown-bad probability (default: 0.001)")
    faults.add_argument("--read-ber", type=float, default=1e-8,
                        help="raw read bit-error rate (default: 1e-8)")
    faults.add_argument("--soak-writes", type=int, default=2000,
                        help="host writes in the transient-fault soak "
                             "(default: 2000)")
    faults.add_argument("--loss-points", type=int, default=50,
                        help="power-loss points swept in the crash phase "
                             "(default: 50)")
    faults.add_argument("--report", metavar="PATH",
                        help="also write a markdown campaign report to PATH")
    _add_stack_arguments(faults)
    return parser


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def _command_generate(args: argparse.Namespace) -> int:
    params = WorkloadParams(
        total_sectors=args.sectors, duration=args.days * DAY, seed=args.seed
    )
    workload = make_workload(params)
    trace = workload.prefill_requests() + workload.requests()
    count = save_trace(args.output, trace)
    summary = summarize(trace, params.total_sectors)
    print(f"wrote {count} requests to {args.output}")
    print(f"  written LBA coverage: {100 * summary.written_lba_fraction:.2f}%")
    print(f"  write rate: {summary.write_rate:.2f}/s, "
          f"read rate: {summary.read_rate:.2f}/s")
    return 0


def _spec(args: argparse.Namespace) -> ExperimentSpec:
    geometry = scaled_mlc2_geometry(args.blocks, scale=args.scale)
    swl = None if args.no_swl else SWLConfig(threshold=args.threshold, k=args.k)
    return ExperimentSpec(
        args.driver, geometry, swl, seed=args.seed,
        channels=args.channels, striping=args.striping,
        swl_scope=args.swl_scope,
    )


def _slugify(label: str) -> str:
    """A label as a safe directory name (``NFTL+SWL(T=100,k=0)`` etc.)."""
    return re.sub(r"[^A-Za-z0-9._+=-]+", "_", label)


def _make_telemetry(
    args: argparse.Namespace, run_name: str, directory: str | None = None
) -> Telemetry | None:
    """Telemetry per the command's ``--telemetry``/``--trace-out`` flags.

    Heatmaps default to one per simulated day — first-failure horizons
    are open-ended, and the engine's decimation bounds the series.
    """
    if not (args.telemetry or args.trace_out):
        return None
    if directory is None:
        directory = args.trace_out
    if directory is not None:
        return Telemetry.to_directory(
            directory, run_name=run_name, heatmap_interval=DAY
        )
    return Telemetry(run_name=run_name, heatmap_interval=DAY)


def _print_telemetry_summary(
    telemetry: Telemetry, heatmaps: int
) -> None:
    files = telemetry.finish()
    snapshot = telemetry.snapshot()
    rows: list[list[object]] = [
        ["metrics collected",
         len(snapshot.counters) + len(snapshot.gauges)
         + len(snapshot.histograms)],
        ["wear heatmaps", heatmaps],
    ]
    if telemetry.jsonl is not None:
        rows.append(["events traced", telemetry.jsonl.records_written])
    for kind, path in files.items():
        rows.append([f"{kind} file", str(path)])
    print()
    print(format_table(["telemetry", "value"], rows, title="Telemetry"))
    if "chrome" in files:
        print(f"  open {files['chrome']} in Perfetto (https://ui.perfetto.dev)")


def _command_simulate(args: argparse.Namespace) -> int:
    spec = _spec(args)
    if args.trace:
        trace = load_trace(args.trace)
        warmup = None
    else:
        params = workload_params_for(
            spec, duration=args.days * DAY, seed=args.seed + 1
        )
        workload = make_workload(params)
        trace = workload.requests()
        warmup = workload.prefill_requests()
    telemetry = _make_telemetry(args, spec.label())
    result = run_until_first_failure(
        spec, trace, warmup=warmup, telemetry=telemetry
    )
    distribution = result.erase_distribution
    rows: list[list[object]] = [
        ["configuration", result.label],
        ["first failure (simulated days)",
         round((result.first_failure_time or 0.0) / DAY, 3)],
        ["total block erases", result.total_erases],
        ["live-page copies", result.live_page_copies],
        ["erase avg / dev / max",
         f"{distribution.average:.0f} / {distribution.deviation:.0f} / "
         f"{distribution.maximum}"],
    ]
    print(format_table(["metric", "value"], rows, title="Simulation report"))
    if result.shard_erase_distributions:
        shard_rows: list[list[object]] = [
            [f"shard {index}", f"{dist.average:.0f}",
             f"{dist.deviation:.0f}", dist.maximum, dist.total]
            for index, dist in enumerate(result.shard_erase_distributions)
        ]
        shard_rows.append(
            ["merged", f"{distribution.average:.0f}",
             f"{distribution.deviation:.0f}", distribution.maximum,
             distribution.total]
        )
        print()
        print(format_table(
            ["shard", "erase avg", "dev", "max", "total"],
            shard_rows,
            title=f"Per-shard erase distributions ({result.channels} channels)",
        ))
    if telemetry is not None:
        _print_telemetry_summary(telemetry, len(result.heatmaps))
    return 0


def _supervised_sweep(
    args: argparse.Namespace,
    specs: list[ExperimentSpec],
    trace: list,
    warmup: list,
) -> int:
    """``repro sweep --resume DIR``: the sweep as a supervised campaign."""
    from repro.ckpt.supervisor import SupervisorPolicy, run_supervised_matrix
    from repro.sim.reporting import campaign_markdown_report

    report = run_supervised_matrix(
        specs,
        trace,
        warmup=warmup,
        workers=args.workers,
        policy=SupervisorPolicy(
            workdir=args.resume,
            max_attempts=args.max_attempts,
            timeout=args.timeout,
        ),
    )
    baseline = report.cells[0].result
    rows: list[list[object]] = []
    for cell in report.cells:
        if cell.result is None:
            rows.append([cell.label, "quarantined", "-", cell.attempts])
            continue
        failure_days = round(cell.result.first_failure_time / DAY, 3)
        if cell.result is baseline or baseline is None:
            gain = "-"
        else:
            gain = f"{improvement_ratio(cell.result.first_failure_time, baseline.first_failure_time):+.1f}%"
        rows.append([cell.label, failure_days, gain, cell.attempts])
    print(format_table(
        ["Configuration", "First failure (days)", "vs baseline", "Attempts"],
        rows,
        title=f"Supervised first-failure sweep, {args.driver.upper()} "
              f"({args.blocks} blocks, endurance {10_000 // args.scale})",
    ))
    for cell in report.quarantined:
        print(f"  quarantined: {cell.label} after {cell.attempts} "
              f"attempt(s): {cell.error}")
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(campaign_markdown_report(
                report,
                title=f"{args.driver.upper()} first-failure sweep",
            ))
        print(f"\nmarkdown report written to {args.report}")
    print(f"campaign state kept in {args.resume}/ "
          "(re-run with the same --resume to continue)")
    return 0 if report.ok else 1


def _command_sweep(args: argparse.Namespace) -> int:
    spec = _spec(args)
    params = workload_params_for(spec, duration=1.0 * DAY, seed=args.seed + 1)
    workload = make_workload(params)
    trace = workload.requests()
    warmup = workload.prefill_requests()
    if args.resume:
        specs = [replace(spec, swl=None)] + [
            replace(spec, swl=SWLConfig(threshold=threshold, k=k))
            for threshold in args.thresholds
            for k in args.ks
        ]
        return _supervised_sweep(args, specs, trace, warmup)
    def cell_telemetry(label: str) -> Telemetry | None:
        # One artifact directory per sweep cell; a bare --telemetry has
        # nowhere to put a whole sweep's traces, so it needs --trace-out.
        if not args.trace_out:
            return None
        return _make_telemetry(
            args, label, directory=str(Path(args.trace_out) / _slugify(label))
        )

    if args.telemetry and not args.trace_out:
        print("sweep telemetry needs --trace-out DIR (one artifact set "
              "per configuration); continuing without telemetry",
              file=sys.stderr)
    baseline_spec = replace(spec, swl=None)
    baseline_telemetry = cell_telemetry(baseline_spec.label())
    baseline = run_until_first_failure(
        baseline_spec, trace, warmup=warmup, telemetry=baseline_telemetry
    )
    if baseline_telemetry is not None:
        baseline_telemetry.finish()
    results = [baseline]
    rows: list[list[object]] = [
        [baseline.label, round(baseline.first_failure_time / DAY, 3), "-"]
    ]
    for threshold in args.thresholds:
        for k in args.ks:
            point = replace(spec, swl=SWLConfig(threshold=threshold, k=k))
            telemetry = cell_telemetry(point.label())
            result = run_until_first_failure(
                point, trace, warmup=warmup, telemetry=telemetry
            )
            if telemetry is not None:
                telemetry.finish()
            results.append(result)
            gain = improvement_ratio(
                result.first_failure_time, baseline.first_failure_time
            )
            rows.append(
                [result.label, round(result.first_failure_time / DAY, 3),
                 f"{gain:+.1f}%"]
            )
    print(format_table(
        ["Configuration", "First failure (days)", "vs baseline"],
        rows,
        title=f"First-failure sweep, {args.driver.upper()} "
              f"({args.blocks} blocks, endurance {10_000 // args.scale})",
    ))
    if args.report:
        save_report(
            args.report, results,
            title=f"{args.driver.upper()} first-failure sweep",
        )
        print(f"\nmarkdown report written to {args.report}")
    if args.trace_out:
        print(f"telemetry artifacts written under {args.trace_out}/")
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    spec = _spec(args)
    params = workload_params_for(
        spec, duration=args.days * DAY, seed=args.seed + 1
    )
    workload = make_workload(params)
    trace = workload.requests()
    warmup = workload.prefill_requests()
    horizon = args.hours * 3600.0
    telemetry = Telemetry.to_directory(
        args.output,
        run_name=spec.label(),
        log_events=args.log_events,
        heatmap_bins=args.heatmap_bins,
        heatmap_interval=args.heatmap_interval or horizon / 16,
    )
    result = run_fixed_horizon(
        spec, trace, horizon, warmup=warmup, telemetry=telemetry
    )
    distribution = result.erase_distribution
    print(format_table(
        ["metric", "value"],
        [
            ["configuration", result.label],
            ["simulated hours", round(result.sim_time / 3600.0, 2)],
            ["requests replayed", result.requests],
            ["total block erases", result.total_erases],
            ["erase avg / dev / max",
             f"{distribution.average:.0f} / {distribution.deviation:.0f} / "
             f"{distribution.maximum}"],
        ],
        title="Traced replay",
    ))
    _print_telemetry_summary(telemetry, len(result.heatmaps))
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    spec = _spec(args)
    params = workload_params_for(
        spec, duration=args.days * DAY, seed=args.seed + 1
    )
    workload = make_workload(params)
    trace = workload.requests()
    warmup = workload.prefill_requests()
    if args.mode == "poisson":
        rate = args.rate or open_loop_rate(args.clients, args.think_time)
        speedup = None
        arrival_note = f"poisson, {rate:.1f} req/s"
    else:
        rate = None
        speedup = args.speedup
        arrival_note = f"trace-paced, speedup x{speedup:g}"
    max_time = args.hours * 3600.0 if args.hours is not None else None

    def soak(cell: ExperimentSpec, telemetry: Telemetry | None):
        return run_service_soak(
            cell, trace,
            rate=rate, trace_speedup=speedup,
            max_requests=args.requests, max_time=max_time,
            queue_depth=args.depth, warmup=warmup, telemetry=telemetry,
        )

    telemetry = None
    if args.compare:
        if (args.telemetry or args.trace_out) and not args.trace_out:
            print("compare-mode telemetry needs --trace-out DIR (one "
                  "artifact set per configuration); continuing without "
                  "telemetry", file=sys.stderr)
        cells = [replace(spec, swl=None)] + [
            replace(spec, swl=SWLConfig(threshold=threshold, k=args.k))
            for threshold in args.thresholds
        ]
        results = []
        for cell in cells:
            cell_telemetry = None
            if args.trace_out:
                cell_telemetry = _make_telemetry(
                    args, cell.label(),
                    directory=str(Path(args.trace_out) / _slugify(cell.label())),
                )
            results.append(soak(cell, cell_telemetry))
            if cell_telemetry is not None:
                cell_telemetry.finish()
    else:
        telemetry = _make_telemetry(args, spec.label())
        results = [soak(spec, telemetry)]

    print(format_latency(
        results,
        title=f"Service soak ({arrival_note}, queue depth {args.depth})",
    ))
    for result in results:
        print()
        print(format_channel_latency(result))
    if args.report:
        save_service_report(args.report, results)
        print(f"\nmarkdown report written to {args.report}")
    if telemetry is not None:
        _print_telemetry_summary(telemetry, len(results[0].replay.heatmaps))
    elif args.trace_out:
        print(f"telemetry artifacts written under {args.trace_out}/")
    return 0


#: Shapes cycled over the tenants of ``repro endure --tenants N`` — the
#: first three give the canonical demo: a hotspot tenant, a
#: phase-shifting one, and a mixed read/write one.
_TENANT_SHAPE_CYCLE = ("hotspot", "phase", "mixed")


def _command_endure(args: argparse.Namespace) -> int:
    spec = _spec(args)
    channel_counts = sorted({1, args.channels})
    swl_variants: list[SWLConfig | None] = [None]
    if not args.no_swl:
        swl_variants.append(SWLConfig(threshold=args.threshold, k=args.k))
    specs = [
        replace(spec, swl=swl, channels=count)
        for count in channel_counts
        for swl in swl_variants
    ]
    cells = endurance_cells(list(args.shapes), specs)
    results = [
        result
        for result in run_endurance_matrix(
            cells,
            horizon=args.horizon_days * DAY,
            rate=args.rate,
            theta=args.theta,
            period=args.period,
            seed=args.seed,
            workers=args.workers,
        )
        if result is not None
    ]
    # SWL-on cells report their TBW gain over the matching SWL-off cell
    # (same workload, same channel count).
    swl_off_tbw = {
        (r.cell.workload, r.cell.spec.channels): r.projection.tbw_bytes
        for r in results
        if r.cell.spec.swl is None
    }
    gb = 1e9
    rows: list[list[object]] = []
    for result in results:
        projection = result.projection
        key = (result.cell.workload, result.cell.spec.channels)
        if result.cell.spec.swl is None or key not in swl_off_tbw:
            gain = "—"
        else:
            gain = f"{(projection.tbw_bytes / swl_off_tbw[key] - 1) * 100:+.1f}%"
        rows.append([
            projection.label,
            f"{projection.waf:.3f}",
            projection.erase_maximum,
            f"{projection.wear_skew:.2f}",
            f"{projection.tbw_bytes / gb:.2f}",
            f"{projection.days_at_one_dwpd:.1f}",
            f"{projection.projected_first_failure_days:.1f}",
            gain,
        ])
    print(format_table(
        ["Cell", "WAF", "Erase max", "Skew", "TBW (GB)",
         "Days @1 DWPD", "First failure (d)", "SWL TBW gain"],
        rows,
        title=f"Endurance projections ({args.blocks} blocks/channel, "
              f"endurance {10_000 // args.scale}, "
              f"{args.horizon_days:g}-day horizon)",
    ))

    tenants = None
    tenant_replay = None
    status = 0
    if args.tenants > 0:
        tenant_spec = specs[-1]  # SWL-on (unless --no-swl) at --channels
        sectors = logical_sectors_of(tenant_spec)
        tenant_specs = [
            TenantSpec(
                name=f"tenant{index}-{_TENANT_SHAPE_CYCLE[index % 3]}",
                shape=make_shape(
                    _TENANT_SHAPE_CYCLE[index % 3],
                    ShapeParams(
                        total_sectors=sectors,
                        rate=args.rate,
                        seed=args.seed + index,
                    ),
                    theta=args.theta,
                    period=args.period,
                ),
                weight=1.0 + 0.5 * index,
            )
            for index in range(args.tenants)
        ]
        workload = MultiTenantWorkload(
            tenant_specs, sectors, policy=args.tenant_policy, seed=args.seed
        )
        telemetry = _make_telemetry(
            args, f"{tenant_spec.label()}-tenants{args.tenants}"
        )
        attribution = run_multi_tenant_replay(
            tenant_spec,
            workload,
            max_requests=args.tenant_requests,
            telemetry=telemetry,
        )
        tenants = attribution.tenants
        tenant_replay = attribution.replay
        tenant_rows: list[list[object]] = [
            [t.name, t.requests, t.pages_written, t.erases,
             f"{t.busy_time:.3f}"]
            for t in tenants
        ]
        tenant_rows.append([
            "device", tenant_replay.requests, tenant_replay.pages_written,
            tenant_replay.total_erases,
            f"{tenant_replay.device_busy_time:.3f}",
        ])
        print()
        print(format_table(
            ["Tenant", "Requests", "Pages written", "Erases", "Busy (s)"],
            tenant_rows,
            title=f"Per-tenant attribution ({tenant_replay.label}, "
                  f"policy {args.tenant_policy})",
        ))
        errors = attribution.conservation_errors()
        if errors:
            status = 1
            for error in errors:
                print(f"  conservation violation: {error}", file=sys.stderr)
        else:
            print("  conservation: per-tenant sums equal device totals")
        if telemetry is not None:
            _print_telemetry_summary(telemetry, len(tenant_replay.heatmaps))
    elif args.telemetry or args.trace_out:
        print("endure telemetry attaches to the multi-tenant replay; "
              "pass --tenants N to enable it", file=sys.stderr)

    if args.report:
        save_endurance_report(
            args.report, results, tenants=tenants, tenant_replay=tenant_replay
        )
        print(f"\nmarkdown report written to {args.report}")
    return status


def _command_arena(args: argparse.Namespace) -> int:
    geometry = scaled_mlc2_geometry(args.blocks, scale=args.scale)
    result = run_arena(
        geometry,
        args.driver,
        workloads=args.workloads,
        levelers=args.levelers,
        horizon=args.horizon_days * DAY,
        rate=args.rate,
        seed=args.seed,
        workers=args.workers,
        service_requests=args.service_requests,
        run_faults=not args.no_faults,
    )
    print(arena_console_table(result))
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(arena_report(result))
        print(f"\nmarkdown leaderboard written to {args.report}")
    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump(result.as_dict(), handle, indent=2)
            handle.write("\n")
        print(f"arena JSON written to {args.json}")
    return 0 if all(entry.faults_ok for entry in result.leaderboard) else 1


def _command_faults(args: argparse.Namespace) -> int:
    if args.channels != 1:
        print("the faults campaign drives a single-channel stack; "
              "--channels must be 1", file=sys.stderr)
        return 2
    geometry = scaled_mlc2_geometry(args.blocks, scale=args.scale)
    swl = None if args.no_swl else SWLConfig(threshold=args.threshold, k=args.k)
    plan = FaultPlan(
        seed=args.seed + 1,
        erase_fail_prob=args.erase_fail_prob,
        erase_weibull_shape=args.erase_weibull_shape,
        program_fail_prob=args.program_fail_prob,
        read_ber=args.read_ber,
    )
    result = run_fault_campaign(
        geometry,
        args.driver,
        swl,
        plan=plan,
        seed=args.seed,
        soak_writes=args.soak_writes,
        loss_points=args.loss_points,
    )
    crash = result.crash_report
    recovery = result.recovery_summary()
    print(format_table(
        ["metric", "value"],
        [
            ["configuration", result.label],
            ["verdict", "PASS" if result.ok else "FAIL"],
            ["soak writes acknowledged", result.soak_writes],
            ["blocks retired", result.retired_blocks],
            ["erase faults injected",
             result.injector_stats.get("erase_faults", 0)],
            ["program faults injected",
             result.injector_stats.get("program_faults", 0)],
            ["read errors corrected",
             result.injector_stats.get("read_errors_corrected", 0)],
            ["unrecovered faults", result.unrecovered_faults],
            ["recovery copies", recovery.recovery_copies],
            ["recovery erase overhead",
             f"{recovery.recovery_erase_overhead:.2f}%"],
            ["loss points swept / fired",
             f"{len(crash.verdicts)} / {crash.crashes}"],
            ["invariant violations", len(result.violations)],
        ],
        title="Fault campaign report",
    ))
    for violation in result.violations:
        print(f"  violation: {violation}")
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(fault_campaign_report(result))
        print(f"\nmarkdown report written to {args.report}")
    return 0 if result.ok else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.log_level:
        configure_logging(args.log_level, channels=args.log_channel)
    handlers = {
        "generate-trace": _command_generate,
        "simulate": _command_simulate,
        "sweep": _command_sweep,
        "serve": _command_serve,
        "arena": _command_arena,
        "endure": _command_endure,
        "faults": _command_faults,
        "trace": _command_trace,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
