"""Trace statistics.

Computes the aggregate numbers the paper reports about its trace (Section
5.1) from any request sequence, so a synthetic trace can be validated
against the published targets: written-LBA coverage 36.62 %, 1.82 writes/s,
1.97 reads/s.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.traces.model import Request, TraceSummary


def summarize(requests: Sequence[Request], total_sectors: int) -> TraceSummary:
    """Aggregate statistics of a trace over a ``total_sectors`` LBA space.

    Distinct-written-LBA counting is interval-based, so month-long traces
    summarize in seconds without building a 2M-element set.
    """
    if not requests:
        raise ValueError("empty trace")
    if total_sectors <= 0:
        raise ValueError(f"total_sectors must be positive, got {total_sectors}")
    num_reads = 0
    num_writes = 0
    sectors_read = 0
    sectors_written = 0
    write_intervals: list[tuple[int, int]] = []
    for request in requests:
        if request.is_write():
            num_writes += 1
            sectors_written += request.sectors
            write_intervals.append((request.lba, request.end_lba))
        else:
            num_reads += 1
            sectors_read += request.sectors
    duration = requests[-1].time - requests[0].time
    if duration <= 0:
        duration = 1e-9  # degenerate single-instant trace
    return TraceSummary(
        duration=duration,
        num_reads=num_reads,
        num_writes=num_writes,
        written_lba_fraction=_covered(write_intervals) / total_sectors,
        read_rate=num_reads / duration,
        write_rate=num_writes / duration,
        total_sectors_written=sectors_written,
        total_sectors_read=sectors_read,
    )


def _covered(intervals: list[tuple[int, int]]) -> int:
    """Total length of the union of half-open intervals."""
    if not intervals:
        return 0
    intervals.sort()
    covered = 0
    current_start, current_end = intervals[0]
    for start, end in intervals[1:]:
        if start > current_end:
            covered += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    return covered + (current_end - current_start)


def write_frequency_by_region(
    requests: Iterable[Request],
    total_sectors: int,
    *,
    num_regions: int = 100,
) -> list[int]:
    """Write-op counts per equal-size address region (hot/cold skew view)."""
    if num_regions <= 0:
        raise ValueError("num_regions must be positive")
    region_size = max(1, total_sectors // num_regions)
    counts: Counter[int] = Counter()
    for request in requests:
        if request.is_write():
            counts[min(request.lba // region_size, num_regions - 1)] += 1
    return [counts.get(region, 0) for region in range(num_regions)]


def sequentiality(requests: Sequence[Request], *, window: int = 1) -> float:
    """Fraction of write requests that continue a recent write's run.

    A proxy for the paper's observation that "hot data were often written
    in burst" — high sequentiality means whole blocks turn invalid
    together, which is what keeps FTL's baseline copy cost low.

    ``window`` is how many preceding writes count as "recent": 1 detects
    only strictly back-to-back runs; a larger window also catches streams
    that interleave (several files being written concurrently), which is
    how bursts appear in real multi-stream traces.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    writes = [request for request in requests if request.is_write()]
    if len(writes) < 2:
        return 0.0
    recent_ends: list[int] = []
    sequential = 0
    for request in writes:
        if request.lba in recent_ends:
            sequential += 1
        recent_ends.append(request.end_lba)
        if len(recent_ends) > window:
            recent_ends.pop(0)
    return sequential / (len(writes) - 1)
