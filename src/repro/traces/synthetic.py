"""Additional synthetic workload families.

The paper evaluates on one desktop trace; a library user will want to
know how static wear leveling behaves under other access patterns.  This
module provides three classic block-workload generators sharing the
:class:`repro.traces.model.Request` stream interface of the mobile-PC
generator:

* :class:`UniformWorkload` — uniformly random writes over the space;
  no skew, so dynamic wear leveling alone suffices (SWL's null case).
* :class:`ZipfianWorkload` — Zipf-distributed write popularity with a
  pinned cold tail; a knob between "uniform" and "pathological".
* :class:`SequentialLogWorkload` — an append-only circular log (e.g., a
  DVR or sensor logger) plus a pinned firmware image; the cold image is
  the only thing SWL needs to move.

All generators are seeded, deterministic, and expose
``prefill_requests()`` for warm-started experiments, matching
:class:`~repro.traces.generator.MobilePCWorkload`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.traces.model import Op, Request
from repro.util.rng import make_rng


@dataclass(frozen=True)
class SyntheticParams:
    """Common knobs of the synthetic workload family."""

    total_sectors: int
    duration: float
    write_rate: float = 10.0          #: write ops per second
    request_sectors: int = 8          #: sectors per write
    pinned_fraction: float = 0.5      #: space written once, never again
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.total_sectors <= 0:
            raise ValueError("total_sectors must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.write_rate <= 0:
            raise ValueError("write_rate must be positive")
        if self.request_sectors < 1:
            raise ValueError("request_sectors must be >= 1")
        if not 0.0 <= self.pinned_fraction < 1.0:
            raise ValueError("pinned_fraction must be in [0, 1)")

    @property
    def pinned_sectors(self) -> int:
        """Sectors occupied by the write-once region (lowest addresses)."""
        return int(self.total_sectors * self.pinned_fraction)

    @property
    def active_sectors(self) -> int:
        return self.total_sectors - self.pinned_sectors


class _SyntheticBase:
    """Shared clockwork: Poisson arrivals over the active region."""

    def __init__(self, params: SyntheticParams) -> None:
        self.params = params
        self._rng: random.Random = make_rng(params.seed)

    def prefill_requests(self, *, at: float = 0.0) -> list[Request]:
        """Install the pinned region (the data SWL must keep moving)."""
        image: list[Request] = []
        step = self.params.request_sectors
        for start in range(0, self.params.pinned_sectors, step):
            sectors = min(step, self.params.pinned_sectors - start)
            image.append(Request(at, Op.WRITE, start, sectors))
        return image

    def _next_lba(self) -> int:
        raise NotImplementedError

    def iter_requests(self) -> Iterator[Request]:
        params = self.params
        time = self._rng.expovariate(params.write_rate)
        while time < params.duration:
            lba = self._next_lba()
            sectors = min(params.request_sectors, params.total_sectors - lba)
            yield Request(time, Op.WRITE, lba, sectors)
            time += self._rng.expovariate(params.write_rate)

    def requests(self) -> list[Request]:
        return list(self.iter_requests())


class UniformWorkload(_SyntheticBase):
    """Uniformly random writes over the active (non-pinned) region."""

    def _next_lba(self) -> int:
        params = self.params
        span = max(1, params.active_sectors - params.request_sectors + 1)
        return params.pinned_sectors + self._rng.randrange(span)


@dataclass
class ZipfianWorkload(_SyntheticBase):
    """Zipf-popularity writes: a few chunks absorb most traffic.

    The active region is divided into ``request_sectors``-sized chunks;
    chunk ``i`` (in a seeded random permutation) is written with
    probability proportional to ``1 / (i + 1) ** alpha``.
    """

    params: SyntheticParams
    alpha: float = 1.0
    _chunks: list[int] = field(init=False)
    _cdf: list[float] = field(init=False)

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        _SyntheticBase.__init__(self, self.params)
        params = self.params
        count = max(1, params.active_sectors // params.request_sectors)
        self._chunks = list(range(count))
        self._rng.shuffle(self._chunks)
        weights = [1.0 / (rank + 1) ** self.alpha for rank in range(count)]
        total = sum(weights)
        running = 0.0
        self._cdf = []
        for weight in weights:
            running += weight / total
            self._cdf.append(running)

    def _next_lba(self) -> int:
        point = self._rng.random()
        lo, hi = 0, len(self._cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < point:
                lo = mid + 1
            else:
                hi = mid
        chunk = self._chunks[lo]
        return self.params.pinned_sectors + chunk * self.params.request_sectors


class SequentialLogWorkload(_SyntheticBase):
    """Append-only circular log over the active region (DVR, logger)."""

    def __init__(self, params: SyntheticParams) -> None:
        super().__init__(params)
        self._cursor = 0

    def _next_lba(self) -> int:
        params = self.params
        if self._cursor + params.request_sectors > params.active_sectors:
            self._cursor = 0
        lba = params.pinned_sectors + self._cursor
        self._cursor += params.request_sectors
        return lba


def theoretical_skew(workload: _SyntheticBase, samples: int = 10_000) -> float:
    """Empirical write-popularity skew: top-decile share of writes.

    0.1 means perfectly uniform (the top 10% of chunks get 10% of
    writes); values near 1.0 mean extreme concentration.
    """
    from collections import Counter

    counts: Counter[int] = Counter()
    for _ in range(samples):
        counts[workload._next_lba()] += 1
    ordered = sorted(counts.values(), reverse=True)
    top = ordered[: max(1, math.ceil(len(ordered) / 10))]
    return sum(top) / samples
