"""Deriving a virtually unlimited trace from a finite one.

Paper Section 5.1: "In order to come out the first failure time of FTL and
NFTL, a virtually unlimited experiment trace was also derived based on the
collected trace by randomly picking up any 10-minute trace segment in the
trace."  :class:`SegmentResampler` implements exactly that: it indexes the
base trace, then emits an endless stream of randomly chosen 10-minute
windows with timestamps re-based so simulated time advances monotonically
by one segment length per segment.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.traces.model import Request
from repro.util.rng import make_rng

#: The paper's segment length: 10 minutes.
SEGMENT_SECONDS = 600.0


@dataclass
class SegmentResampler:
    """Endless trace built from random fixed-length segments of a base trace.

    Parameters
    ----------
    base:
        The finite base trace, time-ordered.
    segment:
        Segment length in seconds (paper: 600).
    rng:
        Seeded randomness for segment starts.

    Notes
    -----
    Segment boundaries land anywhere in ``[0, duration - segment]``; empty
    segments (quiet periods of the base trace) still advance simulated time
    by a full segment, so long-run request rates match the base trace.
    """

    base: Sequence[Request]
    segment: float = SEGMENT_SECONDS
    rng: random.Random | None = None

    def __post_init__(self) -> None:
        if not self.base:
            raise ValueError("base trace is empty")
        if self.segment <= 0:
            raise ValueError(f"segment length must be positive, got {self.segment}")
        times = [request.time for request in self.base]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("base trace is not time-ordered")
        self._times = times
        self.duration = times[-1]
        if self.duration < self.segment:
            raise ValueError(
                f"base trace covers {self.duration:.0f}s, shorter than one "
                f"{self.segment:.0f}s segment"
            )
        if self.rng is None:
            self.rng = make_rng(None)
        self.segments_emitted = 0

    def _segment_slice(self, start: float) -> tuple[int, int]:
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_left(self._times, start + self.segment)
        return lo, hi

    def next_segment(self) -> list[Request]:
        """Materialize the next segment's requests on the global clock.

        The segment's clock base is ``segments_emitted * segment`` — exact
        float arithmetic identical to the cumulative ``+= segment`` it
        replaced (the paper's 600.0 s segment is exactly representable, so
        ``n * 600.0`` equals the running sum bit for bit) — which is what
        lets a restored resampler resume mid-stream: ``segments_emitted``
        plus the RNG state fully determine every future request.
        """
        assert self.rng is not None
        clock = self.segments_emitted * self.segment
        start = self.rng.uniform(0.0, self.duration - self.segment)
        lo, hi = self._segment_slice(start)
        requests = [
            Request(
                time=clock + (request.time - start),
                op=request.op,
                lba=request.lba,
                sectors=request.sectors,
            )
            for request in self.base[lo:hi]
        ]
        self.segments_emitted += 1
        return requests

    def iter_requests(self) -> Iterator[Request]:
        """Yield requests forever; ``.time`` grows monotonically.

        Each emitted request keeps its offset within the chosen segment,
        shifted onto the global clock.
        """
        while True:
            yield from self.next_segment()

    def __iter__(self) -> Iterator[Request]:
        return self.iter_requests()

    # ------------------------------------------------------------------
    # Checkpointing (see repro.ckpt)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict[str, object]:
        """Freeze the stream position: segment count plus RNG state.

        Only valid at a segment boundary (between ``next_segment`` calls),
        which is where the checkpoint runner takes snapshots.
        """
        from repro.util.rng import rng_state_to_json

        assert self.rng is not None
        return {
            "base_len": len(self.base),
            "segment": self.segment,
            "segments_emitted": self.segments_emitted,
            "rng": rng_state_to_json(self.rng),
        }

    def restore_state(self, state: dict[str, object]) -> None:
        """Inverse of :meth:`snapshot_state`; rejects base-trace mismatches."""
        from repro.util.rng import rng_state_from_json

        if state["base_len"] != len(self.base):
            raise ValueError(
                f"resampler snapshot covers a base trace of "
                f"{state['base_len']} requests, this one has {len(self.base)}"
            )
        if state["segment"] != self.segment:
            raise ValueError(
                f"resampler snapshot segment {state['segment']} does not "
                f"match {self.segment}"
            )
        assert self.rng is not None
        self.segments_emitted = state["segments_emitted"]  # type: ignore[assignment]
        self.rng.setstate(rng_state_from_json(state["rng"]))  # type: ignore[arg-type]
