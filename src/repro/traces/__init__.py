"""Workload substrate: trace model, synthetic generator, resampling, I/O.

The paper's evaluation (Section 5.1) replays a month-long mobile-PC trace
and derives a "virtually unlimited" trace from it by resampling random
10-minute segments.  This package provides a faithful synthetic stand-in
(:mod:`repro.traces.generator` — see DESIGN.md, Substitutions), the
resampler (:mod:`repro.traces.extend`), trace files
(:mod:`repro.traces.io`), and validation statistics
(:mod:`repro.traces.stats`).
"""

from repro.traces.extend import SEGMENT_SECONDS, SegmentResampler
from repro.traces.generator import DAY, MONTH, MobilePCWorkload, WorkloadParams
from repro.traces.io import (
    iter_trace_binary,
    iter_trace_csv,
    load_trace,
    save_trace,
    save_trace_binary,
    save_trace_csv,
)
from repro.traces.model import Op, Request, TraceSummary
from repro.traces.stats import (
    sequentiality,
    summarize,
    write_frequency_by_region,
)
from repro.traces.synthetic import (
    SequentialLogWorkload,
    SyntheticParams,
    UniformWorkload,
    ZipfianWorkload,
)

__all__ = [
    "DAY",
    "MONTH",
    "MobilePCWorkload",
    "Op",
    "Request",
    "SEGMENT_SECONDS",
    "SegmentResampler",
    "SequentialLogWorkload",
    "SyntheticParams",
    "TraceSummary",
    "UniformWorkload",
    "WorkloadParams",
    "ZipfianWorkload",
    "iter_trace_binary",
    "iter_trace_csv",
    "load_trace",
    "save_trace",
    "save_trace_binary",
    "save_trace_csv",
    "sequentiality",
    "summarize",
    "write_frequency_by_region",
]
