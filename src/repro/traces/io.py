"""Trace file I/O.

Two interchangeable formats:

* **CSV** — one request per line (``time,op,lba,sectors``), human-readable,
  loads anywhere.
* **Binary** — fixed 24-byte little-endian records behind a 16-byte
  header; fixed-width, self-validating, and much faster to parse for
  month-long traces.

Both round-trip exactly through :func:`save_trace` / :func:`load_trace`,
which dispatch on the file extension (``.csv`` vs anything else).
"""

from __future__ import annotations

import csv
import struct
from pathlib import Path
from typing import Iterable, Iterator

from repro.traces.model import Op, Request

_MAGIC = b"FTRC"
_HEADER = struct.Struct("<4sIQ")       # magic, version, record count
_RECORD = struct.Struct("<dBxxxIQ")    # time, op, sectors, lba
_VERSION = 1


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------
def save_trace_csv(path: str | Path, requests: Iterable[Request]) -> int:
    """Write a trace as CSV; returns the number of records written."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "op", "lba", "sectors"])
        for request in requests:
            writer.writerow(
                [f"{request.time:.6f}", request.op.value, request.lba, request.sectors]
            )
            count += 1
    return count


def iter_trace_csv(path: str | Path) -> Iterator[Request]:
    """Stream a CSV trace without materializing it."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["time", "op", "lba", "sectors"]:
            raise ValueError(f"{path}: not a trace CSV (header {header})")
        for line_no, row in enumerate(reader, start=2):
            try:
                yield Request(
                    time=float(row[0]),
                    op=Op(row[1]),
                    lba=int(row[2]),
                    sectors=int(row[3]),
                )
            except (IndexError, ValueError) as exc:
                raise ValueError(f"{path}:{line_no}: malformed record {row}") from exc


# ----------------------------------------------------------------------
# Binary
# ----------------------------------------------------------------------
def save_trace_binary(path: str | Path, requests: Iterable[Request]) -> int:
    """Write a trace in the compact binary format; returns record count."""
    records = [
        _RECORD.pack(request.time, 1 if request.is_write() else 0,
                     request.sectors, request.lba)
        for request in requests
    ]
    with open(path, "wb") as handle:
        handle.write(_HEADER.pack(_MAGIC, _VERSION, len(records)))
        handle.writelines(records)
    return len(records)


def iter_trace_binary(path: str | Path) -> Iterator[Request]:
    """Stream a binary trace."""
    with open(path, "rb") as handle:
        header = handle.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise ValueError(f"{path}: truncated trace header")
        magic, version, count = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise ValueError(f"{path}: bad trace magic {magic!r}")
        if version != _VERSION:
            raise ValueError(f"{path}: unsupported trace version {version}")
        for index in range(count):
            raw = handle.read(_RECORD.size)
            if len(raw) != _RECORD.size:
                raise ValueError(f"{path}: truncated at record {index}/{count}")
            time, is_write, sectors, lba = _RECORD.unpack(raw)
            yield Request(
                time=time,
                op=Op.WRITE if is_write else Op.READ,
                lba=lba,
                sectors=sectors,
            )


# ----------------------------------------------------------------------
# Extension dispatch
# ----------------------------------------------------------------------
def save_trace(path: str | Path, requests: Iterable[Request]) -> int:
    """Save in the format implied by the extension (``.csv`` or binary)."""
    if str(path).endswith(".csv"):
        return save_trace_csv(path, requests)
    return save_trace_binary(path, requests)


def load_trace(path: str | Path) -> list[Request]:
    """Load a whole trace file (either format) into memory."""
    if str(path).endswith(".csv"):
        return list(iter_trace_csv(path))
    return list(iter_trace_binary(path))
