"""Synthetic mobile-PC workload generator.

The paper's trace is proprietary; this generator reproduces every property
the paper reports about it (Section 5.1) so that the wear-leveling
behaviour under study is preserved — see DESIGN.md, Substitutions:

* "about 36.62% of LBAs being written in the collected trace" —
  ``written_fraction`` of the sector space belongs to written extents;
  a pre-fill pass (the data already on the month-old machine) writes each
  extent once, so cold data *occupies* blocks from the start, which is the
  precondition for the static-wear-leveling problem.
* "the averaged number of write (/read) operations per second was 1.82
  (/1.97)" — Poisson arrivals at those rates.
* "daily activities, such as web surfing, email access, movie downloading
  and playing, game playing, and document editing" — a small hot subset of
  extents (browser caches, registry, documents being edited) absorbs most
  write traffic; a warm subset (downloads, new documents) sees the rest;
  and a *static* majority (installed software, the OS image, media files)
  is written once at pre-fill and never again.  Static data is what pins
  blocks under dynamic wear leveling — the phenomenon the SW Leveler
  exists to fix (paper Section 1: "blocks of cold data are likely to stay
  intact, regardless of how updates of non-cold data wear out other
  blocks"; and [7]: "the amount of non-hot data could be several times of
  that of hot data").
* "hot data were often written in burst" (Section 5.3, the reason FTL's
  baseline copying cost is tiny) — writes are sequential runs inside an
  extent, advancing a cyclic per-extent cursor, so hot blocks become fully
  invalid quickly.

Everything is driven by one seed; the same parameters and seed always
produce the identical trace.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator

from repro.traces.model import Op, Request
from repro.util.rng import make_rng

DAY = 86_400.0
MONTH = 30 * DAY


@dataclass(frozen=True)
class WorkloadParams:
    """Knobs of the synthetic mobile-PC workload.

    Defaults reproduce the statistics of the paper's trace on a
    configurable address-space size.
    """

    total_sectors: int = 2_097_152        #: paper: 2,097,152 LBAs (1 GiB)
    duration: float = MONTH               #: paper: one month
    write_rate: float = 1.82              #: write ops per second (paper)
    read_rate: float = 1.97               #: read ops per second (paper)
    written_fraction: float = 0.3662      #: fraction of LBAs ever written
    hot_fraction: float = 0.125           #: hot share of the *written* set
    static_fraction: float = 0.70         #: write-once share of the written set
    hot_write_share: float = 0.90         #: daily writes landing on hot extents
    mean_extent_sectors: int = 2048       #: mean warm extent (file) size
    mean_hot_extent_sectors: int = 1024   #: hot extents are small (caches)
    mean_static_extent_sectors: int = 8192  #: static extents are large (media)
    mean_write_sectors: int = 32          #: mean bulk-write request size
    mean_read_sectors: int = 32           #: mean read request size
    max_request_sectors: int = 256        #: request size cap
    small_write_fraction: float = 0.30    #: metadata-style small random writes
    small_write_max_sectors: int = 8      #: size cap of metadata writes
    cold_write_period: float = MONTH      #: mean time between static rewrites
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.total_sectors <= 0:
            raise ValueError("total_sectors must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if not 0.0 < self.written_fraction <= 1.0:
            raise ValueError("written_fraction must be in (0, 1]")
        if not 0.0 < self.hot_fraction < 1.0:
            raise ValueError("hot_fraction must be in (0, 1)")
        if not 0.0 <= self.static_fraction < 1.0:
            raise ValueError("static_fraction must be in [0, 1)")
        if self.hot_fraction + self.static_fraction >= 1.0:
            raise ValueError(
                "hot_fraction + static_fraction must leave room for warm data"
            )
        if not 0.0 <= self.hot_write_share <= 1.0:
            raise ValueError("hot_write_share must be in [0, 1]")
        if self.cold_write_period <= 0:
            raise ValueError("cold_write_period must be positive")
        if not 0.0 <= self.small_write_fraction <= 1.0:
            raise ValueError("small_write_fraction must be in [0, 1]")
        if self.small_write_max_sectors < 1:
            raise ValueError("small_write_max_sectors must be >= 1")
        for name in ("write_rate", "read_rate"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in (
            "mean_extent_sectors",
            "mean_hot_extent_sectors",
            "mean_static_extent_sectors",
            "mean_write_sectors",
            "mean_read_sectors",
            "max_request_sectors",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")


class Temperature(Enum):
    """Update temperature of a written extent."""

    HOT = "hot"        #: overwritten constantly (caches, logs, documents)
    WARM = "warm"      #: overwritten occasionally (downloads, new files)
    STATIC = "static"  #: written once at pre-fill, never again (OS, media)


@dataclass
class _Extent:
    """A contiguous written region (a file or system area) with a write
    cursor that makes successive writes sequential-cyclic inside it."""

    start: int
    length: int
    temperature: Temperature
    cursor: int = 0

    def next_run(self, sectors: int) -> tuple[int, int]:
        """Advance the cursor by ``sectors`` (clipped to the extent) and
        return the (lba, sectors) run it covered."""
        sectors = min(sectors, self.length)
        if self.cursor + sectors > self.length:
            self.cursor = 0
        lba = self.start + self.cursor
        self.cursor = (self.cursor + sectors) % self.length
        return lba, sectors


@dataclass
class MobilePCWorkload:
    """Seeded generator of mobile-PC style traces.

    Build once, then call :meth:`requests` for the finite base trace or
    iterate lazily with :meth:`iter_requests`.

    Examples
    --------
    >>> params = WorkloadParams(total_sectors=65536, duration=3600.0, seed=1)
    >>> trace = MobilePCWorkload(params).requests()
    >>> trace[0].time <= trace[-1].time
    True
    """

    params: WorkloadParams
    extents: list[_Extent] = field(init=False)
    _rng: random.Random = field(init=False)

    def __post_init__(self) -> None:
        self._rng = make_rng(self.params.seed)
        self.extents = self._layout_extents()
        self._hot = [e for e in self.extents if e.temperature is Temperature.HOT]
        self._warm = [e for e in self.extents if e.temperature is Temperature.WARM]

    # ------------------------------------------------------------------
    # Address-space layout
    # ------------------------------------------------------------------
    def _layout_extents(self) -> list[_Extent]:
        """Scatter written extents over the sector space.

        Extents are carved from a random permutation of fixed-size slots
        so they never overlap; sizes are geometric around the per-class
        mean.  Static extents (installed software, media files) are carved
        first with their larger size so they claim long contiguous runs —
        the spatial structure that makes the BET's one-to-many mode
        meaningful (paper Section 3.2: a flag per ``2^k`` *contiguous*
        blocks only overlooks cold data when hot data shares the set).
        Hot extents (caches, logs) are small and scattered.
        """
        p = self.params
        target_written = int(p.total_sectors * p.written_fraction)
        class_plan = (
            # carve order matters: big static runs first, then hot, warm.
            (Temperature.STATIC, p.static_fraction, p.mean_static_extent_sectors),
            (Temperature.HOT, p.hot_fraction, p.mean_hot_extent_sectors),
            (Temperature.WARM, None, p.mean_extent_sectors),
        )
        slot = max(64, min(mean for _, _, mean in class_plan) // 4)
        # Tiny address spaces (unit tests, miniature chips) still need
        # enough slots for all three temperature classes to coexist.
        slot = max(16, min(slot, p.total_sectors // 16))
        num_slots = p.total_sectors // slot
        if num_slots == 0:
            raise ValueError(
                f"total_sectors={p.total_sectors} too small for extent slots"
            )
        order = list(range(num_slots))
        self._rng.shuffle(order)
        used = bytearray(num_slots)
        extents: list[_Extent] = []
        carved = 0
        for temperature, fraction, mean in class_plan:
            if fraction is None:
                target = target_written - carved  # warm takes the remainder
            else:
                target = int(target_written * fraction)
            covered = 0
            for first in order:
                if covered >= target:
                    break
                if used[first]:
                    continue
                # Geometric number of consecutive slots ~ exponential
                # sizes; an extent stops early at a slot already taken.
                nslots = 1
                while (
                    self._rng.random() < 1.0 - slot / mean
                    and nslots * slot < 16 * mean
                    and first + nslots < num_slots
                    and not used[first + nslots]
                ):
                    nslots += 1
                for index in range(first, first + nslots):
                    used[index] = 1
                length = min(nslots * slot, target - covered)
                extents.append(
                    _Extent(start=first * slot, length=length,
                            temperature=temperature)
                )
                covered += length
            carved += covered
        if not any(e.temperature is Temperature.HOT for e in extents):
            # Tiny address spaces can let the static class (carved first)
            # claim every slot, leaving the hot class nothing.  The stream
            # generator requires at least one hot extent, so relabel the
            # smallest extent instead of failing.  No RNG draws happen on
            # this path: layouts that already have hot extents — every
            # previously working parameter set — are byte-identical.
            if not extents:
                raise ValueError(
                    "workload parameters produced no extents at all")
            smallest = min(extents, key=lambda e: (e.length, e.start))
            extents[extents.index(smallest)] = _Extent(
                start=smallest.start, length=smallest.length,
                temperature=Temperature.HOT)
        return extents

    # ------------------------------------------------------------------
    # Request stream
    # ------------------------------------------------------------------
    def _request_size(self, mean: int) -> int:
        size = 1 + int(self._rng.expovariate(1.0 / max(1, mean - 1)))
        return min(size, self.params.max_request_sectors)

    def prefill_requests(self, *, at: float = 0.0) -> list[Request]:
        """One sequential write over every extent — the disk image.

        The paper's machine had been in use before the trace started, so
        data already occupied the flash.  Experiment runners replay this
        image once before the resampled trace (`warmup`), giving static
        data blocks to pin from the very first simulated second.
        """
        image: list[Request] = []
        for extent in sorted(self.extents, key=lambda e: e.start):
            offset = 0
            while offset < extent.length:
                sectors = min(self.params.max_request_sectors, extent.length - offset)
                image.append(Request(at, Op.WRITE, extent.start + offset, sectors))
                offset += sectors
        return image

    def _static_write_schedule(self) -> list[tuple[float, _Extent]]:
        """One-time rewrites of static extents scattered over the trace.

        In the real trace, cold LBAs are written rarely — about once per
        ``cold_write_period`` (a software update, a saved movie).  Each
        static extent therefore gets a Poisson number of full rewrites
        with expectation ``duration / cold_write_period``, at uniform
        times.  Via the 10-minute resampler this reproduces the correct
        *density* of cold writes in the endless trace.
        """
        p = self.params
        expectation = p.duration / p.cold_write_period
        schedule: list[tuple[float, _Extent]] = []
        for extent in self.extents:
            if extent.temperature is not Temperature.STATIC:
                continue
            rewrites = self._poisson(expectation)
            for _ in range(rewrites):
                schedule.append((self._rng.uniform(0.0, p.duration), extent))
        schedule.sort(key=lambda item: item[0])
        return schedule

    def _poisson(self, expectation: float) -> int:
        """Small-expectation Poisson sample (Knuth's method)."""
        limit = math.exp(-expectation)
        count = 0
        product = self._rng.random()
        while product > limit:
            count += 1
            product *= self._rng.random()
        return count

    def _extent_rewrite(self, time: float, extent: _Extent) -> Iterator[Request]:
        """Sequentially rewrite a whole extent (a cold-data update burst)."""
        # The whole burst carries one timestamp so the stream stays
        # time-ordered regardless of how the burst interleaves with the
        # Poisson arrivals around it.
        offset = 0
        while offset < extent.length:
            sectors = min(self.params.max_request_sectors, extent.length - offset)
            yield Request(time, Op.WRITE, extent.start + offset, sectors)
            offset += sectors

    def iter_requests(self) -> Iterator[Request]:
        """Yield the base trace in time order.

        The stream interleaves Poisson hot/warm writes, Poisson reads, and
        the scattered one-time static rewrites.
        """
        p = self.params
        static_schedule = self._static_write_schedule()
        static_index = 0
        next_write = self._rng.expovariate(p.write_rate)
        next_read = self._rng.expovariate(p.read_rate)
        end = p.duration
        while True:
            time = min(next_write, next_read)
            while (
                static_index < len(static_schedule)
                and static_schedule[static_index][0] <= time
            ):
                when, extent = static_schedule[static_index]
                static_index += 1
                yield from self._extent_rewrite(when, extent)
            if time >= end:
                return
            if next_write <= next_read:
                next_write = time + self._rng.expovariate(p.write_rate)
                yield self._make_write(time)
            else:
                next_read = time + self._rng.expovariate(p.read_rate)
                yield self._make_read(time)

    def _make_write(self, time: float) -> Request:
        """One daily write: a sequential burst or a small metadata update.

        Bulk writes (file saves, downloads) advance the extent's cyclic
        cursor — the paper's "hot data were often written in burst".
        Metadata writes (directory entries, the NTFS MFT) are small and
        land at random offsets; they are what makes coarse-grained NFTL
        fold whole primary/replacement pairs for a handful of stale pages,
        while fine-grained FTL absorbs them at page granularity
        (Section 2.2's architectural contrast).
        """
        p = self.params
        pool = (
            self._hot
            if (self._rng.random() < p.hot_write_share and self._hot)
            else (self._warm or self._hot)
        )
        extent = self._rng.choice(pool)
        if self._rng.random() < p.small_write_fraction:
            sectors = self._rng.randint(1, min(p.small_write_max_sectors, extent.length))
            offset = self._rng.randrange(max(1, extent.length - sectors + 1))
            return Request(time, Op.WRITE, extent.start + offset, sectors)
        lba, sectors = extent.next_run(self._request_size(p.mean_write_sectors))
        return Request(time, Op.WRITE, lba, sectors)

    def _make_read(self, time: float) -> Request:
        # Reads touch the whole written set, mildly biased to hot data.
        pool = self._hot if (self._rng.random() < 0.5 and self._hot) else self.extents
        extent = self._rng.choice(pool)
        sectors = min(self._request_size(self.params.mean_read_sectors), extent.length)
        offset = self._rng.randrange(max(1, extent.length - sectors + 1))
        return Request(time, Op.READ, extent.start + offset, sectors)

    def requests(self) -> list[Request]:
        """Materialize the full base trace."""
        return list(self.iter_requests())

    # ------------------------------------------------------------------
    def written_sectors(self) -> int:
        """Total sectors belonging to written extents."""
        return sum(extent.length for extent in self.extents)

    def sectors_by_temperature(self) -> dict[Temperature, int]:
        """Written sectors per temperature class."""
        totals = {temperature: 0 for temperature in Temperature}
        for extent in self.extents:
            totals[extent.temperature] += extent.length
        return totals

    def hot_sectors(self) -> int:
        return self.sectors_by_temperature()[Temperature.HOT]

    def static_sectors(self) -> int:
        return self.sectors_by_temperature()[Temperature.STATIC]
