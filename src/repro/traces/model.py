"""Trace data model.

The paper's evaluation replays a block-level access trace "collected over a
mobile PC with a 20GB hard disk (by NTFS) for a month" (Section 5.1).  A
trace is a time-ordered sequence of sector-granular read/write requests;
this module defines that request record and the summary statistics the
paper reports about its trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Op(Enum):
    """Request direction."""

    READ = "R"
    WRITE = "W"


@dataclass(frozen=True, slots=True)
class Request:
    """One block-device request.

    Attributes
    ----------
    time:
        Issue time in seconds from the start of the trace.
    op:
        :class:`Op` direction.
    lba:
        First 512-byte sector addressed.
    sectors:
        Number of consecutive sectors transferred (>= 1).
    """

    time: float
    op: Op
    lba: int
    sectors: int = 1

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"negative request time {self.time}")
        if self.lba < 0:
            raise ValueError(f"negative LBA {self.lba}")
        if self.sectors < 1:
            raise ValueError(f"sectors must be >= 1, got {self.sectors}")

    @property
    def end_lba(self) -> int:
        """One past the last sector addressed."""
        return self.lba + self.sectors

    def is_write(self) -> bool:
        return self.op is Op.WRITE


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate statistics of a trace (the quantities of Section 5.1)."""

    duration: float              #: seconds covered
    num_reads: int
    num_writes: int
    written_lba_fraction: float  #: distinct written LBAs / address space
    read_rate: float             #: reads per second
    write_rate: float            #: writes per second
    total_sectors_written: int
    total_sectors_read: int

    def as_dict(self) -> dict[str, float]:
        return {
            "duration_s": self.duration,
            "num_reads": self.num_reads,
            "num_writes": self.num_writes,
            "written_lba_fraction": self.written_lba_fraction,
            "read_rate_per_s": self.read_rate,
            "write_rate_per_s": self.write_rate,
            "total_sectors_written": self.total_sectors_written,
            "total_sectors_read": self.total_sectors_read,
        }
