"""Deterministic random-number plumbing.

Every stochastic decision in the library — the random re-seeding of
``findex`` after a BET reset (Algorithm 1, step 6), the synthetic workload
generator, and the 10-minute segment resampler that derives the "virtually
unlimited" trace (paper Section 5.1) — draws from a ``random.Random``
instance created here, never from the global ``random`` module.  That makes
every simulation reproducible from a single integer seed.
"""

from __future__ import annotations

import random

#: Seed used by examples and benchmarks when the caller does not supply one.
DEFAULT_SEED = 20070604  # DAC 2007 opened on June 4, 2007.


def make_rng(seed: int | None = None) -> random.Random:
    """Create an isolated RNG.

    Parameters
    ----------
    seed:
        Any integer.  ``None`` selects :data:`DEFAULT_SEED` (not an
        OS-entropy seed) so that "I didn't pass a seed" still reproduces.
    """
    return random.Random(DEFAULT_SEED if seed is None else seed)


def rng_state_to_json(rng: random.Random) -> list:
    """Encode ``rng.getstate()`` as a JSON-friendly nested list.

    The Mersenne-Twister state is a ``(version, tuple-of-ints,
    gauss_next)`` triple — plain integers and an optional float — so a
    list round-trips it exactly.  Used by ``repro.ckpt`` to freeze every
    RNG stream into a checkpoint without pickling.
    """
    version, internal, gauss_next = rng.getstate()
    return [version, list(internal), gauss_next]


def rng_state_from_json(state: list) -> tuple:
    """Inverse of :func:`rng_state_to_json`, ready for ``rng.setstate``."""
    if len(state) != 3:
        raise ValueError(f"malformed RNG state: expected 3 fields, got {len(state)}")
    version, internal, gauss_next = state
    return (version, tuple(internal), gauss_next)


def spawn_rng(parent: random.Random, stream: str) -> random.Random:
    """Derive an independent child RNG from ``parent`` for ``stream``.

    Distinct stream names yield decorrelated child generators, so adding a
    new consumer of randomness does not perturb existing streams.  Used to
    give the workload generator, the segment resampler, and the SW Leveler
    their own streams from one experiment seed.
    """
    salt = parent.getrandbits(64)
    return random.Random(f"{salt}:{stream}")
