"""Plain-text table rendering.

The benchmark harness regenerates the paper's Tables 1-4 and the data series
behind Figures 5-7; this module renders those results as aligned monospace
tables so that a bench run prints rows directly comparable with the paper.
"""

from __future__ import annotations

import sys
from collections.abc import Iterable, Sequence
from typing import TextIO


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}".rstrip("0").rstrip(".") if cell == cell else "nan"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table.

    Column widths adapt to the content; numeric cells are right-aligned,
    text cells left-aligned.  Returns the table as a single string.
    """
    materialized = [[_stringify(cell) for cell in row] for row in rows]
    ncols = len(headers)
    for row in materialized:
        if len(row) != ncols:
            raise ValueError(
                f"row has {len(row)} cells but the table has {ncols} columns: {row}"
            )
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def is_numeric(text: str) -> bool:
        stripped = text.rstrip("%")
        try:
            float(stripped)
        except ValueError:
            return False
        return True

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if is_numeric(cell):
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "| " + " | ".join(parts) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(fmt_row(list(headers)))
    lines.append(separator)
    for row in materialized:
        lines.append(fmt_row(row))
    lines.append(separator)
    return "\n".join(lines)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    stream: TextIO | None = None,
) -> None:
    """Write :func:`format_table` output to ``stream`` (default stdout).

    Convenience for benches and examples; library code that needs the
    table as data should call :func:`format_table` directly.
    """
    out = stream if stream is not None else sys.stdout
    out.write(format_table(headers, rows, title=title) + "\n")


def format_series(
    name: str,
    xs: Sequence[object],
    ys: Sequence[object],
    *,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one figure series (e.g., first-failure time vs k) as a table."""
    if len(xs) != len(ys):
        raise ValueError(f"series {name!r}: {len(xs)} xs but {len(ys)} ys")
    return format_table(
        [x_label, y_label],
        [[x, y] for x, y in zip(xs, ys)],
        title=name,
    )
