"""A compact, fixed-size bit array.

The Block Erasing Table of the SW Leveler (paper Section 3.2) is "a bit
array, in which each bit corresponds to a set of 2^k contiguous blocks".
RAM on a flash controller is scarce, so the paper sizes the table in single
bits (Table 1: a 4 GB SLC device needs a 512-byte BET at k=3).  This module
provides the backing store with exactly that footprint: one Python
``bytearray`` with eight flags per byte.

The class also supports the operations the BET needs beyond get/set:
population count (``fcnt`` maintenance checks), scanning for the next zero
bit from a cyclic cursor (Algorithm 1, steps 9-10), and byte-exact
serialization (Section 3.2 proposes saving the BET to flash at shutdown).
"""

from __future__ import annotations

from collections.abc import Iterator

_POPCOUNT = bytes(bin(i).count("1") for i in range(256))


class BitArray:
    """Fixed-size array of bits stored eight-per-byte.

    Parameters
    ----------
    size:
        Number of bits.  Must be positive.

    Examples
    --------
    >>> bits = BitArray(10)
    >>> bits.set(3)
    True
    >>> bits[3]
    True
    >>> bits.popcount()
    1
    """

    __slots__ = ("_size", "_bytes")

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"BitArray size must be positive, got {size}")
        self._size = size
        self._bytes = bytearray((size + 7) // 8)

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def _check_index(self, index: int) -> int:
        if index < 0:
            index += self._size
        if not 0 <= index < self._size:
            raise IndexError(f"bit index {index} out of range [0, {self._size})")
        return index

    def __getitem__(self, index: int) -> bool:
        index = self._check_index(index)
        return bool(self._bytes[index >> 3] & (1 << (index & 7)))

    def __setitem__(self, index: int, value: bool) -> None:
        if value:
            self.set(index)
        else:
            self.clear(index)

    def __iter__(self) -> Iterator[bool]:
        for index in range(self._size):
            yield self[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitArray):
            return NotImplemented
        return self._size == other._size and self._bytes == other._bytes

    def __repr__(self) -> str:
        shown = "".join("1" if bit else "0" for bit in list(self)[:64])
        suffix = "..." if self._size > 64 else ""
        return f"BitArray(size={self._size}, bits={shown}{suffix})"

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def set(self, index: int) -> bool:
        """Set bit ``index`` to 1.

        Returns ``True`` when the bit flipped from 0 to 1 and ``False`` when
        it was already set.  The caller (SWL-BETUpdate) uses the return value
        to maintain ``fcnt`` without a second lookup.
        """
        index = self._check_index(index)
        mask = 1 << (index & 7)
        byte_index = index >> 3
        if self._bytes[byte_index] & mask:
            return False
        self._bytes[byte_index] |= mask
        return True

    def clear(self, index: int) -> bool:
        """Clear bit ``index``; returns ``True`` when it flipped from 1 to 0."""
        index = self._check_index(index)
        mask = 1 << (index & 7)
        byte_index = index >> 3
        if not self._bytes[byte_index] & mask:
            return False
        self._bytes[byte_index] &= ~mask
        return True

    def reset(self) -> None:
        """Clear every bit (start of a new resetting interval)."""
        for i in range(len(self._bytes)):
            self._bytes[i] = 0

    def fill(self) -> None:
        """Set every bit (used by tests and crash-recovery checks)."""
        for i in range(len(self._bytes)):
            self._bytes[i] = 0xFF
        self._mask_tail()

    def _mask_tail(self) -> None:
        tail_bits = self._size & 7
        if tail_bits:
            self._bytes[-1] &= (1 << tail_bits) - 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def popcount(self) -> int:
        """Number of set bits (the reference value for ``fcnt``)."""
        return sum(_POPCOUNT[b] for b in self._bytes)

    def all_set(self) -> bool:
        """``True`` when every flag is 1 (BET reset condition, Alg. 1 step 3)."""
        return self.popcount() == self._size

    def any_set(self) -> bool:
        return any(self._bytes)

    def next_zero(self, start: int) -> int | None:
        """Index of the first zero bit at or after ``start``, cyclically.

        Implements the scan of Algorithm 1 steps 9-10: ``findex`` advances
        modulo the table size until a zero-valued flag is found.  Returns
        ``None`` when every bit is set (the caller then resets the table).
        """
        start = self._check_index(start)
        for offset in range(self._size):
            index = (start + offset) % self._size
            if not self[index]:
                return index
        return None

    def zero_indices(self) -> list[int]:
        """All indices whose flag is still zero (candidate cold block sets)."""
        return [i for i in range(self._size) if not self[i]]

    # ------------------------------------------------------------------
    # Serialization (Section 3.2: save the BET to flash at shutdown)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Byte-exact snapshot; ``len(result) == ceil(size / 8)``."""
        return bytes(self._bytes)

    @classmethod
    def from_bytes(cls, data: bytes, size: int) -> "BitArray":
        """Rebuild a bit array from :meth:`to_bytes` output.

        Raises ``ValueError`` when ``data`` is not exactly the right length
        or when padding bits beyond ``size`` are set (corruption check).
        """
        bits = cls(size)
        expected = (size + 7) // 8
        if len(data) != expected:
            raise ValueError(
                f"expected {expected} bytes for a {size}-bit array, got {len(data)}"
            )
        bits._bytes = bytearray(data)
        tail_bits = size & 7
        if tail_bits and bits._bytes[-1] >> tail_bits:
            raise ValueError("padding bits beyond the declared size are set")
        return bits

    def copy(self) -> "BitArray":
        clone = BitArray(self._size)
        clone._bytes = bytearray(self._bytes)
        return clone

    @property
    def nbytes(self) -> int:
        """RAM footprint in bytes — the quantity reported in paper Table 1."""
        return len(self._bytes)
