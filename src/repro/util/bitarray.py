"""A compact, fixed-size bit array.

The Block Erasing Table of the SW Leveler (paper Section 3.2) is "a bit
array, in which each bit corresponds to a set of 2^k contiguous blocks".
RAM on a flash controller is scarce, so the paper sizes the table in single
bits (Table 1: a 4 GB SLC device needs a 512-byte BET at k=3).  This module
provides the backing store with exactly that footprint — ``nbytes`` reports
``ceil(size / 8)``, the quantity of Table 1 — while the *simulator* keeps
the flags in a single Python ``int`` so every bulk operation runs
word-at-a-time in C instead of bit-by-bit in Python:

* ``popcount`` is one ``int.bit_count()`` call (the ``fcnt`` reference
  check that used to walk a 256-entry table per byte);
* ``next_zero`` inverts the word and isolates the lowest zero flag with
  two's-complement arithmetic (``x & -x``), skipping any run of set flags
  in one step instead of one Python iteration per bit;
* ``fill``/``reset``/``zero_indices``/``all_set`` are single word ops.

The bit layout is frozen by the serialization format: bit ``i`` lives in
byte ``i >> 3`` at position ``i & 7``, which is exactly the little-endian
byte order of ``int.to_bytes``, so :meth:`to_bytes` output is unchanged
from the historical ``bytearray`` implementation byte for byte.

The class supports the operations the BET needs beyond get/set:
population count (``fcnt`` maintenance checks), scanning for the next zero
bit from a cyclic cursor (Algorithm 1, steps 9-10), and byte-exact
serialization (Section 3.2 proposes saving the BET to flash at shutdown).
"""

from __future__ import annotations

from collections.abc import Iterator


class BitArray:
    """Fixed-size array of bits backed by one arbitrary-precision word.

    Parameters
    ----------
    size:
        Number of bits.  Must be positive.

    Examples
    --------
    >>> bits = BitArray(10)
    >>> bits.set(3)
    True
    >>> bits[3]
    True
    >>> bits.popcount()
    1
    """

    __slots__ = ("_size", "_word", "_mask")

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"BitArray size must be positive, got {size}")
        self._size = size
        #: All flags as one int: bit ``i`` of the word is flag ``i``.
        self._word = 0
        #: ``size`` low bits set — the fully-populated table.
        self._mask = (1 << size) - 1

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def _check_index(self, index: int) -> int:
        if index < 0:
            index += self._size
        if not 0 <= index < self._size:
            raise IndexError(f"bit index {index} out of range [0, {self._size})")
        return index

    def __getitem__(self, index: int) -> bool:
        index = self._check_index(index)
        return bool((self._word >> index) & 1)

    def __setitem__(self, index: int, value: bool) -> None:
        if value:
            self.set(index)
        else:
            self.clear(index)

    def __iter__(self) -> Iterator[bool]:
        word = self._word
        for index in range(self._size):
            yield bool((word >> index) & 1)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitArray):
            return NotImplemented
        return self._size == other._size and self._word == other._word

    def __repr__(self) -> str:
        shown = "".join("1" if bit else "0" for bit in list(self)[:64])
        suffix = "..." if self._size > 64 else ""
        return f"BitArray(size={self._size}, bits={shown}{suffix})"

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def set(self, index: int) -> bool:
        """Set bit ``index`` to 1.

        Returns ``True`` when the bit flipped from 0 to 1 and ``False`` when
        it was already set.  The caller (SWL-BETUpdate) uses the return value
        to maintain ``fcnt`` without a second lookup.
        """
        index = self._check_index(index)
        bit = 1 << index
        if self._word & bit:
            return False
        self._word |= bit
        return True

    def clear(self, index: int) -> bool:
        """Clear bit ``index``; returns ``True`` when it flipped from 1 to 0."""
        index = self._check_index(index)
        bit = 1 << index
        if not self._word & bit:
            return False
        self._word &= ~bit
        return True

    def reset(self) -> None:
        """Clear every bit (start of a new resetting interval)."""
        self._word = 0

    def fill(self) -> None:
        """Set every bit (used by tests and crash-recovery checks)."""
        self._word = self._mask

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def popcount(self) -> int:
        """Number of set bits (the reference value for ``fcnt``)."""
        return self._word.bit_count()

    def all_set(self) -> bool:
        """``True`` when every flag is 1 (BET reset condition, Alg. 1 step 3)."""
        return self._word == self._mask

    def any_set(self) -> bool:
        return self._word != 0

    def next_zero(self, start: int) -> int | None:
        """Index of the first zero bit at or after ``start``, cyclically.

        Implements the scan of Algorithm 1 steps 9-10: ``findex`` advances
        modulo the table size until a zero-valued flag is found.  Returns
        ``None`` when every bit is set (the caller then resets the table).

        The scan is word-level: the inverted word has a 1 exactly at each
        zero flag, and ``x & -x`` isolates its lowest set bit, so a run of
        set flags of any length costs one shift instead of one Python loop
        iteration per flag.
        """
        start = self._check_index(start)
        inverted = self._word ^ self._mask
        if not inverted:
            return None
        ahead = inverted >> start
        if ahead:
            return start + ((ahead & -ahead).bit_length() - 1)
        wrapped = inverted & ((1 << start) - 1)
        return (wrapped & -wrapped).bit_length() - 1

    def zero_indices(self) -> list[int]:
        """All indices whose flag is still zero (candidate cold block sets).

        Costs O(number of zero flags), not O(size): each iteration strips
        the lowest remaining zero flag from the inverted word.
        """
        indices: list[int] = []
        remaining = self._word ^ self._mask
        while remaining:
            low = remaining & -remaining
            indices.append(low.bit_length() - 1)
            remaining ^= low
        return indices

    # ------------------------------------------------------------------
    # Serialization (Section 3.2: save the BET to flash at shutdown)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Byte-exact snapshot; ``len(result) == ceil(size / 8)``.

        Little-endian word order puts bit ``i`` in byte ``i >> 3`` at
        position ``i & 7`` — the same layout as the historical
        ``bytearray`` backing store, so saved images stay compatible.
        """
        return self._word.to_bytes(self.nbytes, "little")

    @classmethod
    def from_bytes(cls, data: bytes, size: int) -> "BitArray":
        """Rebuild a bit array from :meth:`to_bytes` output.

        Raises ``ValueError`` when ``data`` is not exactly the right length
        or when padding bits beyond ``size`` are set (corruption check).
        """
        bits = cls(size)
        expected = (size + 7) // 8
        if len(data) != expected:
            raise ValueError(
                f"expected {expected} bytes for a {size}-bit array, got {len(data)}"
            )
        word = int.from_bytes(data, "little")
        if word >> size:
            raise ValueError("padding bits beyond the declared size are set")
        bits._word = word
        return bits

    def copy(self) -> "BitArray":
        clone = BitArray(self._size)
        clone._word = self._word
        return clone

    @property
    def nbytes(self) -> int:
        """RAM footprint in bytes — the quantity reported in paper Table 1."""
        return (self._size + 7) // 8
