"""Small reusable utilities shared by every subsystem.

This package deliberately contains only dependency-free building blocks:

* :mod:`repro.util.bitarray` -- the compact bit array backing the BET.
* :mod:`repro.util.rng` -- deterministic random-number plumbing.
* :mod:`repro.util.tables` -- plain-text table rendering for reports.
"""

from repro.util.bitarray import BitArray
from repro.util.rng import make_rng, spawn_rng
from repro.util.tables import format_table, render_table

__all__ = [
    "BitArray",
    "make_rng",
    "spawn_rng",
    "format_table",
    "render_table",
]
