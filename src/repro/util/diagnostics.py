"""Library diagnostics channels.

Fault injections, recovery actions, and leveler events used to be either
invisible or dumped to stdout.  This module gives the library proper
``logging`` channels instead:

* ``repro.fault``   — fault injections and the recovery actions they
  trigger (retries, re-issued writes, block retirements, power loss);
* ``repro.leveler`` — SW Leveler lifecycle events (BET resets, retired
  block-set flagging).

The root ``repro`` logger carries a :class:`logging.NullHandler`, so the
library emits nothing unless the application configures logging — the
standard library-logging etiquette.  Tests and the CLI can enable the
channels with ``logging.basicConfig(level=logging.DEBUG)`` or a targeted
``logging.getLogger("repro.fault").setLevel(...)``.
"""

from __future__ import annotations

import logging

_ROOT = logging.getLogger("repro")
if not _ROOT.handlers:
    _ROOT.addHandler(logging.NullHandler())


def get_logger(channel: str) -> logging.Logger:
    """Logger for one diagnostics channel (``"fault"``, ``"leveler"``, ...).

    >>> get_logger("fault").name
    'repro.fault'
    """
    return logging.getLogger(f"repro.{channel}")


#: Fault-injection and recovery events.
fault_log = get_logger("fault")

#: SW Leveler events.
leveler_log = get_logger("leveler")
