"""Library diagnostics channels.

Fault injections, recovery actions, and leveler events used to be either
invisible or dumped to stdout.  This module gives the library proper
``logging`` channels instead:

* ``repro.fault``   — fault injections and the recovery actions they
  trigger (retries, re-issued writes, block retirements, power loss);
* ``repro.leveler`` — SW Leveler lifecycle events (BET resets, retired
  block-set flagging).

The root ``repro`` logger carries a :class:`logging.NullHandler`, so the
library emits nothing unless the application configures logging — the
standard library-logging etiquette.  Tests and the CLI can enable the
channels with ``logging.basicConfig(level=logging.DEBUG)`` or a targeted
``logging.getLogger("repro.fault").setLevel(...)``.
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional, Sequence, Union

_ROOT = logging.getLogger("repro")
if not _ROOT.handlers:
    _ROOT.addHandler(logging.NullHandler())

# Handlers installed by configure_logging, so reconfiguration (repeated
# CLI invocations in one process, tests) never stacks duplicates.
_configured: list[tuple[logging.Logger, logging.Handler]] = []


def get_logger(channel: str) -> logging.Logger:
    """Logger for one diagnostics channel (``"fault"``, ``"leveler"``, ...).

    >>> get_logger("fault").name
    'repro.fault'
    """
    return logging.getLogger(f"repro.{channel}")


def configure_logging(
    level: Union[int, str] = "INFO",
    channels: Optional[Sequence[str]] = None,
    stream: Optional[IO[str]] = None,
) -> None:
    """Enable diagnostics output — the CLI's ``--log-level`` backend.

    Installs a stderr (or ``stream``) handler at ``level`` on the root
    ``repro`` logger, or only on the named ``channels`` (``"fault"``,
    ``"leveler"``, ``"obs"``, ...) when given.  Calling again replaces
    the previous configuration instead of stacking handlers.
    """
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
    else:
        resolved = level
    reset_logging()
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(name)s %(levelname)s %(message)s"))
    targets = ([get_logger(channel) for channel in channels]
               if channels else [_ROOT])
    for logger in targets:
        logger.addHandler(handler)
        logger.setLevel(resolved)
        _configured.append((logger, handler))


def reset_logging() -> None:
    """Remove handlers installed by :func:`configure_logging`."""
    for logger, handler in _configured:
        logger.removeHandler(handler)
        logger.setLevel(logging.NOTSET)
    _configured.clear()


#: Fault-injection and recovery events.
fault_log = get_logger("fault")

#: SW Leveler events.
leveler_log = get_logger("leveler")
