"""Device-lifetime projection from measured wear, WAF, and P/E budgets.

The paper reports *first failure time* directly (Figure 5); this module
turns any measured run — including short fixed-horizon ones — into the
industry-standard endurance vocabulary: write amplification factor
(WAF), total bytes written (TBW), drive writes per day (DWPD), and a
projected first-failure horizon.

One WAF-aware chokepoint
------------------------
:func:`first_failure_horizon` is the single formula every lifetime
extrapolation in the repository goes through (the legacy
``repro.analysis.endurance.project_lifetime`` delegates here).  It
linearly extrapolates the hottest block's erase rate to the endurance
budget, optionally rescaled by a projected/observed WAF ratio — the fix
for the historical extrapolation that ignored write amplification
entirely.

Exact WAF
---------
For these backends WAF is exact, not estimated: every physical page
program is either a host write or a GC/SWL live copy, so

    ``total_programs == pages_written + live_page_copies``

(asserted by tests against :meth:`StorageBackend.total_programs`), and

    ``WAF = (pages_written + live_page_copies) / pages_written``

is computable from any :class:`~repro.sim.engine.SimResult` alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.flash.geometry import FlashGeometry
    from repro.sim.engine import SimResult

#: Seconds per day, for DWPD conversions.
SECONDS_PER_DAY = 86_400.0


def first_failure_horizon(
    observed_time: float,
    endurance: int,
    max_erase_count: int,
    *,
    waf_ratio: float = 1.0,
) -> float:
    """Project the first block wear-out instant, in simulated seconds.

    Linear extrapolation of the hottest block's erase rate:
    ``observed_time * endurance / (max_erase_count * waf_ratio)``.

    ``waf_ratio`` is projected WAF over observed WAF — the factor by
    which future erase rates exceed the measured ones when the workload
    ahead amplifies more than the workload behind (1.0 when the measured
    WAF is representative, the default).  A device whose hottest block
    never erased projects to infinity.
    """
    if observed_time <= 0:
        raise ValueError(f"observed_time must be positive, got {observed_time}")
    if endurance <= 0:
        raise ValueError(f"endurance must be positive, got {endurance}")
    if max_erase_count < 0:
        raise ValueError(
            f"max_erase_count must be non-negative, got {max_erase_count}"
        )
    if waf_ratio <= 0:
        raise ValueError(f"waf_ratio must be positive, got {waf_ratio}")
    if max_erase_count == 0:
        return float("inf")
    return observed_time * endurance / (max_erase_count * waf_ratio)


@dataclass(frozen=True)
class EnduranceProjection:
    """One run's lifetime numbers in DWPD/TBW/GB-day vocabulary.

    ``tbw_bytes`` is the *first-failure* TBW: host bytes writable before
    the hottest block exhausts its budget, at the measured skew and WAF.
    ``tbw_ideal_bytes`` is the same under perfect leveling (every block
    erases at the average rate); the gap between the two is exactly what
    a wear leveler can recover.
    """

    label: str
    observed_time: float            #: simulated seconds measured
    endurance: int                  #: P/E-cycle budget per block
    capacity_bytes: int             #: device capacity (all channels)
    host_bytes_written: int
    physical_pages_programmed: int
    waf: float
    erase_average: float
    erase_maximum: int
    wear_skew: float                #: max / average erase count
    tbw_bytes: float                #: host bytes until first failure
    tbw_ideal_bytes: float          #: host bytes under perfect leveling
    days_at_one_dwpd: float         #: tbw / capacity — days at 1 DWPD
    projected_first_failure_s: float

    @property
    def projected_first_failure_days(self) -> float:
        return self.projected_first_failure_s / SECONDS_PER_DAY

    def dwpd_over(self, days: float) -> float:
        """The sustained DWPD that exhausts the device in ``days``."""
        if days <= 0:
            raise ValueError(f"days must be positive, got {days}")
        return self.tbw_bytes / (self.capacity_bytes * days)

    def as_dict(self) -> dict[str, object]:
        return {
            "label": self.label,
            "observed_time_s": self.observed_time,
            "endurance": self.endurance,
            "capacity_bytes": self.capacity_bytes,
            "host_bytes_written": self.host_bytes_written,
            "physical_pages_programmed": self.physical_pages_programmed,
            "waf": self.waf,
            "erase_average": self.erase_average,
            "erase_maximum": self.erase_maximum,
            "wear_skew": self.wear_skew,
            "tbw_bytes": self.tbw_bytes,
            "tbw_ideal_bytes": self.tbw_ideal_bytes,
            "days_at_one_dwpd": self.days_at_one_dwpd,
            "projected_first_failure_s": self.projected_first_failure_s,
            "projected_first_failure_days": self.projected_first_failure_days,
        }


def project_endurance(
    result: "SimResult",
    geometry: "FlashGeometry",
    *,
    label: str | None = None,
) -> EnduranceProjection:
    """Project a measured run's lifetime numbers.

    ``geometry`` is the per-channel chip geometry the run was built
    from; capacity scales by the result's channel count.  The run must
    have written at least one page (WAF is undefined otherwise).
    """
    if result.pages_written <= 0:
        raise ValueError(
            "cannot project endurance from a run with no host writes"
        )
    if result.sim_time <= 0:
        raise ValueError("cannot project endurance from a zero-length run")
    distribution = result.erase_distribution
    programs = result.pages_written + result.live_page_copies
    waf = programs / result.pages_written
    capacity = (
        geometry.num_blocks
        * geometry.pages_per_block
        * geometry.page_size
        * result.channels
    )
    host_bytes = result.pages_written * geometry.page_size
    maximum = distribution.maximum
    average = distribution.average
    skew = maximum / average if average > 0 else float("inf")
    endurance = geometry.endurance
    if maximum > 0:
        # Host bytes scale inversely with the hottest block's erase
        # count: it exhausts its budget after endurance/maximum times
        # the observed write volume.
        tbw = host_bytes * endurance / maximum
    else:
        tbw = float("inf")
    tbw_ideal = host_bytes * endurance / average if average > 0 else float("inf")
    horizon = first_failure_horizon(
        result.sim_time, endurance, maximum
    )
    return EnduranceProjection(
        label=label if label is not None else result.label,
        observed_time=result.sim_time,
        endurance=endurance,
        capacity_bytes=capacity,
        host_bytes_written=host_bytes,
        physical_pages_programmed=programs,
        waf=waf,
        erase_average=average,
        erase_maximum=maximum,
        wear_skew=skew,
        tbw_bytes=tbw,
        tbw_ideal_bytes=tbw_ideal,
        days_at_one_dwpd=tbw / capacity if capacity else 0.0,
        projected_first_failure_s=horizon,
    )
