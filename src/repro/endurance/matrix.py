"""``workload × policy`` endurance matrix cells.

The paper's sweeps vary the *policy* (k, T, driver) against one fixed
trace; the endurance matrix varies the *workload shape* too.  An
:class:`EnduranceCell` names one (workload, spec) pairing; the runner
groups cells by workload, materializes each shape's trace once (sized to
the largest logical space among that workload's specs — smaller backends
wrap via the replay engine's LBA modulo), and dispatches each group
through :func:`repro.sim.experiment.run_matrix`, so worker fan-out and
the fault-tolerant supervisor policy come along for free.  Each replay
is then projected through :func:`repro.endurance.projection.project_endurance`.

Generated traces flow through the same
:class:`~repro.traces.extend.SegmentResampler` protocol as the paper's
trace (random 10-minute segments), so the base trace must cover at least
two segments — phase-shifting structure is preserved at segment
granularity (see DESIGN.md §5h).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.endurance.projection import EnduranceProjection, project_endurance
from repro.sim.experiment import logical_sectors_of, run_matrix
from repro.traces.extend import SEGMENT_SECONDS
from repro.workloads.generators import (
    DEFAULT_PHASE_PERIOD,
    DEFAULT_THETA,
    ShapeParams,
    make_shape,
)

if TYPE_CHECKING:
    from repro.ckpt.supervisor import SupervisorPolicy
    from repro.sim.engine import SimResult
    from repro.sim.experiment import ExperimentSpec

#: Minimum generated base-trace duration: two resampler segments.
MIN_TRACE_DURATION = 2 * SEGMENT_SECONDS


@dataclass(frozen=True)
class EnduranceCell:
    """One matrix cell: a workload shape name × a backend spec."""

    workload: str
    spec: "ExperimentSpec"

    def label(self) -> str:
        return f"{self.workload}×{self.spec.label()}"


@dataclass(frozen=True)
class EnduranceCellResult:
    """A cell's replay outcome and its lifetime projection."""

    cell: EnduranceCell
    replay: "SimResult"
    projection: EnduranceProjection


def endurance_cells(
    workloads: list[str], specs: list["ExperimentSpec"]
) -> list[EnduranceCell]:
    """The full cross product, workload-major (matching report layout)."""
    return [
        EnduranceCell(workload=workload, spec=spec)
        for workload in workloads
        for spec in specs
    ]


def run_endurance_matrix(
    cells: list[EnduranceCell],
    *,
    horizon: float,
    rate: float = 4.0,
    request_sectors: int = 8,
    theta: float = DEFAULT_THETA,
    period: float = DEFAULT_PHASE_PERIOD,
    seed: int = 0,
    workers: int | None = None,
    policy: "SupervisorPolicy | None" = None,
) -> list[EnduranceCellResult | None]:
    """Run every cell for ``horizon`` simulated seconds and project it.

    Results come back in cell order.  A ``None`` slot appears only under
    a supervisor ``policy`` whose cell was quarantined (mirroring
    :func:`~repro.sim.experiment.run_matrix`).

    Within one workload group the trace is generated **once** from the
    shape's own seeded RNG stream, so every spec of that workload sees
    identical requests — the paper's fair-comparison discipline, applied
    per workload shape.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    groups: dict[str, list[int]] = {}
    for index, cell in enumerate(cells):
        groups.setdefault(cell.workload, []).append(index)
    results: list[EnduranceCellResult | None] = [None] * len(cells)
    base_duration = max(horizon, MIN_TRACE_DURATION)
    for workload, indices in groups.items():
        group_specs = [cells[index].spec for index in indices]
        sectors = max(logical_sectors_of(spec) for spec in group_specs)
        shape = make_shape(
            workload,
            ShapeParams(
                total_sectors=sectors,
                rate=rate,
                request_sectors=request_sectors,
                seed=seed,
            ),
            theta=theta,
            period=period,
        )
        trace = shape.requests(base_duration)
        replays = run_matrix(
            group_specs,
            trace,
            horizon=horizon,
            workers=workers,
            policy=policy,
        )
        for index, replay in zip(indices, replays):
            if replay is None:
                continue
            cell = cells[index]
            results[index] = EnduranceCellResult(
                cell=cell,
                replay=replay,
                projection=project_endurance(
                    replay, cell.spec.geometry, label=cell.label()
                ),
            )
    return results
