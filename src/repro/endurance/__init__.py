"""Lifetime projection: WAF, TBW, DWPD, and first-failure horizons.

:mod:`repro.endurance.projection` holds the single WAF-aware
extrapolation chokepoint (:func:`first_failure_horizon`) and the
:class:`EnduranceProjection` record built from any measured replay;
:mod:`repro.endurance.matrix` crosses workload shapes with backend
specs into ``workload × policy`` cells runnable through
:func:`repro.sim.experiment.run_matrix`.  The ``repro endure`` CLI
subcommand is the front end.
"""

from repro.endurance.matrix import (
    MIN_TRACE_DURATION,
    EnduranceCell,
    EnduranceCellResult,
    endurance_cells,
    run_endurance_matrix,
)
from repro.endurance.projection import (
    SECONDS_PER_DAY,
    EnduranceProjection,
    first_failure_horizon,
    project_endurance,
)

__all__ = [
    "EnduranceCell",
    "EnduranceCellResult",
    "EnduranceProjection",
    "MIN_TRACE_DURATION",
    "SECONDS_PER_DAY",
    "endurance_cells",
    "first_failure_horizon",
    "project_endurance",
    "run_endurance_matrix",
]
