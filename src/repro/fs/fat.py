"""A minimal FAT-style file system over a :class:`BlockDevice`.

Structure on disk (all sizes in 512-byte sectors):

====================  =========================================
sector 0              superblock (magic, geometry, region map)
FAT region            16-bit cluster chain table, one entry per
                      data cluster (0 free, 0xFFFF end-of-chain)
root directory        fixed array of 32-byte entries (flat
                      namespace, like the FAT12 root directory)
data region           clusters of ``sectors_per_cluster`` sectors
====================  =========================================

Every metadata mutation writes through to the device immediately
(write-through, no volatile cache), so the FAT and directory sectors are
rewritten constantly while file payloads are written once — the classic
file-system access pattern whose cold tail motivates static wear leveling.

The implementation favours clarity over speed: it is a workload engine
for the storage stack, not a production file system.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.ftl.blockdev import SECTOR_SIZE, BlockDevice

_MAGIC = b"SWLF"
_SUPER = struct.Struct("<4sIIIIII")   # magic, total, fat_start, fat_sectors,
                                      # dir_start, dir_sectors, data_start
_DIRENT = struct.Struct("<11sBIHxx10x")  # name, flags, size, first cluster
DIRENT_SIZE = _DIRENT.size            # 32 bytes
_FAT_FREE = 0x0000
_FAT_EOF = 0xFFFF
# A chain link is stored as ``next_cluster + 1``: cluster 0 is a valid
# data cluster here (unlike classic FAT, which reserves entries 0-1), so
# a raw pointer to it would alias _FAT_FREE and let the allocator hand
# out a cluster that is still part of a live chain.
_FAT_LINK_BIAS = 1
_FLAG_USED = 0x01


class FileSystemError(Exception):
    """Base class for file-system failures."""


class FileSystemFullError(FileSystemError):
    """No free cluster or directory slot remains."""


class FileNotFoundFsError(FileSystemError):
    """Named file does not exist."""


@dataclass(frozen=True)
class DirectoryEntry:
    """One root-directory record."""

    name: str
    size: int
    first_cluster: int


def _encode_name(name: str) -> bytes:
    raw = name.encode("ascii", errors="strict")
    if not 1 <= len(raw) <= 11:
        raise FileSystemError(
            f"file name must be 1-11 ASCII characters, got {name!r}"
        )
    if "\x00" in name:
        raise FileSystemError("file name may not contain NUL")
    return raw.ljust(11, b"\x00")


class FatFileSystem:
    """Flat-namespace FAT-style file system.

    Parameters
    ----------
    device:
        The sector block device (over FTL or NFTL).
    sectors_per_cluster:
        Allocation granularity; the default of 4 sectors equals one 2 KB
        flash page.
    max_files:
        Root-directory capacity.

    Use :meth:`format` once, then the file API; :meth:`mount` re-reads all
    metadata from the device (e.g., after simulated power loss).
    """

    def __init__(
        self,
        device: BlockDevice,
        *,
        sectors_per_cluster: int = 4,
        max_files: int = 64,
    ) -> None:
        if sectors_per_cluster < 1:
            raise ValueError("sectors_per_cluster must be >= 1")
        if max_files < 1:
            raise ValueError("max_files must be >= 1")
        self.device = device
        self.sectors_per_cluster = sectors_per_cluster
        self.cluster_bytes = sectors_per_cluster * SECTOR_SIZE
        self.max_files = max_files
        self._fat: list[int] = []
        self._entries: list[DirectoryEntry | None] = []
        self._mounted = False
        self._layout()

    # ------------------------------------------------------------------
    # On-disk layout
    # ------------------------------------------------------------------
    def _layout(self) -> None:
        total = self.device.num_sectors
        dir_sectors = -(-self.max_files * DIRENT_SIZE // SECTOR_SIZE)
        # Solve for the FAT size: each data cluster needs 2 FAT bytes.
        overhead_guess = 1 + dir_sectors
        remaining = total - overhead_guess
        if remaining <= self.sectors_per_cluster:
            raise FileSystemError(
                f"device too small ({total} sectors) for this layout"
            )
        clusters = remaining * SECTOR_SIZE // (
            self.sectors_per_cluster * SECTOR_SIZE + 2
        )
        fat_sectors = -(-clusters * 2 // SECTOR_SIZE)
        self.fat_start = 1
        self.fat_sectors = fat_sectors
        self.dir_start = self.fat_start + fat_sectors
        self.dir_sectors = dir_sectors
        self.data_start = self.dir_start + dir_sectors
        self.num_clusters = (total - self.data_start) // self.sectors_per_cluster
        if self.num_clusters < 1:
            raise FileSystemError("no room for data clusters")

    # ------------------------------------------------------------------
    # Format / mount
    # ------------------------------------------------------------------
    def format(self) -> None:
        """Initialize all on-disk structures (destroys existing content)."""
        super_block = _SUPER.pack(
            _MAGIC, self.device.num_sectors, self.fat_start, self.fat_sectors,
            self.dir_start, self.dir_sectors, self.data_start,
        ).ljust(SECTOR_SIZE, b"\x00")
        self.device.write_sectors(0, super_block)
        zero = b"\x00" * SECTOR_SIZE
        for sector in range(self.fat_start, self.data_start):
            self.device.write_sectors(sector, zero)
        self._fat = [_FAT_FREE] * self.num_clusters
        self._entries = [None] * self.max_files
        self._mounted = True

    def mount(self) -> None:
        """Load the superblock, FAT, and directory from the device."""
        raw = self.device.read_sectors(0)
        magic, total, fat_start, fat_sectors, dir_start, dir_sectors, data_start = (
            _SUPER.unpack(raw[: _SUPER.size])
        )
        if magic != _MAGIC:
            raise FileSystemError("no file system found (bad magic)")
        if total != self.device.num_sectors:
            raise FileSystemError(
                f"superblock sized for {total} sectors, device has "
                f"{self.device.num_sectors}"
            )
        self.fat_start, self.fat_sectors = fat_start, fat_sectors
        self.dir_start, self.dir_sectors = dir_start, dir_sectors
        self.data_start = data_start
        self.num_clusters = (
            self.device.num_sectors - data_start
        ) // self.sectors_per_cluster
        fat_raw = self.device.read_sectors(self.fat_start, self.fat_sectors)
        self._fat = list(
            struct.unpack(f"<{self.num_clusters}H", fat_raw[: 2 * self.num_clusters])
        )
        self._entries = []
        dir_raw = self.device.read_sectors(self.dir_start, self.dir_sectors)
        for index in range(self.max_files):
            chunk = dir_raw[index * DIRENT_SIZE:(index + 1) * DIRENT_SIZE]
            name_raw, flags, size, first = _DIRENT.unpack(chunk)
            if flags & _FLAG_USED:
                name = name_raw.rstrip(b"\x00").decode("ascii")
                self._entries.append(DirectoryEntry(name, size, first))
            else:
                self._entries.append(None)
        self._mounted = True

    def _require_mounted(self) -> None:
        if not self._mounted:
            raise FileSystemError("file system not formatted or mounted")

    # ------------------------------------------------------------------
    # Metadata write-through
    # ------------------------------------------------------------------
    def _write_fat_entry(self, cluster: int, value: int) -> None:
        self._fat[cluster] = value
        sector = self.fat_start + (cluster * 2) // SECTOR_SIZE
        base = (sector - self.fat_start) * (SECTOR_SIZE // 2)
        count = min(SECTOR_SIZE // 2, self.num_clusters - base)
        payload = struct.pack(
            f"<{count}H", *self._fat[base:base + count]
        ).ljust(SECTOR_SIZE, b"\x00")
        self.device.write_sectors(sector, payload)

    def _write_dirent(self, index: int) -> None:
        sector = self.dir_start + (index * DIRENT_SIZE) // SECTOR_SIZE
        base = ((sector - self.dir_start) * SECTOR_SIZE) // DIRENT_SIZE
        records = []
        for slot in range(base, min(base + SECTOR_SIZE // DIRENT_SIZE,
                                    self.max_files)):
            entry = self._entries[slot]
            if entry is None:
                records.append(b"\x00" * DIRENT_SIZE)
            else:
                records.append(
                    _DIRENT.pack(
                        _encode_name(entry.name), _FLAG_USED,
                        entry.size, entry.first_cluster,
                    )
                )
        payload = b"".join(records).ljust(SECTOR_SIZE, b"\x00")
        self.device.write_sectors(sector, payload)

    # ------------------------------------------------------------------
    # Cluster management
    # ------------------------------------------------------------------
    def _allocate_cluster(self) -> int:
        for cluster, value in enumerate(self._fat):
            if value == _FAT_FREE:
                return cluster
        raise FileSystemFullError("no free clusters")

    def _chain(self, first: int) -> list[int]:
        chain = []
        cluster = first
        while cluster != _FAT_EOF:
            if not 0 <= cluster < self.num_clusters:
                raise FileSystemError(f"corrupt FAT chain at {cluster}")
            chain.append(cluster)
            entry = self._fat[cluster]
            if entry == _FAT_FREE:
                raise FileSystemError(f"FAT chain runs into a free entry at {cluster}")
            cluster = entry if entry == _FAT_EOF else entry - _FAT_LINK_BIAS
            if len(chain) > self.num_clusters:
                raise FileSystemError("FAT chain cycle detected")
        return chain

    def _cluster_sector(self, cluster: int) -> int:
        return self.data_start + cluster * self.sectors_per_cluster

    # ------------------------------------------------------------------
    # File API
    # ------------------------------------------------------------------
    def _find(self, name: str) -> int:
        for index, entry in enumerate(self._entries):
            if entry is not None and entry.name == name:
                return index
        raise FileNotFoundFsError(f"no such file: {name!r}")

    def exists(self, name: str) -> bool:
        self._require_mounted()
        try:
            self._find(name)
        except FileNotFoundFsError:
            return False
        return True

    def listdir(self) -> list[str]:
        """Names of all files, in directory order."""
        self._require_mounted()
        return [entry.name for entry in self._entries if entry is not None]

    def stat(self, name: str) -> DirectoryEntry:
        self._require_mounted()
        return self._entries[self._find(name)]

    def write_file(self, name: str, data: bytes) -> None:
        """Create or replace ``name`` with ``data`` (whole-file semantics)."""
        self._require_mounted()
        _encode_name(name)  # validate early
        try:
            self.delete(name)
        except FileNotFoundFsError:
            pass
        slot = next(
            (i for i, entry in enumerate(self._entries) if entry is None), None
        )
        if slot is None:
            raise FileSystemFullError("root directory is full")
        clusters_needed = max(1, -(-len(data) // self.cluster_bytes))
        chain: list[int] = []
        try:
            for _ in range(clusters_needed):
                cluster = self._allocate_cluster()
                self._write_fat_entry(cluster, _FAT_EOF)  # reserve
                if chain:
                    self._write_fat_entry(chain[-1], cluster + _FAT_LINK_BIAS)
                chain.append(cluster)
        except FileSystemFullError:
            for cluster in chain:  # release the partial chain
                self._write_fat_entry(cluster, _FAT_FREE)
            raise
        for index, cluster in enumerate(chain):
            chunk = data[index * self.cluster_bytes:(index + 1) * self.cluster_bytes]
            self.device.write_sectors(
                self._cluster_sector(cluster),
                chunk.ljust(self.cluster_bytes, b"\x00"),
            )
        self._entries[slot] = DirectoryEntry(name, len(data), chain[0])
        self._write_dirent(slot)

    def read_file(self, name: str) -> bytes:
        """Whole-file read."""
        self._require_mounted()
        entry = self._entries[self._find(name)]
        out = bytearray()
        for cluster in self._chain(entry.first_cluster):
            out += self.device.read_sectors(
                self._cluster_sector(cluster), self.sectors_per_cluster
            )
        return bytes(out[: entry.size])

    def append(self, name: str, data: bytes) -> None:
        """Append ``data`` to an existing file (log-style updates)."""
        self._require_mounted()
        index = self._find(name)
        entry = self._entries[index]
        chain = self._chain(entry.first_cluster)
        tail_used = entry.size - (len(chain) - 1) * self.cluster_bytes
        cursor = 0
        # Fill the partial tail cluster first (read-modify-write).
        if tail_used < self.cluster_bytes:
            sector = self._cluster_sector(chain[-1])
            block = bytearray(
                self.device.read_sectors(sector, self.sectors_per_cluster)
            )
            take = min(len(data), self.cluster_bytes - tail_used)
            block[tail_used:tail_used + take] = data[:take]
            self.device.write_sectors(sector, bytes(block))
            cursor = take
        while cursor < len(data):
            cluster = self._allocate_cluster()
            self._write_fat_entry(cluster, _FAT_EOF)
            self._write_fat_entry(chain[-1], cluster + _FAT_LINK_BIAS)
            chain.append(cluster)
            chunk = data[cursor:cursor + self.cluster_bytes]
            self.device.write_sectors(
                self._cluster_sector(cluster),
                chunk.ljust(self.cluster_bytes, b"\x00"),
            )
            cursor += len(chunk)
        self._entries[index] = DirectoryEntry(
            name, entry.size + len(data), entry.first_cluster
        )
        self._write_dirent(index)

    def delete(self, name: str) -> None:
        """Remove a file and free its clusters."""
        self._require_mounted()
        index = self._find(name)
        entry = self._entries[index]
        for cluster in self._chain(entry.first_cluster):
            self._write_fat_entry(cluster, _FAT_FREE)
        self._entries[index] = None
        self._write_dirent(index)

    # ------------------------------------------------------------------
    def free_clusters(self) -> int:
        self._require_mounted()
        return sum(1 for value in self._fat if value == _FAT_FREE)

    def __repr__(self) -> str:
        state = "mounted" if self._mounted else "unmounted"
        return (
            f"FatFileSystem({state}, clusters={getattr(self, 'num_clusters', 0)}, "
            f"files={len(self.listdir()) if self._mounted else '?'})"
        )
