"""Minimal FAT-style file system — the top of the paper's Figure 1 stack.

Paper Figure 1 places "File Systems (e.g., DOS FAT)" above the Flash
Translation Layer; this package provides that layer so the whole stack
``application → file system → FTL → MTD → NAND`` can be exercised
end-to-end with realistic file-level workloads (hot allocation-table and
directory sectors over colder file data — the exact pattern that creates
the wear-leveling problem).

:class:`~repro.fs.fat.FatFileSystem` is deliberately FAT-shaped and
deliberately small: a superblock, a 16-bit allocation table, a flat root
directory, and cluster-chained files.
"""

from repro.fs.fat import (
    DirectoryEntry,
    FatFileSystem,
    FileSystemError,
    FileSystemFullError,
    FileNotFoundFsError,
)

__all__ = [
    "DirectoryEntry",
    "FatFileSystem",
    "FileNotFoundFsError",
    "FileSystemError",
    "FileSystemFullError",
]
