"""Sector-granular block device over a translation layer.

Paper Figure 1 stacks "File Systems (e.g., DOS FAT)" on top of the Flash
Translation Layer, which exists precisely so that flash "could be managed
by a block-device-emulating layer".  This module is that emulation
boundary: a 512-byte-sector read/write interface over any
:class:`~repro.ftl.base.TranslationLayer`, handling the sector-to-page
packing (read-modify-write for sub-page updates) that real drivers do.
"""

from __future__ import annotations

from repro.flash.errors import TranslationError
from repro.ftl.base import TranslationLayer

SECTOR_SIZE = 512


class BlockDevice:
    """512-byte-sector interface over a translation layer.

    Requires the underlying stack to store data
    (``build_stack(..., store_data=True)``); sub-page writes read the
    containing page first, splice the sectors in, and write it back —
    exactly one out-place page update per touched page.
    """

    def __init__(self, layer: TranslationLayer) -> None:
        self.layer = layer
        self.page_size = layer.geometry.page_size
        self.sectors_per_page = self.page_size // SECTOR_SIZE
        self.num_sectors = layer.num_logical_pages * self.sectors_per_page

    # ------------------------------------------------------------------
    def _check_range(self, lba: int, count: int) -> None:
        if count < 1:
            raise ValueError(f"sector count must be >= 1, got {count}")
        if lba < 0 or lba + count > self.num_sectors:
            raise TranslationError(
                f"sector range [{lba}, {lba + count}) exceeds the device's "
                f"{self.num_sectors} sectors"
            )

    def _read_page(self, lpn: int) -> bytes:
        data = self.layer.read(lpn)
        if data is None:
            return b"\x00" * self.page_size
        if len(data) < self.page_size:
            return data.ljust(self.page_size, b"\x00")
        return data

    # ------------------------------------------------------------------
    def read_sectors(self, lba: int, count: int = 1) -> bytes:
        """Read ``count`` consecutive sectors; unwritten space reads zero."""
        self._check_range(lba, count)
        out = bytearray()
        remaining = count
        sector = lba
        while remaining:
            lpn, offset = divmod(sector, self.sectors_per_page)
            take = min(remaining, self.sectors_per_page - offset)
            page = self._read_page(lpn)
            start = offset * SECTOR_SIZE
            out += page[start:start + take * SECTOR_SIZE]
            sector += take
            remaining -= take
        return bytes(out)

    def write_sectors(self, lba: int, data: bytes) -> None:
        """Write ``data`` (a whole number of sectors) starting at ``lba``.

        Partial-page updates are read-modify-write; page-aligned full-page
        spans are written directly.
        """
        if len(data) % SECTOR_SIZE:
            raise ValueError(
                f"data length {len(data)} is not a whole number of "
                f"{SECTOR_SIZE}-byte sectors"
            )
        count = len(data) // SECTOR_SIZE
        self._check_range(lba, count)
        remaining = count
        sector = lba
        cursor = 0
        while remaining:
            lpn, offset = divmod(sector, self.sectors_per_page)
            take = min(remaining, self.sectors_per_page - offset)
            chunk = data[cursor:cursor + take * SECTOR_SIZE]
            if take == self.sectors_per_page:
                self.layer.write(lpn, data=chunk)
            else:
                page = bytearray(self._read_page(lpn))
                start = offset * SECTOR_SIZE
                page[start:start + len(chunk)] = chunk
                self.layer.write(lpn, data=bytes(page))
            sector += take
            cursor += len(chunk)
            remaining -= take

    def flush(self) -> None:
        """No-op (the simulator has no volatile cache); kept for API shape."""

    def __repr__(self) -> str:
        return (
            f"BlockDevice({self.layer.name}, sectors={self.num_sectors}, "
            f"page={self.page_size}B)"
        )
