"""FTL — the page-level mapping Flash Translation Layer (paper Section 2.2).

"FTL adopts a page-level address translation mechanism for fine-grained
address translation" (Figure 2(a)): a RAM table maps each logical page to
the physical (block, page) holding its current data.  Updates are
out-place: the new content goes to a free page and the old page is marked
invalid.  When free space runs low, the Cleaner reclaims blocks with the
greedy cost-benefit policy of Section 5.1, copying live pages out first.

Implementation notes
--------------------
* Three write frontiers are kept — host writes, Cleaner copies, and
  SW-Leveler cold moves — so hot, reclaimed, and cold data never share a
  destination block (see DESIGN.md, cold-data destination separation).
* Per-block valid/invalid page counts are maintained incrementally, making
  victim scoring O(1) per probe.
* Dynamic wear leveling (which the paper's baseline Cleaner already has,
  Section 1) selects the least-worn block among qualifying GC victims and
  among fully-invalid blocks reclaimed on demand.
* Free blocks are reused most-recently-freed first by default (see
  :mod:`repro.ftl.allocator` for the policy choice and its rationale).
"""

from __future__ import annotations

from repro.flash.chip import PAGE_FREE, PAGE_VALID
from repro.flash.errors import OutOfSpaceError, ProgramFaultError
from repro.flash.mtd import MtdDevice
from repro.ftl.allocator import BlockAllocator
from repro.ftl.base import DEFAULT_OP_RATIO, GC_FREE_FRACTION, TranslationLayer
from repro.ftl.cleaner import CyclicScanner, GreedyScore
from repro.obs.bus import M_RECOVERY
from repro.obs.events import Recovery
from repro.util.diagnostics import fault_log

_UNMAPPED = -1


class PageMappingFTL(TranslationLayer):
    """Fine-grained (page-level) translation layer.

    Parameters are those of :class:`~repro.ftl.base.TranslationLayer`.
    The logical space is the physical space minus the reserved blocks
    (``op_ratio`` of the chip, floored at the Cleaner's working minimum).
    """

    name = "FTL"

    def __init__(
        self,
        mtd: MtdDevice,
        *,
        op_ratio: float = DEFAULT_OP_RATIO,
        gc_free_fraction: float = GC_FREE_FRACTION,
        alloc_policy: str = "lifo",
        retire_worn: bool = False,
    ) -> None:
        super().__init__(
            mtd,
            op_ratio=op_ratio,
            gc_free_fraction=gc_free_fraction,
            alloc_policy=alloc_policy,
            retire_worn=retire_worn,
        )
        geometry = self.geometry
        self._num_logical_pages = (
            geometry.num_blocks - self._reserve_blocks()
        ) * geometry.pages_per_block

        # Address translation table (Figure 2(a)) and its inverse.
        self._l2p = [_UNMAPPED] * self._num_logical_pages
        self._p2l = [_UNMAPPED] * geometry.total_pages
        # Incremental per-block page-state counts for O(1) victim scoring.
        self._valid = [0] * geometry.num_blocks
        self._invalid = [0] * geometry.num_blocks

        self.allocator = BlockAllocator(
            mtd.erase_counts, list(range(geometry.num_blocks)),
            policy=alloc_policy,
        )
        self.scanner = CyclicScanner(geometry.num_blocks)
        # Write frontiers: (block, next free page) or None when closed.
        # Host writes, Cleaner copies, and SW-Leveler cold moves each get
        # their own frontier so hot, reclaimed, and cold data never share
        # a block — mixing cold pages into the Cleaner's destination would
        # make every later collection re-copy them.
        self._host_frontier: tuple[int, int] | None = None
        self._copy_frontier: tuple[int, int] | None = None
        self._cold_frontier: tuple[int, int] | None = None
        # Blocks that suffered a program fault, awaiting relocation and
        # retirement at the next safe point (end of the host write).
        self._pending_retire: list[int] = []
        self._retiring = False

    # ------------------------------------------------------------------
    # Logical space
    # ------------------------------------------------------------------
    @property
    def num_logical_pages(self) -> int:
        return self._num_logical_pages

    def mapping_of(self, lpn: int) -> tuple[int, int] | None:
        """Physical (block, page) of ``lpn``, or ``None`` when unmapped."""
        self.check_lpn(lpn)
        index = self._l2p[lpn]
        if index == _UNMAPPED:
            return None
        return self.geometry.page_address(index)

    # ------------------------------------------------------------------
    # Host operations
    # ------------------------------------------------------------------
    def read(self, lpn: int) -> bytes | None:
        self.check_lpn(lpn)
        self.stats.host_reads += 1
        index = self._l2p[lpn]
        if index == _UNMAPPED:
            return None
        _, payload = self.mtd.read_page(*self.geometry.page_address(index))
        return payload

    def write(self, lpn: int, data: bytes | None = None) -> None:
        """Out-place update: program a free page, invalidate the old copy."""
        self.check_lpn(lpn)
        self.stats.host_writes += 1
        block, page = self._write_with_recovery("host", lpn, data)
        # Read the old location only *after* the program landed: garbage
        # collection inside the frontier advance may have relocated it.
        old = self._l2p[lpn]
        self._valid[block] += 1
        index = self.geometry.page_index(block, page)
        self._p2l[index] = lpn
        self._l2p[lpn] = index
        if old != _UNMAPPED:
            self._invalidate(old)
        self._process_pending_retirements()

    # ------------------------------------------------------------------
    # Space management
    # ------------------------------------------------------------------
    def _invalidate(self, index: int) -> None:
        block, page = self.geometry.page_address(index)
        self.mtd.invalidate_page(block, page)
        self._p2l[index] = _UNMAPPED
        self._valid[block] -= 1
        self._invalid[block] += 1

    def _write_with_recovery(
        self, kind: str, lba: int, data: bytes | None
    ) -> tuple[int, int]:
        """Program ``(lba, data)`` on the ``kind`` frontier, surviving faults.

        A :class:`ProgramFaultError` leaves the attempted page invalid on
        the chip; the faulted block's frontier is closed, the block is
        queued for retirement, and the write re-issues on a fresh page —
        the paper-era firmware response to a grown-bad block.
        """
        next_page = {
            "host": self._next_host_page,
            "copy": self._next_copy_page,
            "cold": self._next_cold_page,
        }[kind]
        for _ in range(self.geometry.total_pages):
            block, page = next_page()
            try:
                self.mtd.write_page(block, page, lba=lba, data=data)
            except ProgramFaultError:
                self._on_program_fault(block, kind)
                continue
            return block, page
        raise OutOfSpaceError(
            "every candidate destination page failed to program"
        )

    def _on_program_fault(self, block: int, kind: str) -> None:
        """Bookkeeping after a failed program: the chip already marked the
        attempted page invalid and counted the program."""
        self.stats.program_faults += 1
        self._invalid[block] += 1
        if kind == "host":
            self._host_frontier = None
        elif kind == "copy":
            self._copy_frontier = None
        else:
            self._cold_frontier = None
        if block not in self._failed_blocks and block not in self.retired_blocks:
            self._failed_blocks.add(block)
            self._pending_retire.append(block)
            fault_log.info(
                "FTL: program fault on block %d (%s frontier); "
                "block scheduled for retirement", block, kind,
            )
        if self._obs is not None and self._obs.mask & M_RECOVERY:
            self._obs.emit(Recovery("reissue", block))

    def _process_pending_retirements(self) -> None:
        """Relocate and retire program-faulted blocks.

        Deferred to the end of the host write — a safe point where no
        relocation is in flight — so recovery never recurses into itself.
        A block the Cleaner already swept up in the meantime is skipped.
        """
        if self._retiring or not self._pending_retire:
            return
        self._retiring = True
        try:
            while self._pending_retire:
                block = self._pending_retire.pop()
                if block in self.retired_blocks:
                    continue
                for attr in ("_host_frontier", "_copy_frontier",
                             "_cold_frontier"):
                    frontier = getattr(self, attr)
                    if frontier is not None and frontier[0] == block:
                        setattr(self, attr, None)
                copies_before = self.stats.live_page_copies
                with self._leveler_suspended(), \
                        self._gc_traced("recovery", block):
                    self._relocate_and_erase(block)
                self.stats.recovery_copies += (
                    self.stats.live_page_copies - copies_before
                )
        finally:
            self._retiring = False

    def _next_host_page(self) -> tuple[int, int]:
        """Next free page on the host frontier, opening a new block if full."""
        frontier = self._host_frontier
        if frontier is None or frontier[1] == self.geometry.pages_per_block:
            self._reclaim_space()
            self._recycle_dead_block()
            self._host_frontier = (self.allocator.allocate(), 0)
            frontier = self._host_frontier
        block, page = frontier
        self._host_frontier = (block, page + 1)
        return block, page

    def _recycle_dead_block(self) -> None:
        """Erase-on-demand: reclaim one fully-invalid block, if any.

        Firmware of the paper's era erases reclaimable units lazily when a
        new block is needed, so steady-state churn reuses its own dead
        blocks instead of consuming untouched ones — which is what leaves
        the cold majority of the chip at near-zero erase counts in the
        paper's baselines (Table 4).  The least-worn dead block is chosen
        (the dynamic wear leveling of Section 1); copy-based garbage
        collection still engages at the Section 5.1 free-space trigger.
        Under LIFO allocation the reclaimed block is allocated next.
        """
        frontiers = self._frontier_blocks()
        ppb = self.geometry.pages_per_block
        # Everything the score reads is loop-invariant across one scan
        # revolution; bind it locally so the per-probe work is membership
        # tests and two list reads.
        in_free = self.allocator.contains
        valid, invalid = self._valid, self._invalid

        def dead_score(block: int) -> GreedyScore | None:
            if in_free(block) or block in frontiers:
                return None
            if valid[block] or invalid[block] != ppb:
                return None
            return GreedyScore(benefit=ppb, cost=0)

        victim = self.scanner.find_least_worn(
            dead_score, self.mtd.erase_counts.__getitem__
        )
        if victim is not None:
            self.stats.dead_recycles += 1
            with self._leveler_suspended(), self._gc_traced("dead", victim):
                self._relocate_and_erase(victim)

    def _next_copy_page(self) -> tuple[int, int]:
        """Next free page on the copy frontier (no recursive GC here:
        the Cleaner's trigger threshold guarantees a free block exists)."""
        frontier = self._copy_frontier
        if frontier is None or frontier[1] == self.geometry.pages_per_block:
            self._copy_frontier = (self.allocator.allocate(), 0)
            frontier = self._copy_frontier
        block, page = frontier
        self._copy_frontier = (block, page + 1)
        return block, page

    def _next_cold_page(self) -> tuple[int, int]:
        """Next free page on the cold frontier (SW-Leveler relocations)."""
        frontier = self._cold_frontier
        if frontier is None or frontier[1] == self.geometry.pages_per_block:
            self._cold_frontier = (self.allocator.allocate(), 0)
            frontier = self._cold_frontier
        block, page = frontier
        self._cold_frontier = (block, page + 1)
        return block, page

    def _frontier_blocks(self) -> set[int]:
        blocks = set()
        for frontier in (self._host_frontier, self._copy_frontier,
                         self._cold_frontier):
            if frontier is not None:
                blocks.add(frontier[0])
        return blocks

    def _reclaim_space(self) -> None:
        """Run the Cleaner until the free pool is above the trigger level.

        Paper Section 5.1: "The Cleaners in FTL and NFTL were triggered for
        garbage collection when the percentage of free blocks was under
        0.2% of the entire flash-memory capacity."
        """
        if self.allocator.free_count > self.gc_free_blocks:
            return
        with self._leveler_suspended():
            while self.allocator.free_count <= self.gc_free_blocks:
                self._gc_once()

    def _score_block(self, block: int) -> GreedyScore | None:
        if (
            self.allocator.contains(block)
            or block in self.retired_blocks
            or block in self._frontier_blocks()
        ):
            return None
        return GreedyScore(benefit=self._invalid[block], cost=self._valid[block])

    def _gc_once(self) -> None:
        """One Cleaner pass: recycle the least-worn qualifying victim.

        Victims qualify by the greedy cost-benefit rule; among them the
        block with the smallest erase count wins — the baseline dynamic
        wear leveling of paper Section 5.1.

        The score closure below is :meth:`_score_block` with the
        loop-invariant lookups (frontier set, pool membership, page
        tallies) hoisted out of the per-probe path — the scanner calls it
        once per block per revolution.
        """
        frontiers = self._frontier_blocks()
        retired = self.retired_blocks
        in_free = self.allocator.contains
        valid, invalid = self._valid, self._invalid

        def score(block: int) -> GreedyScore | None:
            if in_free(block) or block in retired or block in frontiers:
                return None
            return GreedyScore(benefit=invalid[block], cost=valid[block])

        victim = self.scanner.find_least_worn(
            score, self.mtd.erase_counts.__getitem__
        )
        if victim is None:
            victim = self.scanner.find_best_fallback(score)
        if victim is None:
            raise OutOfSpaceError(
                "garbage collection found no block with reclaimable pages; "
                "the logical space is too large for the physical space"
            )
        self.stats.gc_runs += 1
        with self._gc_traced("free-space", victim):
            self._relocate_and_erase(victim)

    def _relocate_and_erase(self, block: int, *, cold: bool = False) -> None:
        """Copy every live page out of ``block``, erase it, pool it.

        ``cold=True`` routes the copies to the dedicated cold frontier
        (SW-Leveler moves), keeping relocated cold data out of the
        Cleaner's destination blocks.
        """
        geometry = self.geometry
        next_page = self._next_cold_page if cold else self._next_copy_page
        base = block * geometry.pages_per_block
        for page in range(geometry.pages_per_block):
            lpn = self._p2l[base + page]
            if lpn == _UNMAPPED:
                continue
            lba, payload = self.mtd.read_page(block, page)
            dest_block, dest_page = self._write_with_recovery(
                "cold" if cold else "copy", lba, payload
            )
            self.stats.live_page_copies += 1
            dest_index = geometry.page_index(dest_block, dest_page)
            self._p2l[base + page] = _UNMAPPED
            self._p2l[dest_index] = lpn
            self._l2p[lpn] = dest_index
            self._valid[dest_block] += 1
            self._valid[block] -= 1
        self._erase_with_recovery(block)
        self._valid[block] = 0
        self._invalid[block] = 0
        self._release_or_retire(block)

    # ------------------------------------------------------------------
    # SW Leveler host interface (EraseBlockSet)
    # ------------------------------------------------------------------
    def recycle_block_range(self, blocks: range) -> int:
        """Force-recycle the selected block set so cold data moves.

        Free blocks are skipped (nothing cold lives there); a frontier
        block is closed first so its live pages relocate like any other.
        Address translation updates happen exactly as in normal garbage
        collection, per paper Section 3.1.
        """
        recycled = 0
        with self._leveler_suspended():
            for block in blocks:
                if block in self.retired_blocks:
                    continue  # out of service; the leveler flags the set
                if self.allocator.contains(block):
                    # Nothing cold to move, but pull the (possibly virgin)
                    # block to the head of the free order so it joins the
                    # write rotation; the leveler flags the set directly.
                    self.allocator.promote(block)
                    continue
                if self._host_frontier is not None and block == self._host_frontier[0]:
                    self._host_frontier = None
                if self._copy_frontier is not None and block == self._copy_frontier[0]:
                    self._copy_frontier = None
                if self._cold_frontier is not None and block == self._cold_frontier[0]:
                    self._cold_frontier = None
                with self._gc_traced("swl", block):
                    self._relocate_and_erase(block, cold=True)
                self.stats.forced_recycles += 1
                recycled += 1
        return recycled

    # ------------------------------------------------------------------
    # Checkpointing (see repro.ckpt)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict[str, object]:
        """Driver-common state plus the page-level mapping tables."""
        state = super().snapshot_state()
        state.update({
            "num_logical_pages": self._num_logical_pages,
            "l2p": list(self._l2p),
            "p2l": list(self._p2l),
            "valid": list(self._valid),
            "invalid": list(self._invalid),
            "scanner": self.scanner.snapshot_state(),
            "host_frontier": self._host_frontier,
            "copy_frontier": self._copy_frontier,
            "cold_frontier": self._cold_frontier,
            "pending_retire": list(self._pending_retire),
        })
        return state

    def restore_state(self, state: dict[str, object]) -> None:
        if state["num_logical_pages"] != self._num_logical_pages:
            raise ValueError(
                f"FTL snapshot exports {state['num_logical_pages']} logical "
                f"pages, driver exports {self._num_logical_pages}"
            )
        super().restore_state(state)
        self._l2p = list(state["l2p"])  # type: ignore[arg-type]
        self._p2l = list(state["p2l"])  # type: ignore[arg-type]
        self._valid = list(state["valid"])  # type: ignore[arg-type]
        self._invalid = list(state["invalid"])  # type: ignore[arg-type]
        self.scanner.restore_state(state["scanner"])  # type: ignore[arg-type]

        def frontier(value: object) -> tuple[int, int] | None:
            if value is None:
                return None
            block, page = value  # type: ignore[misc]
            return (block, page)

        self._host_frontier = frontier(state["host_frontier"])
        self._copy_frontier = frontier(state["copy_frontier"])
        self._cold_frontier = frontier(state["cold_frontier"])
        self._pending_retire = list(state["pending_retire"])  # type: ignore[arg-type]
        self._retiring = False

    # ------------------------------------------------------------------
    # Attach-time recovery (Figure 2(a): the table lives in RAM)
    # ------------------------------------------------------------------
    def rebuild_mapping(self) -> int:
        """Reconstruct the translation table from spare-area tags.

        Scans every page's spare LBA tag and state — what a real FTL does
        when the device is attached and its RAM table is gone.  Returns the
        number of mappings recovered.  Frontiers are closed; free blocks
        are re-pooled.

        Crash hardening: blocks in the chip's bad-block table are excluded
        from service, and a logical page found on two physical pages — a
        power loss between a Cleaner copy and the source-block erase — is
        resolved by invalidating the earlier-seen copy (both hold identical
        content, so either is correct).
        """
        geometry = self.geometry
        flash = self.mtd.flash
        self._l2p = [_UNMAPPED] * self._num_logical_pages
        self._p2l = [_UNMAPPED] * geometry.total_pages
        self._valid = [0] * geometry.num_blocks
        self._invalid = [0] * geometry.num_blocks
        self.retired_blocks = set(flash.bad_blocks)
        self._failed_blocks = set()
        self._pending_retire = []
        free_blocks: list[int] = []
        recovered = 0
        for block in range(geometry.num_blocks):
            if block in self.retired_blocks:
                continue
            states = flash.block_page_states(block)
            if states.count(PAGE_FREE) == len(states):
                free_blocks.append(block)
                continue
            for page, state in enumerate(states):
                if state != PAGE_VALID:
                    if state != PAGE_FREE:
                        self._invalid[block] += 1
                    continue
                lpn = flash.page_lba(block, page)
                index = geometry.page_index(block, page)
                if 0 <= lpn < self._num_logical_pages:
                    prev = self._l2p[lpn]
                    if prev != _UNMAPPED:
                        prev_block, prev_page = geometry.page_address(prev)
                        self.mtd.invalidate_page(prev_block, prev_page)
                        self._p2l[prev] = _UNMAPPED
                        self._valid[prev_block] -= 1
                        self._invalid[prev_block] += 1
                        recovered -= 1
                        fault_log.debug(
                            "rebuild: duplicate copy of lpn %d at "
                            "(%d, %d) superseded", lpn, prev_block, prev_page,
                        )
                    self._l2p[lpn] = index
                    self._p2l[index] = lpn
                    self._valid[block] += 1
                    recovered += 1
        self.allocator = BlockAllocator(
            self.mtd.erase_counts, free_blocks, policy=self.alloc_policy
        )
        self._host_frontier = None
        self._copy_frontier = None
        self._cold_frontier = None
        return recovered

    # ------------------------------------------------------------------
    # Invariants (crash-consistency harness)
    # ------------------------------------------------------------------
    def assert_internal_consistency(self) -> None:
        """Cross-check the RAM tables against the chip's page states.

        Raises :class:`AssertionError` on the first discrepancy.  Used by
        the crash-consistency harness after every simulated reboot.
        """
        geometry = self.geometry
        flash = self.mtd.flash
        free = set(self.allocator.free_blocks())
        overlap = free & self.retired_blocks
        if overlap:
            raise AssertionError(
                f"retired blocks present in the free pool: {sorted(overlap)}"
            )
        for lpn, index in enumerate(self._l2p):
            if index == _UNMAPPED:
                continue
            if self._p2l[index] != lpn:
                raise AssertionError(
                    f"l2p/p2l disagree for lpn {lpn}: p2l[{index}] = "
                    f"{self._p2l[index]}"
                )
            block, page = geometry.page_address(index)
            if flash.block_page_states(block)[page] != PAGE_VALID:
                raise AssertionError(
                    f"lpn {lpn} maps to non-valid page ({block}, {page})"
                )
        for block in range(geometry.num_blocks):
            if block in self.retired_blocks:
                continue
            valid = flash.block_page_states(block).count(PAGE_VALID)
            if valid != self._valid[block]:
                raise AssertionError(
                    f"block {block}: chip holds {valid} valid pages, "
                    f"driver believes {self._valid[block]}"
                )
