"""Convenience constructors wiring chip + MTD + driver + SW Leveler.

Experiments build the same stack over and over; :func:`build_stack`
assembles it in one call from a geometry, a driver name, and an
:class:`~repro.core.config.SWLConfig`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.config import SWLConfig
from repro.core.leveler import SWLeveler
from repro.flash.chip import NandFlash
from repro.flash.geometry import FlashGeometry
from repro.flash.mtd import MtdDevice
from repro.ftl.base import DEFAULT_OP_RATIO, GC_FREE_FRACTION, TranslationLayer
from repro.ftl.nftl import NFTL
from repro.ftl.page_mapping import PageMappingFTL

if TYPE_CHECKING:
    from repro.fault.injector import FaultInjector

_DRIVERS: dict[str, type[TranslationLayer]] = {
    "ftl": PageMappingFTL,
    "nftl": NFTL,
}


def driver_names() -> list[str]:
    """Names accepted by :func:`make_layer` (``ftl``, ``nftl``)."""
    return sorted(_DRIVERS)


def make_layer(
    name: str,
    mtd: MtdDevice,
    *,
    op_ratio: float = DEFAULT_OP_RATIO,
    gc_free_fraction: float = GC_FREE_FRACTION,
    alloc_policy: str = "lifo",
    retire_worn: bool = False,
) -> TranslationLayer:
    """Instantiate a translation layer by name over an MTD device."""
    try:
        cls = _DRIVERS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown translation layer {name!r}; choose from {driver_names()}"
        ) from None
    return cls(
        mtd,
        op_ratio=op_ratio,
        gc_free_fraction=gc_free_fraction,
        alloc_policy=alloc_policy,
        retire_worn=retire_worn,
    )


@dataclass
class StorageStack:
    """A fully wired flash storage system (paper Figure 1, below the VFS)."""

    flash: NandFlash
    mtd: MtdDevice
    layer: TranslationLayer
    leveler: SWLeveler | None

    @property
    def name(self) -> str:
        label = self.layer.name
        if self.leveler is not None:
            label += f"+SWL+k={self.leveler.bet.k}+T={int(self.leveler.threshold)}"
        return label


def build_stack(
    geometry: FlashGeometry,
    driver: str = "ftl",
    swl: SWLConfig | None = None,
    *,
    op_ratio: float = DEFAULT_OP_RATIO,
    gc_free_fraction: float = GC_FREE_FRACTION,
    alloc_policy: str = "lifo",
    retire_worn: bool = False,
    store_data: bool = False,
    rng: random.Random | None = None,
    injector: "FaultInjector | None" = None,
) -> StorageStack:
    """Assemble chip, MTD, driver, and (optionally) the SW Leveler.

    Parameters
    ----------
    geometry:
        Chip organization.
    driver:
        ``"ftl"`` or ``"nftl"``.
    swl:
        SW Leveler configuration; ``None`` or a disabled config yields the
        paper's baseline system.
    alloc_policy:
        Free-block allocation order (see :mod:`repro.ftl.allocator`).
    store_data:
        Keep page payloads (for data-integrity tests and examples).
    rng:
        Randomness for the leveler's post-reset ``findex`` re-seed.
    injector:
        Fault injector attached to the chip before the driver touches it
        (see :mod:`repro.fault`).
    """
    flash = NandFlash(geometry, store_data=store_data)
    if injector is not None:
        flash.attach_injector(injector)
    mtd = MtdDevice(flash)
    layer = make_layer(
        driver,
        mtd,
        op_ratio=op_ratio,
        gc_free_fraction=gc_free_fraction,
        alloc_policy=alloc_policy,
        retire_worn=retire_worn,
    )
    leveler = None
    if swl is not None and swl.enabled:
        leveler = swl.build(geometry.num_blocks, layer, rng=rng)
        assert leveler is not None
        layer.attach_leveler(leveler)
    return StorageStack(flash=flash, mtd=mtd, layer=layer, leveler=leveler)
