"""Convenience constructors wiring chip + MTD + driver + SW Leveler.

Experiments build the same stack over and over; :func:`build_stack`
assembles it in one call from a geometry, a driver name, and an
:class:`~repro.core.config.SWLConfig`.

This module also defines the :class:`StorageBackend` protocol — the
surface the simulation engine drives.  A :class:`StorageStack` is the
1-channel backend; :class:`~repro.array.DeviceArray` implements the same
protocol over N channel shards, and :func:`build_backend` picks between
them from a channel count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

from repro.core.config import SWLConfig
from repro.core.leveler import WearLeveler
from repro.core.policies import LevelerSpec
from repro.flash.chip import FirstFailure, NandFlash
from repro.flash.errors import PowerLossError
from repro.flash.geometry import FlashGeometry
from repro.flash.mtd import MtdDevice
from repro.ftl.base import DEFAULT_OP_RATIO, GC_FREE_FRACTION, TranslationLayer
from repro.ftl.nftl import NFTL
from repro.ftl.page_mapping import PageMappingFTL
from repro.obs.heatmap import WearHeatmap

if TYPE_CHECKING:
    from repro.array.device import DeviceArray
    from repro.fault.injector import FaultInjector
    from repro.fault.plan import FaultPlan
    from repro.obs.bus import BusLike
    # Annotation-only: importing repro.sim.metrics at runtime would
    # initialize the repro.sim package, whose engine imports this module
    # (annotations stay lazy via `from __future__ import annotations`).
    from repro.sim.metrics import EraseDistribution

_DRIVERS: dict[str, type[TranslationLayer]] = {
    "ftl": PageMappingFTL,
    "nftl": NFTL,
}


def driver_names() -> list[str]:
    """Names accepted by :func:`make_layer` (``ftl``, ``nftl``)."""
    return sorted(_DRIVERS)


def make_layer(
    name: str,
    mtd: MtdDevice,
    *,
    op_ratio: float = DEFAULT_OP_RATIO,
    gc_free_fraction: float = GC_FREE_FRACTION,
    alloc_policy: str = "lifo",
    retire_worn: bool = False,
) -> TranslationLayer:
    """Instantiate a translation layer by name over an MTD device."""
    try:
        cls = _DRIVERS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown translation layer {name!r}; choose from {driver_names()}"
        ) from None
    return cls(
        mtd,
        op_ratio=op_ratio,
        gc_free_fraction=gc_free_fraction,
        alloc_policy=alloc_policy,
        retire_worn=retire_worn,
    )


@runtime_checkable
class StorageBackend(Protocol):
    """What the simulation engine needs from a storage system.

    Implemented by :class:`StorageStack` (one channel) and by
    :class:`~repro.array.DeviceArray` (N striped channels), so the engine,
    runners, and reporting never depend on a concrete topology.  Methods
    that aggregate (``layer_stats``, ``total_erases``, ...) sum over every
    shard of the backend; per-shard breakdowns come from
    :meth:`shard_erase_counts`.
    """

    @property
    def name(self) -> str: ...

    @property
    def num_shards(self) -> int: ...

    @property
    def sectors_per_page(self) -> int: ...

    @property
    def num_logical_pages(self) -> int: ...

    def write_pages(self, lpns: Sequence[int]) -> int: ...

    def read_pages(self, lpns: Sequence[int]) -> int: ...

    def on_request(self, now: float) -> None: ...

    @property
    def first_failure(self) -> FirstFailure | None: ...

    @property
    def erase_counts(self) -> list[int]: ...

    def shard_erase_counts(self) -> list[list[int]]: ...

    def erase_distribution(self) -> EraseDistribution: ...

    def shard_erase_distributions(self) -> list[EraseDistribution]: ...

    def wear_heatmap(self, ts: float, bins: int = 64) -> WearHeatmap: ...

    def total_erases(self) -> int: ...

    def total_programs(self) -> int: ...

    @property
    def busy_time(self) -> float: ...

    def shard_busy_times(self) -> list[float]: ...

    def layer_stats(self) -> dict[str, int]: ...

    def swl_stats(self) -> dict[str, int]: ...

    def fault_stats(self) -> dict[str, int]: ...


def _count_power_loss_pages(exc: PowerLossError, done: int) -> None:
    """Accumulate pages applied before a power loss onto the exception.

    A power loss aborts a batch mid-flight; the engine still reports the
    partial request, so the completed page count rides on the exception
    (``pages_done``) rather than being lost with the stack frame.
    """
    exc.pages_done = getattr(exc, "pages_done", 0) + done  # type: ignore[attr-defined]


@dataclass
class StorageStack:
    """A fully wired flash storage system (paper Figure 1, below the VFS).

    Also the 1-channel :class:`StorageBackend`: the simulation engine
    drives it through the protocol methods below, which a
    :class:`~repro.array.DeviceArray` reimplements across shards.
    """

    flash: NandFlash
    mtd: MtdDevice
    layer: TranslationLayer
    leveler: WearLeveler | None

    def __post_init__(self) -> None:
        # Resolved once: the hot write/read paths branch on a local, not
        # on a per-call getattr.  Only write-intercepting mechanisms (the
        # cache-based wear avoider) make this non-None.
        self._intercept = (
            self.leveler
            if getattr(self.leveler, "intercepts_writes", False)
            else None
        )

    @property
    def name(self) -> str:
        label = self.layer.name
        if self.leveler is not None:
            label += f"+{self.leveler.label}"
        return label

    # ------------------------------------------------------------------
    # StorageBackend protocol
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return 1

    @property
    def sectors_per_page(self) -> int:
        return self.mtd.geometry.sectors_per_page

    @property
    def num_logical_pages(self) -> int:
        return self.layer.num_logical_pages

    def write_pages(self, lpns: Sequence[int]) -> int:
        """Write each logical page in order; returns the pages written.

        A write-intercepting leveler (``intercepts_writes``) sits between
        the host and the translation layer: each page goes through its
        ``host_write``, which decides whether flash is touched at all.
        """
        done = 0
        intercept = self._intercept
        try:
            if intercept is None:
                for lpn in lpns:
                    self.layer.write(lpn)
                    done += 1
            else:
                for lpn in lpns:
                    intercept.host_write(self.layer, lpn)
                    done += 1
        except PowerLossError as exc:
            _count_power_loss_pages(exc, done)
            raise
        return done

    def read_pages(self, lpns: Sequence[int]) -> int:
        """Read each logical page in order; returns the pages read."""
        done = 0
        intercept = self._intercept
        try:
            if intercept is None:
                for lpn in lpns:
                    self.layer.read(lpn)
                    done += 1
            else:
                for lpn in lpns:
                    intercept.host_read(self.layer, lpn)
                    done += 1
        except PowerLossError as exc:
            _count_power_loss_pages(exc, done)
            raise
        return done

    def on_request(self, now: float) -> None:
        if self.leveler is not None:
            self.leveler.on_request(now)

    @property
    def first_failure(self) -> FirstFailure | None:
        return self.flash.first_failure

    @property
    def erase_counts(self) -> list[int]:
        return self.flash.erase_counts

    def shard_erase_counts(self) -> list[list[int]]:
        return [self.flash.erase_counts]

    def erase_distribution(self) -> EraseDistribution:
        """O(1) wear summary from the chip's incremental accumulator."""
        return self.flash.wear.distribution()

    def shard_erase_distributions(self) -> list[EraseDistribution]:
        return [self.flash.wear.distribution()]

    def wear_heatmap(self, ts: float, bins: int = 64) -> WearHeatmap:
        """O(bins) heatmap snapshot from incrementally maintained bin sums.

        The first call (or a ``bins`` change) pays one O(num_blocks)
        rebuild via :meth:`~repro.sim.metrics.WearAccumulator.ensure_bins`;
        every later snapshot reads the live sums.
        """
        wear = self.flash.wear
        num_blocks = self.flash.geometry.num_blocks
        width = max(1, -(-num_blocks // bins))
        wear.ensure_bins(width, self.flash.erase_counts)
        return WearHeatmap.from_bin_sums(
            ts,
            num_blocks=num_blocks,
            bin_width=width,
            bin_sums=wear.bin_sums,
            min_count=wear.minimum,
            max_count=wear.maximum,
            total_erases=wear.total,
        )

    def total_erases(self) -> int:
        return self.flash.total_erases()

    def total_programs(self) -> int:
        """Physical page programs — host writes plus GC/SWL live copies.

        Dividing by the host-written page count gives the exact write
        amplification factor; :mod:`repro.endurance` relies on the
        identity ``total_programs == pages_written + live_page_copies``.
        """
        return self.flash.counters.programs

    @property
    def busy_time(self) -> float:
        return self.mtd.busy_time

    def shard_busy_times(self) -> list[float]:
        """Accumulated busy time per channel — one entry for one stack.

        The service engine diffs this around :meth:`write_pages` /
        :meth:`read_pages` to attribute each request's service time
        (including any GC or SWL work it triggered) to the channels that
        performed it.
        """
        return [self.mtd.busy_time]

    def layer_stats(self) -> dict[str, int]:
        return self.layer.stats.as_dict()

    def swl_stats(self) -> dict[str, int]:
        return self.leveler.stats.as_dict() if self.leveler else {}

    def fault_stats(self) -> dict[str, int]:
        injector = self.flash.injector
        return injector.stats.as_dict() if injector is not None else {}

    # ------------------------------------------------------------------
    # Checkpointing (see repro.ckpt)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict[str, object]:
        """Compose the snapshots of every component in the stack.

        Wiring (erase listeners, bus hookups, the leveler<->layer
        attachment, the allocator's shared erase-count list) is never
        serialized: a restore target is a freshly *built* stack whose
        wiring already exists, and only the state is overwritten.
        """
        injector = self.flash.injector
        return {
            "flash": self.flash.snapshot_state(),
            "busy_time": self.mtd.busy_time,
            "layer": self.layer.snapshot_state(),
            "leveler": (
                self.leveler.snapshot_state() if self.leveler is not None else None
            ),
            "injector": (
                injector.snapshot_state() if injector is not None else None
            ),
        }

    def restore_state(self, state: dict[str, object]) -> None:
        """Overwrite every component in place from :meth:`snapshot_state`.

        The stack must be built from the same configuration that produced
        the snapshot; component-level geometry/config checks raise
        ``ValueError`` on any mismatch (e.g. a leveler in the image but
        not in the stack).
        """
        leveler_state = state["leveler"]
        if (leveler_state is None) != (self.leveler is None):
            raise ValueError(
                "snapshot and stack disagree on the presence of a SW Leveler"
            )
        injector_state = state["injector"]
        if (injector_state is None) != (self.flash.injector is None):
            raise ValueError(
                "snapshot and stack disagree on the presence of a fault injector"
            )
        self.flash.restore_state(state["flash"])  # type: ignore[arg-type]
        self.mtd.busy_time = state["busy_time"]  # type: ignore[assignment]
        self.layer.restore_state(state["layer"])  # type: ignore[arg-type]
        if self.leveler is not None:
            self.leveler.restore_state(leveler_state)  # type: ignore[arg-type]
        if self.flash.injector is not None:
            self.flash.injector.restore_state(injector_state)  # type: ignore[arg-type]


def build_stack(
    geometry: FlashGeometry,
    driver: str = "ftl",
    swl: SWLConfig | LevelerSpec | None = None,
    *,
    op_ratio: float = DEFAULT_OP_RATIO,
    gc_free_fraction: float = GC_FREE_FRACTION,
    alloc_policy: str = "lifo",
    retire_worn: bool = False,
    store_data: bool = False,
    rng: random.Random | None = None,
    injector: "FaultInjector | None" = None,
    bus: "BusLike | None" = None,
) -> StorageStack:
    """Assemble chip, MTD, driver, and (optionally) the SW Leveler.

    Parameters
    ----------
    geometry:
        Chip organization.
    driver:
        ``"ftl"`` or ``"nftl"``.
    swl:
        Wear-leveling configuration — an :class:`SWLConfig` (the paper's
        SW Leveler) or a :class:`~repro.core.policies.LevelerSpec`
        naming any registered mechanism; ``None`` or a disabled config
        yields the paper's baseline system.
    alloc_policy:
        Free-block allocation order (see :mod:`repro.ftl.allocator`).
    store_data:
        Keep page payloads (for data-integrity tests and examples).
    rng:
        Randomness for the leveler's post-reset ``findex`` re-seed.
    injector:
        Fault injector attached to the chip before the driver touches it
        (see :mod:`repro.fault`).
    bus:
        Telemetry event bus (see :mod:`repro.obs`); attached to every
        instrumented component and given the device's ``busy_time`` as
        its clock.  ``None`` (the default) builds the stack with
        telemetry fully disabled.
    """
    flash = NandFlash(geometry, store_data=store_data)
    if injector is not None:
        flash.attach_injector(injector)
    mtd = MtdDevice(flash)
    layer = make_layer(
        driver,
        mtd,
        op_ratio=op_ratio,
        gc_free_fraction=gc_free_fraction,
        alloc_policy=alloc_policy,
        retire_worn=retire_worn,
    )
    leveler = None
    if swl is not None and swl.enabled:
        leveler = swl.build(geometry.num_blocks, layer, rng=rng)
        assert leveler is not None
        layer.attach_leveler(leveler)
    if bus:
        # Timestamps are simulated device time: the accumulated busy
        # time of this stack's MTD (per-shard clocks in an array).
        if getattr(bus, "clock", None) is None:
            bus.clock = lambda: mtd.busy_time
        flash.attach_bus(bus)
        # The chip's cumulative OpCounters back the pulled hot-counter
        # path: state-capable subscribers stop listening for per-op
        # events once a source covers their shard (repro.obs.bus).
        bus.register_hot_source(flash)
        layer.attach_bus(bus)
        if leveler is not None and hasattr(leveler, "attach_bus"):
            # Only the paper's SW Leveler emits telemetry; challengers
            # run silent.
            leveler.attach_bus(bus)
        if injector is not None:
            injector.attach_bus(bus)
    return StorageStack(flash=flash, mtd=mtd, layer=layer, leveler=leveler)


def build_backend(
    geometry: FlashGeometry,
    driver: str = "ftl",
    swl: SWLConfig | LevelerSpec | None = None,
    *,
    channels: int = 1,
    striping: str = "page",
    swl_scope: str = "per-shard",
    op_ratio: float = DEFAULT_OP_RATIO,
    gc_free_fraction: float = GC_FREE_FRACTION,
    alloc_policy: str = "lifo",
    retire_worn: bool = False,
    store_data: bool = False,
    rng: random.Random | None = None,
    injector: "FaultInjector | None" = None,
    fault_plan: "FaultPlan | None" = None,
    bus: "BusLike | None" = None,
) -> "StorageStack | DeviceArray":
    """Build a :class:`StorageBackend` with the requested channel count.

    ``channels=1`` returns a plain :class:`StorageStack` built exactly as
    :func:`build_stack` would — same construction order, same RNG stream —
    so single-channel behaviour is bit-identical to the pre-array code
    path.  ``channels > 1`` returns a
    :class:`~repro.array.DeviceArray` of independent shards, each a full
    chip + FTL + SW Leveler stack over ``geometry``, routed by the named
    striping policy and coordinated per ``swl_scope`` (``"per-shard"`` or
    ``"global"``).  ``fault_plan`` attaches one derived-seed injector per
    shard; ``injector`` is the single-channel form and rejected for
    arrays (shards must not share injector state).
    """
    if channels == 1:
        if fault_plan is not None and injector is None:
            from repro.fault.injector import FaultInjector

            injector = FaultInjector(fault_plan)
        return build_stack(
            geometry,
            driver,
            swl,
            op_ratio=op_ratio,
            gc_free_fraction=gc_free_fraction,
            alloc_policy=alloc_policy,
            retire_worn=retire_worn,
            store_data=store_data,
            rng=rng,
            injector=injector,
            bus=bus,
        )
    from repro.array.device import build_array

    if injector is not None:
        raise ValueError(
            "a shared injector cannot serve a multi-channel array; "
            "pass fault_plan= to derive one injector per shard"
        )
    return build_array(
        geometry,
        driver,
        swl,
        channels=channels,
        striping=striping,
        swl_scope=swl_scope,
        op_ratio=op_ratio,
        gc_free_fraction=gc_free_fraction,
        alloc_policy=alloc_policy,
        retire_worn=retire_worn,
        store_data=store_data,
        rng=rng,
        fault_plan=fault_plan,
        bus=bus,
    )
