"""NFTL — the block-level mapping Flash Translation Layer (paper Section 2.2).

"NFTL adopts a block-level address translation mechanism for coarse-grained
address translation.  An LBA under NFTL is divided into a virtual block
address and a block offset. ... A VBA can be translated to a (primary)
physical block address. ... the contents of the (overwritten) write
requests are sequentially written to the replacement block.  When a
replacement block is full, valid pages in the block and its associated
primary block are merged into a new primary block ... and the previous two
blocks are erased."  (Figure 2(b).)

Implementation notes
--------------------
* Each mapped VBA owns a :class:`BlockChain`: a primary block (data at its
  home offset), an optional replacement block (overwrites appended
  sequentially), and a per-offset location table giving O(1) reads —
  equivalent to, but faster than, the backwards scan of the replacement
  block that firmware performs.
* A fold (merge) copies the most-recent content of every offset into a
  freshly allocated primary and erases the two old blocks; folds are
  forced when a replacement fills, during garbage collection, and on
  SW Leveler requests (which is how cold chains get moved).
* Per-chain valid/invalid counts make the Cleaner's greedy cost-benefit
  scoring O(1) per probe, with the cyclic scan running over VBAs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.flash.chip import PAGE_FREE, PAGE_VALID
from repro.flash.errors import OutOfSpaceError, ProgramFaultError
from repro.flash.mtd import MtdDevice
from repro.ftl.allocator import BlockAllocator
from repro.ftl.base import DEFAULT_OP_RATIO, GC_FREE_FRACTION, TranslationLayer
from repro.ftl.cleaner import CyclicScanner, GreedyScore
from repro.obs.bus import M_RECOVERY
from repro.obs.events import Recovery
from repro.util.diagnostics import fault_log

_NOWHERE = -1


@dataclass
class BlockChain:
    """Translation state of one virtual block address."""

    vba: int
    primary: int
    replacement: int | None = None
    #: Next free page in the replacement block (sequential writes only).
    repl_next: int = 0
    #: Per-offset global page index of the current content (-1 = no data).
    locations: list[int] = field(default_factory=list)
    #: Number of offsets currently holding data (fold copy cost).
    valid_offsets: int = 0
    #: Pages programmed in the primary block.
    primary_used: int = 0

    def invalid_pages(self) -> int:
        """Superseded pages across the chain (fold benefit)."""
        return self.primary_used + self.repl_next - self.valid_offsets


class NFTL(TranslationLayer):
    """Coarse-grained (block-level) translation layer.

    The logical space is the physical block count minus the reserved
    blocks (``op_ratio`` of the chip, floored at the Cleaner's working
    minimum), in units of whole virtual blocks.
    """

    name = "NFTL"

    def __init__(
        self,
        mtd: MtdDevice,
        *,
        op_ratio: float = DEFAULT_OP_RATIO,
        gc_free_fraction: float = GC_FREE_FRACTION,
        alloc_policy: str = "lifo",
        retire_worn: bool = False,
    ) -> None:
        super().__init__(
            mtd,
            op_ratio=op_ratio,
            gc_free_fraction=gc_free_fraction,
            alloc_policy=alloc_policy,
            retire_worn=retire_worn,
        )
        geometry = self.geometry
        self.num_vbas = geometry.num_blocks - self._reserve_blocks()
        self._chains: list[BlockChain | None] = [None] * self.num_vbas
        #: Physical block -> owning chain (None when free).
        self._owner: list[BlockChain | None] = [None] * geometry.num_blocks
        self.allocator = BlockAllocator(
            mtd.erase_counts, list(range(geometry.num_blocks)),
            policy=alloc_policy,
        )
        self.scanner = CyclicScanner(self.num_vbas)
        # Blocks that suffered a program fault; their owning chains fold
        # (and the blocks retire) at the next safe point.
        self._pending_retire: list[int] = []
        self._retiring = False

    # ------------------------------------------------------------------
    # Logical space
    # ------------------------------------------------------------------
    @property
    def num_logical_pages(self) -> int:
        return self.num_vbas * self.geometry.pages_per_block

    def split_lpn(self, lpn: int) -> tuple[int, int]:
        """LBA split of Section 2.2: (virtual block address, block offset)."""
        self.check_lpn(lpn)
        return divmod(lpn, self.geometry.pages_per_block)

    def chain_of(self, vba: int) -> BlockChain | None:
        """Translation state of one VBA (``None`` when never written)."""
        if not 0 <= vba < self.num_vbas:
            raise IndexError(f"VBA {vba} out of range [0, {self.num_vbas})")
        return self._chains[vba]

    # ------------------------------------------------------------------
    # Host operations
    # ------------------------------------------------------------------
    def read(self, lpn: int) -> bytes | None:
        vba, offset = self.split_lpn(lpn)
        self.stats.host_reads += 1
        chain = self._chains[vba]
        if chain is None or chain.locations[offset] == _NOWHERE:
            return None
        _, payload = self.mtd.read_page(
            *self.geometry.page_address(chain.locations[offset])
        )
        return payload

    def write(self, lpn: int, data: bytes | None = None) -> None:
        """Write at the home offset if free, else append to the replacement.

        A full replacement forces a fold first (paper: "a primary block and
        its associated replacement block had to be recycled by NFTL when
        the replacement block was full").
        """
        vba, offset = self.split_lpn(lpn)
        self.stats.host_writes += 1
        ppb = self.geometry.pages_per_block
        chain = self._chains[vba]
        if chain is None:
            chain = self._open_chain(vba)
        while True:
            if chain.locations[offset] == _NOWHERE and not self._primary_page_used(
                chain, offset
            ):
                dest_block, dest_page = chain.primary, offset
                chain.primary_used += 1
            elif chain.replacement is None:
                replacement = self._allocate_block()
                chain.replacement = replacement
                chain.repl_next = 0
                self._owner[replacement] = chain
                self.mtd.flash.set_block_tag(replacement, f"R{vba}")
                continue
            elif chain.repl_next < ppb:
                dest_block, dest_page = chain.replacement, chain.repl_next
                chain.repl_next += 1
            else:
                with self._leveler_suspended():
                    self._ensure_fold_headroom()
                    with self._gc_traced("fold", chain.vba):
                        self._fold(chain)
                continue
            try:
                self.mtd.write_page(dest_block, dest_page, lba=lpn, data=data)
            except ProgramFaultError:
                # The attempted page is invalid on the chip; the placement
                # bookkeeping above already accounts for it as used, so the
                # next iteration falls through to the replacement path (or
                # the next replacement page / a fold).
                self._on_program_fault(dest_block)
                continue
            break
        old = chain.locations[offset]
        if old != _NOWHERE:
            self.mtd.invalidate_page(*self.geometry.page_address(old))
        else:
            chain.valid_offsets += 1
        chain.locations[offset] = self.geometry.page_index(dest_block, dest_page)
        self._process_pending_retirements()

    def _primary_page_used(self, chain: BlockChain, offset: int) -> bool:
        """``True`` when the primary's home page for ``offset`` was programmed.

        The home page can be used while ``locations[offset]`` points at the
        replacement (the primary copy was superseded), so the chip state is
        the authority.
        """
        return self.mtd.flash.page_state(chain.primary, offset) != PAGE_FREE

    # ------------------------------------------------------------------
    # Fault recovery
    # ------------------------------------------------------------------
    def _on_program_fault(self, block: int) -> None:
        """Bookkeeping after a failed program: the chip already marked the
        attempted page invalid and counted the program."""
        self.stats.program_faults += 1
        if block not in self._failed_blocks and block not in self.retired_blocks:
            self._failed_blocks.add(block)
            self._pending_retire.append(block)
            fault_log.info(
                "NFTL: program fault on block %d; owning chain will fold "
                "and the block retire", block,
            )
        if self._obs is not None and self._obs.mask & M_RECOVERY:
            self._obs.emit(Recovery("reissue", block))

    def _process_pending_retirements(self) -> None:
        """Fold chains owning program-faulted blocks so the blocks retire.

        Deferred to the end of the host write — a safe point where no fold
        is in flight — so recovery never recurses into itself.  A faulted
        block whose chain already folded in the meantime was retired by
        that fold's erase path and is skipped here.
        """
        if self._retiring or not self._pending_retire:
            return
        self._retiring = True
        try:
            while self._pending_retire:
                block = self._pending_retire.pop()
                if block in self.retired_blocks:
                    continue
                chain = self._owner[block]
                if chain is None:
                    continue
                copies_before = self.stats.live_page_copies
                with self._leveler_suspended():
                    self._ensure_fold_headroom()
                    with self._gc_traced("recovery", chain.vba):
                        self._fold(chain)
                self.stats.recovery_copies += (
                    self.stats.live_page_copies - copies_before
                )
        finally:
            self._retiring = False

    # ------------------------------------------------------------------
    # Chain management
    # ------------------------------------------------------------------
    def _open_chain(self, vba: int) -> BlockChain:
        primary = self._allocate_block()
        chain = BlockChain(
            vba=vba,
            primary=primary,
            locations=[_NOWHERE] * self.geometry.pages_per_block,
        )
        self._chains[vba] = chain
        self._owner[primary] = chain
        self.mtd.flash.set_block_tag(primary, f"P{vba}")
        return chain

    def _allocate_block(self) -> int:
        """Allocate after making sure the Cleaner has done its share."""
        self._reclaim_space()
        return self.allocator.allocate()

    def _reclaim_space(self) -> None:
        if self.allocator.free_count > self.gc_free_blocks:
            return
        with self._leveler_suspended():
            while self.allocator.free_count <= self.gc_free_blocks:
                self._gc_once()

    def _score_vba(self, vba: int) -> GreedyScore | None:
        chain = self._chains[vba]
        if chain is None or chain.replacement is None:
            # Folding a chain without a replacement frees no block.
            return None
        return GreedyScore(benefit=chain.invalid_pages(), cost=chain.valid_offsets)

    def _chain_wear(self, vba: int) -> int:
        chain = self._chains[vba]
        assert chain is not None
        return self.mtd.erase_counts[chain.primary]

    def _gc_once(self) -> None:
        """One Cleaner pass: fold the least-worn qualifying chain.

        Chains qualify by the greedy cost-benefit rule; among them the one
        whose primary block has the smallest erase count wins — the
        baseline dynamic wear leveling of paper Section 5.1.
        """
        victim = self.scanner.find_least_worn(self._score_vba, self._chain_wear)
        if victim is None:
            victim = self.scanner.find_best_fallback(self._score_vba)
        if victim is None:
            raise OutOfSpaceError(
                "garbage collection found no replacement block to merge; "
                "the logical space is too large for the physical space"
            )
        self.stats.gc_runs += 1
        chain = self._chains[victim]
        assert chain is not None
        with self._gc_traced("free-space", victim):
            self._fold(chain)

    def _ensure_fold_headroom(self) -> None:
        """A fold allocates one block before erasing two; make sure the
        pool is not empty (it cannot be while GC triggers at >= 2 free,
        but a defensive check keeps the invariant explicit)."""
        if self.allocator.free_count == 0:
            self._gc_once()

    def _fold(self, chain: BlockChain) -> None:
        """Merge a chain into a fresh primary block (Figure 2(b)).

        The most-recent content of every offset is copied to its home page
        in a new primary; the old primary and the replacement (if any) are
        erased and pooled.  Live-page copies are counted per Section 4.3.

        A program fault in the destination restarts the copy loop on
        another fresh primary: offsets already copied survive as valid
        pages in the faulted block (``locations`` points at them), so the
        retry drains them out again.  Faulted intermediates are erased and
        retired once the fold completes.
        """
        geometry = self.geometry
        failed_primaries: list[int] = []
        while True:
            new_primary = self.allocator.allocate()
            self.mtd.flash.set_block_tag(new_primary, f"P{chain.vba}")
            copied = 0
            faulted = False
            for offset in range(geometry.pages_per_block):
                index = chain.locations[offset]
                if index == _NOWHERE:
                    continue
                src = geometry.page_address(index)
                lba, payload = self.mtd.read_page(*src)
                try:
                    self.mtd.write_page(new_primary, offset, lba=lba, data=payload)
                except ProgramFaultError:
                    self._on_program_fault(new_primary)
                    failed_primaries.append(new_primary)
                    faulted = True
                    break
                self.mtd.invalidate_page(*src)
                chain.locations[offset] = geometry.page_index(new_primary, offset)
                copied += 1
            if not faulted:
                break
            self.stats.live_page_copies += copied
        self.stats.live_page_copies += copied
        self.stats.folds += 1

        old_primary = chain.primary
        old_replacement = chain.replacement
        self._owner[old_primary] = None
        self._erase_with_recovery(old_primary)
        self._release_or_retire(old_primary)
        if old_replacement is not None:
            self._owner[old_replacement] = None
            self._erase_with_recovery(old_replacement)
            self._release_or_retire(old_replacement)
        for failed in failed_primaries:
            self._erase_with_recovery(failed)
            self._release_or_retire(failed)

        chain.primary = new_primary
        chain.replacement = None
        chain.repl_next = 0
        chain.primary_used = copied
        self._owner[new_primary] = chain

    # ------------------------------------------------------------------
    # Checkpointing (see repro.ckpt)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict[str, object]:
        """Driver-common state plus every block chain.

        ``_owner`` is not serialized: it is derivable from the chains
        (each chain owns its primary and replacement) and is rebuilt on
        restore.
        """
        state = super().snapshot_state()
        chains: list[dict[str, object] | None] = []
        for chain in self._chains:
            if chain is None:
                chains.append(None)
                continue
            chains.append({
                "vba": chain.vba,
                "primary": chain.primary,
                "replacement": chain.replacement,
                "repl_next": chain.repl_next,
                "locations": list(chain.locations),
                "valid_offsets": chain.valid_offsets,
                "primary_used": chain.primary_used,
            })
        state.update({
            "num_vbas": self.num_vbas,
            "chains": chains,
            "scanner": self.scanner.snapshot_state(),
            "pending_retire": list(self._pending_retire),
        })
        return state

    def restore_state(self, state: dict[str, object]) -> None:
        if state["num_vbas"] != self.num_vbas:
            raise ValueError(
                f"NFTL snapshot exports {state['num_vbas']} VBAs, "
                f"driver exports {self.num_vbas}"
            )
        super().restore_state(state)
        self._chains = [None] * self.num_vbas
        self._owner = [None] * self.geometry.num_blocks
        for vba, entry in enumerate(state["chains"]):  # type: ignore[arg-type]
            if entry is None:
                continue
            chain = BlockChain(
                vba=entry["vba"],
                primary=entry["primary"],
                replacement=entry["replacement"],
                repl_next=entry["repl_next"],
                locations=list(entry["locations"]),
                valid_offsets=entry["valid_offsets"],
                primary_used=entry["primary_used"],
            )
            self._chains[vba] = chain
            self._owner[chain.primary] = chain
            if chain.replacement is not None:
                self._owner[chain.replacement] = chain
        self.scanner.restore_state(state["scanner"])  # type: ignore[arg-type]
        self._pending_retire = list(state["pending_retire"])  # type: ignore[arg-type]
        self._retiring = False

    # ------------------------------------------------------------------
    # Attach-time recovery
    # ------------------------------------------------------------------
    def rebuild_mapping(self) -> int:
        """Reconstruct every chain from on-flash metadata after a crash.

        Each allocated block carries an erase-unit header (``P<vba>`` or
        ``R<vba>``, the NFTL unit-header equivalent) identifying its role;
        page-level spare LBA tags rebuild the per-offset locations.
        Because superseded pages are marked invalid on update, each
        logical page has at most one valid copy, so ``locations`` rebuilds
        unambiguously.  Returns the number of chains recovered.

        Crash hardening: blocks in the chip's bad-block table are excluded
        from service.  A power loss mid-fold leaves *two* blocks tagged
        ``P<vba>`` with the chain's data split across up to three blocks;
        such claimant groups are consolidated at attach time
        (:meth:`_attach_merge`) before the chains go back into service.
        """
        geometry = self.geometry
        flash = self.mtd.flash
        ppb = geometry.pages_per_block
        self._chains = [None] * self.num_vbas
        self._owner = [None] * geometry.num_blocks
        self.retired_blocks = set(flash.bad_blocks)
        self._failed_blocks = set()
        self._pending_retire = []
        free_blocks: list[int] = []
        #: vba -> [(block, role, used pages)] for every claimant block.
        members: dict[int, list[tuple[int, str, int]]] = {}

        for block in range(geometry.num_blocks):
            if block in self.retired_blocks:
                continue
            states = flash.block_page_states(block)
            header = flash.block_tag(block)
            if states.count(PAGE_FREE) == ppb or header is None:
                free_blocks.append(block)
                continue
            role, vba = header[0], int(header[1:])
            if role not in "PR" or not 0 <= vba < self.num_vbas:
                free_blocks.append(block)  # foreign data; treat as free
                continue
            used = ppb - states.count(PAGE_FREE)
            members.setdefault(vba, []).append((block, role, used))

        # The allocator must exist before any attach-time merge: merges
        # allocate a consolidation block and release the ones they drain.
        self.allocator = BlockAllocator(
            self.mtd.erase_counts, free_blocks, policy=self.alloc_policy
        )

        for vba, group in sorted(members.items()):
            primaries = [m for m in group if m[1] == "P"]
            repls = [m for m in group if m[1] == "R"]
            if len(primaries) > 1 or len(repls) > 1:
                self._attach_merge(vba, group)
                continue
            if primaries:
                block, _, used = primaries[0]
                chain = BlockChain(
                    vba=vba, primary=block, locations=[_NOWHERE] * ppb
                )
                chain.primary_used = used
                self._owner[block] = chain
                if repls:
                    rblock, _, rused = repls[0]
                    chain.replacement = rblock
                    chain.repl_next = rused
                    self._owner[rblock] = chain
            else:
                # Replacement without a surviving primary (crash mid-fold):
                # adopt it as the chain's only block.
                rblock, _, rused = repls[0]
                chain = BlockChain(
                    vba=vba, primary=rblock, locations=[_NOWHERE] * ppb
                )
                chain.primary_used = rused
                self._owner[rblock] = chain
            self._chains[vba] = chain

        recovered = 0
        for chain in self._chains:
            if chain is None:
                continue
            recovered += 1
            chain.valid_offsets = 0
            for member in (chain.primary, chain.replacement):
                if member is None:
                    continue
                for page in range(ppb):
                    if flash.page_state(member, page) != PAGE_VALID:
                        continue
                    offset = flash.page_lba(member, page) % ppb
                    chain.locations[offset] = geometry.page_index(member, page)
                    chain.valid_offsets += 1
        return recovered

    def _attach_merge(self, vba: int, group: list[tuple[int, str, int]]) -> None:
        """Consolidate a multi-claimant VBA left by a crash mid-fold.

        Every offset still has at most one valid copy (folds invalidate
        each source right after its copy lands), but the copies are split
        across the old primary, the replacement, and the partial new
        primary.  If one primary already holds every surviving page at its
        home offset (the crash hit after the copy phase) it is adopted
        outright; otherwise the union of valid pages is copied into a
        fresh primary.  Drained claimants are erased and pooled.
        """
        geometry = self.geometry
        flash = self.mtd.flash
        ppb = geometry.pages_per_block
        fault_log.info(
            "NFTL rebuild: vba %d claimed by blocks %s; consolidating",
            vba, sorted(block for block, _, _ in group),
        )
        # offset -> the unique valid (block, page) holding its content.
        sources: dict[int, tuple[int, int]] = {}
        for block, _role, _used in group:
            for page in range(ppb):
                if flash.page_state(block, page) != PAGE_VALID:
                    continue
                offset = flash.page_lba(block, page) % ppb
                sources[offset] = (block, page)

        for cand, role, used in group:
            if role != "P":
                continue
            if all(
                blk == cand and page == off
                for off, (blk, page) in sources.items()
            ):
                chain = BlockChain(
                    vba=vba, primary=cand, locations=[_NOWHERE] * ppb
                )
                chain.primary_used = used
                self._chains[vba] = chain
                self._owner[cand] = chain
                for other, _r, _u in group:
                    if other != cand:
                        self._erase_with_recovery(other)
                        self._release_or_retire(other)
                return

        failed_primaries: list[int] = []
        #: offset -> (lba, payload) once the claimants had to be drained
        #: before a consolidation block could be allocated.
        buffered: dict[int, tuple[int, object]] | None = None
        while True:
            try:
                new_primary = self.allocator.allocate()
            except OutOfSpaceError:
                if buffered is not None:
                    raise  # retirement consumed the drained blocks: EOL
                # The crash struck a fold that had emptied the pool, so
                # there is no headroom for a copy merge.  Buffer the
                # surviving pages, drain every claimant back into the
                # pool, and rebuild the primary from the buffer — the RAM
                # buffer stands in for the reserved spare erase unit a
                # real NFTL keeps for this case.
                buffered = {
                    offset: self.mtd.read_page(*src)
                    for offset, src in sources.items()
                }
                for block in [b for b, _r, _u in group] + failed_primaries:
                    self._erase_with_recovery(block)
                    self._release_or_retire(block)
                group = []
                failed_primaries = []
                continue
            flash.set_block_tag(new_primary, f"P{vba}")
            copied = 0
            faulted = False
            for offset in sorted(buffered if buffered is not None else sources):
                if buffered is not None:
                    lba, payload = buffered[offset]
                else:
                    src = sources[offset]
                    lba, payload = self.mtd.read_page(*src)
                try:
                    self.mtd.write_page(new_primary, offset, lba=lba, data=payload)
                except ProgramFaultError:
                    self._on_program_fault(new_primary)
                    failed_primaries.append(new_primary)
                    faulted = True
                    break
                if buffered is None:
                    self.mtd.invalidate_page(*src)
                    sources[offset] = (new_primary, offset)
                copied += 1
            if not faulted:
                break
            self.stats.live_page_copies += copied
            self.stats.recovery_copies += copied
        self.stats.live_page_copies += copied
        self.stats.recovery_copies += copied

        chain = BlockChain(vba=vba, primary=new_primary, locations=[_NOWHERE] * ppb)
        chain.primary_used = copied
        self._chains[vba] = chain
        self._owner[new_primary] = chain
        for block, _role, _used in group:
            self._erase_with_recovery(block)
            self._release_or_retire(block)
        for block in failed_primaries:
            self._erase_with_recovery(block)
            self._release_or_retire(block)

    # ------------------------------------------------------------------
    # Invariants (crash-consistency harness)
    # ------------------------------------------------------------------
    def assert_internal_consistency(self) -> None:
        """Cross-check chain state against the chip's page states.

        Raises :class:`AssertionError` on the first discrepancy.  Used by
        the crash-consistency harness after every simulated reboot.
        """
        geometry = self.geometry
        flash = self.mtd.flash
        ppb = geometry.pages_per_block
        free = self.allocator.free_blocks()
        overlap = free & self.retired_blocks
        if overlap:
            raise AssertionError(
                f"retired blocks present in the free pool: {sorted(overlap)}"
            )
        referenced: set[int] = set()
        for vba, chain in enumerate(self._chains):
            if chain is None:
                continue
            chain_blocks = {chain.primary}
            if chain.replacement is not None:
                chain_blocks.add(chain.replacement)
            live = 0
            for offset in range(ppb):
                index = chain.locations[offset]
                if index == _NOWHERE:
                    continue
                live += 1
                referenced.add(index)
                block, page = geometry.page_address(index)
                if block not in chain_blocks:
                    raise AssertionError(
                        f"vba {vba} offset {offset} maps outside its chain "
                        f"(block {block})"
                    )
                if flash.page_state(block, page) != PAGE_VALID:
                    raise AssertionError(
                        f"vba {vba} offset {offset} maps to non-valid page "
                        f"({block}, {page})"
                    )
                if flash.page_lba(block, page) != vba * ppb + offset:
                    raise AssertionError(
                        f"vba {vba} offset {offset}: spare tag disagrees at "
                        f"({block}, {page})"
                    )
            if live != chain.valid_offsets:
                raise AssertionError(
                    f"vba {vba}: {live} live offsets, chain believes "
                    f"{chain.valid_offsets}"
                )
        for block in range(geometry.num_blocks):
            if block in self.retired_blocks:
                continue
            for page in flash.valid_pages(block):
                if geometry.page_index(block, page) not in referenced:
                    raise AssertionError(
                        f"stale valid page ({block}, {page}) referenced by "
                        f"no chain"
                    )

    # ------------------------------------------------------------------
    # SW Leveler host interface (EraseBlockSet)
    # ------------------------------------------------------------------
    def recycle_block_range(self, blocks: range) -> int:
        """Force-fold every chain owning a block in the selected set.

        Folding moves the chain's (possibly cold) data to a fresh block and
        erases the old ones — precisely the paper's goal of "prevent[ing]
        any cold data from staying at any block for a long period of time".
        Free blocks are skipped; two blocks of the same chain fold once.
        """
        recycled = 0
        with self._leveler_suspended():
            for block in blocks:
                if block in self.retired_blocks:
                    continue  # out of service; the leveler flags the set
                chain = self._owner[block]
                if chain is None:
                    if self.allocator.contains(block):
                        # Pull the (possibly virgin) free block to the head
                        # of the free order so it joins the rotation.
                        self.allocator.promote(block)
                    continue
                self._ensure_fold_headroom()
                with self._gc_traced("swl", chain.vba):
                    self._fold(chain)
                self.stats.forced_recycles += 1
                recycled += 1
        return recycled
