"""NFTL — the block-level mapping Flash Translation Layer (paper Section 2.2).

"NFTL adopts a block-level address translation mechanism for coarse-grained
address translation.  An LBA under NFTL is divided into a virtual block
address and a block offset. ... A VBA can be translated to a (primary)
physical block address. ... the contents of the (overwritten) write
requests are sequentially written to the replacement block.  When a
replacement block is full, valid pages in the block and its associated
primary block are merged into a new primary block ... and the previous two
blocks are erased."  (Figure 2(b).)

Implementation notes
--------------------
* Each mapped VBA owns a :class:`BlockChain`: a primary block (data at its
  home offset), an optional replacement block (overwrites appended
  sequentially), and a per-offset location table giving O(1) reads —
  equivalent to, but faster than, the backwards scan of the replacement
  block that firmware performs.
* A fold (merge) copies the most-recent content of every offset into a
  freshly allocated primary and erases the two old blocks; folds are
  forced when a replacement fills, during garbage collection, and on
  SW Leveler requests (which is how cold chains get moved).
* Per-chain valid/invalid counts make the Cleaner's greedy cost-benefit
  scoring O(1) per probe, with the cyclic scan running over VBAs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.flash.chip import PAGE_FREE, PAGE_VALID
from repro.flash.errors import OutOfSpaceError
from repro.flash.mtd import MtdDevice
from repro.ftl.allocator import BlockAllocator
from repro.ftl.base import DEFAULT_OP_RATIO, GC_FREE_FRACTION, TranslationLayer
from repro.ftl.cleaner import CyclicScanner, GreedyScore

_NOWHERE = -1


@dataclass
class BlockChain:
    """Translation state of one virtual block address."""

    vba: int
    primary: int
    replacement: int | None = None
    #: Next free page in the replacement block (sequential writes only).
    repl_next: int = 0
    #: Per-offset global page index of the current content (-1 = no data).
    locations: list[int] = field(default_factory=list)
    #: Number of offsets currently holding data (fold copy cost).
    valid_offsets: int = 0
    #: Pages programmed in the primary block.
    primary_used: int = 0

    def invalid_pages(self) -> int:
        """Superseded pages across the chain (fold benefit)."""
        return self.primary_used + self.repl_next - self.valid_offsets


class NFTL(TranslationLayer):
    """Coarse-grained (block-level) translation layer.

    The logical space is the physical block count minus the reserved
    blocks (``op_ratio`` of the chip, floored at the Cleaner's working
    minimum), in units of whole virtual blocks.
    """

    name = "NFTL"

    def __init__(
        self,
        mtd: MtdDevice,
        *,
        op_ratio: float = DEFAULT_OP_RATIO,
        gc_free_fraction: float = GC_FREE_FRACTION,
        alloc_policy: str = "lifo",
        retire_worn: bool = False,
    ) -> None:
        super().__init__(
            mtd,
            op_ratio=op_ratio,
            gc_free_fraction=gc_free_fraction,
            alloc_policy=alloc_policy,
            retire_worn=retire_worn,
        )
        geometry = self.geometry
        self.num_vbas = geometry.num_blocks - self._reserve_blocks()
        self._chains: list[BlockChain | None] = [None] * self.num_vbas
        #: Physical block -> owning chain (None when free).
        self._owner: list[BlockChain | None] = [None] * geometry.num_blocks
        self.allocator = BlockAllocator(
            mtd.erase_counts, list(range(geometry.num_blocks)),
            policy=alloc_policy,
        )
        self.scanner = CyclicScanner(self.num_vbas)

    # ------------------------------------------------------------------
    # Logical space
    # ------------------------------------------------------------------
    @property
    def num_logical_pages(self) -> int:
        return self.num_vbas * self.geometry.pages_per_block

    def split_lpn(self, lpn: int) -> tuple[int, int]:
        """LBA split of Section 2.2: (virtual block address, block offset)."""
        self.check_lpn(lpn)
        return divmod(lpn, self.geometry.pages_per_block)

    def chain_of(self, vba: int) -> BlockChain | None:
        """Translation state of one VBA (``None`` when never written)."""
        if not 0 <= vba < self.num_vbas:
            raise IndexError(f"VBA {vba} out of range [0, {self.num_vbas})")
        return self._chains[vba]

    # ------------------------------------------------------------------
    # Host operations
    # ------------------------------------------------------------------
    def read(self, lpn: int) -> bytes | None:
        vba, offset = self.split_lpn(lpn)
        self.stats.host_reads += 1
        chain = self._chains[vba]
        if chain is None or chain.locations[offset] == _NOWHERE:
            return None
        _, payload = self.mtd.read_page(
            *self.geometry.page_address(chain.locations[offset])
        )
        return payload

    def write(self, lpn: int, data: bytes | None = None) -> None:
        """Write at the home offset if free, else append to the replacement.

        A full replacement forces a fold first (paper: "a primary block and
        its associated replacement block had to be recycled by NFTL when
        the replacement block was full").
        """
        vba, offset = self.split_lpn(lpn)
        self.stats.host_writes += 1
        ppb = self.geometry.pages_per_block
        chain = self._chains[vba]
        if chain is None:
            chain = self._open_chain(vba)
        while True:
            if chain.locations[offset] == _NOWHERE and not self._primary_page_used(
                chain, offset
            ):
                dest_block, dest_page = chain.primary, offset
                chain.primary_used += 1
                break
            if chain.replacement is None:
                replacement = self._allocate_block()
                chain.replacement = replacement
                chain.repl_next = 0
                self._owner[replacement] = chain
                self.mtd.flash.set_block_tag(replacement, f"R{vba}")
                continue
            if chain.repl_next < ppb:
                dest_block, dest_page = chain.replacement, chain.repl_next
                chain.repl_next += 1
                break
            with self._leveler_suspended():
                self._ensure_fold_headroom()
                self._fold(chain)
        self.mtd.write_page(dest_block, dest_page, lba=lpn, data=data)
        old = chain.locations[offset]
        if old != _NOWHERE:
            self.mtd.invalidate_page(*self.geometry.page_address(old))
        else:
            chain.valid_offsets += 1
        chain.locations[offset] = self.geometry.page_index(dest_block, dest_page)

    def _primary_page_used(self, chain: BlockChain, offset: int) -> bool:
        """``True`` when the primary's home page for ``offset`` was programmed.

        The home page can be used while ``locations[offset]`` points at the
        replacement (the primary copy was superseded), so the chip state is
        the authority.
        """
        return self.mtd.flash.page_state(chain.primary, offset) != PAGE_FREE

    # ------------------------------------------------------------------
    # Chain management
    # ------------------------------------------------------------------
    def _open_chain(self, vba: int) -> BlockChain:
        primary = self._allocate_block()
        chain = BlockChain(
            vba=vba,
            primary=primary,
            locations=[_NOWHERE] * self.geometry.pages_per_block,
        )
        self._chains[vba] = chain
        self._owner[primary] = chain
        self.mtd.flash.set_block_tag(primary, f"P{vba}")
        return chain

    def _allocate_block(self) -> int:
        """Allocate after making sure the Cleaner has done its share."""
        self._reclaim_space()
        return self.allocator.allocate()

    def _reclaim_space(self) -> None:
        if self.allocator.free_count > self.gc_free_blocks:
            return
        with self._leveler_suspended():
            while self.allocator.free_count <= self.gc_free_blocks:
                self._gc_once()

    def _score_vba(self, vba: int) -> GreedyScore | None:
        chain = self._chains[vba]
        if chain is None or chain.replacement is None:
            # Folding a chain without a replacement frees no block.
            return None
        return GreedyScore(benefit=chain.invalid_pages(), cost=chain.valid_offsets)

    def _chain_wear(self, vba: int) -> int:
        chain = self._chains[vba]
        assert chain is not None
        return self.mtd.erase_counts[chain.primary]

    def _gc_once(self) -> None:
        """One Cleaner pass: fold the least-worn qualifying chain.

        Chains qualify by the greedy cost-benefit rule; among them the one
        whose primary block has the smallest erase count wins — the
        baseline dynamic wear leveling of paper Section 5.1.
        """
        victim = self.scanner.find_least_worn(self._score_vba, self._chain_wear)
        if victim is None:
            victim = self.scanner.find_best_fallback(self._score_vba)
        if victim is None:
            raise OutOfSpaceError(
                "garbage collection found no replacement block to merge; "
                "the logical space is too large for the physical space"
            )
        self.stats.gc_runs += 1
        chain = self._chains[victim]
        assert chain is not None
        self._fold(chain)

    def _ensure_fold_headroom(self) -> None:
        """A fold allocates one block before erasing two; make sure the
        pool is not empty (it cannot be while GC triggers at >= 2 free,
        but a defensive check keeps the invariant explicit)."""
        if self.allocator.free_count == 0:
            self._gc_once()

    def _fold(self, chain: BlockChain) -> None:
        """Merge a chain into a fresh primary block (Figure 2(b)).

        The most-recent content of every offset is copied to its home page
        in a new primary; the old primary and the replacement (if any) are
        erased and pooled.  Live-page copies are counted per Section 4.3.
        """
        geometry = self.geometry
        new_primary = self.allocator.allocate()
        self.mtd.flash.set_block_tag(new_primary, f"P{chain.vba}")
        copied = 0
        for offset in range(geometry.pages_per_block):
            index = chain.locations[offset]
            if index == _NOWHERE:
                continue
            src = geometry.page_address(index)
            lba, payload = self.mtd.read_page(*src)
            self.mtd.write_page(new_primary, offset, lba=lba, data=payload)
            self.mtd.invalidate_page(*src)
            chain.locations[offset] = geometry.page_index(new_primary, offset)
            copied += 1
        self.stats.live_page_copies += copied
        self.stats.folds += 1

        old_primary = chain.primary
        old_replacement = chain.replacement
        self._owner[old_primary] = None
        self.mtd.erase_block(old_primary)
        self._release_or_retire(old_primary)
        if old_replacement is not None:
            self._owner[old_replacement] = None
            self.mtd.erase_block(old_replacement)
            self._release_or_retire(old_replacement)

        chain.primary = new_primary
        chain.replacement = None
        chain.repl_next = 0
        chain.primary_used = copied
        self._owner[new_primary] = chain

    # ------------------------------------------------------------------
    # Attach-time recovery
    # ------------------------------------------------------------------
    def rebuild_mapping(self) -> int:
        """Reconstruct every chain from on-flash metadata after a crash.

        Each allocated block carries an erase-unit header (``P<vba>`` or
        ``R<vba>``, the NFTL unit-header equivalent) identifying its role;
        page-level spare LBA tags rebuild the per-offset locations.
        Because superseded pages are marked invalid on update, each
        logical page has at most one valid copy, so ``locations`` rebuilds
        unambiguously.  Returns the number of chains recovered.
        """
        geometry = self.geometry
        flash = self.mtd.flash
        ppb = geometry.pages_per_block
        self._chains = [None] * self.num_vbas
        self._owner = [None] * geometry.num_blocks
        free_blocks: list[int] = []
        replacements: list[tuple[int, int, int]] = []  # (block, vba, used)

        for block in range(geometry.num_blocks):
            states = flash.block_page_states(block)
            header = flash.block_tag(block)
            if states.count(PAGE_FREE) == ppb or header is None:
                free_blocks.append(block)
                continue
            role, vba = header[0], int(header[1:])
            if role not in "PR" or not 0 <= vba < self.num_vbas:
                free_blocks.append(block)  # foreign data; treat as free
                continue
            used = ppb - states.count(PAGE_FREE)
            if role == "P":
                chain = self._chains[vba]
                if chain is None:
                    chain = BlockChain(
                        vba=vba, primary=block, locations=[_NOWHERE] * ppb
                    )
                    self._chains[vba] = chain
                else:
                    chain.primary = block
                self._owner[block] = chain
                chain.primary_used = used
            else:
                replacements.append((block, vba, used))

        for block, vba, used in replacements:
            chain = self._chains[vba]
            if chain is None:
                # Replacement without a surviving primary (crash mid-fold):
                # adopt it as the chain's only block.
                chain = BlockChain(
                    vba=vba, primary=block, locations=[_NOWHERE] * ppb
                )
                chain.primary_used = used
                self._chains[vba] = chain
            else:
                chain.replacement = block
                chain.repl_next = used
            self._owner[block] = chain

        recovered = 0
        for chain in self._chains:
            if chain is None:
                continue
            recovered += 1
            chain.valid_offsets = 0
            for member in (chain.primary, chain.replacement):
                if member is None:
                    continue
                for page in range(ppb):
                    if flash.page_state(member, page) != PAGE_VALID:
                        continue
                    offset = flash.page_lba(member, page) % ppb
                    chain.locations[offset] = geometry.page_index(member, page)
                    chain.valid_offsets += 1
        self.allocator = BlockAllocator(
            self.mtd.erase_counts, free_blocks, policy=self.alloc_policy
        )
        return recovered

    # ------------------------------------------------------------------
    # SW Leveler host interface (EraseBlockSet)
    # ------------------------------------------------------------------
    def recycle_block_range(self, blocks: range) -> int:
        """Force-fold every chain owning a block in the selected set.

        Folding moves the chain's (possibly cold) data to a fresh block and
        erases the old ones — precisely the paper's goal of "prevent[ing]
        any cold data from staying at any block for a long period of time".
        Free blocks are skipped; two blocks of the same chain fold once.
        """
        recycled = 0
        with self._leveler_suspended():
            for block in blocks:
                chain = self._owner[block]
                if chain is None:
                    if self.allocator.contains(block):
                        # Pull the (possibly virgin) free block to the head
                        # of the free order so it joins the rotation.
                        self.allocator.promote(block)
                    continue
                self._ensure_fold_headroom()
                self._fold(chain)
                self.stats.forced_recycles += 1
                recycled += 1
        return recycled
